"""Telemetry record types mirroring the paper's Table II.

Table II specifies, for the RAPS model, job inputs (name, id, node count,
start time, cpu/gpu power traces at 15 s resolution) and a 1 s measured
system power output; for the cooling model, 15 s rack power plus 60 s
wet-bulb inputs and the CDU/CEP output series at their native cadences.

:class:`JobRecord` stores utilization traces rather than power traces; the
paper notes its telemetry lacks utilization and linearly interpolates
power to utilization, and :func:`JobRecord.from_power_traces` performs
exactly that inversion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import TelemetryError

#: Trace sample spacing used throughout the paper ("trace quanta"), seconds.
TRACE_QUANTA_S = 15.0


@dataclass
class JobRecord:
    """One job as recorded by (or synthesized as) telemetry.

    Attributes
    ----------
    job_name:
        Human-readable name (e.g. ``"hpl"``).
    job_id:
        Unique integer id within the dataset.
    node_count:
        Nodes the job occupied.
    start_time:
        Submission-or-start time in seconds from the dataset epoch.  During
        replay with recorded starts this is the dispatch time.
    wall_time:
        Requested/observed duration in seconds.
    cpu_util / gpu_util:
        Per-quantum mean utilization in [0, 1], sampled every
        ``trace_quanta`` seconds.  Both traces have the same length
        ``ceil(wall_time / trace_quanta)``.
    trace_quanta:
        Trace sample spacing, seconds (paper: 15 s).
    """

    job_name: str
    job_id: int
    node_count: int
    start_time: float
    wall_time: float
    cpu_util: np.ndarray
    gpu_util: np.ndarray
    trace_quanta: float = TRACE_QUANTA_S

    def __post_init__(self) -> None:
        self.cpu_util = np.asarray(self.cpu_util, dtype=np.float64)
        self.gpu_util = np.asarray(self.gpu_util, dtype=np.float64)
        if self.node_count < 1:
            raise TelemetryError(
                f"job {self.job_id}: node_count must be >= 1, got {self.node_count}"
            )
        if self.wall_time <= 0:
            raise TelemetryError(
                f"job {self.job_id}: wall_time must be positive, got {self.wall_time}"
            )
        if self.cpu_util.shape != self.gpu_util.shape:
            raise TelemetryError(
                f"job {self.job_id}: cpu/gpu trace lengths differ "
                f"({self.cpu_util.size} vs {self.gpu_util.size})"
            )
        if self.cpu_util.ndim != 1 or self.cpu_util.size == 0:
            raise TelemetryError(
                f"job {self.job_id}: traces must be non-empty 1-D arrays"
            )
        for name, trace in (("cpu", self.cpu_util), ("gpu", self.gpu_util)):
            if np.any(trace < 0.0) or np.any(trace > 1.0):
                raise TelemetryError(
                    f"job {self.job_id}: {name} utilization outside [0, 1]"
                )

    @property
    def end_time(self) -> float:
        """Dataset-epoch time at which the job finishes."""
        return self.start_time + self.wall_time

    @property
    def node_seconds(self) -> float:
        """Node-seconds consumed (allocation footprint)."""
        return self.node_count * self.wall_time

    def util_at(self, elapsed_s: float) -> tuple[float, float]:
        """Return (cpu_util, gpu_util) at ``elapsed_s`` into the job.

        Uses zero-order hold over trace quanta, clamping to the last sample
        (jobs occasionally run slightly past their final quantum).
        """
        if elapsed_s < 0:
            raise TelemetryError("elapsed_s must be >= 0")
        idx = min(int(elapsed_s // self.trace_quanta), self.cpu_util.size - 1)
        return float(self.cpu_util[idx]), float(self.gpu_util[idx])

    @classmethod
    def from_power_traces(
        cls,
        *,
        job_name: str,
        job_id: int,
        node_count: int,
        start_time: float,
        cpu_power_w: np.ndarray,
        gpu_power_w: np.ndarray,
        cpu_idle_w: float,
        cpu_max_w: float,
        gpu_idle_w: float,
        gpu_max_w: float,
        trace_quanta: float = TRACE_QUANTA_S,
    ) -> "JobRecord":
        """Build a record from per-device power traces (Table II schema).

        Inverts the paper's linear power<->utilization interpolation:
        ``util = (P - P_idle) / (P_max - P_idle)``, clipped to [0, 1].
        Power traces are per-CPU and per-GPU watts.
        """
        cpu_power_w = np.asarray(cpu_power_w, dtype=np.float64)
        gpu_power_w = np.asarray(gpu_power_w, dtype=np.float64)
        if cpu_power_w.size == 0:
            raise TelemetryError(f"job {job_id}: empty power trace")
        cpu_span = cpu_max_w - cpu_idle_w
        gpu_span = gpu_max_w - gpu_idle_w
        cpu_util = (
            np.clip((cpu_power_w - cpu_idle_w) / cpu_span, 0.0, 1.0)
            if cpu_span > 0
            else np.zeros_like(cpu_power_w)
        )
        gpu_util = (
            np.clip((gpu_power_w - gpu_idle_w) / gpu_span, 0.0, 1.0)
            if gpu_span > 0
            else np.zeros_like(gpu_power_w)
        )
        wall_time = cpu_power_w.size * trace_quanta
        return cls(
            job_name=job_name,
            job_id=job_id,
            node_count=node_count,
            start_time=start_time,
            wall_time=wall_time,
            cpu_util=cpu_util,
            gpu_util=gpu_util,
            trace_quanta=trace_quanta,
        )


@dataclass(frozen=True)
class SeriesSpec:
    """Declared cadence and shape of one telemetry series (Table II rows)."""

    name: str
    resolution_s: float
    width: int = 1
    units: str = ""
    description: str = ""


@dataclass(frozen=True)
class TelemetrySchema:
    """The full Table II schema: declared series for RAPS + cooling."""

    series: tuple[SeriesSpec, ...] = field(default_factory=tuple)

    def spec_for(self, name: str) -> SeriesSpec:
        for s in self.series:
            if s.name == name:
                return s
        raise TelemetryError(f"series {name!r} not declared in schema")

    def names(self) -> list[str]:
        return [s.name for s in self.series]


def table2_schema(num_cdus: int = 25) -> TelemetrySchema:
    """The validation telemetry schema of paper Table II for Frontier."""
    return TelemetrySchema(
        series=(
            SeriesSpec("measured_power", 1.0, 1, "W", "total system power"),
            SeriesSpec("rack_power", 15.0, num_cdus, "W", "per-CDU rack-group power"),
            SeriesSpec("wetbulb_temperature", 60.0, 1, "degC", "outdoor wet-bulb"),
            SeriesSpec("cdu_htw_flow", 15.0, num_cdus, "m3/s", "CDU primary flow"),
            SeriesSpec("cdu_ctw_flow", 15.0, num_cdus, "m3/s", "CDU secondary flow"),
            SeriesSpec("cdu_return_temp", 15.0, num_cdus, "degC", "CDU primary return temp"),
            SeriesSpec("cdu_supply_temp", 15.0, num_cdus, "degC", "CDU secondary supply temp"),
            SeriesSpec("cdu_pump_speed", 15.0, num_cdus, "frac", "CDU pump speed"),
            SeriesSpec("cdu_pump_power", 15.0, num_cdus, "W", "CDU pump power"),
            SeriesSpec("facility_flow", 120.0, 2, "m3/s", "HTW/CTW loop flows"),
            SeriesSpec("htw_supply_temp", 60.0, 1, "degC", "HTW supply temperature"),
            SeriesSpec("htw_return_temp", 60.0, 1, "degC", "HTW return temperature"),
            SeriesSpec("htw_supply_pressure", 30.0, 1, "Pa", "HTW supply pressure"),
            SeriesSpec("htw_return_pressure", 30.0, 1, "Pa", "HTW return pressure"),
            SeriesSpec("htwp_pump_power", 600.0, 4, "W", "HTW pump power"),
            SeriesSpec("ctwp_pump_power", 600.0, 4, "W", "CTW pump power"),
            SeriesSpec("htwp_pump_speed", 120.0, 1, "frac", "HTW pump speed"),
            SeriesSpec("ctwp_pump_speed", 120.0, 1, "frac", "CTW pump speed"),
            SeriesSpec("num_htwp_staged", 60.0, 1, "count", "HTW pumps running"),
            SeriesSpec("num_ctwp_staged", 60.0, 1, "count", "CTW pumps running"),
            SeriesSpec("num_ehx_staged", 60.0, 1, "count", "intermediate HX active"),
            SeriesSpec("num_ct_staged", 60.0, 1, "count", "cooling-tower cells active"),
            SeriesSpec("ct_fan_power", 60.0, 1, "W", "total cooling-tower fan power"),
            SeriesSpec("pue", 15.0, 1, "ratio", "power usage effectiveness"),
        )
    )


__all__ = [
    "TRACE_QUANTA_S",
    "JobRecord",
    "SeriesSpec",
    "TelemetrySchema",
    "table2_schema",
]
