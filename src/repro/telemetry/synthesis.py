"""Synthetic Frontier telemetry generation.

This is the repository's substitution for the six months of production
Frontier telemetry the paper replays (see DESIGN.md).  Day-level workload
parameters are drawn from heavy-tailed distributions calibrated so the
183-day marginals match paper Table IV (average inter-arrival 138 s with a
2988 s max, 268-node average jobs, 39-minute average runtimes, 10.2-23 MW
average daily power); individual jobs then get phased, AR(1)-noisy
utilization traces.  Scripted days reproduce the specific workloads of
Fig. 8 (HPL + OpenMxP benchmarks) and Fig. 9 (1238 jobs on 2024-01-18,
400 of them single-node, plus four back-to-back 9216-node HPL runs).

Wet-bulb temperature is a seasonal + diurnal sinusoid with
Ornstein-Uhlenbeck weather noise, parameterized for East Tennessee.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.schema import SystemSpec
from repro.exceptions import TelemetryError
from repro.seeding import spawn_rng
from repro.telemetry import profiles
from repro.telemetry.dataset import TelemetryDataset, TimeSeries
from repro.telemetry.schema import TRACE_QUANTA_S, JobRecord
from repro.units import SECONDS_PER_DAY


# ---------------------------------------------------------------------------
# Weather
# ---------------------------------------------------------------------------

def synthesize_wetbulb(
    duration_s: float,
    rng: np.random.Generator,
    *,
    dt_s: float = 60.0,
    day_of_year: int = 100,
    mean_annual_c: float = 13.0,
    seasonal_amplitude_c: float = 9.0,
    diurnal_amplitude_c: float = 3.0,
    noise_std_c: float = 1.2,
    noise_tau_s: float = 7200.0,
) -> TimeSeries:
    """Wet-bulb (outdoor) temperature series at ``dt_s`` cadence.

    Seasonal + diurnal sinusoids plus an Ornstein-Uhlenbeck process with
    time constant ``noise_tau_s`` for weather-front variability.
    """
    if duration_s <= 0:
        raise TelemetryError("duration must be positive")
    n = int(np.ceil(duration_s / dt_s)) + 1
    t = dt_s * np.arange(n)
    seasonal = mean_annual_c + seasonal_amplitude_c * np.cos(
        2 * np.pi * (day_of_year + t / SECONDS_PER_DAY - 200.0) / 365.25
    )
    # Diurnal minimum near 6 am, maximum mid-afternoon.
    diurnal = diurnal_amplitude_c * np.cos(
        2 * np.pi * (t / SECONDS_PER_DAY - 15.0 / 24.0)
    )
    # OU noise: exact discretization x_{k+1} = a x_k + s eps.
    a = np.exp(-dt_s / noise_tau_s)
    s = noise_std_c * np.sqrt(1 - a * a)
    eps = rng.normal(0.0, 1.0, n)
    ou = np.empty(n)
    x = rng.normal(0.0, noise_std_c)
    for i in range(n):
        x = a * x + s * eps[i]
        ou[i] = x
    return TimeSeries(t, seasonal + diurnal + ou, "degC")


# ---------------------------------------------------------------------------
# Day-level workload parameters
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadDayParams:
    """Day-level workload statistics (the knobs of paper section III-B3).

    ``mean_arrival_s`` is t_avg of Eq. 5; the remaining fields set the
    lognormal job-size/duration mixtures for the day.
    """

    mean_arrival_s: float
    mean_nodes_per_job: float
    mean_runtime_s: float
    single_node_fraction: float = 0.32
    mean_gpu_util: float = 0.62
    mean_cpu_util: float = 0.38

    def __post_init__(self) -> None:
        if self.mean_arrival_s <= 0:
            raise TelemetryError("mean_arrival_s must be positive")
        if self.mean_nodes_per_job < 1:
            raise TelemetryError("mean_nodes_per_job must be >= 1")
        if self.mean_runtime_s <= 0:
            raise TelemetryError("mean_runtime_s must be positive")
        if not 0.0 <= self.single_node_fraction <= 1.0:
            raise TelemetryError("single_node_fraction must be in [0, 1]")

    @classmethod
    def draw(cls, rng: np.random.Generator) -> "WorkloadDayParams":
        """Draw one day's parameters from the Table IV-calibrated priors.

        Arrival times and job sizes are lognormal with the Table IV mean
        and standard deviation across days (138 +/- 331 s; 268 +/- 626
        nodes); runtimes are lognormal with mean 39 min, std 14 min.
        Values are clipped to the observed Table IV min/max envelope.
        """
        def lognormal(mean: float, std: float) -> float:
            sigma2 = np.log1p((std / mean) ** 2)
            mu = np.log(mean) - sigma2 / 2.0
            return float(rng.lognormal(mu, np.sqrt(sigma2)))

        arrival = float(np.clip(lognormal(138.0, 331.0), 17.0, 2988.0))
        nodes = float(np.clip(lognormal(268.0, 626.0), 39.0, 5441.0))
        runtime = float(np.clip(lognormal(39.0, 14.0), 17.0, 101.0)) * 60.0
        gpu = float(np.clip(rng.normal(0.62, 0.08), 0.3, 0.9))
        cpu = float(np.clip(rng.normal(0.38, 0.06), 0.15, 0.7))
        single = float(np.clip(rng.normal(0.32, 0.08), 0.05, 0.6))
        return cls(
            mean_arrival_s=arrival,
            mean_nodes_per_job=nodes,
            mean_runtime_s=runtime,
            single_node_fraction=single,
            mean_gpu_util=gpu,
            mean_cpu_util=cpu,
        )


# ---------------------------------------------------------------------------
# Generator
# ---------------------------------------------------------------------------


class SyntheticTelemetryGenerator:
    """Generates telemetry datasets (jobs + weather) for a system.

    Parameters
    ----------
    spec:
        The target system (sets node counts and trace conventions).
    seed:
        Root seed.  Every generated day uses an independent child stream,
        so day ``k`` is reproducible regardless of generation order.
    """

    def __init__(self, spec: SystemSpec, seed: int = 0) -> None:
        self.spec = spec
        self._seed_seq = np.random.SeedSequence(seed)
        self.total_nodes = spec.total_nodes

    # -- internals -----------------------------------------------------------

    def _day_rng(self, day_index: int) -> np.random.Generator:
        # The package-wide spawning idiom (repro.seeding): day k's
        # stream is SeedSequence(entropy=seed, spawn_key=(k,)), which
        # is also what workload generators reproduce to stay
        # bit-compatible with synthesized telemetry.
        return spawn_rng(int(self._seed_seq.entropy), day_index)

    def _draw_job_nodes(
        self, rng: np.random.Generator, params: WorkloadDayParams
    ) -> int:
        """Job size: single-node spike + lognormal bulk, clipped to system.

        The bulk distribution compensates for the single-node spike so
        the *realized* day mean tracks ``mean_nodes_per_job``; a cv of
        1.3 keeps the tail heavy without losing most of the mass to the
        system-size clip (which would bias daily power low).
        """
        if rng.random() < params.single_node_fraction:
            return 1
        bulk_mean = max(
            (params.mean_nodes_per_job - params.single_node_fraction)
            / max(1.0 - params.single_node_fraction, 1e-6),
            1.0,
        )
        sigma2 = np.log1p(1.3**2)
        mu = np.log(bulk_mean) - sigma2 / 2.0
        n = int(np.round(rng.lognormal(mu, np.sqrt(sigma2))))
        return int(np.clip(n, 1, self.total_nodes))

    def _draw_job_runtime(
        self, rng: np.random.Generator, params: WorkloadDayParams
    ) -> float:
        mean = params.mean_runtime_s
        sigma2 = np.log1p(0.8**2)
        mu = np.log(mean) - sigma2 / 2.0
        return float(np.clip(rng.lognormal(mu, np.sqrt(sigma2)), 60.0, 86000.0))

    def _make_job(
        self,
        rng: np.random.Generator,
        params: WorkloadDayParams,
        job_id: int,
        start: float,
    ) -> JobRecord:
        nodes = self._draw_job_nodes(rng, params)
        runtime = self._draw_job_runtime(rng, params)
        cpu_lv = float(np.clip(rng.normal(params.mean_cpu_util, 0.12), 0.02, 1.0))
        gpu_lv = float(np.clip(rng.normal(params.mean_gpu_util, 0.18), 0.0, 1.0))
        # ~12 % of jobs are CPU-only codes.
        if rng.random() < 0.12:
            gpu_lv = float(rng.uniform(0.0, 0.05))
            cpu_lv = float(np.clip(rng.normal(0.7, 0.15), 0.1, 1.0))
        cpu, gpu = profiles.noisy_application_profile(
            runtime, rng, cpu_level=cpu_lv, gpu_level=gpu_lv
        )
        return JobRecord(
            job_name=f"synth-{job_id}",
            job_id=job_id,
            node_count=nodes,
            start_time=start,
            wall_time=runtime,
            cpu_util=cpu,
            gpu_util=gpu,
        )

    # -- public API ------------------------------------------------------------

    def day(
        self,
        day_index: int,
        *,
        params: WorkloadDayParams | None = None,
        include_weather: bool = True,
    ) -> TelemetryDataset:
        """Synthesize one day (86400 s) of workload + weather telemetry.

        Jobs arriving before the epoch would already be running; to keep
        the replay self-contained, arrivals start at t=0 and the machine
        warms up over the first hour (the paper's replays show the same
        ramp when a day starts lightly loaded).
        """
        rng = self._day_rng(day_index)
        if params is None:
            params = WorkloadDayParams.draw(rng)
        ds = TelemetryDataset(
            name=f"{self.spec.name}-synthetic-day{day_index:04d}",
            metadata={
                "day_index": day_index,
                "params": {
                    "mean_arrival_s": params.mean_arrival_s,
                    "mean_nodes_per_job": params.mean_nodes_per_job,
                    "mean_runtime_s": params.mean_runtime_s,
                },
            },
        )
        t = 0.0
        job_id = 0
        lam = 1.0 / params.mean_arrival_s
        while True:
            # Eq. 5: tau = -ln(1 - U) / lambda.
            t += -np.log1p(-rng.random()) / lam
            if t >= SECONDS_PER_DAY:
                break
            ds.add_job(self._make_job(rng, params, job_id, t))
            job_id += 1
        if include_weather:
            ds.add_series(
                "wetbulb_temperature",
                synthesize_wetbulb(
                    SECONDS_PER_DAY, rng, day_of_year=(day_index * 7) % 365
                ),
            )
        return ds

    def benchmark_day(self, *, day_index: int = 10_000) -> TelemetryDataset:
        """The Fig. 8 scenario: idle system, then HPL, then OpenMxP.

        A quiet system runs a full-scale HPL (9216 nodes) followed by an
        OpenMxP run, separated by idle gaps, exposing the transient
        response of the cooling loop to power surges.
        """
        rng = self._day_rng(day_index)
        ds = TelemetryDataset(
            name=f"{self.spec.name}-benchmark-fig8",
            metadata={"scenario": "fig8", "day_index": day_index},
        )
        hpl_cpu, hpl_gpu = profiles.hpl_profile(5400.0)
        ds.add_job(
            JobRecord(
                job_name="hpl",
                job_id=1,
                node_count=9216,
                start_time=1800.0,
                wall_time=5400.0,
                cpu_util=hpl_cpu,
                gpu_util=hpl_gpu,
            )
        )
        mxp_cpu, mxp_gpu = profiles.openmxp_profile(3600.0)
        ds.add_job(
            JobRecord(
                job_name="openmxp",
                job_id=2,
                node_count=9216,
                start_time=9000.0,
                wall_time=3600.0,
                cpu_util=mxp_cpu,
                gpu_util=mxp_gpu,
            )
        )
        ds.add_series(
            "wetbulb_temperature",
            synthesize_wetbulb(14400.0, rng, day_of_year=180),
        )
        return ds

    def replay_day_fig9(self, *, day_index: int = 20_000) -> TelemetryDataset:
        """The Fig. 9 scenario: the 2024-01-18 replay day.

        1238 jobs total, 400 of them single-node, including four
        back-to-back 9216-node HPL runs; mixed production background.
        """
        rng = self._day_rng(day_index)
        ds = TelemetryDataset(
            name=f"{self.spec.name}-replay-fig9",
            metadata={"scenario": "fig9", "date": "2024-01-18"},
        )
        job_id = 0
        # Four back-to-back full-system HPL runs in the middle of the day.
        # The machine was drained of large jobs around the block on the
        # physical twin (9216 + anything > 256 nodes cannot coexist), so
        # background multi-node work avoids the window below.
        hpl_wall = 4800.0
        hpl_start = 30000.0
        hpl_block_end = hpl_start + 4 * (hpl_wall + 300.0)
        for k in range(4):
            cpu, gpu = profiles.hpl_profile(hpl_wall)
            ds.add_job(
                JobRecord(
                    job_name=f"hpl-{k}",
                    job_id=job_id,
                    node_count=9216,
                    start_time=hpl_start + k * (hpl_wall + 300.0),
                    wall_time=hpl_wall,
                    cpu_util=cpu,
                    gpu_util=gpu,
                )
            )
            job_id += 1
        # 400 single-node jobs spread through the day (they fit beside
        # the 9216-node HPL runs: 9472 - 9216 = 256 spare nodes).
        n_single = 400
        starts = np.sort(rng.uniform(0.0, SECONDS_PER_DAY - 600.0, n_single))
        for s in starts:
            runtime = float(np.clip(rng.lognormal(np.log(1800), 0.7), 120, 20000))
            cpu, gpu = profiles.noisy_application_profile(
                runtime,
                rng,
                cpu_level=float(np.clip(rng.normal(0.45, 0.15), 0.05, 1)),
                gpu_level=float(np.clip(rng.normal(0.55, 0.2), 0.0, 1)),
            )
            ds.add_job(
                JobRecord(
                    job_name=f"single-{job_id}",
                    job_id=job_id,
                    node_count=1,
                    start_time=float(s),
                    wall_time=runtime,
                    cpu_util=cpu,
                    gpu_util=gpu,
                )
            )
            job_id += 1
        # Remaining 834 multi-node production jobs, steered clear of the
        # HPL drain window.
        params = WorkloadDayParams(
            mean_arrival_s=SECONDS_PER_DAY / 834.0,
            mean_nodes_per_job=120.0,
            mean_runtime_s=2400.0,
            single_node_fraction=0.0,
        )
        n_multi = 1238 - 4 - n_single
        count = 0
        while count < n_multi:
            s = float(rng.uniform(0.0, SECONDS_PER_DAY - 600.0))
            job = self._make_job(rng, params, job_id, s)
            overlaps = (
                s < hpl_block_end + 300.0
                and s + job.wall_time > hpl_start - 300.0
            )
            if overlaps:
                continue
            ds.add_job(job)
            job_id += 1
            count += 1
        ds.add_series(
            "wetbulb_temperature",
            synthesize_wetbulb(SECONDS_PER_DAY, rng, day_of_year=18,
                               mean_annual_c=8.0),
        )
        ds.metadata["total_jobs"] = job_id
        return ds

    def campaign(
        self, num_days: int, *, start_day: int = 0
    ) -> list[TelemetryDataset]:
        """Synthesize a multi-day campaign (paper: 183 days).

        Returns one dataset per day.  Days are independent streams, so
        this can be parallelized or generated lazily by calling
        :meth:`day` per index.
        """
        if num_days < 1:
            raise TelemetryError("num_days must be >= 1")
        return [self.day(start_day + k) for k in range(num_days)]


__all__ = [
    "synthesize_wetbulb",
    "WorkloadDayParams",
    "SyntheticTelemetryGenerator",
]
