"""Columnar time-series storage for telemetry.

A :class:`TimeSeries` is an irregular- or regular-cadence array of samples
(1-D, or 2-D for multi-channel series such as the 25 CDU columns).  A
:class:`TelemetryDataset` bundles named series with the job list and
metadata, and persists to an ``.npz`` + JSON sidecar pair.

The resampling rules match how the paper aligns mixed-cadence telemetry
(Table II ranges from 1 s to 10 min): zero-order hold for states/settings,
linear interpolation for continuous measurands.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.exceptions import TelemetryError
from repro.telemetry.schema import JobRecord


@dataclass
class TimeSeries:
    """A sampled series: ``times`` (s from epoch) and ``values``.

    ``values`` has shape ``(n,)`` or ``(n, width)``; ``times`` is strictly
    increasing with length ``n``.
    """

    times: np.ndarray
    values: np.ndarray
    units: str = ""

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=np.float64)
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.times.ndim != 1:
            raise TelemetryError("times must be 1-D")
        if self.values.shape[0] != self.times.shape[0]:
            raise TelemetryError(
                f"times ({self.times.shape[0]}) and values "
                f"({self.values.shape[0]}) lengths differ"
            )
        if self.times.size > 1 and np.any(np.diff(self.times) <= 0):
            raise TelemetryError("times must be strictly increasing")

    # -- basic properties ---------------------------------------------------

    def __len__(self) -> int:
        return int(self.times.size)

    @property
    def width(self) -> int:
        """Number of channels (1 for a scalar series)."""
        return 1 if self.values.ndim == 1 else int(self.values.shape[1])

    @property
    def t_start(self) -> float:
        if len(self) == 0:
            raise TelemetryError("empty series has no start time")
        return float(self.times[0])

    @property
    def t_end(self) -> float:
        if len(self) == 0:
            raise TelemetryError("empty series has no end time")
        return float(self.times[-1])

    # -- transforms ---------------------------------------------------------

    def slice(self, t0: float, t1: float) -> "TimeSeries":
        """Samples with ``t0 <= t < t1`` (half-open window)."""
        if t1 < t0:
            raise TelemetryError("slice end before start")
        mask = (self.times >= t0) & (self.times < t1)
        return TimeSeries(self.times[mask], self.values[mask], self.units)

    def resample(
        self, new_times: np.ndarray, *, method: str = "linear"
    ) -> "TimeSeries":
        """Resample onto ``new_times``.

        ``method="linear"`` interpolates (endpoints clamped);
        ``method="hold"`` is zero-order hold (previous sample wins), which
        is the right treatment for staging counts and setpoints.
        """
        new_times = np.asarray(new_times, dtype=np.float64)
        if len(self) == 0:
            raise TelemetryError("cannot resample an empty series")
        if method == "linear":
            if self.values.ndim == 1:
                vals = np.interp(new_times, self.times, self.values)
            else:
                vals = np.column_stack(
                    [
                        np.interp(new_times, self.times, self.values[:, j])
                        for j in range(self.width)
                    ]
                )
        elif method == "hold":
            idx = np.searchsorted(self.times, new_times, side="right") - 1
            idx = np.clip(idx, 0, len(self) - 1)
            vals = self.values[idx]
        else:
            raise TelemetryError(f"unknown resample method {method!r}")
        return TimeSeries(new_times, vals, self.units)

    def value_at(self, t: float, *, method: str = "linear") -> np.ndarray:
        """Value at one instant (see :meth:`resample` for methods)."""
        out = self.resample(np.asarray([t]), method=method).values
        return out[0]

    # -- statistics ----------------------------------------------------------

    def mean(self) -> np.ndarray:
        return np.mean(self.values, axis=0)

    def min(self) -> np.ndarray:
        return np.min(self.values, axis=0)

    def max(self) -> np.ndarray:
        return np.max(self.values, axis=0)

    def std(self) -> np.ndarray:
        return np.std(self.values, axis=0)

    def integral(self) -> np.ndarray:
        """Trapezoidal time-integral (e.g. W-series -> joules)."""
        if len(self) < 2:
            raise TelemetryError("need >= 2 samples to integrate")
        return np.trapezoid(self.values, self.times, axis=0)

    @classmethod
    def regular(
        cls,
        t0: float,
        dt: float,
        values: np.ndarray,
        units: str = "",
    ) -> "TimeSeries":
        """Build a regular-cadence series starting at ``t0`` every ``dt``."""
        values = np.asarray(values, dtype=np.float64)
        n = values.shape[0]
        times = t0 + dt * np.arange(n, dtype=np.float64)
        return cls(times, values, units)


@dataclass
class TelemetryDataset:
    """Named telemetry series + job records + metadata for one period."""

    name: str
    series: dict[str, TimeSeries] = field(default_factory=dict)
    jobs: list[JobRecord] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    # -- series access --------------------------------------------------------

    def add_series(self, name: str, ts: TimeSeries) -> None:
        if name in self.series:
            raise TelemetryError(f"series {name!r} already present")
        self.series[name] = ts

    def __contains__(self, name: str) -> bool:
        return name in self.series

    def __getitem__(self, name: str) -> TimeSeries:
        try:
            return self.series[name]
        except KeyError:
            raise TelemetryError(
                f"series {name!r} not in dataset {self.name!r}; "
                f"available: {sorted(self.series)}"
            ) from None

    def series_names(self) -> list[str]:
        return sorted(self.series)

    # -- job access -----------------------------------------------------------

    def add_job(self, job: JobRecord) -> None:
        self.jobs.append(job)

    def jobs_sorted(self) -> list[JobRecord]:
        """Jobs ordered by start time (replay order)."""
        return sorted(self.jobs, key=lambda j: (j.start_time, j.job_id))

    def jobs_in_window(self, t0: float, t1: float) -> Iterator[JobRecord]:
        """Jobs whose start time falls in ``[t0, t1)``."""
        for job in self.jobs_sorted():
            if t0 <= job.start_time < t1:
                yield job

    # -- persistence ------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist to ``<path>.npz`` (arrays) and ``<path>.json`` (metadata)."""
        path = Path(path)
        arrays: dict[str, np.ndarray] = {}
        series_meta: dict[str, dict] = {}
        for name, ts in self.series.items():
            arrays[f"series_t_{name}"] = ts.times
            arrays[f"series_v_{name}"] = ts.values
            series_meta[name] = {"units": ts.units}
        job_meta = []
        for i, job in enumerate(self.jobs):
            arrays[f"job_cpu_{i}"] = job.cpu_util
            arrays[f"job_gpu_{i}"] = job.gpu_util
            job_meta.append(
                {
                    "job_name": job.job_name,
                    "job_id": job.job_id,
                    "node_count": job.node_count,
                    "start_time": job.start_time,
                    "wall_time": job.wall_time,
                    "trace_quanta": job.trace_quanta,
                }
            )
        np.savez_compressed(path.with_suffix(".npz"), **arrays)
        doc = {
            "name": self.name,
            "metadata": self.metadata,
            "series": series_meta,
            "jobs": job_meta,
        }
        path.with_suffix(".json").write_text(json.dumps(doc, indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "TelemetryDataset":
        """Load a dataset previously written by :meth:`save`."""
        path = Path(path)
        json_path = path.with_suffix(".json")
        npz_path = path.with_suffix(".npz")
        if not json_path.exists() or not npz_path.exists():
            raise TelemetryError(f"dataset files not found at {path}")
        doc = json.loads(json_path.read_text())
        with np.load(npz_path) as arrays:
            series = {
                name: TimeSeries(
                    arrays[f"series_t_{name}"],
                    arrays[f"series_v_{name}"],
                    meta.get("units", ""),
                )
                for name, meta in doc["series"].items()
            }
            jobs = [
                JobRecord(
                    job_name=jm["job_name"],
                    job_id=jm["job_id"],
                    node_count=jm["node_count"],
                    start_time=jm["start_time"],
                    wall_time=jm["wall_time"],
                    cpu_util=arrays[f"job_cpu_{i}"],
                    gpu_util=arrays[f"job_gpu_{i}"],
                    trace_quanta=jm["trace_quanta"],
                )
                for i, jm in enumerate(doc["jobs"])
            ]
        return cls(
            name=doc["name"], series=series, jobs=jobs, metadata=doc["metadata"]
        )


def concat_series(parts: Iterable[TimeSeries]) -> TimeSeries:
    """Concatenate time-ordered, non-overlapping series segments."""
    parts = list(parts)
    if not parts:
        raise TelemetryError("no series to concatenate")
    times = np.concatenate([p.times for p in parts])
    values = np.concatenate([p.values for p in parts], axis=0)
    return TimeSeries(times, values, parts[0].units)


__all__ = ["TimeSeries", "TelemetryDataset", "concat_series"]
