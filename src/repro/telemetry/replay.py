"""Time-aligned replay of telemetry through the digital twin (Finding 8).

:class:`ReplayCursor` walks a :class:`~repro.telemetry.dataset.TimeSeries`
in simulation time with O(1) amortized advancement; :class:`JobReplaySource`
feeds recorded jobs into the scheduler at their recorded start times, which
is how the paper replays production workloads through RAPS.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import TelemetryError
from repro.telemetry.dataset import TelemetryDataset, TimeSeries
from repro.telemetry.schema import JobRecord


class ReplayCursor:
    """Sequential reader over a time series during simulation.

    ``value(t)`` must be called with non-decreasing ``t``; the cursor
    remembers its position so a full replay is O(n + calls) rather than
    O(calls * log n).
    """

    def __init__(self, series: TimeSeries, *, method: str = "hold") -> None:
        if len(series) == 0:
            raise TelemetryError("cannot replay an empty series")
        if method not in ("hold", "linear"):
            raise TelemetryError(f"unknown replay method {method!r}")
        self._series = series
        self._method = method
        self._idx = 0
        self._last_t = -np.inf

    def value(self, t: float) -> np.ndarray | float:
        """Series value at simulation time ``t`` (non-decreasing calls)."""
        if t < self._last_t:
            raise TelemetryError(
                f"replay cursor moved backwards ({t} < {self._last_t})"
            )
        self._last_t = t
        times = self._series.times
        n = len(times)
        while self._idx + 1 < n and times[self._idx + 1] <= t:
            self._idx += 1
        vals = self._series.values
        if self._method == "hold" or self._idx + 1 >= n:
            return vals[self._idx]
        # Linear interpolation between idx and idx+1 (clamped below start).
        t0, t1 = times[self._idx], times[self._idx + 1]
        if t <= t0:
            return vals[self._idx]
        w = (t - t0) / (t1 - t0)
        return (1.0 - w) * vals[self._idx] + w * vals[self._idx + 1]

    def reset(self) -> None:
        """Rewind to the beginning of the series."""
        self._idx = 0
        self._last_t = -np.inf


class JobReplaySource:
    """Feeds recorded jobs to the engine at their recorded start times.

    ``take_until(t)`` returns all jobs whose recorded start time is <= t
    that have not been handed out yet, in start-time order — the replay
    analogue of the Poisson arrival process.
    """

    def __init__(self, dataset: TelemetryDataset) -> None:
        self._jobs = dataset.jobs_sorted()
        self._pos = 0

    def __len__(self) -> int:
        return len(self._jobs)

    @property
    def remaining(self) -> int:
        return len(self._jobs) - self._pos

    def peek_next_time(self) -> float | None:
        """Start time of the next job, or None when exhausted."""
        if self._pos >= len(self._jobs):
            return None
        return self._jobs[self._pos].start_time

    def take_until(self, t: float) -> list[JobRecord]:
        """All not-yet-delivered jobs with ``start_time <= t``."""
        out: list[JobRecord] = []
        while self._pos < len(self._jobs) and self._jobs[self._pos].start_time <= t:
            out.append(self._jobs[self._pos])
            self._pos += 1
        return out

    def reset(self) -> None:
        self._pos = 0


__all__ = ["ReplayCursor", "JobReplaySource"]
