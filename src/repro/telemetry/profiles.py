"""Utilization-trace profiles for synthetic jobs and benchmarks.

The paper's verification suite exercises three reference operating points
(Table III): idle (0 % CPU/GPU), the HPL core phase (79 % GPU / 33 % CPU,
inferred from telemetry), and peak (100 % / 100 %).  Fig. 8 additionally
runs OpenMxP, the mixed-precision benchmark.  This module builds the
per-quantum utilization traces for those workloads plus generic noisy
application profiles used by the synthetic workload generator.

All profiles return ``(cpu_util, gpu_util)`` arrays of equal length with
values in [0, 1], sampled every ``trace_quanta`` seconds.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import TelemetryError
from repro.telemetry.schema import TRACE_QUANTA_S

#: HPL core-phase utilizations inferred from telemetry (paper section IV-2).
HPL_GPU_UTIL = 0.79
HPL_CPU_UTIL = 0.33

#: OpenMxP runs the GPUs harder than HPL (mixed-precision tensor kernels).
OPENMXP_GPU_UTIL = 0.92
OPENMXP_CPU_UTIL = 0.25


def _n_quanta(duration_s: float, trace_quanta: float) -> int:
    if duration_s <= 0:
        raise TelemetryError("profile duration must be positive")
    if trace_quanta <= 0:
        raise TelemetryError("trace_quanta must be positive")
    return max(1, int(np.ceil(duration_s / trace_quanta)))


def constant_profile(
    duration_s: float,
    cpu_util: float,
    gpu_util: float,
    trace_quanta: float = TRACE_QUANTA_S,
) -> tuple[np.ndarray, np.ndarray]:
    """Flat utilization for the whole duration (idle/peak verification)."""
    n = _n_quanta(duration_s, trace_quanta)
    return (
        np.full(n, float(np.clip(cpu_util, 0.0, 1.0))),
        np.full(n, float(np.clip(gpu_util, 0.0, 1.0))),
    )


def ramped_profile(
    duration_s: float,
    cpu_util: float,
    gpu_util: float,
    *,
    ramp_s: float = 120.0,
    tail_s: float = 60.0,
    trace_quanta: float = TRACE_QUANTA_S,
) -> tuple[np.ndarray, np.ndarray]:
    """Linear ramp-in, steady plateau, linear ramp-out.

    Models the startup (data load, factorization setup) and teardown
    phases visible in benchmark power traces (paper Fig. 8).
    """
    n = _n_quanta(duration_s, trace_quanta)
    t = (np.arange(n) + 0.5) * trace_quanta
    ramp = np.ones(n)
    if ramp_s > 0:
        ramp = np.minimum(ramp, t / ramp_s)
    if tail_s > 0:
        ramp = np.minimum(ramp, np.maximum(duration_s - t, 0.0) / tail_s)
    ramp = np.clip(ramp, 0.0, 1.0)
    return np.clip(cpu_util * ramp, 0, 1), np.clip(gpu_util * ramp, 0, 1)


def hpl_profile(
    duration_s: float = 5400.0,
    trace_quanta: float = TRACE_QUANTA_S,
) -> tuple[np.ndarray, np.ndarray]:
    """High Performance Linpack trace: ramp to the core phase, then tail.

    The core phase holds the Table III operating point (79 % GPU, 33 %
    CPU); the trailing panel factorizations shrink, so utilization decays
    over the final ~15 % of the run.
    """
    n = _n_quanta(duration_s, trace_quanta)
    t = (np.arange(n) + 0.5) / n  # normalized progress in (0, 1)
    cpu = np.full(n, HPL_CPU_UTIL)
    gpu = np.full(n, HPL_GPU_UTIL)
    # Startup: matrix generation, ~4 % of the run at low GPU load.
    startup = t < 0.04
    cpu[startup] = 0.20
    gpu[startup] = 0.10
    # Tail: trailing updates shrink, utilization decays quadratically.
    tail = t > 0.85
    decay = ((1.0 - t[tail]) / 0.15) ** 2
    gpu[tail] = HPL_GPU_UTIL * (0.35 + 0.65 * decay)
    cpu[tail] = HPL_CPU_UTIL * (0.50 + 0.50 * decay)
    return np.clip(cpu, 0, 1), np.clip(gpu, 0, 1)


def openmxp_profile(
    duration_s: float = 3600.0,
    trace_quanta: float = TRACE_QUANTA_S,
) -> tuple[np.ndarray, np.ndarray]:
    """OpenMxP (mixed-precision HPL) trace: near-saturated GPU core phase."""
    n = _n_quanta(duration_s, trace_quanta)
    t = (np.arange(n) + 0.5) / n
    cpu = np.full(n, OPENMXP_CPU_UTIL)
    gpu = np.full(n, OPENMXP_GPU_UTIL)
    startup = t < 0.05
    cpu[startup] = 0.18
    gpu[startup] = 0.12
    tail = t > 0.9
    decay = (1.0 - t[tail]) / 0.1
    gpu[tail] = OPENMXP_GPU_UTIL * (0.4 + 0.6 * decay)
    cpu[tail] = OPENMXP_CPU_UTIL * (0.5 + 0.5 * decay)
    return np.clip(cpu, 0, 1), np.clip(gpu, 0, 1)


def noisy_application_profile(
    duration_s: float,
    rng: np.random.Generator,
    *,
    cpu_level: float = 0.4,
    gpu_level: float = 0.6,
    noise: float = 0.08,
    correlation: float = 0.9,
    io_phase_prob: float = 0.15,
    trace_quanta: float = TRACE_QUANTA_S,
) -> tuple[np.ndarray, np.ndarray]:
    """Generic application: AR(1)-correlated noise around mean levels.

    Occasionally inserts I/O/checkpoint phases where compute utilization
    dips — the sawtooth pattern typical of production HPC telemetry.
    """
    if not 0.0 <= correlation < 1.0:
        raise TelemetryError("correlation must be in [0, 1)")
    n = _n_quanta(duration_s, trace_quanta)
    # AR(1) noise with stationary std = `noise`, vectorized via lfilter-free
    # cumulative recursion (scipy-free: n is small enough for a loop-free
    # frequency-domain approach, but the simple recurrence below is O(n)).
    eps_c = rng.normal(0.0, noise * np.sqrt(1 - correlation**2), n)
    eps_g = rng.normal(0.0, noise * np.sqrt(1 - correlation**2), n)
    ar_c = np.empty(n)
    ar_g = np.empty(n)
    prev_c = rng.normal(0.0, noise)
    prev_g = rng.normal(0.0, noise)
    for i in range(n):
        prev_c = correlation * prev_c + eps_c[i]
        prev_g = correlation * prev_g + eps_g[i]
        ar_c[i] = prev_c
        ar_g[i] = prev_g
    cpu = cpu_level + ar_c
    gpu = gpu_level + ar_g
    # Checkpoint/IO phases: 1-3 min dips with probability per ~10 min block.
    if io_phase_prob > 0 and n >= 8:
        n_blocks = max(1, n // 40)
        for _ in range(n_blocks):
            if rng.random() < io_phase_prob:
                start = rng.integers(0, n)
                width = int(rng.integers(4, 13))
                sl = slice(start, min(start + width, n))
                cpu[sl] *= 0.5
                gpu[sl] *= 0.15
    return np.clip(cpu, 0.0, 1.0), np.clip(gpu, 0.0, 1.0)


__all__ = [
    "HPL_GPU_UTIL",
    "HPL_CPU_UTIL",
    "OPENMXP_GPU_UTIL",
    "OPENMXP_CPU_UTIL",
    "constant_profile",
    "ramped_profile",
    "hpl_profile",
    "openmxp_profile",
    "noisy_application_profile",
]
