"""Pluggable telemetry parser registry (paper Section V).

The generalized RAPS reads "different types of bespoke telemetry datasets"
through a pluggable architecture.  A parser is a callable that turns a raw
source (path or mapping) into a :class:`~repro.telemetry.dataset.TelemetryDataset`.
Sites register their format under a name; the engine looks parsers up by
that name, so a new machine's telemetry requires only a new parser, not
engine changes.

Two reference parsers ship with the library:

- ``"native"`` — the library's own npz+json format,
- ``"jobs-json"`` — a simple JSON job-list format (the PM100-style public
  dataset layout: one record per job with power traces).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Protocol

import numpy as np

from repro.exceptions import TelemetryError
from repro.telemetry.dataset import TelemetryDataset, TimeSeries
from repro.telemetry.schema import JobRecord


class TelemetryParser(Protocol):
    """Parser signature: raw source path -> dataset."""

    def __call__(self, source: str | Path, **kwargs) -> TelemetryDataset: ...


_REGISTRY: dict[str, TelemetryParser] = {}


def register_parser(name: str, parser: TelemetryParser | None = None):
    """Register a telemetry parser under ``name``.

    Usable directly (``register_parser("x", fn)``) or as a decorator::

        @register_parser("site-csv")
        def parse_site_csv(source, **kw): ...
    """

    def _register(fn: TelemetryParser) -> TelemetryParser:
        if name in _REGISTRY:
            raise TelemetryError(f"parser {name!r} already registered")
        _REGISTRY[name] = fn
        return fn

    if parser is not None:
        return _register(parser)
    return _register


def unregister_parser(name: str) -> None:
    """Remove a registered parser (mainly for tests)."""
    _REGISTRY.pop(name, None)


def get_parser(name: str) -> TelemetryParser:
    """Look up a parser by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise TelemetryError(
            f"no parser registered under {name!r}; "
            f"available: {available_parsers()}"
        ) from None


def available_parsers() -> list[str]:
    """Sorted names of all registered parsers."""
    return sorted(_REGISTRY)


def parse_telemetry(fmt: str, source: str | Path, **kwargs) -> TelemetryDataset:
    """Parse ``source`` using the parser registered under ``fmt``."""
    return get_parser(fmt)(source, **kwargs)


# ---------------------------------------------------------------------------
# Reference parsers
# ---------------------------------------------------------------------------


@register_parser("native")
def _parse_native(source: str | Path, **kwargs) -> TelemetryDataset:
    """The library's own persisted format (npz + json sidecar)."""
    return TelemetryDataset.load(source)


@register_parser("jobs-json")
def _parse_jobs_json(
    source: str | Path,
    *,
    cpu_idle_w: float = 90.0,
    cpu_max_w: float = 280.0,
    gpu_idle_w: float = 88.0,
    gpu_max_w: float = 560.0,
    trace_quanta: float = 15.0,
    **kwargs,
) -> TelemetryDataset:
    """A PM100-style JSON job list with per-device power traces.

    Expected document shape::

        {"name": "...", "jobs": [
           {"job_name": "...", "job_id": 1, "node_count": 2,
            "start_time": 0.0,
            "cpu_power": [...], "gpu_power": [...]}, ...]}

    Power traces are watts per CPU / per GPU at ``trace_quanta`` spacing and
    are converted to utilization with the paper's linear interpolation.
    """
    p = Path(source)
    if not p.exists():
        raise TelemetryError(f"telemetry source not found: {p}")
    try:
        doc = json.loads(p.read_text())
    except json.JSONDecodeError as exc:
        raise TelemetryError(f"invalid JSON telemetry: {exc}") from exc
    if "jobs" not in doc:
        raise TelemetryError("jobs-json document missing 'jobs' key")
    ds = TelemetryDataset(name=doc.get("name", p.stem))
    for raw in doc["jobs"]:
        try:
            job = JobRecord.from_power_traces(
                job_name=raw.get("job_name", f"job{raw['job_id']}"),
                job_id=int(raw["job_id"]),
                node_count=int(raw["node_count"]),
                start_time=float(raw["start_time"]),
                cpu_power_w=np.asarray(raw["cpu_power"], dtype=np.float64),
                gpu_power_w=np.asarray(raw["gpu_power"], dtype=np.float64),
                cpu_idle_w=cpu_idle_w,
                cpu_max_w=cpu_max_w,
                gpu_idle_w=gpu_idle_w,
                gpu_max_w=gpu_max_w,
                trace_quanta=trace_quanta,
            )
        except KeyError as exc:
            raise TelemetryError(f"jobs-json record missing key {exc}") from exc
        ds.add_job(job)
    if "measured_power" in doc:
        mp = doc["measured_power"]
        ds.add_series(
            "measured_power",
            TimeSeries.regular(
                float(mp.get("t0", 0.0)),
                float(mp.get("dt", 1.0)),
                np.asarray(mp["values"], dtype=np.float64),
                "W",
            ),
        )
    return ds


@register_parser("facility-csv")
def _parse_facility_csv(
    source: str | Path,
    *,
    time_column: str = "time_s",
    units: dict[str, str] | None = None,
    **kwargs,
) -> TelemetryDataset:
    """A flat CSV of facility series: one time column + one per series.

    The common export format of building-management systems: a header
    row naming each point, then numeric rows.  Columns whose name ends
    in ``[i]`` (e.g. ``rack_power[0]`` ... ``rack_power[24]``) are
    gathered into one multi-channel series.
    """
    import csv as _csv
    import re

    p = Path(source)
    if not p.exists():
        raise TelemetryError(f"telemetry source not found: {p}")
    with p.open(newline="") as fh:
        reader = _csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise TelemetryError("empty CSV telemetry file") from None
        rows = [row for row in reader if row]
    if time_column not in header:
        raise TelemetryError(
            f"CSV missing time column {time_column!r}; header: {header}"
        )
    try:
        data = np.asarray(rows, dtype=np.float64)
    except ValueError as exc:
        raise TelemetryError(f"non-numeric CSV cell: {exc}") from exc
    if data.shape[1] != len(header):
        raise TelemetryError("ragged CSV rows")
    columns = {name: data[:, j] for j, name in enumerate(header)}
    times = columns.pop(time_column)
    units = units or {}
    ds = TelemetryDataset(name=p.stem, metadata={"source_format": "facility-csv"})
    # Group indexed columns (name[i]) into multi-channel series.
    indexed: dict[str, dict[int, np.ndarray]] = {}
    pattern = re.compile(r"^(.*)\[(\d+)\]$")
    for name, values in columns.items():
        m = pattern.match(name)
        if m:
            indexed.setdefault(m.group(1), {})[int(m.group(2))] = values
        else:
            ds.add_series(
                name, TimeSeries(times, values, units.get(name, ""))
            )
    for base, channels in indexed.items():
        width = max(channels) + 1
        if sorted(channels) != list(range(width)):
            raise TelemetryError(
                f"series {base!r} has gaps in its channel indices"
            )
        stacked = np.column_stack([channels[i] for i in range(width)])
        ds.add_series(base, TimeSeries(times, stacked, units.get(base, "")))
    return ds


__all__ = [
    "TelemetryParser",
    "register_parser",
    "unregister_parser",
    "get_parser",
    "available_parsers",
    "parse_telemetry",
]
