"""Telemetry: schemas, datasets, parsers, synthesis, and replay.

The paper validates the digital twin by replaying system telemetry
(Table II) through the models (Finding 8).  This package provides:

- :mod:`repro.telemetry.schema` — the Table II record types,
- :mod:`repro.telemetry.dataset` — columnar time-series storage with
  resampling, slicing, and persistence,
- :mod:`repro.telemetry.parsers` — the pluggable parser registry used to
  ingest bespoke site formats (paper Section V),
- :mod:`repro.telemetry.synthesis` — a synthetic Frontier telemetry
  generator used in place of production data (see DESIGN.md
  substitutions),
- :mod:`repro.telemetry.replay` — time-aligned replay cursors.
"""

from repro.telemetry.schema import JobRecord, TelemetrySchema, SeriesSpec
from repro.telemetry.dataset import TimeSeries, TelemetryDataset
from repro.telemetry.parsers import (
    register_parser,
    get_parser,
    available_parsers,
    parse_telemetry,
)
from repro.telemetry.synthesis import (
    WorkloadDayParams,
    SyntheticTelemetryGenerator,
    synthesize_wetbulb,
)
from repro.telemetry.replay import ReplayCursor, JobReplaySource

__all__ = [
    "JobRecord",
    "TelemetrySchema",
    "SeriesSpec",
    "TimeSeries",
    "TelemetryDataset",
    "register_parser",
    "get_parser",
    "available_parsers",
    "parse_telemetry",
    "WorkloadDayParams",
    "SyntheticTelemetryGenerator",
    "synthesize_wetbulb",
    "ReplayCursor",
    "JobReplaySource",
]
