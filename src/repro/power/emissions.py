"""CO2 emissions (paper Eq. 6) and energy-cost accounting.

``E_f = EI x (1 metric ton / 2204.6 lbs) x 1/eta_system`` with the
emission intensity EI = 852.3 lb CO2 per MWh (EPA grid factor; varies
regionally and hourly).  Energy cost uses a flat tariff; the paper's
"$900k per year" figure for the 1.14 MW average conversion loss implies
roughly $0.09 per kWh.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.schema import EconomicsSpec
from repro.exceptions import PowerModelError
from repro.units import DAYS_PER_YEAR, HOURS_PER_DAY, LBS_PER_METRIC_TON


@dataclass(frozen=True)
class GridSignal:
    """A time-varying grid signal: carbon intensity and tariff.

    Sampled at ``times_s`` (seconds, strictly increasing);
    ``intensity_at``/``price_at`` interpolate linearly and hold the end
    values beyond the sampled range, so a signal shorter than a run
    degrades gracefully to its boundary values.
    """

    times_s: np.ndarray
    carbon_intensity_lb_per_mwh: np.ndarray
    price_usd_per_kwh: np.ndarray

    def __post_init__(self) -> None:
        times = np.ascontiguousarray(self.times_s, dtype=np.float64)
        carbon = np.ascontiguousarray(
            self.carbon_intensity_lb_per_mwh, dtype=np.float64
        )
        price = np.ascontiguousarray(self.price_usd_per_kwh, dtype=np.float64)
        if times.ndim != 1 or times.size < 1:
            raise PowerModelError("signal needs a non-empty 1-D time axis")
        if carbon.shape != times.shape or price.shape != times.shape:
            raise PowerModelError("signal series must match the time axis")
        if times.size > 1 and np.any(np.diff(times) <= 0):
            raise PowerModelError("signal times must be strictly increasing")
        if np.any(carbon < 0) or np.any(price < 0):
            raise PowerModelError("signal values must be non-negative")
        object.__setattr__(self, "times_s", times)
        object.__setattr__(self, "carbon_intensity_lb_per_mwh", carbon)
        object.__setattr__(self, "price_usd_per_kwh", price)

    def intensity_at(self, times_s: np.ndarray) -> np.ndarray:
        """lb CO2/MWh at the query times (linear interp, edges held)."""
        return np.interp(
            np.asarray(times_s, dtype=np.float64),
            self.times_s,
            self.carbon_intensity_lb_per_mwh,
        )

    def price_at(self, times_s: np.ndarray) -> np.ndarray:
        """USD/kWh at the query times (linear interp, edges held)."""
        return np.interp(
            np.asarray(times_s, dtype=np.float64),
            self.times_s,
            self.price_usd_per_kwh,
        )


class EmissionsModel:
    """Computes CO2 tonnage and USD cost for consumed energy."""

    def __init__(self, economics: EconomicsSpec) -> None:
        self.economics = economics

    def emission_factor(self, chain_efficiency: float = 1.0) -> float:
        """Metric tons CO2 per MWh delivered (Eq. 6).

        Dividing by the conversion-chain efficiency charges the grid for
        the energy lost in rectification/conversion as well.
        """
        if not 0.0 < chain_efficiency <= 1.0:
            raise PowerModelError("chain_efficiency must be in (0, 1]")
        return (
            self.economics.emission_intensity_lb_per_mwh
            / LBS_PER_METRIC_TON
            / chain_efficiency
        )

    def co2_tons(self, energy_mwh: float, chain_efficiency: float = 1.0) -> float:
        """Metric tons of CO2 for ``energy_mwh`` of delivered energy."""
        if energy_mwh < 0:
            raise PowerModelError("energy must be non-negative")
        return energy_mwh * self.emission_factor(chain_efficiency)

    def energy_cost_usd(self, energy_mwh: float) -> float:
        """USD cost of ``energy_mwh`` at the configured tariff."""
        if energy_mwh < 0:
            raise PowerModelError("energy must be non-negative")
        return energy_mwh * 1000.0 * self.economics.electricity_usd_per_kwh

    def annualized_cost_usd(self, mean_power_w: float) -> float:
        """Yearly USD cost of a sustained power draw (what-if savings)."""
        if mean_power_w < 0:
            raise PowerModelError("power must be non-negative")
        energy_mwh = mean_power_w / 1.0e6 * HOURS_PER_DAY * DAYS_PER_YEAR
        return self.energy_cost_usd(energy_mwh)

    def co2_tons_timeseries(
        self,
        times_s: np.ndarray,
        power_w: np.ndarray,
        *,
        chain_efficiency: float = 1.0,
        hourly_intensity_lb_per_mwh: np.ndarray | None = None,
        signal: GridSignal | None = None,
    ) -> float:
        """CO2 for a power series under a time-varying grid intensity.

        The paper notes the emission intensity "can vary regionally and
        even hourly"; ``hourly_intensity_lb_per_mwh`` gives the 24-hour
        grid profile (lb CO2/MWh per local hour), while ``signal``
        supplies an arbitrarily sampled :class:`GridSignal` (e.g. from
        a workload generator).  When both are omitted, the configured
        flat intensity applies — equivalent to Eq. 6 on the integrated
        energy.
        """
        times_s = np.asarray(times_s, dtype=np.float64)
        power_w = np.asarray(power_w, dtype=np.float64)
        if times_s.shape != power_w.shape or times_s.size < 2:
            raise PowerModelError("need matched series with >= 2 samples")
        if np.any(power_w < 0):
            raise PowerModelError("power must be non-negative")
        if not 0.0 < chain_efficiency <= 1.0:
            raise PowerModelError("chain_efficiency must be in (0, 1]")
        if signal is not None and hourly_intensity_lb_per_mwh is not None:
            raise PowerModelError(
                "give either an hourly profile or a grid signal, not both"
            )
        if signal is not None:
            intensity = signal.intensity_at(times_s)
        elif hourly_intensity_lb_per_mwh is None:
            intensity = np.full(
                times_s.shape, self.economics.emission_intensity_lb_per_mwh
            )
        else:
            profile = np.asarray(
                hourly_intensity_lb_per_mwh, dtype=np.float64
            )
            if profile.shape != (24,):
                raise PowerModelError("hourly profile must have 24 entries")
            if np.any(profile < 0):
                raise PowerModelError("intensity must be non-negative")
            hour = ((times_s / 3600.0) % 24.0).astype(int)
            intensity = profile[hour]
        # Per-sample tons/MWh, integrated trapezoidally over the series.
        tons_per_joule = (
            intensity / LBS_PER_METRIC_TON / chain_efficiency / 3.6e9
        )
        return float(np.trapezoid(power_w * tons_per_joule, times_s))

    def energy_cost_usd_timeseries(
        self,
        times_s: np.ndarray,
        power_w: np.ndarray,
        *,
        signal: GridSignal | None = None,
    ) -> float:
        """USD cost of a power series under a time-varying tariff.

        With no ``signal``, the configured flat tariff applies — the
        trapezoidal-integration analogue of :meth:`energy_cost_usd`.
        """
        times_s = np.asarray(times_s, dtype=np.float64)
        power_w = np.asarray(power_w, dtype=np.float64)
        if times_s.shape != power_w.shape or times_s.size < 2:
            raise PowerModelError("need matched series with >= 2 samples")
        if np.any(power_w < 0):
            raise PowerModelError("power must be non-negative")
        if signal is None:
            price = np.full(
                times_s.shape, self.economics.electricity_usd_per_kwh
            )
        else:
            price = signal.price_at(times_s)
        usd_per_joule = price / 3.6e6  # USD/kWh -> USD/J
        return float(np.trapezoid(power_w * usd_per_joule, times_s))


__all__ = ["GridSignal", "EmissionsModel"]
