"""Monte-Carlo uncertainty quantification for the power model.

The paper (section IV) notes UQ was implemented in RAPS following the
NASEM recommendation to embed VVUQ in digital twins.  This module
perturbs the power-model parameters (component powers and conversion
efficiencies) within relative tolerances and propagates the spread
through any scalar metric of the model, reporting mean / std / quantile
envelopes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.config.schema import NodeSpec, RectifierSpec, SivocSpec, SystemSpec
from repro.exceptions import PowerModelError
from repro.power.system import SystemPowerModel
from repro.seeding import spawn_rng


@dataclass(frozen=True)
class PerturbationSpec:
    """Relative 1-sigma tolerances on power-model parameters."""

    component_power_rel: float = 0.02
    rectifier_efficiency_rel: float = 0.003
    sivoc_efficiency_rel: float = 0.003

    def __post_init__(self) -> None:
        for f in dataclasses.fields(self):
            if getattr(self, f.name) < 0:
                raise PowerModelError(f"{f.name} must be >= 0")


@dataclass
class UqResult:
    """Summary statistics of a Monte-Carlo metric ensemble."""

    samples: np.ndarray

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    @property
    def std(self) -> float:
        return float(np.std(self.samples))

    def quantile(self, q: float) -> float:
        return float(np.quantile(self.samples, q))

    @property
    def interval95(self) -> tuple[float, float]:
        return self.quantile(0.025), self.quantile(0.975)


def _perturb_node(node: NodeSpec, rel: float, rng: np.random.Generator) -> NodeSpec:
    def jitter(value: float) -> float:
        return float(value * (1.0 + rng.normal(0.0, rel)))

    # Spans must stay non-negative: perturb idle and max jointly.
    scale_cpu = 1.0 + rng.normal(0.0, rel)
    scale_gpu = 1.0 + rng.normal(0.0, rel)
    return dataclasses.replace(
        node,
        cpu_power_idle_w=node.cpu_power_idle_w * scale_cpu,
        cpu_power_max_w=node.cpu_power_max_w * scale_cpu,
        gpu_power_idle_w=node.gpu_power_idle_w * scale_gpu,
        gpu_power_max_w=node.gpu_power_max_w * scale_gpu,
        ram_power_w=jitter(node.ram_power_w),
        nvme_power_w=jitter(node.nvme_power_w),
        nic_power_w=jitter(node.nic_power_w),
    )


def _perturb_curve_points(
    points: tuple[float, ...], rel: float, rng: np.random.Generator
) -> tuple[float, ...]:
    scale = 1.0 + rng.normal(0.0, rel)
    return tuple(float(np.clip(e * scale, 1e-3, 1.0)) for e in points)


def perturb_spec(
    spec: SystemSpec,
    perturbation: PerturbationSpec,
    rng: np.random.Generator,
) -> SystemSpec:
    """One random realization of the system spec within tolerances."""
    new_partitions = tuple(
        dataclasses.replace(
            p, node=_perturb_node(p.node, perturbation.component_power_rel, rng)
        )
        for p in spec.partitions
    )
    rect = spec.power.rectifier
    new_rect = RectifierSpec(
        rated_output_w=rect.rated_output_w,
        optimal_load_w=rect.optimal_load_w,
        load_points_w=rect.load_points_w,
        efficiency_points=_perturb_curve_points(
            rect.efficiency_points, perturbation.rectifier_efficiency_rel, rng
        ),
    )
    siv = spec.power.sivoc
    new_siv = SivocSpec(
        load_points_w=siv.load_points_w,
        efficiency_points=_perturb_curve_points(
            siv.efficiency_points, perturbation.sivoc_efficiency_rel, rng
        ),
    )
    new_power = dataclasses.replace(
        spec.power, rectifier=new_rect, sivoc=new_siv
    )
    return dataclasses.replace(spec, partitions=new_partitions, power=new_power)


class UncertaintyAnalysis:
    """Propagates parameter uncertainty through a power-model metric.

    ``metric`` receives a freshly built
    :class:`~repro.power.system.SystemPowerModel` per sample and returns
    a scalar (e.g. peak power, loss at some operating point).
    """

    def __init__(
        self,
        spec: SystemSpec,
        *,
        perturbation: PerturbationSpec | None = None,
        seed: int = 0,
    ) -> None:
        self.spec = spec
        self.perturbation = perturbation or PerturbationSpec()
        self._rng = spawn_rng(seed, "power-uq")

    def run(
        self,
        metric: Callable[[SystemPowerModel], float],
        *,
        num_samples: int = 64,
    ) -> UqResult:
        """Monte-Carlo ensemble of the metric under parameter jitter."""
        if num_samples < 2:
            raise PowerModelError("num_samples must be >= 2")
        samples = np.empty(num_samples)
        for i in range(num_samples):
            sample_spec = perturb_spec(self.spec, self.perturbation, self._rng)
            samples[i] = float(metric(SystemPowerModel(sample_spec)))
        return UqResult(samples)


__all__ = [
    "PerturbationSpec",
    "UqResult",
    "perturb_spec",
    "UncertaintyAnalysis",
]
