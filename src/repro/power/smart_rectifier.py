"""The "smart load-sharing rectifier" what-if (paper section IV-3).

Instead of sharing each chassis load equally across all four rectifiers,
rectifiers are dynamically staged on as needed so the energized units
operate in their peak-efficiency region.  For each chassis the chain
picks the rectifier count ``n`` in [1, 4] maximizing efficiency at load
``L/n``, subject to ``L/n`` not exceeding the rated output and an
optional headroom reserve for load surges.

The paper reports a modest 0.1 % efficiency gain — the stock curve is
already near-optimal at typical loads, so staging mainly helps during
idle and light-load periods.
"""

from __future__ import annotations

import numpy as np

from repro.config.schema import RectifierSpec, SivocSpec
from repro.exceptions import PowerModelError
from repro.power.conversion import EfficiencyCurve, SivocBank


class SmartRectifierChain:
    """Conversion chain with per-chassis rectifier staging.

    Drop-in replacement for
    :class:`~repro.power.conversion.ConversionChain` (same ``convert``
    contract) that can be passed to
    :class:`~repro.power.system.SystemPowerModel`.
    """

    name = "smart-rectifier"

    def __init__(
        self,
        rectifier: RectifierSpec,
        sivoc: SivocSpec,
        rectifiers_per_chassis: int,
        chassis_of_node: np.ndarray,
        num_chassis: int,
        *,
        headroom_fraction: float = 0.10,
    ) -> None:
        if rectifiers_per_chassis < 1:
            raise PowerModelError("rectifiers_per_chassis must be >= 1")
        if not 0.0 <= headroom_fraction < 1.0:
            raise PowerModelError("headroom_fraction must be in [0, 1)")
        self.sivocs = SivocBank(sivoc)
        self.curve = EfficiencyCurve(
            rectifier.load_points_w, rectifier.efficiency_points
        )
        self.rectifiers_per_chassis = int(rectifiers_per_chassis)
        self.max_load_w = rectifier.rated_output_w * (1.0 - headroom_fraction)
        self._chassis_of_node = np.asarray(chassis_of_node, dtype=np.int64)
        self._num_chassis = int(num_chassis)
        #: Rectifier counts evaluated per chassis, shape (R,).
        self._counts = np.arange(1, self.rectifiers_per_chassis + 1)

    def _stage(self, chassis_bus_w: np.ndarray) -> np.ndarray:
        """Best rectifier count per chassis, vectorized over all chassis.

        Evaluates the efficiency at ``L/n`` for every candidate ``n``
        (shape: chassis x candidates), masks out overloaded candidates,
        and takes the argmax.  At zero load a single rectifier stays
        energized to keep the DC bus alive.
        """
        loads = chassis_bus_w[:, None] / self._counts[None, :]
        eta = self.curve.efficiency(loads)
        feasible = loads <= self.max_load_w
        # If no candidate is feasible (overload), fall back to all-on.
        eta = np.where(feasible, eta, -1.0)
        best = np.argmax(eta, axis=1)
        none_feasible = ~feasible.any(axis=1)
        best[none_feasible] = self.rectifiers_per_chassis - 1
        return self._counts[best]

    def convert(
        self, node_power_w: np.ndarray
    ) -> tuple[np.ndarray, float, float]:
        """Same contract as :meth:`ConversionChain.convert`."""
        sivoc_in = self.sivocs.input_power(node_power_w)
        sivoc_loss = float(np.sum(sivoc_in) - np.sum(node_power_w))
        chassis_bus = np.bincount(
            self._chassis_of_node, weights=sivoc_in, minlength=self._num_chassis
        )
        n_active = self._stage(chassis_bus)
        per_rect = chassis_bus / n_active
        eta = self.curve.efficiency(per_rect)
        chassis_ac = chassis_bus / eta
        rect_loss = float(np.sum(chassis_ac) - np.sum(chassis_bus))
        return chassis_ac, sivoc_loss, rect_loss

    def rectifiers_active(self, node_power_w: np.ndarray) -> np.ndarray:
        """Rectifiers energized per chassis under staging."""
        sivoc_in = self.sivocs.input_power(node_power_w)
        chassis_bus = np.bincount(
            self._chassis_of_node, weights=sivoc_in, minlength=self._num_chassis
        )
        return self._stage(chassis_bus)


__all__ = ["SmartRectifierChain"]
