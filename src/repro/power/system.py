"""Whole-system power pipeline: nodes -> chassis -> racks -> CDUs -> system.

Implements the aggregation of paper Eqs. 3-4 and section III-B2:

1. per-node 48 V power from utilizations (Eq. 3),
2. SIVOC + rectifier conversion through a pluggable chain (Eqs. 1-2),
3. rack power = sum of its chassis AC + 32 switches x 250 W (Eq. 4),
4. CDU group power = its (up to) 3 racks,
5. system power = all racks + CDU pump power (8.7 kW per CDU),
6. heat to the cooling model = CDU group power x cooling efficiency
   (paper: 0.945).

Everything is vectorized with ``np.bincount`` scatter-adds over
precomputed topology index maps; there is no Python loop over nodes,
chassis, or racks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.schema import SystemSpec
from repro.exceptions import PowerModelError
from repro.power.components import NodePowerModel
from repro.power.conversion import ConversionChain


@dataclass(frozen=True)
class SystemTopology:
    """Index maps from nodes up the packaging hierarchy.

    For multi-partition systems, racks are numbered per-partition and then
    concatenated, matching the node concatenation order in
    :class:`~repro.power.components.NodePowerModel`.
    """

    chassis_of_node: np.ndarray
    rack_of_node: np.ndarray
    rack_of_chassis: np.ndarray
    cdu_of_rack: np.ndarray
    num_nodes: int
    num_chassis: int
    num_racks: int
    num_cdus: int
    switch_power_per_rack_w: np.ndarray
    rectifiers_per_chassis: int

    @classmethod
    def from_spec(cls, spec: SystemSpec) -> "SystemTopology":
        chassis_of_node_parts = []
        rack_of_node_parts = []
        rack_of_chassis_parts = []
        switch_parts = []
        chassis_base = 0
        rack_base = 0
        rect_per_chassis = None
        for p in spec.partitions:
            rk = p.rack
            if rect_per_chassis is None:
                rect_per_chassis = rk.rectifiers_per_chassis
            elif rect_per_chassis != rk.rectifiers_per_chassis:
                raise PowerModelError(
                    "partitions with differing rectifiers-per-chassis are "
                    "not supported in one conversion chain"
                )
            nodes = np.arange(p.total_nodes)
            node_chassis = chassis_base + nodes // rk.nodes_per_chassis
            node_rack = rack_base + nodes // rk.nodes_per_rack
            chassis_of_node_parts.append(node_chassis)
            rack_of_node_parts.append(node_rack)
            n_chassis = int(node_chassis.max()) - chassis_base + 1
            chassis = np.arange(n_chassis)
            chassis_per_rack = rk.chassis_per_rack
            rack_of_chassis_parts.append(rack_base + chassis // chassis_per_rack)
            n_racks = p.total_racks
            switch_parts.append(np.full(n_racks, rk.switch_power_per_rack_w))
            chassis_base += n_chassis
            rack_base += n_racks
        chassis_of_node = np.concatenate(chassis_of_node_parts)
        rack_of_node = np.concatenate(rack_of_node_parts)
        rack_of_chassis = np.concatenate(rack_of_chassis_parts)
        switch_power = np.concatenate(switch_parts)
        num_racks = rack_base
        racks = np.arange(num_racks)
        cdu_of_rack = np.minimum(
            racks // spec.cooling.racks_per_cdu, spec.cooling.num_cdus - 1
        )
        return cls(
            chassis_of_node=chassis_of_node,
            rack_of_node=rack_of_node,
            rack_of_chassis=rack_of_chassis,
            cdu_of_rack=cdu_of_rack,
            num_nodes=int(chassis_of_node.size),
            num_chassis=chassis_base,
            num_racks=num_racks,
            num_cdus=spec.cooling.num_cdus,
            switch_power_per_rack_w=switch_power,
            rectifiers_per_chassis=int(rect_per_chassis),
        )


@dataclass
class PowerResult:
    """One power evaluation of the whole system (all watts).

    Attributes
    ----------
    node_power_w:
        Per-node 48 V output power, shape (num_nodes,).
    rack_power_w:
        Per-rack AC power including switches (Eq. 4), shape (num_racks,).
    cdu_power_w:
        Per-CDU rack-group power, shape (num_cdus,).
    cdu_heat_w:
        Heat delivered to each CDU's liquid loop (x cooling efficiency).
    sivoc_loss_w / rectifier_loss_w:
        System-total conversion losses by stage (Eq. 2 decomposition).
    system_power_w:
        Total facility-side IT power: racks + CDU pumps.
    """

    node_power_w: np.ndarray
    rack_power_w: np.ndarray
    cdu_power_w: np.ndarray
    cdu_heat_w: np.ndarray
    sivoc_loss_w: float
    rectifier_loss_w: float
    switch_power_w: float
    cdu_pump_power_w: float
    system_power_w: float

    @property
    def loss_w(self) -> float:
        """Total conversion loss P_L (Eq. 2)."""
        return self.sivoc_loss_w + self.rectifier_loss_w

    @property
    def compute_output_w(self) -> float:
        """Total 48 V power delivered to nodes (P_S48V summed)."""
        return float(np.sum(self.node_power_w))

    @property
    def compute_input_w(self) -> float:
        """Total AC power drawn by the conversion chain (P_RAC summed)."""
        return self.compute_output_w + self.loss_w

    @property
    def chain_efficiency(self) -> float:
        """eta_system = P_S48V / P_RAC (Eq. 1)."""
        inp = self.compute_input_w
        return self.compute_output_w / inp if inp > 0 else 1.0

    @property
    def loss_fraction(self) -> float:
        """Conversion loss as a fraction of total system power."""
        return self.loss_w / self.system_power_w if self.system_power_w else 0.0


class SystemPowerModel:
    """Vectorized power evaluation for a configured system.

    Parameters
    ----------
    spec:
        The system description.
    chain:
        Optional conversion-chain override (smart-rectifier or direct-DC
        what-ifs); defaults to the baseline equal-sharing chain.
    """

    def __init__(self, spec: SystemSpec, *, chain=None) -> None:
        self.spec = spec
        self.topology = SystemTopology.from_spec(spec)
        self.nodes = NodePowerModel(spec.partitions)
        if self.nodes.total_nodes != self.topology.num_nodes:
            raise PowerModelError("topology/node-model size mismatch")
        if chain is None:
            chain = ConversionChain(
                spec.power.rectifier,
                spec.power.sivoc,
                self.topology.rectifiers_per_chassis,
                self.topology.chassis_of_node,
                self.topology.num_chassis,
            )
        self.chain = chain
        t = self.topology
        self._total_switch_w = float(np.sum(t.switch_power_per_rack_w))
        self._cdu_pump_total_w = spec.power.cdu_pump_power_w * t.num_cdus

    # -- evaluation -------------------------------------------------------------

    def evaluate(
        self, cpu_util: np.ndarray, gpu_util: np.ndarray
    ) -> PowerResult:
        """Full pipeline for one instant of per-node utilizations."""
        t = self.topology
        node_w = self.nodes.node_power_w(cpu_util, gpu_util)
        chassis_ac, sivoc_loss, rect_loss = self.chain.convert(node_w)
        rack_w = np.bincount(
            t.rack_of_chassis, weights=chassis_ac, minlength=t.num_racks
        )
        rack_w = rack_w + t.switch_power_per_rack_w
        cdu_w = np.bincount(
            t.cdu_of_rack, weights=rack_w, minlength=t.num_cdus
        )
        cdu_heat = cdu_w * self.spec.power.cooling_efficiency
        system_w = float(np.sum(rack_w)) + self._cdu_pump_total_w
        return PowerResult(
            node_power_w=node_w,
            rack_power_w=rack_w,
            cdu_power_w=cdu_w,
            cdu_heat_w=cdu_heat,
            sivoc_loss_w=sivoc_loss,
            rectifier_loss_w=rect_loss,
            switch_power_w=self._total_switch_w,
            cdu_pump_power_w=self._cdu_pump_total_w,
            system_power_w=system_w,
        )

    def evaluate_uniform(self, cpu_util: float, gpu_util: float) -> PowerResult:
        """Every node at the same utilization (Table III verification)."""
        n = self.nodes.total_nodes
        return self.evaluate(
            np.full(n, float(cpu_util)), np.full(n, float(gpu_util))
        )

    # -- reference points ----------------------------------------------------------

    def idle_power_w(self) -> float:
        """System power with all nodes idle (Table III row 1)."""
        return self.evaluate_uniform(0.0, 0.0).system_power_w

    def peak_power_w(self) -> float:
        """System power with all nodes at 100 % (Table III row 3)."""
        return self.evaluate_uniform(1.0, 1.0).system_power_w

    def breakdown_at_peak(self) -> dict[str, float]:
        """Component-wise peak power decomposition (paper Fig. 4), watts."""
        parts: dict[str, float] = {}
        for p in self.spec.partitions:
            n = p.total_nodes
            spec = p.node
            parts["gpus"] = parts.get("gpus", 0.0) + n * spec.gpus_per_node * spec.gpu_power_max_w
            parts["cpus"] = parts.get("cpus", 0.0) + n * spec.cpus_per_node * spec.cpu_power_max_w
            parts["ram"] = parts.get("ram", 0.0) + n * spec.ram_power_w
            parts["nvme"] = parts.get("nvme", 0.0) + n * spec.nvme_per_node * spec.nvme_power_w
            parts["nics"] = parts.get("nics", 0.0) + n * spec.nics_per_node * spec.nic_power_w
        result = self.evaluate_uniform(1.0, 1.0)
        parts["switches"] = self._total_switch_w
        parts["cdu_pumps"] = self._cdu_pump_total_w
        parts["sivoc_loss"] = result.sivoc_loss_w
        parts["rectifier_loss"] = result.rectifier_loss_w
        parts["total"] = result.system_power_w
        return parts


__all__ = ["SystemTopology", "PowerResult", "SystemPowerModel"]
