"""Per-node dynamic power (paper Eq. 3).

``P_node = P_CPU + 4 P_GPU + 4 P_NIC + P_RAM + 2 P_NVMe`` with CPU and GPU
power linearly interpolated between their [idle, max] values by the
time-indexed utilization — vectorized over every node in the system so
one call per trace quantum covers all 9472 Frontier nodes.
"""

from __future__ import annotations

import numpy as np

from repro.config.schema import NodeSpec, PartitionSpec
from repro.exceptions import PowerModelError


class NodePowerModel:
    """Vectorized Eq. 3 evaluator over a (possibly multi-partition) system.

    Per-node coefficient arrays are precomputed once; each evaluation is
    a fused broadcast expression, no Python-level loop over nodes.
    """

    def __init__(self, partitions: tuple[PartitionSpec, ...]) -> None:
        if not partitions:
            raise PowerModelError("at least one partition required")
        cpu_idle, cpu_span = [], []
        gpu_idle, gpu_span = [], []
        static = []
        for p in partitions:
            n = p.total_nodes
            spec = p.node
            cpu_idle.append(np.full(n, spec.cpus_per_node * spec.cpu_power_idle_w))
            cpu_span.append(
                np.full(
                    n,
                    spec.cpus_per_node
                    * (spec.cpu_power_max_w - spec.cpu_power_idle_w),
                )
            )
            gpu_idle.append(np.full(n, spec.gpus_per_node * spec.gpu_power_idle_w))
            gpu_span.append(
                np.full(
                    n,
                    spec.gpus_per_node
                    * (spec.gpu_power_max_w - spec.gpu_power_idle_w),
                )
            )
            static.append(
                np.full(
                    n,
                    spec.nics_per_node * spec.nic_power_w
                    + spec.ram_power_w
                    + spec.nvme_per_node * spec.nvme_power_w,
                )
            )
        self._cpu_idle = np.concatenate(cpu_idle)
        self._cpu_span = np.concatenate(cpu_span)
        self._gpu_idle = np.concatenate(gpu_idle)
        self._gpu_span = np.concatenate(gpu_span)
        self._static = np.concatenate(static)
        self.total_nodes = int(self._static.size)

    def node_power_w(
        self, cpu_util: np.ndarray, gpu_util: np.ndarray
    ) -> np.ndarray:
        """Per-node watts for utilization arrays of shape (total_nodes,).

        Idle nodes (utilization 0) still draw their idle power — the paper
        sets utilizations to zero to model idle, not power to zero.
        """
        cpu_util = np.asarray(cpu_util, dtype=np.float64)
        gpu_util = np.asarray(gpu_util, dtype=np.float64)
        if cpu_util.shape != (self.total_nodes,) or gpu_util.shape != (
            self.total_nodes,
        ):
            raise PowerModelError(
                f"utilization arrays must have shape ({self.total_nodes},)"
            )
        if (
            cpu_util.min(initial=0.0) < 0.0
            or cpu_util.max(initial=0.0) > 1.0
            or gpu_util.min(initial=0.0) < 0.0
            or gpu_util.max(initial=0.0) > 1.0
        ):
            raise PowerModelError("utilization values must lie in [0, 1]")
        return (
            self._cpu_idle
            + self._cpu_span * cpu_util
            + self._gpu_idle
            + self._gpu_span * gpu_util
            + self._static
        )

    def uniform_power_w(self, cpu_util: float, gpu_util: float) -> np.ndarray:
        """Node powers when every node runs at the same utilization."""
        return self.node_power_w(
            np.full(self.total_nodes, float(cpu_util)),
            np.full(self.total_nodes, float(gpu_util)),
        )

    @property
    def idle_node_power_w(self) -> np.ndarray:
        """Per-node idle draw (Eq. 3 with zero utilizations)."""
        return self._cpu_idle + self._gpu_idle + self._static

    @property
    def max_node_power_w(self) -> np.ndarray:
        """Per-node peak draw (Eq. 3 with unit utilizations)."""
        return (
            self._cpu_idle
            + self._cpu_span
            + self._gpu_idle
            + self._gpu_span
            + self._static
        )


__all__ = ["NodePowerModel"]
