"""The 380 V direct-DC distribution what-if (paper section IV-3).

Inspired by the LBNL DC-power study and the Hikari HVDC deployment, this
chain supplies the 380 V bus directly from facility DC distribution,
eliminating per-chassis AC rectification entirely.  Only the SIVOC stage
(and an optional facility DC-distribution efficiency) remains, lifting
the average chain efficiency from ~93.3 % to ~97.3 % in the paper's
183-day counterfactual replay.
"""

from __future__ import annotations

import numpy as np

from repro.config.schema import SivocSpec
from repro.exceptions import PowerModelError
from repro.power.conversion import SivocBank


class DirectDcChain:
    """Conversion chain with no rectifier stage (380 V DC to the bus).

    Drop-in replacement for
    :class:`~repro.power.conversion.ConversionChain`: rectifier loss is
    reported as the (usually tiny) facility DC-distribution loss.
    """

    name = "direct-dc"

    def __init__(
        self,
        sivoc: SivocSpec,
        chassis_of_node: np.ndarray,
        num_chassis: int,
        *,
        distribution_efficiency: float = 1.0,
    ) -> None:
        if not 0.0 < distribution_efficiency <= 1.0:
            raise PowerModelError("distribution_efficiency must be in (0, 1]")
        self.sivocs = SivocBank(sivoc)
        self.distribution_efficiency = float(distribution_efficiency)
        self._chassis_of_node = np.asarray(chassis_of_node, dtype=np.int64)
        self._num_chassis = int(num_chassis)

    def convert(
        self, node_power_w: np.ndarray
    ) -> tuple[np.ndarray, float, float]:
        """Same contract as :meth:`ConversionChain.convert`."""
        sivoc_in = self.sivocs.input_power(node_power_w)
        sivoc_loss = float(np.sum(sivoc_in) - np.sum(node_power_w))
        chassis_bus = np.bincount(
            self._chassis_of_node, weights=sivoc_in, minlength=self._num_chassis
        )
        chassis_dc = chassis_bus / self.distribution_efficiency
        dist_loss = float(np.sum(chassis_dc) - np.sum(chassis_bus))
        return chassis_dc, sivoc_loss, dist_loss

    def rectifiers_active(self, node_power_w: np.ndarray) -> np.ndarray:
        """No rectifiers exist in the DC design."""
        return np.zeros(self._num_chassis, dtype=np.int64)


__all__ = ["DirectDcChain"]
