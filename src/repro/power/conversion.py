"""Power-conversion chain: active rectifiers and SIVOC DC-DC converters.

Paper Eqs. 1-2: the chain efficiency is ``eta_system = eta_R * eta_S``
(nameplate ~0.96 x 0.98 ~= 0.94) and the loss is the difference between
rectifier AC input and SIVOC 48 V output.  In reality the efficiency
varies with load — the rectifiers peak at 96.3 % near 7.5 kW and droop
1-2 % toward idle (section IV-3) — so both stages carry load-dependent
efficiency curves.  The anchor points shipped in
:class:`~repro.config.schema.RectifierSpec` / ``SivocSpec`` are calibrated
so the whole-system verification targets of Table III hold.

Topology (paper Fig. 3): four rectifiers per chassis share a common 380 V
DC bus feeding eight blades; each blade carries two SIVOCs, one per node,
stepping 380 V down to 48 V.
"""

from __future__ import annotations

import numpy as np

from repro.config.schema import RectifierSpec, SivocSpec
from repro.exceptions import PowerModelError


class EfficiencyCurve:
    """Monotone piecewise-linear efficiency vs. output-load curve.

    Evaluation is ``np.interp`` over precomputed anchor arrays, so it
    vectorizes over any number of converters at once.  Loads beyond the
    last anchor clamp to the end efficiencies.
    """

    def __init__(self, load_points_w, efficiency_points) -> None:
        self._loads = np.asarray(load_points_w, dtype=np.float64)
        self._effs = np.asarray(efficiency_points, dtype=np.float64)
        if self._loads.ndim != 1 or self._loads.shape != self._effs.shape:
            raise PowerModelError("malformed efficiency curve arrays")
        if self._loads.size < 2:
            raise PowerModelError("efficiency curve needs >= 2 anchors")
        if np.any(np.diff(self._loads) <= 0):
            raise PowerModelError("curve loads must be strictly increasing")
        if np.any(self._effs <= 0.0) or np.any(self._effs > 1.0):
            raise PowerModelError("curve efficiencies must be in (0, 1]")

    def efficiency(self, load_w: np.ndarray | float) -> np.ndarray | float:
        """Efficiency eta(P_out) at the given output load(s)."""
        return np.interp(load_w, self._loads, self._effs)

    def input_power(self, output_w: np.ndarray | float) -> np.ndarray | float:
        """Input power required to deliver ``output_w``: P_in = P_out/eta."""
        out = np.asarray(output_w, dtype=np.float64)
        if np.any(out < 0):
            raise PowerModelError("output power must be non-negative")
        return out / self.efficiency(out)

    def loss(self, output_w: np.ndarray | float) -> np.ndarray | float:
        """Conversion loss at the given output load: P_in - P_out."""
        return self.input_power(output_w) - np.asarray(output_w, dtype=np.float64)

    @property
    def peak_efficiency(self) -> float:
        return float(self._effs.max())

    @property
    def peak_efficiency_load_w(self) -> float:
        return float(self._loads[int(np.argmax(self._effs))])


class SivocBank:
    """All SIVOCs in the system: one per node, 380 V -> 48 V.

    ``input_power(node_power_w)`` returns the 380 V bus draw per node.
    """

    def __init__(self, spec: SivocSpec) -> None:
        self.spec = spec
        self.curve = EfficiencyCurve(spec.load_points_w, spec.efficiency_points)

    def input_power(self, node_power_w: np.ndarray) -> np.ndarray:
        return np.asarray(self.curve.input_power(node_power_w))

    def loss(self, node_power_w: np.ndarray) -> np.ndarray:
        return np.asarray(self.curve.loss(node_power_w))


class RectifierBank:
    """Per-chassis rectifier groups: AC three-phase -> 380 V DC bus.

    Baseline operation shares each chassis load equally across all
    ``rectifiers_per_chassis`` units (the paper's stock configuration —
    the common DC bus rides through single-rectifier failures).
    """

    def __init__(self, spec: RectifierSpec, rectifiers_per_chassis: int) -> None:
        if rectifiers_per_chassis < 1:
            raise PowerModelError("rectifiers_per_chassis must be >= 1")
        self.spec = spec
        self.rectifiers_per_chassis = int(rectifiers_per_chassis)
        self.curve = EfficiencyCurve(spec.load_points_w, spec.efficiency_points)

    def input_power(self, chassis_bus_w: np.ndarray) -> np.ndarray:
        """AC input per chassis given its 380 V bus demand (equal sharing)."""
        chassis_bus_w = np.asarray(chassis_bus_w, dtype=np.float64)
        per_rect = chassis_bus_w / self.rectifiers_per_chassis
        eta = self.curve.efficiency(per_rect)
        return chassis_bus_w / eta

    def loss(self, chassis_bus_w: np.ndarray) -> np.ndarray:
        return self.input_power(chassis_bus_w) - np.asarray(
            chassis_bus_w, dtype=np.float64
        )


class ConversionChain:
    """The baseline two-stage chain (Eqs. 1-2) over the whole system.

    ``convert`` maps per-node 48 V power to per-chassis AC input plus
    per-stage losses; the system model aggregates from there.

    The common DC bus rides through rectifier failures (paper III-B1:
    "in case of rectifier failure, blades are continuously powered");
    :meth:`fail_rectifiers` removes units from a chassis and the
    survivors pick up the load at their (shifted) efficiency point.
    """

    name = "baseline"

    def __init__(
        self,
        rectifier: RectifierSpec,
        sivoc: SivocSpec,
        rectifiers_per_chassis: int,
        chassis_of_node: np.ndarray,
        num_chassis: int,
    ) -> None:
        self.sivocs = SivocBank(sivoc)
        self.rectifiers = RectifierBank(rectifier, rectifiers_per_chassis)
        self._chassis_of_node = np.asarray(chassis_of_node, dtype=np.int64)
        self._num_chassis = int(num_chassis)
        self._healthy = np.full(
            num_chassis, rectifiers_per_chassis, dtype=np.int64
        )

    def fail_rectifiers(self, chassis_index: int, count: int = 1) -> None:
        """Take ``count`` rectifiers in one chassis out of service."""
        if not 0 <= chassis_index < self._num_chassis:
            raise PowerModelError("chassis_index out of range")
        healthy = int(self._healthy[chassis_index]) - count
        if healthy < 1:
            raise PowerModelError(
                "at least one rectifier must remain per chassis"
            )
        self._healthy[chassis_index] = healthy

    def repair_all(self) -> None:
        """Return every rectifier to service."""
        self._healthy[:] = self.rectifiers.rectifiers_per_chassis

    def convert(
        self, node_power_w: np.ndarray
    ) -> tuple[np.ndarray, float, float]:
        """Returns (chassis_ac_w, sivoc_loss_w, rectifier_loss_w).

        ``chassis_ac_w`` has one entry per chassis; losses are system
        totals in watts.
        """
        sivoc_in = self.sivocs.input_power(node_power_w)
        sivoc_loss = float(np.sum(sivoc_in) - np.sum(node_power_w))
        chassis_bus = np.bincount(
            self._chassis_of_node, weights=sivoc_in, minlength=self._num_chassis
        )
        per_rect = chassis_bus / self._healthy
        eta = self.rectifiers.curve.efficiency(per_rect)
        chassis_ac = chassis_bus / eta
        rect_loss = float(np.sum(chassis_ac) - np.sum(chassis_bus))
        return chassis_ac, sivoc_loss, rect_loss

    def rectifiers_active(self, node_power_w: np.ndarray) -> np.ndarray:
        """Rectifiers energized per chassis (all healthy units)."""
        return self._healthy.copy()


__all__ = ["EfficiencyCurve", "SivocBank", "RectifierBank", "ConversionChain"]
