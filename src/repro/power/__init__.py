"""Dynamic power modeling: the power half of the paper's RAPS module.

- :mod:`repro.power.components` — per-node power (Eq. 3),
- :mod:`repro.power.conversion` — rectifier + SIVOC efficiency curves and
  loss accounting (Eqs. 1-2),
- :mod:`repro.power.system` — the vectorized whole-system pipeline:
  node -> SIVOC -> chassis rectifier group -> rack (Eq. 4) -> CDU -> system,
- :mod:`repro.power.smart_rectifier` — the "smart load-sharing rectifier"
  what-if (section IV-3),
- :mod:`repro.power.dc_power` — the 380 V direct-DC what-if,
- :mod:`repro.power.emissions` — CO2 (Eq. 6) and energy-cost accounting,
- :mod:`repro.power.uq` — Monte-Carlo uncertainty quantification.
"""

from repro.power.components import NodePowerModel
from repro.power.conversion import (
    EfficiencyCurve,
    RectifierBank,
    SivocBank,
    ConversionChain,
)
from repro.power.system import SystemPowerModel, PowerResult, SystemTopology
from repro.power.smart_rectifier import SmartRectifierChain
from repro.power.dc_power import DirectDcChain
from repro.power.emissions import EmissionsModel
from repro.power.uq import UncertaintyAnalysis, PerturbationSpec

__all__ = [
    "NodePowerModel",
    "EfficiencyCurve",
    "RectifierBank",
    "SivocBank",
    "ConversionChain",
    "SystemPowerModel",
    "PowerResult",
    "SystemTopology",
    "SmartRectifierChain",
    "DirectDcChain",
    "EmissionsModel",
    "UncertaintyAnalysis",
    "PerturbationSpec",
]
