"""Descriptive-twin (L1) scene generation from the system config.

Builds the 3D asset hierarchy the paper renders in UE5 — rows of compute
racks with their CDUs, and the central energy plant (pumps, heat
exchangers, cooling towers) — as a portable scene graph that any
renderer (game engine, web viewer) can consume as JSON.  This implements
the "dynamic asset generation based on JSON configuration files" the
paper plans in Section V.

Layout conventions (meters, Frontier-like): racks in rows of 16 with a
1.2 m cold aisle, one CDU per three racks at the row end, CEP assets in
a separate plant row.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.config.schema import SystemSpec
from repro.exceptions import ExaDigiTError

#: Standard asset footprints, meters (width, depth, height).
_RACK_SIZE = (0.61, 1.4, 2.23)
_CDU_SIZE = (0.61, 1.4, 2.23)
_PUMP_SIZE = (1.2, 0.8, 1.0)
_HX_SIZE = (1.0, 2.4, 1.8)
_TOWER_SIZE = (6.0, 6.0, 4.5)

_RACKS_PER_ROW = 16
_AISLE_DEPTH = 1.2


@dataclass
class AssetNode:
    """One renderable asset: a typed box with a pose and metadata."""

    name: str
    asset_type: str
    position: tuple[float, float, float]
    size: tuple[float, float, float]
    metadata: dict = field(default_factory=dict)
    children: list["AssetNode"] = field(default_factory=list)

    def add(self, child: "AssetNode") -> "AssetNode":
        self.children.append(child)
        return child

    def walk(self):
        """Depth-first iteration over this subtree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "type": self.asset_type,
            "position": list(self.position),
            "size": list(self.size),
            "metadata": self.metadata,
            "children": [c.to_dict() for c in self.children],
        }


@dataclass
class SceneGraph:
    """The complete scene: a named root with the asset hierarchy."""

    root: AssetNode

    def count(self, asset_type: str | None = None) -> int:
        """Number of assets (of a type, or all)."""
        return sum(
            1
            for node in self.root.walk()
            if asset_type is None or node.asset_type == asset_type
        )

    def find(self, name: str) -> AssetNode:
        for node in self.root.walk():
            if node.name == name:
                return node
        raise ExaDigiTError(f"asset {name!r} not in scene")

    def bounding_box(self) -> tuple[float, float, float]:
        """Axis-aligned extents of the whole scene, meters."""
        xs, ys, zs = [], [], []
        for node in self.root.walk():
            x, y, z = node.position
            w, d, h = node.size
            xs.extend((x, x + w))
            ys.extend((y, y + d))
            zs.extend((z, z + h))
        return (max(xs) - min(xs), max(ys) - min(ys), max(zs) - min(zs))

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.root.to_dict(), indent=indent)


def build_scene(spec: SystemSpec) -> SceneGraph:
    """Generate the scene graph for a system spec."""
    root = AssetNode(
        name=spec.name,
        asset_type="datacenter",
        position=(0.0, 0.0, 0.0),
        size=(0.0, 0.0, 0.0),
        metadata={"total_nodes": spec.total_nodes},
    )
    compute = root.add(
        AssetNode("compute-hall", "hall", (0.0, 0.0, 0.0), (0, 0, 0))
    )
    rack_index = 0
    for part in spec.partitions:
        for r in range(part.total_racks):
            row, col = divmod(rack_index, _RACKS_PER_ROW)
            x = col * _RACK_SIZE[0]
            y = row * (_RACK_SIZE[1] + _AISLE_DEPTH)
            rack = AssetNode(
                name=f"rack-{rack_index:03d}",
                asset_type="rack",
                position=(x, y, 0.0),
                size=_RACK_SIZE,
                metadata={
                    "partition": part.name,
                    "nodes": min(
                        part.rack.nodes_per_rack,
                        part.total_nodes - r * part.rack.nodes_per_rack,
                    ),
                    "cdu": min(
                        rack_index // spec.cooling.racks_per_cdu,
                        spec.cooling.num_cdus - 1,
                    ),
                },
            )
            compute.add(rack)
            rack_index += 1
    # One CDU cabinet per rack group, placed at the end of its row.
    for c in range(spec.cooling.num_cdus):
        first_rack = c * spec.cooling.racks_per_cdu
        row = first_rack // _RACKS_PER_ROW
        x = (_RACKS_PER_ROW + 1) * _RACK_SIZE[0]
        y = row * (_RACK_SIZE[1] + _AISLE_DEPTH)
        compute.add(
            AssetNode(
                name=f"cdu-{c:02d}",
                asset_type="cdu",
                position=(x + c % 2 * _CDU_SIZE[0], y, 0.0),
                size=_CDU_SIZE,
                metadata={"racks": list(range(first_rack, first_rack + spec.cooling.racks_per_cdu))},
            )
        )
    # Central energy plant row behind the hall.
    plant_y = (
        (rack_index // _RACKS_PER_ROW + 2) * (_RACK_SIZE[1] + _AISLE_DEPTH)
    )
    plant = root.add(
        AssetNode("central-energy-plant", "plant", (0.0, plant_y, 0.0), (0, 0, 0))
    )
    for i in range(spec.cooling.htw_pumps.count):
        plant.add(
            AssetNode(
                f"htwp-{i+1}", "pump", (i * 2.0, plant_y, 0.0), _PUMP_SIZE,
                metadata={"loop": "primary"},
            )
        )
    for i in range(spec.cooling.ctw_pumps.count):
        plant.add(
            AssetNode(
                f"ctwp-{i+1}", "pump", (i * 2.0, plant_y + 2.0, 0.0), _PUMP_SIZE,
                metadata={"loop": "tower"},
            )
        )
    for i in range(spec.cooling.intermediate_hx.count):
        plant.add(
            AssetNode(
                f"ehx-{i+1}", "heat_exchanger",
                (10.0 + i * 1.5, plant_y, 0.0), _HX_SIZE,
                metadata={"loop": "primary/tower"},
            )
        )
    towers = spec.cooling.cooling_towers
    for i in range(towers.towers):
        plant.add(
            AssetNode(
                f"ct-{i+1}", "cooling_tower",
                (i * (_TOWER_SIZE[0] + 1.0), plant_y + 8.0, 0.0), _TOWER_SIZE,
                metadata={"cells": towers.cells_per_tower},
            )
        )
    return SceneGraph(root=root)


__all__ = ["AssetNode", "SceneGraph", "build_scene"]
