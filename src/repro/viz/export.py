"""Series export for external dashboards (JSON / CSV).

The paper's web dashboard reads simulation results over a REST API
backed by a results database; this module produces the equivalent
payloads — one JSON document or CSV table per run — that such a
dashboard (or a notebook) would consume.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

import numpy as np

from repro.core.engine import SimulationResult
from repro.exceptions import ExaDigiTError


def result_to_json(result: SimulationResult, *, indent: int | None = None) -> str:
    """Serialize the headline series + summary of a run to JSON."""
    doc = {
        "summary": {
            "duration_s": result.duration_s,
            "mean_power_w": result.mean_power_w,
            "energy_mwh": result.energy_mwh,
            "mean_loss_w": result.mean_loss_w,
            "mean_chain_efficiency": result.mean_chain_efficiency,
            "jobs": len(result.jobs),
            "jobs_completed": result.scheduler_stats.completed,
        },
        "series": {
            "times_s": result.times_s.tolist(),
            "system_power_w": result.system_power_w.tolist(),
            "loss_w": result.loss_w.tolist(),
            "chain_efficiency": result.chain_efficiency.tolist(),
            "utilization": result.utilization.tolist(),
        },
    }
    for name in ("pue", "htw_supply_temp_c", "num_ct_staged"):
        if name in result.cooling:
            doc["series"][name] = np.asarray(result.cooling[name]).tolist()
    return json.dumps(doc, indent=indent)


def result_to_csv(result: SimulationResult) -> str:
    """Tabulate the scalar per-step series of a run as CSV."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    columns: dict[str, np.ndarray] = {
        "time_s": result.times_s,
        "system_power_w": result.system_power_w,
        "loss_w": result.loss_w,
        "chain_efficiency": result.chain_efficiency,
        "utilization": result.utilization,
        "num_running": result.num_running,
    }
    for name, series in sorted(result.cooling.items()):
        arr = np.asarray(series)
        if arr.ndim == 1:
            columns[name] = arr
    n = result.times_s.size
    for name, col in columns.items():
        if col.shape[0] != n:
            raise ExaDigiTError(f"series {name!r} length mismatch")
    writer.writerow(columns.keys())
    for row in zip(*columns.values()):
        writer.writerow([f"{v:.6g}" for v in row])
    return buf.getvalue()


def export_result(
    result: SimulationResult, path: str | Path, *, fmt: str = "json"
) -> Path:
    """Write a run export to disk; returns the written path."""
    path = Path(path)
    if fmt == "json":
        path = path.with_suffix(".json")
        path.write_text(result_to_json(result, indent=2))
    elif fmt == "csv":
        path = path.with_suffix(".csv")
        path.write_text(result_to_csv(result))
    else:
        raise ExaDigiTError(f"unknown export format {fmt!r}")
    return path


__all__ = ["result_to_json", "result_to_csv", "export_result"]
