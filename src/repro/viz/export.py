"""Series export for external dashboards (JSON / CSV / streaming JSONL).

The paper's web dashboard reads simulation results over a REST API
backed by a results database; this module produces the equivalent
payloads — one JSON document or CSV table per run — that such a
dashboard (or a notebook) would consume.

For *live* consumers there is also a streaming JSONL format: one JSON
object per trace quantum, written as the engine yields each
:class:`~repro.core.engine.StepState` (:class:`StepStreamWriter` plugs
straight into the ``progress=`` hook; ``repro run --export-steps``
wires it up from the CLI).  :func:`read_steps_jsonl` round-trips the
file back into :class:`~repro.telemetry.dataset.TimeSeries` objects, so
exported streams feed the same telemetry tooling as measured data.
"""

from __future__ import annotations

import csv
import io
import json
import math
from pathlib import Path
from typing import IO, Iterable, Iterator

import numpy as np

from repro.core.engine import SimulationResult, StepState
from repro.exceptions import ExaDigiTError
from repro.telemetry.dataset import TimeSeries


def result_to_json(result: SimulationResult, *, indent: int | None = None) -> str:
    """Serialize the headline series + summary of a run to JSON."""
    doc = {
        "summary": {
            "duration_s": result.duration_s,
            "mean_power_w": result.mean_power_w,
            "energy_mwh": result.energy_mwh,
            "mean_loss_w": result.mean_loss_w,
            "mean_chain_efficiency": result.mean_chain_efficiency,
            "jobs": len(result.jobs),
            "jobs_completed": result.scheduler_stats.completed,
        },
        "series": {
            "times_s": result.times_s.tolist(),
            "system_power_w": result.system_power_w.tolist(),
            "loss_w": result.loss_w.tolist(),
            "chain_efficiency": result.chain_efficiency.tolist(),
            "utilization": result.utilization.tolist(),
        },
    }
    for name in ("pue", "htw_supply_temp_c", "num_ct_staged"):
        if name in result.cooling:
            doc["series"][name] = np.asarray(result.cooling[name]).tolist()
    return json.dumps(doc, indent=indent)


def result_to_csv(result: SimulationResult) -> str:
    """Tabulate the scalar per-step series of a run as CSV."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    columns: dict[str, np.ndarray] = {
        "time_s": result.times_s,
        "system_power_w": result.system_power_w,
        "loss_w": result.loss_w,
        "chain_efficiency": result.chain_efficiency,
        "utilization": result.utilization,
        "num_running": result.num_running,
    }
    for name, series in sorted(result.cooling.items()):
        arr = np.asarray(series)
        if arr.ndim == 1:
            columns[name] = arr
    n = result.times_s.size
    for name, col in columns.items():
        if col.shape[0] != n:
            raise ExaDigiTError(f"series {name!r} length mismatch")
    writer.writerow(columns.keys())
    for row in zip(*columns.values()):
        writer.writerow([f"{v:.6g}" for v in row])
    return buf.getvalue()


def export_result(
    result: SimulationResult, path: str | Path, *, fmt: str = "json"
) -> Path:
    """Write a run export to disk; returns the written path."""
    path = Path(path)
    if fmt == "json":
        path = path.with_suffix(".json")
        path.write_text(result_to_json(result, indent=2))
    elif fmt == "csv":
        path = path.with_suffix(".csv")
        path.write_text(result_to_csv(result))
    else:
        raise ExaDigiTError(f"unknown export format {fmt!r}")
    return path


#: Scalar StepState attributes exported per JSONL record.
STEP_SCALARS = (
    "time_s",
    "system_power_w",
    "loss_w",
    "sivoc_loss_w",
    "rectifier_loss_w",
    "chain_efficiency",
    "utilization",
    "num_running",
)


def step_record(step: StepState) -> dict:
    """One JSON-safe document for one engine step.

    Carries ``index``, every :data:`STEP_SCALARS` attribute, and each
    scalar recorded cooling output under a ``cooling.`` prefix.
    Non-finite floats encode as ``null`` (strict JSON; consumers like
    ``jq`` reject bare ``NaN`` tokens).
    """
    doc: dict = {"index": step.index}
    for name in STEP_SCALARS:
        value = getattr(step, name)
        value = int(value) if name == "num_running" else float(value)
        doc[name] = (
            value
            if not isinstance(value, float) or math.isfinite(value)
            else None
        )
    for name, series in sorted(step.cooling.items()):
        arr = np.asarray(series)
        if arr.ndim == 0:
            value = float(arr)
            doc[f"cooling.{name}"] = value if math.isfinite(value) else None
    return doc


def encode_step_line(record: dict | StepState) -> str:
    """Encode one step (or any JSON event document) as one NDJSON line.

    The single wire codec shared by :class:`StepStreamWriter`, the
    ``repro.service`` NDJSON/websocket transports, and the service's
    persisted step files: compact separators, no trailing newline.
    Floats round-trip bit-exactly through JSON, so a decoded line
    compares equal to the :func:`step_record` of the originating
    :class:`~repro.core.engine.StepState`.
    """
    if isinstance(record, StepState):
        record = step_record(record)
    return json.dumps(record, separators=(",", ":"))


def decode_step_line(line: str) -> dict | None:
    """Decode one NDJSON line; None for blank or torn (partial) lines.

    The inverse of :func:`encode_step_line`.  ``null`` fields are kept
    as None (transport truth); :func:`iter_step_records` layers the
    None→NaN restoration used by the telemetry tooling on top.
    """
    line = line.strip()
    if not line:
        return None
    try:
        doc = json.loads(line)
    except json.JSONDecodeError:
        return None
    return doc if isinstance(doc, dict) else None


class StepStreamWriter:
    """Stream :class:`StepState` records to a JSONL file or descriptor.

    Usable directly as a ``progress=`` callback and as a context
    manager::

        with StepStreamWriter("steps.jsonl") as writer:
            scenario.run(twin, progress=writer)

    Each record is written and flushed as its step is produced, so an
    external dashboard can tail the file while the simulation runs.
    A path target is opened (and closed) by the writer; an open
    file-like target is flushed but left open for its owner.
    """

    def __init__(self, target: str | Path | IO[str]) -> None:
        if hasattr(target, "write"):
            self._fh: IO[str] = target  # type: ignore[assignment]
            self._owns = False
            self.path = None
        else:
            self.path = Path(target)
            self._fh = self.path.open("w", encoding="utf-8")
            self._owns = True
        self.count = 0

    def write(self, step: StepState) -> None:
        self._fh.write(encode_step_line(step) + "\n")
        self._fh.flush()
        self.count += 1

    __call__ = write

    def close(self) -> None:
        if self._owns and not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "StepStreamWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def export_steps_jsonl(
    steps: Iterable[StepState], target: str | Path | IO[str]
) -> int:
    """Drain a step iterator into a JSONL target; returns records written."""
    with StepStreamWriter(target) as writer:
        for step in steps:
            writer.write(step)
        return writer.count


def iter_step_records(path: str | Path) -> Iterator[dict]:
    """Yield the parsed records of a step JSONL file, in file order.

    Tolerant of a torn final line (a consumer may read while the
    producer is mid-append); ``null`` fields come back as NaN.
    """
    path = Path(path)
    if not path.exists():
        raise ExaDigiTError(f"no step export at {path}")
    with path.open("r", encoding="utf-8") as fh:
        for raw in fh:
            doc = decode_step_line(raw)
            if doc is None:
                continue  # blank, or torn tail of an in-progress append
            yield {
                k: (math.nan if v is None else v) for k, v in doc.items()
            }


def read_steps_jsonl(path: str | Path) -> dict[str, TimeSeries]:
    """Reload a step JSONL export as telemetry series.

    Returns one :class:`~repro.telemetry.dataset.TimeSeries` per
    exported field (times from ``time_s``), so a streamed run feeds the
    same replay/validation tooling as measured telemetry — the
    round-trip counterpart of :class:`StepStreamWriter`.
    """
    records = list(iter_step_records(path))
    if not records:
        raise ExaDigiTError(f"step export {path} holds no records")
    times = np.asarray([r["time_s"] for r in records], dtype=np.float64)
    fields = [
        k for k in records[0] if k not in ("index", "time_s")
    ]
    out: dict[str, TimeSeries] = {}
    for name in fields:
        values = np.asarray(
            [r.get(name, math.nan) for r in records], dtype=np.float64
        )
        units = "W" if name.endswith("_w") else ""
        out[name] = TimeSeries(times, values, units)
    return out


__all__ = [
    "result_to_json",
    "result_to_csv",
    "export_result",
    "STEP_SCALARS",
    "step_record",
    "encode_step_line",
    "decode_step_line",
    "StepStreamWriter",
    "export_steps_jsonl",
    "iter_step_records",
    "read_steps_jsonl",
]
