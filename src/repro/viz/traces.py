"""ASCII line charts for generated workload traces.

``repro workload preview`` renders arrival-rate, wet-bulb, and grid
carbon/price traces in the terminal before a stress campaign spends
any simulation time on them — the same character-ramp aesthetic as
:mod:`repro.viz.heatmap`, but as a time/value chart.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ExaDigiTError


def render_trace(
    times_s: np.ndarray,
    values: np.ndarray,
    *,
    width: int = 72,
    height: int = 12,
    title: str = "",
    unit: str = "",
) -> str:
    """Render a sampled series as a fixed-size ASCII line chart.

    The series is resampled to ``width`` columns by linear
    interpolation; each column paints one ``*`` at its value row.  The
    frame carries the value range on the left and the time range (in
    hours) on the bottom.
    """
    times_s = np.asarray(times_s, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if times_s.ndim != 1 or times_s.size < 2 or times_s.shape != values.shape:
        raise ExaDigiTError(
            "render_trace needs matching 1-D times/values with >= 2 samples"
        )
    if width < 8 or height < 3:
        raise ExaDigiTError("render_trace needs width >= 8 and height >= 3")
    grid_t = np.linspace(times_s[0], times_s[-1], width)
    grid_v = np.interp(grid_t, times_s, values)
    lo = float(np.min(grid_v))
    hi = float(np.max(grid_v))
    span = hi - lo if hi > lo else 1.0
    rows = np.clip(
        ((grid_v - lo) / span * (height - 1)).round().astype(int),
        0,
        height - 1,
    )
    canvas = [[" "] * width for _ in range(height)]
    for col, row in enumerate(rows):
        canvas[height - 1 - row][col] = "*"
    label_width = max(len(f"{hi:.4g}"), len(f"{lo:.4g}"))
    lines = []
    if title:
        lines.append(title)
    for i, row_chars in enumerate(canvas):
        if i == 0:
            label = f"{hi:.4g}"
        elif i == height - 1:
            label = f"{lo:.4g}"
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |{''.join(row_chars)}|")
    t0_h = times_s[0] / 3600.0
    t1_h = times_s[-1] / 3600.0
    footer = f"{t0_h:.3g} h{'':{max(width - 16, 1)}}{t1_h:.4g} h"
    lines.append(f"{'':{label_width}}  {footer}")
    if unit:
        lines.append(f"{'':{label_width}}  [{unit}]")
    return "\n".join(lines)


__all__ = ["render_trace"]
