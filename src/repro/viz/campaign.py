"""Campaign rendering: grid heatmaps and cross-campaign comparisons.

Turns persisted (or live) campaign results into terminal analytics:

- :func:`campaign_heatmap` — pivot a grid sweep's cells onto its first
  two axes and render one metric as a character-ramp heat map (the
  sweep-campaign analogue of the per-rack heat maps),
- :func:`campaign_comparison` — align two or more campaigns by cell
  name and tabulate one metric side by side with deltas against the
  first (the cross-PR "did the optimization change the physics?" view).

Both accept anything that quacks like a
:class:`~repro.scenarios.suite.SuiteResult` whose entries expose
``name`` and ``metrics()`` — live runs and reloaded artifact stores
alike.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.exceptions import ExaDigiTError
from repro.viz.heatmap import render_grid

#: Metrics selectable by name (keys of ScenarioResult.metrics()).
CAMPAIGN_METRICS = ("mean_power_mw", "energy_mwh", "loss_percent", "mean_pue")


def _metric(entry, metric: str) -> float:
    values = entry.metrics()
    if metric not in values:
        raise ExaDigiTError(
            f"unknown campaign metric {metric!r}; "
            f"available: {sorted(values)}"
        )
    return float(values[metric])


def _grid_heatmap_lines(
    values: np.ndarray,
    grid,
    *,
    title: str,
    vmin: float,
    vmax: float,
) -> str:
    """Shared pivot-and-render: one value per expanded grid cell.

    The first grid axis becomes the rows, the remaining axes are
    flattened into the columns (for the common 2-axis case that is
    just axis two); NaN cells render at ``vmin`` (coldest).
    """
    shape = grid.shape()
    if len(shape) < 1:
        raise ExaDigiTError("grid heat map needs a non-empty grid")
    rows = shape[0]
    cols = values.size // rows
    body = render_grid(
        np.nan_to_num(values, nan=vmin),
        columns=cols,
        vmin=vmin,
        vmax=vmax if vmax > vmin else vmin + 1.0,
        labels=False,
    )
    lines = [title]
    row_labels = [str(v) for v in grid.grid[0][1]]
    width = max(len(s) for s in row_labels)
    for label, line in zip(row_labels, body.splitlines()):
        lines.append(f"{label:>{width}s} |{line}|")
    lines.append(f"scale: {vmin:.4g} (cold) .. {vmax:.4g} (hot)")
    return "\n".join(lines)


def _axes_caption(grid) -> str:
    return " × ".join(f"{name}[{len(vals)}]" for name, vals in grid.grid)


def campaign_heatmap(
    outcome,
    grid,
    *,
    metric: str = "mean_power_mw",
) -> str:
    """Heat map of one metric over a grid sweep's first two axes.

    ``outcome`` holds the cell results (in expansion order, as produced
    by a campaign run or reload); ``grid`` is the
    :class:`~repro.scenarios.library.GridSweepScenario` that generated
    them.  Cells without a persisted result render as NaN→coldest.
    """
    by_name = {entry.name: entry for entry in outcome}
    values = np.full(int(np.prod(grid.shape() or (0,))), np.nan)
    for i, child in enumerate(grid.expand()):
        entry = by_name.get(child.name)
        if entry is not None:
            values[i] = _metric(entry, metric)
    finite = values[np.isfinite(values)]
    vmin = float(finite.min()) if finite.size else 0.0
    vmax = float(finite.max()) if finite.size else 1.0
    return _grid_heatmap_lines(
        values,
        grid,
        title=f"{metric} over {_axes_caption(grid)} (rows: {grid.grid[0][0]})",
        vmin=vmin,
        vmax=vmax,
    )


def fidelity_error_heatmap(
    screen,
    refined,
    grid,
    *,
    metric: str = "mean_pue",
) -> str:
    """Heat map of |surrogate − full| over a multi-fidelity campaign grid.

    ``screen`` holds every cell at surrogate fidelity, ``refined`` the
    top-K cells re-run at full fidelity; both join ``grid``'s expansion
    by cell name.  Cells that were never refined have no error and
    render coldest — the hot spots are where the screen was least
    trustworthy among the cells that mattered.
    """
    screened = {entry.name: entry for entry in screen}
    full = {entry.name: entry for entry in refined}
    errors = np.full(int(np.prod(grid.shape() or (0,))), np.nan)
    refined_count = 0
    for i, child in enumerate(grid.expand()):
        s = screened.get(child.name)
        f = full.get(child.name)
        if s is None or f is None:
            continue
        errors[i] = abs(_metric(s, metric) - _metric(f, metric))
        refined_count += 1
    finite = errors[np.isfinite(errors)]
    vmax = float(finite.max()) if finite.size else 1.0
    return _grid_heatmap_lines(
        errors,
        grid,
        title=(
            f"|surrogate - full| {metric} over {_axes_caption(grid)} "
            f"({refined_count}/{errors.size} cells refined; "
            "unrefined render cold)"
        ),
        vmin=0.0,
        vmax=vmax,
    )


def campaign_comparison(
    outcomes: Sequence[tuple[str, object]],
    *,
    metric: str = "mean_power_mw",
) -> str:
    """Side-by-side metric table across campaigns, with deltas vs the first.

    ``outcomes`` is ``[(label, suite_result), ...]`` — typically the
    reloaded stores of campaigns run against different code revisions.
    Rows are cell names in first-campaign order (cells unique to later
    campaigns are appended); missing values render as ``-``.
    """
    if not outcomes:
        raise ExaDigiTError("campaign comparison needs at least one campaign")
    labels = [label for label, _ in outcomes]
    tables = [
        {entry.name: _metric(entry, metric) for entry in result}
        for _, result in outcomes
    ]
    names: list[str] = []
    for table in tables:
        for name in table:
            if name not in names:
                names.append(name)

    def fmt(value: float | None) -> str:
        if value is None or math.isnan(value):
            return "-"
        return format(value, ".4f")

    columns = ["cell"] + labels
    if len(outcomes) > 1:
        columns += [f"Δ {label}" for label in labels[1:]]
    rows = []
    for name in names:
        base = tables[0].get(name)
        row = [name] + [fmt(t.get(name)) for t in tables]
        if len(outcomes) > 1:
            for t in tables[1:]:
                value = t.get(name)
                if (
                    value is None
                    or base is None
                    or math.isnan(value)
                    or math.isnan(base)
                ):
                    row.append("-")
                else:
                    row.append(format(value - base, "+.4f"))
        rows.append(row)
    widths = [
        max(len(columns[c]), *(len(r[c]) for r in rows)) if rows else len(columns[c])
        for c in range(len(columns))
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    lines = [f"metric: {metric}", header, rule]
    for r in rows:
        lines.append(
            "  ".join(
                cell.ljust(w) if i == 0 else cell.rjust(w)
                for i, (cell, w) in enumerate(zip(r, widths))
            )
        )
    return "\n".join(lines)


__all__ = [
    "CAMPAIGN_METRICS",
    "campaign_heatmap",
    "campaign_comparison",
    "fidelity_error_heatmap",
]
