"""Rack/CDU heat-map grids (the AR model's per-asset color overlays).

Maps per-rack or per-CDU scalar series (power, temperature) onto the
physical rack-row layout and renders them as a character-ramp (or ANSI
color) grid — the terminal analogue of the paper's heat-map use case
("understanding temperature problems ... by visualizing heat maps in
the system").
"""

from __future__ import annotations

import numpy as np

from repro.config.schema import SystemSpec
from repro.exceptions import ExaDigiTError

#: Intensity ramp, coldest -> hottest.
_RAMP = " .:-=+*#%@"

_RACKS_PER_ROW = 16


def render_grid(
    values: np.ndarray,
    *,
    columns: int = _RACKS_PER_ROW,
    vmin: float | None = None,
    vmax: float | None = None,
    labels: bool = True,
) -> str:
    """Render a 1-D value array as a row-wrapped character heat map."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise ExaDigiTError("heat map needs a non-empty 1-D array")
    lo = float(np.min(values)) if vmin is None else vmin
    hi = float(np.max(values)) if vmax is None else vmax
    span = hi - lo if hi > lo else 1.0
    idx = np.clip(
        ((values - lo) / span * (len(_RAMP) - 1)).astype(int), 0, len(_RAMP) - 1
    )
    lines = []
    for start in range(0, values.size, columns):
        chunk = idx[start : start + columns]
        row = "".join(_RAMP[i] * 2 for i in chunk)
        if labels:
            row = f"{start:4d} |{row}|"
        lines.append(row)
    if labels:
        lines.append(f"scale: {lo:.3g} '{_RAMP[0]}' .. {hi:.3g} '{_RAMP[-1]}'")
    return "\n".join(lines)


def rack_heatmap(
    spec: SystemSpec, rack_values: np.ndarray, *, vmin=None, vmax=None
) -> str:
    """Heat map of a per-rack quantity in physical row layout."""
    rack_values = np.asarray(rack_values, dtype=np.float64)
    if rack_values.shape != (spec.total_racks,):
        raise ExaDigiTError(
            f"expected {spec.total_racks} rack values, got {rack_values.shape}"
        )
    return render_grid(rack_values, columns=_RACKS_PER_ROW, vmin=vmin, vmax=vmax)


def cdu_heatmap(
    spec: SystemSpec, cdu_values: np.ndarray, *, vmin=None, vmax=None
) -> str:
    """Heat map of a per-CDU quantity (one row of 25 for Frontier)."""
    cdu_values = np.asarray(cdu_values, dtype=np.float64)
    if cdu_values.shape != (spec.cooling.num_cdus,):
        raise ExaDigiTError(
            f"expected {spec.cooling.num_cdus} CDU values, got {cdu_values.shape}"
        )
    return render_grid(
        cdu_values, columns=spec.cooling.num_cdus, vmin=vmin, vmax=vmax
    )


__all__ = ["render_grid", "rack_heatmap", "cdu_heatmap"]
