"""Visual analytics: scene generation, dashboards, heat maps, export.

The paper's third module is a UE5/AR model plus a web dashboard.  In
this Python reproduction the *analytics content* is preserved while the
rendering device changes (see DESIGN.md substitutions):

- :mod:`repro.viz.scene` — the descriptive (L1) twin: a 3D scene graph
  of racks/CDUs/CEP assets generated from the JSON system config, the
  planned "dynamic asset generation" of paper Section V,
- :mod:`repro.viz.heatmap` — rack/CDU heat-map grids (ANSI or text),
- :mod:`repro.viz.traces` — ASCII line charts of generated workload
  traces (``repro workload preview``),
- :mod:`repro.viz.campaign` — sweep-campaign heat maps and
  cross-campaign metric comparison tables,
- :mod:`repro.viz.dashboard` — terminal dashboard with sparklines,
- :mod:`repro.viz.export` — JSON/CSV series export for web dashboards,
  plus the streaming JSONL step exporter/reader
  (:class:`~repro.viz.export.StepStreamWriter`).
"""

from repro.viz.scene import SceneGraph, AssetNode, build_scene
from repro.viz.heatmap import rack_heatmap, cdu_heatmap, render_grid
from repro.viz.campaign import (
    campaign_heatmap,
    campaign_comparison,
    fidelity_error_heatmap,
)
from repro.viz.dashboard import sparkline, render_dashboard
from repro.viz.traces import render_trace
from repro.viz.export import (
    StepStreamWriter,
    export_result,
    export_steps_jsonl,
    read_steps_jsonl,
    result_to_csv,
    result_to_json,
)

__all__ = [
    "SceneGraph",
    "AssetNode",
    "build_scene",
    "rack_heatmap",
    "cdu_heatmap",
    "render_grid",
    "campaign_heatmap",
    "campaign_comparison",
    "fidelity_error_heatmap",
    "sparkline",
    "render_dashboard",
    "render_trace",
    "result_to_json",
    "result_to_csv",
    "export_result",
    "StepStreamWriter",
    "export_steps_jsonl",
    "read_steps_jsonl",
]
