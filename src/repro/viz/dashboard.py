"""Terminal dashboard rendering (the paper's console interface, Fig. 6).

Sparkline panels for the headline run series — system power, chain
efficiency, utilization, PUE — mirroring the quantities plotted in the
paper's Fig. 9 replay dashboard.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.engine import SimulationResult, StepState
from repro.exceptions import ExaDigiTError

_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: np.ndarray, *, width: int = 60) -> str:
    """Downsample a series into a unicode sparkline of ``width`` chars."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ExaDigiTError("cannot sparkline an empty series")
    if values.size > width:
        # Bin means preserve shape better than striding.
        edges = np.linspace(0, values.size, width + 1).astype(int)
        binned = np.array(
            [values[a:b].mean() if b > a else values[min(a, values.size - 1)]
             for a, b in zip(edges[:-1], edges[1:])]
        )
    else:
        binned = values
    lo, hi = float(binned.min()), float(binned.max())
    span = hi - lo if hi > lo else 1.0
    idx = np.clip(
        ((binned - lo) / span * (len(_SPARK) - 1)).astype(int),
        0,
        len(_SPARK) - 1,
    )
    return "".join(_SPARK[i] for i in idx)


def _panel(label: str, values: np.ndarray, fmt: str, unit: str) -> str:
    line = sparkline(values)
    last = values[-1]
    lo, hi = float(np.min(values)), float(np.max(values))
    return (
        f"{label:<14s} {line}\n"
        f"{'':<14s} now={last:{fmt}}{unit}  min={lo:{fmt}}{unit}  "
        f"max={hi:{fmt}}{unit}"
    )


def render_dashboard(result: SimulationResult, *, title: str = "ExaDigiT") -> str:
    """Multi-panel text dashboard for one simulation result."""
    panels = [
        f"=== {title} === ({result.duration_s / 3600.0:.1f}h simulated)",
        _panel("power", result.system_power_w / 1e6, ".2f", " MW"),
        _panel("efficiency", result.chain_efficiency * 100.0, ".1f", " %"),
        _panel("utilization", result.utilization * 100.0, ".0f", " %"),
        _panel("loss", result.loss_w / 1e6, ".2f", " MW"),
    ]
    if "pue" in result.cooling:
        panels.append(_panel("pue", result.cooling["pue"], ".3f", ""))
    if "htw_supply_temp_c" in result.cooling:
        panels.append(
            _panel("htw supply", result.cooling["htw_supply_temp_c"], ".1f", " C")
        )
    return "\n".join(panels)


def render_step(step: StepState) -> str:
    """One status line for a streamed engine step (live console feed)."""
    pue = step.pue
    pue_text = f"{pue:.3f}" if not math.isnan(pue) else "-"
    return (
        f"t={step.time_s / 3600.0:6.2f}h  "
        f"power={step.system_power_w / 1e6:6.2f} MW  "
        f"loss={step.loss_w / 1e6:5.2f} MW  "
        f"util={step.utilization * 100.0:5.1f} %  "
        f"jobs={step.num_running:4d}  "
        f"pue={pue_text}"
    )


class LiveDashboard:
    """Incremental dashboard over the engine's streaming step states.

    Feed it every :class:`~repro.core.engine.StepState` via
    :meth:`update`; it returns a rendered line every ``every`` steps
    (else ``None``) and keeps a rolling power history so the final
    :meth:`summary` can show the run's sparkline without buffering the
    whole simulation result.
    """

    def __init__(self, *, every: int = 40, history: int = 480) -> None:
        if every < 1:
            raise ExaDigiTError("every must be >= 1")
        self.every = every
        self.history = history
        self.power_mw: list[float] = []
        self.steps_seen = 0
        self.last_step: StepState | None = None

    def update(self, step: StepState) -> str | None:
        """Record one step; return a status line on reporting steps."""
        self.steps_seen += 1
        self.last_step = step
        self.power_mw.append(step.system_power_w / 1e6)
        if len(self.power_mw) > self.history:
            del self.power_mw[: -self.history]
        if self.steps_seen % self.every == 0:
            return render_step(step)
        return None

    def summary(self) -> str:
        """Sparkline + last-step line over the retained history."""
        if not self.power_mw:
            raise ExaDigiTError("no steps have been fed to the dashboard")
        line = sparkline(np.asarray(self.power_mw))
        assert self.last_step is not None
        return f"power {line}\n{render_step(self.last_step)}"


__all__ = ["sparkline", "render_dashboard", "render_step", "LiveDashboard"]
