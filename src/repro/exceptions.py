"""Exception hierarchy for the ExaDigiT reproduction.

Every error raised by the library derives from :class:`ExaDigiTError` so
callers can catch framework errors without masking programming errors.
"""

from __future__ import annotations


class ExaDigiTError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ExaDigiTError):
    """A system / cooling / scheduler / power specification is invalid."""


class TelemetryError(ExaDigiTError):
    """Telemetry data is malformed, missing, or inconsistent."""


class SchedulingError(ExaDigiTError):
    """The scheduler was asked to do something impossible.

    Examples: allocating more nodes than the system has, releasing nodes a
    job does not own, or submitting a job after the simulation horizon.
    """


class PowerModelError(ExaDigiTError):
    """The power model received out-of-range inputs."""


class CoolingModelError(ExaDigiTError):
    """The thermo-fluid solver failed to converge or received bad inputs."""


class FMUError(CoolingModelError):
    """The FMI-like cooling wrapper was used out of protocol order."""


class SimulationError(ExaDigiTError):
    """The top-level simulation engine hit an unrecoverable condition."""


class ValidationError(ExaDigiTError):
    """A validation comparison could not be computed (e.g. length mismatch)."""


class ScenarioError(ExaDigiTError):
    """A declarative scenario is malformed or cannot be executed."""
