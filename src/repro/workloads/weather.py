"""Environment-role generators: weather-year wet-bulb and grid signals."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.schema import SystemSpec
from repro.power.emissions import GridSignal
from repro.telemetry.dataset import TimeSeries
from repro.telemetry.synthesis import synthesize_wetbulb
from repro.workloads.base import (
    WorkloadError,
    WorkloadGenerator,
    register_generator,
)


@register_generator
@dataclass(frozen=True)
class WeatherYear(WorkloadGenerator):
    """A wet-bulb temperature trace for the cooling plant's inlet.

    Wraps :func:`repro.telemetry.synthesis.synthesize_wetbulb` — the
    East-Tennessee seasonal + diurnal + Ornstein-Uhlenbeck model — as a
    parametric generator, so weather years are content-addressed and
    sweepable (e.g. ``day_of_year`` across seasons, or a warmer
    ``mean_annual_c`` for siting studies).
    """

    generator = "weather-year"
    role = "wetbulb"

    day_of_year: int = 100
    mean_annual_c: float = 13.0
    seasonal_amplitude_c: float = 9.0
    diurnal_amplitude_c: float = 3.0
    noise_std_c: float = 1.2
    noise_tau_s: float = 7200.0
    dt_s: float = 60.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0 <= self.day_of_year < 366:
            raise WorkloadError("day_of_year must be in [0, 366)")
        if self.dt_s <= 0 or self.noise_tau_s <= 0:
            raise WorkloadError("dt_s and noise_tau_s must be positive")
        if self.noise_std_c < 0:
            raise WorkloadError("noise_std_c must be >= 0")
        object.__setattr__(self, "day_of_year", int(self.day_of_year))

    def generate(self, spec: SystemSpec, duration_s: float) -> TimeSeries:
        duration_s = self._check_duration(duration_s)
        return synthesize_wetbulb(
            duration_s,
            self.rng("wetbulb"),
            dt_s=self.dt_s,
            day_of_year=self.day_of_year,
            mean_annual_c=self.mean_annual_c,
            seasonal_amplitude_c=self.seasonal_amplitude_c,
            diurnal_amplitude_c=self.diurnal_amplitude_c,
            noise_std_c=self.noise_std_c,
            noise_tau_s=self.noise_tau_s,
        )


@register_generator
@dataclass(frozen=True)
class GridSignalGenerator(WorkloadGenerator):
    """Diurnal carbon-intensity and electricity-price signals.

    Both profiles are cosines peaking at ``peak_hour`` (evening demand
    peak) around a configured base, plus small independent Gaussian
    noise per sample — enough structure for carbon-aware what-if
    studies through :class:`repro.power.emissions.EmissionsModel`.
    """

    generator = "grid-signal"
    role = "grid"

    base_intensity_lb_per_mwh: float = 852.3
    intensity_swing: float = 0.25
    base_price_usd_per_kwh: float = 0.09
    price_swing: float = 0.4
    peak_hour: float = 18.0
    noise_frac: float = 0.02
    dt_s: float = 900.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.base_intensity_lb_per_mwh <= 0:
            raise WorkloadError("base_intensity_lb_per_mwh must be positive")
        if self.base_price_usd_per_kwh <= 0:
            raise WorkloadError("base_price_usd_per_kwh must be positive")
        for name in ("intensity_swing", "price_swing"):
            if not 0.0 <= getattr(self, name) < 1.0:
                raise WorkloadError(f"{name} must be in [0, 1)")
        if self.noise_frac < 0:
            raise WorkloadError("noise_frac must be >= 0")
        if self.dt_s <= 0:
            raise WorkloadError("dt_s must be positive")

    def generate(self, spec: SystemSpec, duration_s: float) -> GridSignal:
        duration_s = self._check_duration(duration_s)
        rng = self.rng("grid")
        n = int(np.ceil(duration_s / self.dt_s)) + 1
        t = self.dt_s * np.arange(n)
        phase = np.cos(2.0 * np.pi * (t / 86400.0 - self.peak_hour / 24.0))
        carbon = self.base_intensity_lb_per_mwh * (
            1.0 + self.intensity_swing * phase
        )
        price = self.base_price_usd_per_kwh * (1.0 + self.price_swing * phase)
        if self.noise_frac > 0:
            carbon = carbon * (1.0 + self.noise_frac * rng.normal(size=n))
            price = price * (1.0 + self.noise_frac * rng.normal(size=n))
        return GridSignal(
            times_s=t,
            carbon_intensity_lb_per_mwh=np.maximum(carbon, 0.0),
            price_usd_per_kwh=np.maximum(price, 0.0),
        )


__all__ = ["WeatherYear", "GridSignalGenerator"]
