"""Fault-injection event-stream generator.

Produces :class:`~repro.core.events.FaultEvent` streams: random node
failures (Poisson with mean time between failures, exponential outage
durations), an optional scheduled maintenance window, and an optional
CDU blockage routed to the cooling plant's ``set_blockage`` input.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.schema import SystemSpec
from repro.core.events import FaultEvent, sort_events
from repro.workloads.base import (
    WorkloadError,
    WorkloadGenerator,
    register_generator,
)


@register_generator
@dataclass(frozen=True)
class FaultInjection(WorkloadGenerator):
    """Timed node outages, maintenance windows, and CDU blockages.

    Node failures arrive as a Poisson process with mean interval
    ``node_mtbf_s``; each failure takes ``nodes_per_failure`` distinct
    random nodes down for an exponential outage with mean
    ``mean_outage_s``.  A maintenance window (``maintenance_start_s >=
    0``) takes the free subset of the first ``maintenance_nodes`` nodes
    out of service for ``maintenance_s`` seconds without killing jobs.  A CDU
    blockage (``cdu_blockage_time_s >= 0``) throttles loop
    ``cdu_index`` by ``cdu_blockage_severity`` until
    ``cdu_clear_time_s`` (or forever when negative).
    """

    generator = "faults"
    role = "events"

    node_mtbf_s: float = 43200.0
    mean_outage_s: float = 3600.0
    nodes_per_failure: int = 1
    maintenance_start_s: float = -1.0
    maintenance_s: float = 3600.0
    maintenance_nodes: int = 0
    cdu_blockage_time_s: float = -1.0
    cdu_index: int = 0
    cdu_blockage_severity: float = 2.0
    cdu_clear_time_s: float = -1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.node_mtbf_s <= 0 or self.mean_outage_s <= 0:
            raise WorkloadError("failure time scales must be positive")
        if self.nodes_per_failure < 1:
            raise WorkloadError("nodes_per_failure must be >= 1")
        if self.maintenance_nodes < 0:
            raise WorkloadError("maintenance_nodes must be >= 0")
        if self.cdu_blockage_severity < 1.0:
            raise WorkloadError("cdu_blockage_severity must be >= 1")

    def generate(
        self, spec: SystemSpec, duration_s: float
    ) -> tuple[FaultEvent, ...]:
        duration_s = self._check_duration(duration_s)
        events: list[FaultEvent] = []
        rng = self.rng("failures")
        t = 0.0
        while True:
            t += float(rng.exponential(self.node_mtbf_s))
            if t >= duration_s:
                break
            count = min(self.nodes_per_failure, spec.total_nodes)
            nodes = tuple(
                int(n)
                for n in sorted(
                    rng.choice(spec.total_nodes, size=count, replace=False)
                )
            )
            events.append(FaultEvent(time_s=t, kind="node-down", nodes=nodes))
            up_at = t + float(rng.exponential(self.mean_outage_s))
            if up_at < duration_s:
                events.append(
                    FaultEvent(time_s=up_at, kind="node-up", nodes=nodes)
                )
        if self.maintenance_start_s >= 0.0 and self.maintenance_nodes > 0:
            nodes = tuple(range(min(self.maintenance_nodes, spec.total_nodes)))
            if self.maintenance_start_s < duration_s:
                # Maintenance drains: running jobs finish, nodes go down
                # once free (kill_running=False).
                events.append(
                    FaultEvent(
                        time_s=self.maintenance_start_s,
                        kind="node-down",
                        nodes=nodes,
                        kill_running=False,
                    )
                )
                up_at = self.maintenance_start_s + self.maintenance_s
                if up_at < duration_s:
                    events.append(
                        FaultEvent(time_s=up_at, kind="node-up", nodes=nodes)
                    )
        if 0.0 <= self.cdu_blockage_time_s < duration_s:
            if not 0 <= self.cdu_index < spec.cooling.num_cdus:
                raise WorkloadError(
                    f"cdu_index {self.cdu_index} out of range for "
                    f"{spec.cooling.num_cdus} CDUs"
                )
            events.append(
                FaultEvent(
                    time_s=self.cdu_blockage_time_s,
                    kind="cdu-blockage",
                    cdu_index=self.cdu_index,
                    severity=self.cdu_blockage_severity,
                )
            )
            if self.cdu_clear_time_s >= self.cdu_blockage_time_s and (
                self.cdu_clear_time_s < duration_s
            ):
                events.append(
                    FaultEvent(
                        time_s=self.cdu_clear_time_s,
                        kind="cdu-blockage",
                        cdu_index=self.cdu_index,
                        severity=1.0,
                    )
                )
        return sort_events(events)


__all__ = ["FaultInjection"]
