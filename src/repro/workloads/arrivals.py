"""Job-role generators: arrival processes and telemetry-replay morphs.

Each generator emits scheduler jobs with no recorded start (the
simulated scheduler places them), drawing job bodies through the same
Table IV-calibrated machinery as the telemetry synthesizer so power
and size distributions stay paper-faithful.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.config.schema import SystemSpec
from repro.scheduler.arrivals import DiurnalArrivals, MMPPArrivals, PoissonArrivals
from repro.scheduler.job import Job
from repro.seeding import spawn_rng
from repro.telemetry import profiles
from repro.telemetry.synthesis import (
    SyntheticTelemetryGenerator,
    WorkloadDayParams,
)
from repro.workloads.base import (
    WorkloadError,
    WorkloadGenerator,
    register_generator,
)


def _emit_jobs(
    spec: SystemSpec,
    arrival_times: np.ndarray,
    rng: np.random.Generator,
    params: WorkloadDayParams,
) -> list[Job]:
    """Job bodies for the given arrivals, via the synthesizer's priors."""
    gen = SyntheticTelemetryGenerator(spec, seed=0)  # only sizes the bodies
    jobs: list[Job] = []
    for job_id, t in enumerate(arrival_times):
        record = gen._make_job(rng, params, job_id, float(t))
        job = Job.from_record(record)
        job.recorded_start = None  # let the simulated scheduler place it
        jobs.append(job)
    return jobs


@register_generator
@dataclass(frozen=True)
class DiurnalWorkload(WorkloadGenerator):
    """Diurnal (non-homogeneous Poisson) traffic with Table IV job bodies."""

    generator = "diurnal"
    role = "jobs"

    mean_arrival_s: float = 180.0
    amplitude: float = 0.6
    peak_hour: float = 16.0
    mean_nodes_per_job: float = 64.0
    mean_runtime_s: float = 1800.0
    single_node_fraction: float = 0.32

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.mean_arrival_s <= 0:
            raise WorkloadError("mean_arrival_s must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise WorkloadError("amplitude must be in [0, 1)")

    def day_params(self) -> WorkloadDayParams:
        return WorkloadDayParams(
            mean_arrival_s=self.mean_arrival_s,
            mean_nodes_per_job=self.mean_nodes_per_job,
            mean_runtime_s=self.mean_runtime_s,
            single_node_fraction=self.single_node_fraction,
        )

    def generate(self, spec: SystemSpec, duration_s: float) -> list[Job]:
        duration_s = self._check_duration(duration_s)
        process = DiurnalArrivals(
            self.mean_arrival_s,
            self.rng("arrivals"),
            amplitude=self.amplitude,
            peak_hour=self.peak_hour,
        )
        arrivals = process.sample_until(duration_s)
        return _emit_jobs(spec, arrivals, self.rng("jobs"), self.day_params())


@register_generator
@dataclass(frozen=True)
class BurstyWorkload(WorkloadGenerator):
    """Two-state MMPP (calm/burst) traffic with Table IV job bodies."""

    generator = "mmpp"
    role = "jobs"

    calm_arrival_s: float = 600.0
    burst_arrival_s: float = 60.0
    mean_calm_s: float = 7200.0
    mean_burst_s: float = 1800.0
    mean_nodes_per_job: float = 64.0
    mean_runtime_s: float = 1800.0
    single_node_fraction: float = 0.32

    def __post_init__(self) -> None:
        super().__post_init__()
        for name in ("calm_arrival_s", "burst_arrival_s", "mean_calm_s",
                     "mean_burst_s"):
            if getattr(self, name) <= 0:
                raise WorkloadError(f"{name} must be positive")

    def day_params(self) -> WorkloadDayParams:
        # Report the long-run mean interval for the params record.
        p_burst = self.mean_burst_s / (self.mean_calm_s + self.mean_burst_s)
        rate = (1.0 - p_burst) / self.calm_arrival_s + (
            p_burst / self.burst_arrival_s
        )
        return WorkloadDayParams(
            mean_arrival_s=1.0 / rate,
            mean_nodes_per_job=self.mean_nodes_per_job,
            mean_runtime_s=self.mean_runtime_s,
            single_node_fraction=self.single_node_fraction,
        )

    def generate(self, spec: SystemSpec, duration_s: float) -> list[Job]:
        duration_s = self._check_duration(duration_s)
        process = MMPPArrivals(
            self.calm_arrival_s,
            self.burst_arrival_s,
            self.rng("arrivals"),
            mean_calm_s=self.mean_calm_s,
            mean_burst_s=self.mean_burst_s,
        )
        arrivals = process.sample_until(duration_s)
        return _emit_jobs(spec, arrivals, self.rng("jobs"), self.day_params())


@register_generator
@dataclass(frozen=True)
class HeavyTailWorkload(WorkloadGenerator):
    """Poisson arrivals with Pareto job sizes and lognormal runtimes.

    Job node counts follow ``min_nodes * (1 + Pareto(alpha))`` — the
    heavy-tailed size regime where a few near-full-system jobs dominate
    allocated node-hours.
    """

    generator = "heavy-tail"
    role = "jobs"

    mean_arrival_s: float = 300.0
    alpha: float = 1.5
    min_nodes: int = 1
    mean_runtime_s: float = 1800.0
    runtime_cv: float = 1.2
    mean_cpu_util: float = 0.38
    mean_gpu_util: float = 0.62

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.mean_arrival_s <= 0:
            raise WorkloadError("mean_arrival_s must be positive")
        if self.alpha <= 0:
            raise WorkloadError("alpha must be positive")
        if self.min_nodes < 1:
            raise WorkloadError("min_nodes must be >= 1")
        if self.mean_runtime_s <= 0 or self.runtime_cv <= 0:
            raise WorkloadError("runtime parameters must be positive")

    def generate(self, spec: SystemSpec, duration_s: float) -> list[Job]:
        duration_s = self._check_duration(duration_s)
        arrivals = PoissonArrivals(
            self.mean_arrival_s, self.rng("arrivals")
        ).sample_until(duration_s)
        rng = self.rng("jobs")
        sigma2 = np.log1p(self.runtime_cv**2)
        mu = np.log(self.mean_runtime_s) - sigma2 / 2.0
        jobs: list[Job] = []
        for job_id, t in enumerate(arrivals):
            nodes = int(self.min_nodes * (1.0 + rng.pareto(self.alpha)))
            nodes = int(np.clip(nodes, 1, spec.total_nodes))
            runtime = float(
                np.clip(rng.lognormal(mu, np.sqrt(sigma2)), 60.0, 86000.0)
            )
            cpu_lv = float(
                np.clip(rng.normal(self.mean_cpu_util, 0.12), 0.02, 1.0)
            )
            gpu_lv = float(
                np.clip(rng.normal(self.mean_gpu_util, 0.18), 0.0, 1.0)
            )
            cpu, gpu = profiles.noisy_application_profile(
                runtime, rng, cpu_level=cpu_lv, gpu_level=gpu_lv
            )
            jobs.append(
                Job(
                    job_id=job_id,
                    name=f"heavy-{job_id}",
                    nodes_required=nodes,
                    wall_time=runtime,
                    cpu_util=cpu,
                    gpu_util=gpu,
                    submit_time=float(t),
                )
            )
        return jobs


@register_generator
@dataclass(frozen=True)
class JobMixMorph(WorkloadGenerator):
    """A telemetry-replay day with its job mix morphed by scale factors.

    Draws day ``day_index``'s parameters from the same per-day child
    stream as :class:`~repro.telemetry.synthesis.SyntheticTelemetryGenerator`
    (so with unit scales and the same seed the mix matches the replay
    day), then scales arrival rate, job sizes, and runtimes.
    """

    generator = "telemetry-morph"
    role = "jobs"

    day_index: int = 0
    arrival_scale: float = 1.0
    nodes_scale: float = 1.0
    runtime_scale: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.day_index < 0:
            raise WorkloadError("day_index must be >= 0")
        for name in ("arrival_scale", "nodes_scale", "runtime_scale"):
            if getattr(self, name) <= 0:
                raise WorkloadError(f"{name} must be positive")
        object.__setattr__(self, "day_index", int(self.day_index))

    def day_params(self) -> WorkloadDayParams:
        """The morphed day parameters (before job-level draws)."""
        base = WorkloadDayParams.draw(spawn_rng(self.seed, self.day_index))
        return dataclasses.replace(
            base,
            mean_arrival_s=base.mean_arrival_s / self.arrival_scale,
            mean_nodes_per_job=max(
                base.mean_nodes_per_job * self.nodes_scale, 1.0
            ),
            mean_runtime_s=base.mean_runtime_s * self.runtime_scale,
        )

    def generate(self, spec: SystemSpec, duration_s: float) -> list[Job]:
        duration_s = self._check_duration(duration_s)
        # Same per-day child stream as the synthesizer: params first,
        # then job draws continue on the same stream (synthesis.day()).
        rng = spawn_rng(self.seed, self.day_index)
        base = WorkloadDayParams.draw(rng)
        params = dataclasses.replace(
            base,
            mean_arrival_s=base.mean_arrival_s / self.arrival_scale,
            mean_nodes_per_job=max(
                base.mean_nodes_per_job * self.nodes_scale, 1.0
            ),
            mean_runtime_s=base.mean_runtime_s * self.runtime_scale,
        )
        arrivals = PoissonArrivals(
            params.mean_arrival_s, rng
        ).sample_until(duration_s)
        return _emit_jobs(spec, arrivals, rng, params)


__all__ = [
    "DiurnalWorkload",
    "BurstyWorkload",
    "HeavyTailWorkload",
    "JobMixMorph",
]
