"""Stress-suite campaigns: generate -> run -> validate over workload grids.

A :class:`StressSuite` wraps a persisted campaign over
:class:`~repro.scenarios.generated.GeneratedScenario` cells (any
scenario kind works, but generated grids are the point) and adds the
third leg of the stress loop: after the cells run, every persisted
result is swept through a battery of physical invariant checks —
finite headline metrics, no NaNs in the step series, non-negative
power, bounded utilization, PUE >= 1 where cooling is coupled, and
energy balance between the power series and the recorded energy
metric.  The verdicts land in ``validation.json`` next to the campaign
artifacts, so a stress campaign directory is self-describing: inputs
(content-addressed workload provenance in the manifest), outputs
(results JSONL), and the pass/fail audit.

Two execution shapes, chosen at :meth:`StressSuite.create`:

- ``screen_top_k=None`` — a plain resumable
  :class:`~repro.scenarios.campaign.Campaign`: every cell runs at its
  declared fidelity;
- ``screen_top_k=K`` — a
  :class:`~repro.fastpath.multifidelity.MultiFidelityCampaign`: every
  cell is screened at surrogate fidelity first (milliseconds per cell),
  only the top-K by ``metric`` are refined at full fidelity, and both
  phases are validated.

Either way the suite is resumable: re-running a killed suite simulates
only the missing cells (workload generation itself is memoized by
spec-SHA, so even re-planned cells regenerate nothing).
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.exceptions import ScenarioError
from repro.telemetry.schema import TRACE_QUANTA_S

VALIDATION_NAME = "validation.json"

#: Relative tolerance of the energy-balance re-integration check.
ENERGY_BALANCE_RTOL = 1e-9


@dataclasses.dataclass(frozen=True)
class CellValidation:
    """Invariant-check verdict for one persisted campaign cell."""

    phase: str
    index: int
    name: str
    failures: tuple = ()

    @property
    def passed(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict[str, Any]:
        return {
            "phase": self.phase,
            "index": self.index,
            "name": self.name,
            "passed": self.passed,
            "failures": list(self.failures),
        }


@dataclasses.dataclass(frozen=True)
class StressReport:
    """Outcome of one :meth:`StressSuite.run` / ``validate`` call."""

    path: str
    complete: bool
    cells: tuple = ()

    @property
    def validated(self) -> int:
        return len(self.cells)

    @property
    def failed(self) -> tuple:
        return tuple(c for c in self.cells if not c.passed)

    @property
    def passed(self) -> bool:
        """All validated cells clean (vacuously true only when complete)."""
        return not self.failed and (self.complete or bool(self.cells))

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "complete": self.complete,
            "validated": self.validated,
            "failed": len(self.failed),
            "cells": [c.to_dict() for c in self.cells],
        }

    def report(self) -> str:
        status = "complete" if self.complete else "partial"
        lines = [
            f"stress suite {self.path}: {status}, "
            f"{self.validated} cells validated, {len(self.failed)} failed"
        ]
        for cell in self.failed:
            for failure in cell.failures:
                lines.append(f"  FAIL [{cell.phase}:{cell.index}] "
                             f"{cell.name}: {failure}")
        return "\n".join(lines)


class StressSuite:
    """One persisted generate -> run -> validate stress campaign.

    Construct with :meth:`create` (new directory) or :meth:`open`
    (attach / resume).  ``surrogates`` is the runtime model-bundle
    handle for surrogate-fidelity cells — not persisted, pass it again
    on open, exactly as with the underlying campaign types.
    """

    def __init__(self, path: str | Path, *, surrogates=None) -> None:
        self.path = Path(path)
        self.surrogates = surrogates

    # -- construction ----------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str | Path,
        scenarios,
        *,
        system="frontier",
        screen_top_k: int | None = None,
        metric: str = "mean_power_mw",
        objective: str = "max",
        name: str | None = None,
        surrogates=None,
    ) -> "StressSuite":
        """Start a new stress-suite directory from declared scenarios.

        ``screen_top_k=None`` freezes a plain campaign; an integer K
        adds the surrogate screening phase (only the top-K cells by
        ``metric``/``objective`` are refined at full fidelity).
        """
        # Deferred imports: the campaign stack imports repro.scenarios,
        # which must be importable without repro.workloads and vice versa.
        if screen_top_k is not None:
            from repro.fastpath.multifidelity import MultiFidelityCampaign

            MultiFidelityCampaign.create(
                path,
                scenarios,
                system=system,
                top_k=screen_top_k,
                metric=metric,
                objective=objective,
                name=name,
                surrogates=surrogates,
            )
        else:
            from repro.scenarios.campaign import Campaign

            Campaign.create(
                path, scenarios, system=system, name=name,
                surrogates=surrogates,
            )
        return cls(path, surrogates=surrogates)

    @classmethod
    def open(cls, path: str | Path, *, surrogates=None) -> "StressSuite":
        """Attach to an existing stress-suite directory."""
        path = Path(path)
        from repro.fastpath.multifidelity import MultiFidelityCampaign
        from repro.scenarios.artifacts import CampaignStore

        if not (
            MultiFidelityCampaign.exists(path) or CampaignStore.exists(path)
        ):
            raise ScenarioError(f"no stress-suite campaign at {path}")
        return cls(path, surrogates=surrogates)

    @property
    def screened(self) -> bool:
        """Whether this suite has a surrogate screening phase."""
        from repro.fastpath.multifidelity import MultiFidelityCampaign

        return MultiFidelityCampaign.exists(self.path)

    def campaign(self):
        """The underlying campaign object (plain or multi-fidelity)."""
        if self.screened:
            from repro.fastpath.multifidelity import MultiFidelityCampaign

            return MultiFidelityCampaign.open(
                self.path, surrogates=self.surrogates
            )
        from repro.scenarios.campaign import Campaign

        return Campaign.open(self.path, surrogates=self.surrogates)

    # -- execution -------------------------------------------------------------

    def run(
        self,
        workers: int = 1,
        *,
        progress: Callable | None = None,
        stop_after: int | None = None,
        execution: str = "serial",
    ) -> StressReport:
        """Advance the campaign, then validate everything persisted.

        Fully resumable: completed cells are never re-simulated, and
        ``stop_after`` bounds how many new cells run this call (the
        interruption-testing knob of the underlying campaigns).  The
        validation sweep always covers *all* persisted cells — also the
        ones finished in earlier sessions — and rewrites
        ``validation.json``.

        ``execution="batched"`` vectorizes the pending cells through
        the :mod:`repro.batch` engine (plain campaigns only — a
        screened suite's surrogate phase has its own scheduling and
        ignores the knob).
        """
        campaign = self.campaign()
        kwargs: dict = dict(
            workers=workers, progress=progress, stop_after=stop_after
        )
        if not self.screened:
            kwargs["execution"] = execution
        campaign.run(**kwargs)
        return self.validate()

    def validate(self) -> StressReport:
        """Invariant-check every persisted cell; write ``validation.json``."""
        from repro.scenarios.artifacts import CampaignStore

        cells: list[CellValidation] = []
        complete = True
        for phase, store_path in self._stores():
            if not CampaignStore.exists(store_path):
                complete = False
                continue
            store = CampaignStore.open(store_path)
            done = store.completed()
            scenarios = store.cells()
            if set(done) < set(range(len(scenarios))):
                complete = False
            for index in sorted(done):
                stored = done[index]
                scenario = stored.scenario
                failures = _check_cell(stored, scenario)
                cells.append(
                    CellValidation(
                        phase=phase,
                        index=index,
                        name=stored.name,
                        failures=tuple(failures),
                    )
                )
        report = StressReport(
            path=str(self.path), complete=complete, cells=tuple(cells)
        )
        invalid = sum(1 for cell in cells if not cell.passed)
        if invalid:
            from repro.obs.registry import get_registry

            get_registry().counter(
                "repro_stress_cells_invalid_total"
            ).inc(invalid)
        (self.path / VALIDATION_NAME).write_text(
            json.dumps(report.to_dict(), indent=2), encoding="utf-8"
        )
        return report

    def load_validation(self) -> dict[str, Any] | None:
        """The last persisted ``validation.json`` document, if any."""
        path = self.path / VALIDATION_NAME
        if not path.exists():
            return None
        return json.loads(path.read_text(encoding="utf-8"))

    # -- helpers ---------------------------------------------------------------

    def _stores(self) -> list[tuple[str, Path]]:
        if self.screened:
            from repro.fastpath.multifidelity import REFINE_DIR, SCREEN_DIR

            return [
                ("screen", self.path / SCREEN_DIR),
                ("refine", self.path / REFINE_DIR),
            ]
        return [("cells", self.path)]


def _check_cell(stored, scenario) -> list[str]:
    """The per-cell invariant battery (pure function of stored data)."""
    failures: list[str] = []
    metrics = stored.metrics()
    for key in ("mean_power_mw", "energy_mwh", "loss_percent"):
        value = metrics.get(key, math.nan)
        if not (isinstance(value, float) and math.isfinite(value)):
            failures.append(f"metric {key} is not finite: {value!r}")
    coupled = bool(getattr(scenario, "with_cooling", False))
    pue = metrics.get("mean_pue", math.nan)
    if isinstance(pue, float) and math.isfinite(pue) and pue < 1.0 - 1e-6:
        failures.append(f"mean_pue {pue:.6f} below 1")

    series = stored.series
    for series_name, values in series.items():
        arr = np.asarray(values, dtype=np.float64)
        if np.isnan(arr).any():
            failures.append(f"series {series_name} contains NaN")
    power = np.asarray(series.get("system_power_w", ()), dtype=np.float64)
    if power.size:
        if np.any(power < 0.0):
            failures.append("system_power_w has negative samples")
        energy = float(np.sum(power) * TRACE_QUANTA_S / 3.6e9)
        recorded = metrics.get("energy_mwh", math.nan)
        if isinstance(recorded, float) and math.isfinite(recorded):
            tol = ENERGY_BALANCE_RTOL * max(abs(recorded), 1.0)
            if abs(energy - recorded) > tol:
                failures.append(
                    f"energy balance violated: series integrate to "
                    f"{energy:.9f} MWh, metrics record {recorded:.9f} MWh"
                )
    util = np.asarray(series.get("utilization", ()), dtype=np.float64)
    if util.size and (np.any(util < -1e-9) or np.any(util > 1.0 + 1e-9)):
        failures.append("utilization leaves [0, 1]")
    pue_series = np.asarray(series.get("cooling.pue", ()), dtype=np.float64)
    if pue_series.size and np.any(pue_series < 1.0 - 1e-6):
        failures.append("cooling.pue series dips below 1")
    if coupled and not pue_series.size and not math.isfinite(pue):
        # Coupled cells must produce a PUE somewhere (series or metric).
        failures.append("coupled cell recorded no PUE")
    return failures


__all__ = [
    "ENERGY_BALANCE_RTOL",
    "VALIDATION_NAME",
    "CellValidation",
    "StressReport",
    "StressSuite",
]
