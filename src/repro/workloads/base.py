"""Workload-generator core: registry, serialization, content addressing.

A :class:`WorkloadGenerator` is a frozen dataclass of parameters plus a
root ``seed``; ``generate(spec, duration_s)`` maps ``(generator,
params, seed)`` to a payload deterministically, following the
generator-dataset model — data is *addressed by its recipe*.  The
recipe hash is :meth:`WorkloadGenerator.spec_sha`: the SHA-256 of the
canonical JSON of ``to_dict()``, which campaign and service artifacts
persist as workload provenance.

Generators come in four roles, one per scenario input they produce:

=========  ==========================================================
role       payload of ``generate(spec, duration_s)``
=========  ==========================================================
jobs       ``list[repro.scheduler.job.Job]`` (no recorded starts)
events     ``tuple[repro.core.events.FaultEvent, ...]``, time-sorted
wetbulb    ``repro.telemetry.dataset.TimeSeries`` (degC)
grid       ``repro.power.emissions.GridSignal``
=========  ==========================================================

Randomness always flows through :func:`repro.seeding.spawn_rng` keyed
by ``(seed, generator-name, purpose)`` so child streams are stable
under parameter reordering — the precondition for content addressing.

This module must not import :mod:`repro.scenarios` (the scenario layer
imports us for :class:`~repro.scenarios.generated.GeneratedScenario`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import numbers
from dataclasses import dataclass

import numpy as np

from repro.config.loader import dumps_system
from repro.config.schema import SystemSpec
from repro.exceptions import ExaDigiTError
from repro.scheduler.job import Job
from repro.seeding import spawn_rng


class WorkloadError(ExaDigiTError):
    """Invalid workload-generator parameters or payloads."""


#: Generator kind -> class, populated by :func:`register_generator`.
GENERATOR_TYPES: dict[str, type["WorkloadGenerator"]] = {}

#: Roles a generator may declare.
GENERATOR_ROLES = ("jobs", "events", "wetbulb", "grid")


def register_generator(cls):
    """Class decorator: register a generator under its ``generator`` kind."""
    kind = getattr(cls, "generator", "")
    if not kind:
        raise WorkloadError(f"{cls.__name__} does not declare a generator kind")
    if getattr(cls, "role", "") not in GENERATOR_ROLES:
        raise WorkloadError(
            f"{cls.__name__} role must be one of {GENERATOR_ROLES}"
        )
    if kind in GENERATOR_TYPES:
        raise WorkloadError(f"duplicate generator kind {kind!r}")
    GENERATOR_TYPES[kind] = cls
    return cls


def _jsonable(value):
    if isinstance(value, bool):
        return value
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    if isinstance(value, str) or value is None:
        return value
    raise WorkloadError(
        f"generator parameters must be scalars, got {type(value).__name__}"
    )


@dataclass(frozen=True)
class WorkloadGenerator:
    """Base of all parametric generators (see module docstring).

    Subclasses are frozen dataclasses declaring class attributes
    ``generator`` (the JSON kind tag) and ``role``, parameter fields
    with defaults, and :meth:`generate`.
    """

    generator = ""  # class attribute, overridden per subclass
    role = ""

    seed: int = 0

    def __post_init__(self) -> None:
        if isinstance(self.seed, bool) or not isinstance(
            self.seed, numbers.Integral
        ):
            raise WorkloadError("seed must be an int")
        object.__setattr__(self, "seed", int(self.seed))

    # -- randomness ---------------------------------------------------------

    def rng(self, *key: int | str) -> np.random.Generator:
        """Child stream for ``key``, independent of other purposes."""
        return spawn_rng(self.seed, self.generator, *key)

    # -- generation ---------------------------------------------------------

    def generate(self, spec: SystemSpec, duration_s: float):
        """Produce this generator's payload (see role table)."""
        raise NotImplementedError

    def _check_duration(self, duration_s: float) -> float:
        duration_s = float(duration_s)
        if duration_s <= 0:
            raise WorkloadError("duration_s must be positive")
        return duration_s

    # -- serialization / content addressing ---------------------------------

    def to_dict(self) -> dict:
        doc: dict = {"generator": self.generator}
        for f in dataclasses.fields(self):
            doc[f.name] = _jsonable(getattr(self, f.name))
        return doc

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @staticmethod
    def from_dict(doc: dict) -> "WorkloadGenerator":
        if not isinstance(doc, dict):
            raise WorkloadError("generator document must be an object")
        kind = doc.get("generator")
        cls = GENERATOR_TYPES.get(kind)
        if cls is None:
            raise WorkloadError(
                f"unknown generator kind {kind!r}; "
                f"known: {sorted(GENERATOR_TYPES)}"
            )
        params = {k: v for k, v in doc.items() if k != "generator"}
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(params) - names
        if unknown:
            raise WorkloadError(
                f"unknown {kind!r} parameters: {sorted(unknown)}"
            )
        schema = cls.param_schema()
        for name, value in params.items():
            expected = schema[name]["type"]
            if expected == "int":
                ok = not isinstance(value, bool) and isinstance(
                    value, numbers.Integral
                )
            elif expected == "float":
                ok = not isinstance(value, bool) and isinstance(
                    value, numbers.Real
                )
            else:
                ok = True
            if not ok:
                raise WorkloadError(
                    f"{kind!r} parameter {name!r} must be {expected}, "
                    f"got {type(value).__name__}: {value!r}"
                )
        return cls(**params)

    @staticmethod
    def from_json(text: str) -> "WorkloadGenerator":
        return WorkloadGenerator.from_dict(json.loads(text))

    def spec_sha(self) -> str:
        """Content address of ``(generator, params, seed)``."""
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @classmethod
    def param_schema(cls) -> dict[str, dict]:
        """Typed parameter schema: name -> {"type", "default"}."""
        schema: dict[str, dict] = {}
        for f in dataclasses.fields(cls):
            default = (
                None if f.default is dataclasses.MISSING
                else _jsonable(f.default)
            )
            schema[f.name] = {
                "type": getattr(f.type, "__name__", str(f.type)),
                "default": default,
            }
        return schema

    def provenance(self) -> dict:
        """The provenance record artifacts persist for this generator."""
        return {"generator": self.generator, "spec_sha": self.spec_sha()}


# ---------------------------------------------------------------------------
# Generation cache
# ---------------------------------------------------------------------------

_GENERATION_CACHE: dict[tuple[str, str, float], object] = {}


def _system_sha(spec: SystemSpec) -> str:
    text = dumps_system(spec, indent=None)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _clone_job(job: Job) -> Job:
    """Fresh lifecycle state over shared (read-only) trace arrays."""
    return Job(
        job_id=job.job_id,
        name=job.name,
        nodes_required=job.nodes_required,
        wall_time=job.wall_time,
        cpu_util=job.cpu_util,
        gpu_util=job.gpu_util,
        submit_time=job.submit_time,
        priority=job.priority,
        recorded_start=job.recorded_start,
        trace_quanta=job.trace_quanta,
    )


def generate_cached(
    gen: WorkloadGenerator, spec: SystemSpec, duration_s: float
):
    """Memoized :meth:`WorkloadGenerator.generate`.

    Keyed by ``(spec_sha, system-sha, duration)`` — exactly the inputs
    that determine the payload.  Job payloads are cloned on checkout
    because engines mutate job lifecycle state; the other roles return
    immutable payloads and are shared.
    """
    key = (gen.spec_sha(), _system_sha(spec), float(duration_s))
    payload = _GENERATION_CACHE.get(key)
    if payload is None:
        payload = gen.generate(spec, duration_s)
        _GENERATION_CACHE[key] = payload
    if gen.role == "jobs":
        return [_clone_job(job) for job in payload]
    return payload


def clear_generation_cache() -> None:
    """Drop all memoized payloads (tests, memory pressure)."""
    _GENERATION_CACHE.clear()


__all__ = [
    "WorkloadError",
    "GENERATOR_TYPES",
    "GENERATOR_ROLES",
    "register_generator",
    "WorkloadGenerator",
    "generate_cached",
    "clear_generation_cache",
]
