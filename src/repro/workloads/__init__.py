"""Parametric workload generators, fault injection, and stress suites.

Every generator is a frozen dataclass with a typed parameter schema,
seed-deterministic output (``generate(spec, duration_s)`` is a pure
function of the generator's fields), JSON round-trip
(``WorkloadGenerator.from_dict(g.to_dict()) == g``), and a
content-addressed identity — :meth:`~repro.workloads.base.WorkloadGenerator.spec_sha`
hashes the canonical parameter document, so campaign artifacts can
record exactly which generated inputs produced them.

Generator catalog, by role:

=================  ========  ============================================
``diurnal``        jobs      day/night NHPP arrivals (thinning)
``mmpp``           jobs      two-state Markov-modulated bursty arrivals
``heavy-tail``     jobs      Pareto node counts, lognormal runtimes
``telemetry-morph`` jobs     telemetry-calibrated day, morphed job mix
``faults``         events    node outages, maintenance, CDU blockage
``weather-year``   wetbulb   seasonal + diurnal + OU-noise wet-bulb trace
``grid-signal``    grid      time-varying carbon intensity / price
=================  ========  ============================================

Quickstart::

    from repro.workloads import DiurnalWorkload, FaultInjection
    from repro.scenarios import GeneratedScenario

    scenario = GeneratedScenario(
        duration_s=1800.0,
        workload=DiurnalWorkload(mean_arrival_s=120.0, seed=7),
        faults=FaultInjection(node_mtbf_s=1800.0, seed=7),
        with_cooling=False,
    )
    result = scenario.run("frontier")

:class:`~repro.workloads.stress.StressSuite` drives whole grids of
generated scenarios through a resumable generate -> run -> validate
campaign, optionally screening at surrogate fidelity first.
"""

from repro.workloads.base import (
    GENERATOR_ROLES,
    GENERATOR_TYPES,
    WorkloadGenerator,
    clear_generation_cache,
    generate_cached,
    register_generator,
)
from repro.workloads.arrivals import (
    BurstyWorkload,
    DiurnalWorkload,
    HeavyTailWorkload,
    JobMixMorph,
)
from repro.workloads.faults import FaultInjection
from repro.workloads.weather import GridSignalGenerator, WeatherYear
from repro.workloads.stress import (
    CellValidation,
    StressReport,
    StressSuite,
)

__all__ = [
    "GENERATOR_ROLES",
    "GENERATOR_TYPES",
    "WorkloadGenerator",
    "register_generator",
    "generate_cached",
    "clear_generation_cache",
    "DiurnalWorkload",
    "BurstyWorkload",
    "HeavyTailWorkload",
    "JobMixMorph",
    "FaultInjection",
    "WeatherYear",
    "GridSignalGenerator",
    "CellValidation",
    "StressReport",
    "StressSuite",
]
