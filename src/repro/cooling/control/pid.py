"""Discrete PID controller with anti-windup and output clamping.

The Modelica control model regulates CDU pump speeds, control valves,
facility pump speeds, and tower fans with PID loops (paper section
III-C5), with gains taken from the physical controllers where available
and tuned against telemetry otherwise.  This implementation carries
vector state so one controller object can regulate all 25 CDUs at once.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CoolingModelError


class PidController:
    """Velocity-clamped positional PID: u = kp*e + ki*int(e) + kd*de/dt.

    Anti-windup freezes the integrator while the output is saturated in
    the direction that would deepen the saturation (clamping back-calculation).

    Parameters
    ----------
    kp, ki, kd:
        Gains (SI error units -> actuator units).
    u_min, u_max:
        Output clamps (e.g. pump speed fraction limits).
    width:
        Number of parallel channels (25 for the CDU bank).
    reverse:
        If True, the error sign is flipped (measurement above setpoint
        drives the output *up* — e.g. more cooling when too hot).
    """

    def __init__(
        self,
        kp: float,
        ki: float,
        kd: float = 0.0,
        *,
        u_min: float = 0.0,
        u_max: float = 1.0,
        width: int = 1,
        reverse: bool = False,
        u0: float | None = None,
    ) -> None:
        if u_max <= u_min:
            raise CoolingModelError("u_max must exceed u_min")
        if width < 1:
            raise CoolingModelError("width must be >= 1")
        self.kp = float(kp)
        self.ki = float(ki)
        self.kd = float(kd)
        self.u_min = float(u_min)
        self.u_max = float(u_max)
        self.width = int(width)
        self.sign = -1.0 if reverse else 1.0
        start = u0 if u0 is not None else (u_min + u_max) / 2.0
        self._integral = np.full(width, start / self.ki if self.ki else 0.0)
        self._prev_error = np.zeros(width)
        self._has_prev = False
        self.output = np.full(width, start)

    def reset(self, u0: float | None = None) -> None:
        """Re-initialize controller state."""
        start = u0 if u0 is not None else (self.u_min + self.u_max) / 2.0
        self._integral = np.full(self.width, start / self.ki if self.ki else 0.0)
        self._prev_error = np.zeros(self.width)
        self._has_prev = False
        self.output = np.full(self.width, start)

    def update(
        self,
        setpoint: np.ndarray | float,
        measurement: np.ndarray | float,
        dt: float,
    ) -> np.ndarray:
        """Advance one control step and return the clamped output array."""
        if dt <= 0:
            raise CoolingModelError("dt must be positive")
        error = self.sign * (
            np.broadcast_to(np.asarray(setpoint, dtype=np.float64), (self.width,))
            - np.broadcast_to(np.asarray(measurement, dtype=np.float64), (self.width,))
        )
        d_term = 0.0
        if self.kd and self._has_prev:
            d_term = self.kd * (error - self._prev_error) / dt
        candidate_integral = self._integral + error * dt
        u_unclamped = (
            self.kp * error + self.ki * candidate_integral + d_term
        )
        u = np.clip(u_unclamped, self.u_min, self.u_max)
        # Anti-windup: keep the integrator only where it doesn't deepen
        # saturation.
        saturated_hi = (u_unclamped > self.u_max) & (error > 0)
        saturated_lo = (u_unclamped < self.u_min) & (error < 0)
        keep = ~(saturated_hi | saturated_lo)
        self._integral = np.where(keep, candidate_integral, self._integral)
        self._prev_error = error
        self._has_prev = True
        self.output = u
        return u


__all__ = ["PidController"]
