"""Staging state machines for pumps, cooling towers, and heat exchangers.

Paper section III-C5: HTWPs stage up/down on the relative speed of the
running pumps; CTWPs stage on header pressure in concert with speeds;
cooling towers stage on header pressure and the *gradient* of the HTW
supply temperature; EHXs stage on the number of CTs in operation.  The
cross-loop coupling is handled with a delay transfer function
(:class:`DelayedSignal`) as described in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CoolingModelError


class StagingController:
    """Hysteretic up/down staging with dwell times.

    Stages up one unit when the signal stays above ``hi`` for
    ``up_delay_s``; stages down when below ``lo`` for ``down_delay_s``.
    Signals are typically relative pump speeds (stage up when the running
    pumps near their speed ceiling) or header-pressure errors.
    """

    def __init__(
        self,
        *,
        n_min: int,
        n_max: int,
        hi: float,
        lo: float,
        up_delay_s: float = 120.0,
        down_delay_s: float = 600.0,
        n0: int | None = None,
    ) -> None:
        if n_min < 0 or n_max < n_min:
            raise CoolingModelError("invalid staging bounds")
        if lo >= hi:
            raise CoolingModelError("staging requires lo < hi")
        if up_delay_s < 0 or down_delay_s < 0:
            raise CoolingModelError("delays must be >= 0")
        self.n_min = int(n_min)
        self.n_max = int(n_max)
        self.hi = float(hi)
        self.lo = float(lo)
        self.up_delay_s = float(up_delay_s)
        self.down_delay_s = float(down_delay_s)
        self.count = int(n0) if n0 is not None else n_min
        if not self.n_min <= self.count <= self.n_max:
            raise CoolingModelError("n0 outside staging bounds")
        self._above_s = 0.0
        self._below_s = 0.0

    def update(self, signal: float, dt: float) -> int:
        """Advance the dwell timers and return the staged unit count."""
        if dt <= 0:
            raise CoolingModelError("dt must be positive")
        if signal > self.hi:
            self._above_s += dt
            self._below_s = 0.0
        elif signal < self.lo:
            self._below_s += dt
            self._above_s = 0.0
        else:
            self._above_s = 0.0
            self._below_s = 0.0
        if self._above_s >= self.up_delay_s and self.count < self.n_max:
            self.count += 1
            self._above_s = 0.0
        elif self._below_s >= self.down_delay_s and self.count > self.n_min:
            self.count -= 1
            self._below_s = 0.0
        return self.count


class DelayedSignal:
    """First-order lag: the paper's delay transfer function between loops.

    The primary loop's staging decisions see a lagged view of the tower
    loop's state (and vice versa); this models that coupling as
    ``y' = (u - y)/tau`` discretized exactly.
    """

    def __init__(self, tau_s: float, y0: float = 0.0) -> None:
        if tau_s <= 0:
            raise CoolingModelError("tau must be positive")
        self.tau_s = float(tau_s)
        self.y = float(y0)

    def update(self, u: float, dt: float) -> float:
        """Advance the lag by ``dt`` toward input ``u``."""
        if dt <= 0:
            raise CoolingModelError("dt must be positive")
        alpha = 1.0 - np.exp(-dt / self.tau_s)
        self.y += alpha * (u - self.y)
        return self.y


__all__ = ["StagingController", "DelayedSignal"]
