"""Control-system models: PID regulators and staging state machines."""

from repro.cooling.control.pid import PidController
from repro.cooling.control.staging import StagingController, DelayedSignal

__all__ = ["PidController", "StagingController", "DelayedSignal"]
