"""Fused cooling-plant kernel: the whole plant in flat arrays.

The reference :class:`~repro.cooling.plant.CoolingPlant` advances each
3 s substep by walking a deep object graph (`CduLoopBank` →
`ThermalVolume`/`CounterflowHX`/`PumpGroup`/PIDs → `PrimaryLoop` →
`TowerLoop`) of dozens of tiny NumPy ops on size-25 arrays; per-call
overhead — method dispatch, ``asarray``/``broadcast_to`` validation,
``errstate`` contexts, temporaries — dominates every coupled run.

:class:`FusedPlantKernel` flattens the plant's mutable state into a
small set of preallocated arrays plus Python floats and advances *all*
substeps of a macro step in one call.  It is an overhead eliminator,
not a different model: every arithmetic operation mirrors the
reference's, in the same order, using the same NumPy ufuncs on the
same-shaped data wherever transcendental functions are involved
(``np.exp``/``np.expm1``/``np.power`` results can differ from ``libm``
at the ULP level, so the kernel never substitutes ``math`` equivalents
for them), and plain Python floats only for IEEE-exact operations
(``+ - * /``, comparisons, ``sqrt``).  The fused trajectory is
therefore *bit-identical* to the reference object graph, which stays
in the tree as the oracle (``CoolingPlant(backend="reference")``) and
as the snapshot interchange format.

Protocol with :class:`~repro.cooling.plant.CoolingPlant`:

- the kernel derives all constants from the plant's freshly built
  component objects (one source of truth — pump curves, resistances,
  HX UA values, PID gains, staging thresholds);
- each macro step, :meth:`advance` *pulls* the mutable state from the
  component objects into the flat buffers, runs the fused substep loop,
  and *pushes* the state back, so external mutation
  (:meth:`~repro.cooling.loops.cdu.CduLoopBank.set_blockage`, setpoint
  tuning, :meth:`~repro.cooling.plant.CoolingPlant.restore`) and
  external observation (tests, :class:`PlantSnapshot
  <repro.cooling.plant.PlantSnapshot>` capture, the shared
  ``_snapshot`` output builder) work unchanged on both backends.
"""

from __future__ import annotations

from math import ceil, sqrt

import numpy as np

from repro.exceptions import CoolingModelError

_exp = np.exp
_expm1 = np.expm1
_power = np.power


class _StageState:
    """Flat mirror of one :class:`StagingController`'s state + config."""

    __slots__ = (
        "count", "above", "below",
        "n_min", "n_max", "hi", "lo", "up_delay", "down_delay",
    )

    def __init__(self, ctl) -> None:
        self.n_min = ctl.n_min
        self.n_max = ctl.n_max
        self.hi = ctl.hi
        self.lo = ctl.lo
        self.up_delay = ctl.up_delay_s
        self.down_delay = ctl.down_delay_s
        self.pull(ctl)

    def pull(self, ctl) -> None:
        self.count = ctl.count
        self.above = float(ctl._above_s)
        self.below = float(ctl._below_s)

    def push(self, ctl) -> None:
        ctl.count = self.count
        ctl._above_s = self.above
        ctl._below_s = self.below

    def update(self, signal: float, dt: float) -> int:
        # Mirror of StagingController.update (pure-Python float ops).
        if signal > self.hi:
            self.above += dt
            self.below = 0.0
        elif signal < self.lo:
            self.below += dt
            self.above = 0.0
        else:
            self.above = 0.0
            self.below = 0.0
        if self.above >= self.up_delay and self.count < self.n_max:
            self.count += 1
            self.above = 0.0
        elif self.below >= self.down_delay and self.count > self.n_min:
            self.count -= 1
            self.below = 0.0
        return self.count


class _ScalarPid:
    """Flat mirror of a width-1 :class:`PidController` (Python floats)."""

    __slots__ = (
        "kp", "ki", "kd", "u_min", "u_max", "sign",
        "integral", "prev_error", "has_prev", "output",
    )

    def __init__(self, pid) -> None:
        if pid.width != 1:
            raise CoolingModelError("scalar PID mirror needs width 1")
        self.kp = pid.kp
        self.ki = pid.ki
        self.kd = pid.kd
        self.u_min = pid.u_min
        self.u_max = pid.u_max
        self.sign = pid.sign
        self.pull(pid)

    def pull(self, pid) -> None:
        self.integral = float(pid._integral[0])
        self.prev_error = float(pid._prev_error[0])
        self.has_prev = bool(pid._has_prev)
        self.output = float(pid.output[0])

    def push(self, pid) -> None:
        pid._integral = np.array([self.integral])
        pid._prev_error = np.array([self.prev_error])
        pid._has_prev = self.has_prev
        pid.output = np.array([self.output])

    def update(self, setpoint: float, measurement: float, dt: float) -> float:
        # Mirror of PidController.update for one channel; every
        # operation is IEEE-exact scalar arithmetic, so the result is
        # bit-identical to the vector implementation.
        error = self.sign * (setpoint - measurement)
        d_term = 0.0
        if self.kd and self.has_prev:
            d_term = self.kd * (error - self.prev_error) / dt
        candidate = self.integral + error * dt
        u_un = self.kp * error + self.ki * candidate + d_term
        u = u_un
        if u < self.u_min:
            u = self.u_min
        if u > self.u_max:
            u = self.u_max
        saturated = (u_un > self.u_max and error > 0) or (
            u_un < self.u_min and error < 0
        )
        if not saturated:
            self.integral = candidate
        self.prev_error = error
        self.has_prev = True
        self.output = u
        return u


class FusedPlantKernel:
    """Allocation-light fused backend for one :class:`CoolingPlant`.

    Built once per plant from its component objects; see the module
    docstring for the pull/advance/push protocol and the bit-identity
    contract.
    """

    def __init__(self, plant) -> None:
        cdus, primary, tower = plant.cdus, plant.primary, plant.tower
        n = cdus.n
        self.n = n

        # --- CDU-bank constants -------------------------------------------------
        self.cdu_res_k = cdus.resistance.k
        q1, _ = cdus.pumps.operating_point(cdus.resistance, 1.0)
        self.cdu_q1 = q1
        valve = cdus.valve
        self.valve_cv_max = valve.cv_max_flow
        self.valve_dp_rated = valve.dp_rated
        self.valve_rangeability = valve.rangeability
        self.hx_ua = cdus.hx.ua
        pg = cdus.hot.fluid
        self.pg_rho_ref = pg.rho_ref_kg_m3
        self.pg_drho = pg.drho_dt
        self.pg_tref = pg.t_ref_c
        self.pg_cp = pg.cp_j_kg_c
        water = primary.supply.fluid
        self.w_rho_ref = water.rho_ref_kg_m3
        self.w_drho = water.drho_dt
        self.w_tref = water.t_ref_c
        self.w_cp = water.cp_j_kg_c
        self.hot_mcp = pg.thermal_mass(cdus.hot.volume_m3)
        self.cold_mcp = pg.thermal_mass(cdus.cold.volume_m3)

        # Stacked PID bank: channels [:n] = pump-speed PID, [n:] = valve
        # PID.  Per-channel gain/bound/sign vectors make one fused
        # update bit-identical to the two scalar-gain reference updates.
        w = 2 * n
        pp, vp = cdus.pump_pid, cdus.valve_pid
        if pp.kd or vp.kd:
            raise CoolingModelError("fused CDU PID bank assumes kd == 0")
        self.kp50 = np.concatenate([np.full(n, pp.kp), np.full(n, vp.kp)])
        self.ki50 = np.concatenate([np.full(n, pp.ki), np.full(n, vp.ki)])
        self.umin50 = np.concatenate(
            [np.full(n, pp.u_min), np.full(n, vp.u_min)]
        )
        self.umax50 = np.concatenate(
            [np.full(n, pp.u_max), np.full(n, vp.u_max)]
        )
        self.sign50 = np.concatenate(
            [np.full(n, pp.sign), np.full(n, vp.sign)]
        )

        # --- primary-loop constants ---------------------------------------------
        self.p_res_k = primary.resistance.k
        self.p_h0 = primary.pumps.curve.h0
        self.p_kp = primary.pumps.curve.k_p
        self.p_min_speed = primary.pumps.spec.min_speed_fraction
        self.p_count = primary.pumps.spec.count
        self.ehx_ua = primary.ehx.ua
        self.p_num_ehx = primary.num_ehx_installed
        self.p_mcp = water.thermal_mass(primary.supply.volume_m3)
        self.cells_per_tower = plant.spec.cooling_towers.cells_per_tower
        # Deliverable flow at full speed per running-pump count (the
        # reference recomputes this constant every substep).
        qcap = [0.0]
        for m in range(1, self.p_count + 1):
            denom = self.p_kp / m**2 + self.p_res_k
            qcap.append(float(np.sqrt(1.0**2 * self.p_h0 / denom)))
        self.p_qcap = qcap

        # --- tower-loop constants -----------------------------------------------
        self.t_res_k = tower.resistance.k
        self.t_h0 = tower.pumps.curve.h0
        self.t_kp = tower.pumps.curve.k_p
        farm = tower.farm
        self.farm_eff = farm.spec.design_effectiveness
        self.farm_design_flow = farm.design_flow_per_cell
        self.t_mcp = water.thermal_mass(tower.supply.volume_m3)
        self.delay_tau = tower.htws_delay.tau_s
        self._alpha_h = None
        self._alpha = 0.0

        # --- flat state ---------------------------------------------------------
        self.blockage = np.empty(n)
        self.sec_flow = np.empty(n)
        self.pri_flow = np.empty(n)
        self.hot_t = np.empty(n)
        self.cold_t = np.empty(n)
        self.hx_heat = np.empty(n)
        self.pri_return = np.empty(n)
        self.out50 = np.empty(w)
        self.integ50 = np.empty(w)
        self.preve50 = np.empty(w)
        self.sp50 = np.empty(w)
        self.meas50 = np.empty(w)
        self.pump_has_prev = False
        self.valve_has_prev = False
        self.fan_pid = _ScalarPid(tower.fan_pid)
        self.speed_pid = _ScalarPid(tower.speed_pid)
        self.p_stage = _StageState(primary.pump_staging)
        self.t_stage = _StageState(tower.pump_staging)
        self.cell_stage = _StageState(tower.cell_staging)

        # --- scratch buffers (sized once, reused every substep) -----------------
        self.e50 = np.empty(w)
        self.c50a = np.empty(w)
        self.c50b = np.empty(w)
        self.m50a = np.empty(w, dtype=bool)
        self.m50b = np.empty(w, dtype=bool)
        self.m50c = np.empty(w, dtype=bool)
        self.b = [np.empty(n) for _ in range(9)]
        self.mb = [np.empty(n, dtype=bool) for _ in range(3)]
        # Dedicated volume-advance scratch (may not alias the b pool:
        # volume inputs can be views of it).
        self.v1 = np.empty(n)
        self.v2 = np.empty(n)
        self.mv = np.empty(n, dtype=bool)

        self.pull(plant)

    # -- state exchange ----------------------------------------------------------

    def pull(self, plant) -> None:
        """Copy all mutable state from the component objects."""
        cdus, primary, tower = plant.cdus, plant.primary, plant.tower
        n = self.n
        self.header_dp = float(plant.primary_header_dp_pa)
        if self.header_dp < 0:
            raise CoolingModelError("header dp must be non-negative")
        # Setpoints are pulled every macro step: runtime tuning (the
        # setpoint optimizer) must reach the fused loop.
        self.sp50[:n] = cdus.dp_setpoint_pa
        self.sp50[n:] = cdus.supply_setpoint_c
        self.p_supply_sp = float(primary.supply_setpoint_c)
        self.t_press_sp = float(tower.pressure_setpoint_pa)

        self.blockage[:] = cdus.blockage_factor
        self.sec_flow[:] = cdus.secondary_flow
        self.pri_flow[:] = cdus.primary_flow
        self.hot_t[:] = cdus.hot.temp_c
        self.cold_t[:] = cdus.cold.temp_c
        self.hx_heat[:] = cdus.hx_heat_w
        self.pri_return[:] = cdus.primary_return_c
        self.out50[:n] = cdus.pump_speed
        self.out50[n:] = cdus.valve_opening
        self.integ50[:n] = cdus.pump_pid._integral
        self.integ50[n:] = cdus.valve_pid._integral
        self.preve50[:n] = cdus.pump_pid._prev_error
        self.preve50[n:] = cdus.valve_pid._prev_error
        self.pump_has_prev = bool(cdus.pump_pid._has_prev)
        self.valve_has_prev = bool(cdus.valve_pid._has_prev)

        self.p_n_running = primary.pumps.n_running
        self.p_n_ehx = primary.n_ehx
        self.p_supply_t = float(primary.supply.temp_c[0])
        self.p_return_t = float(primary.return_.temp_c[0])
        self.p_pump_speed = float(primary.pump_speed)
        self.p_total_flow = float(primary.total_flow)
        self.p_ehx_heat = float(primary.ehx_heat_w)
        self.p_stage.pull(primary.pump_staging)

        self.t_n_running = tower.pumps.n_running
        self.t_supply_t = float(tower.supply.temp_c[0])
        self.t_return_t = float(tower.return_.temp_c[0])
        self.t_pump_speed = float(tower.pump_speed)
        self.t_total_flow = float(tower.total_flow)
        self.t_fan_speed = float(tower.fan_speed)
        self.t_stage.pull(tower.pump_staging)
        self.cell_stage.pull(tower.cell_staging)
        self.delay_y = float(tower.htws_delay.y)
        self.prev_htws = tower._prev_htws_c
        self.fan_pid.pull(tower.fan_pid)
        self.speed_pid.pull(tower.speed_pid)

    def push(self, plant) -> None:
        """Write the advanced state back onto the component objects."""
        cdus, primary, tower = plant.cdus, plant.primary, plant.tower
        n = self.n
        cdus.secondary_flow = self.sec_flow.copy()
        cdus.primary_flow = self.pri_flow.copy()
        cdus.hot.temp_c = self.hot_t.copy()
        cdus.cold.temp_c = self.cold_t.copy()
        cdus.hx_heat_w = self.hx_heat.copy()
        cdus.primary_return_c = self.pri_return.copy()
        cdus.pump_speed = self.out50[:n].copy()
        cdus.valve_opening = self.out50[n:].copy()
        cdus.pump_pid.output = self.out50[:n].copy()
        cdus.valve_pid.output = self.out50[n:].copy()
        cdus.pump_pid._integral = self.integ50[:n].copy()
        cdus.valve_pid._integral = self.integ50[n:].copy()
        cdus.pump_pid._prev_error = self.preve50[:n].copy()
        cdus.valve_pid._prev_error = self.preve50[n:].copy()
        cdus.pump_pid._has_prev = self.pump_has_prev
        cdus.valve_pid._has_prev = self.valve_has_prev

        primary.pumps.n_running = self.p_n_running
        primary.n_ehx = self.p_n_ehx
        primary.supply.temp_c = np.array([self.p_supply_t])
        primary.return_.temp_c = np.array([self.p_return_t])
        primary.pump_speed = self.p_pump_speed
        primary.total_flow = self.p_total_flow
        primary.ehx_heat_w = self.p_ehx_heat
        self.p_stage.push(primary.pump_staging)

        tower.pumps.n_running = self.t_n_running
        tower.supply.temp_c = np.array([self.t_supply_t])
        tower.return_.temp_c = np.array([self.t_return_t])
        tower.pump_speed = self.t_pump_speed
        tower.total_flow = self.t_total_flow
        tower.fan_speed = self.t_fan_speed
        self.t_stage.push(tower.pump_staging)
        self.cell_stage.push(tower.cell_staging)
        tower.htws_delay.y = self.delay_y
        tower._prev_htws_c = self.prev_htws
        self.fan_pid.push(tower.fan_pid)
        self.speed_pid.push(tower.speed_pid)

    # -- helpers -----------------------------------------------------------------

    def _advance_volume_bank(self, temp, t_in, flow, h, mass_cp):
        """Fused ThermalVolume.advance for the width-n PG25 volumes.

        Zero heat injection (plant volumes always receive heat through
        their inlet temperature), so the stagnant branch keeps the old
        temperature exactly.
        """
        v1, v2, mv = self.v1, self.v2, self.mv
        np.subtract(temp, self.pg_tref, out=v1)
        np.multiply(v1, self.pg_drho, out=v1)
        np.add(v1, self.pg_rho_ref, out=v1)
        np.multiply(v1, flow, out=v1)
        np.multiply(v1, self.pg_cp, out=v1)  # heat-capacity rate
        np.greater(flow, 1e-9, out=mv)
        np.maximum(v1, 1e-12, out=v2)
        np.divide(mass_cp, v2, out=v2)  # tau
        np.divide(-h, v2, out=v2)
        _expm1(v2, out=v2)
        np.negative(v2, out=v2)  # relax
        np.subtract(t_in, temp, out=v1)
        np.multiply(v1, v2, out=v1)
        np.add(temp, v1, out=v1)
        if mv.all():
            temp[:] = v1
        else:
            np.copyto(temp, v1, where=mv)

    def _advance_volume_scalar(self, temp, t_in, flow, h, mass_cp):
        """Scalar ThermalVolume.advance mirror (facility water volumes)."""
        if flow > 1e-9:
            cap = (
                self.w_rho_ref + self.w_drho * (temp - self.w_tref)
            ) * flow * self.w_cp
            if cap < 1e-12:
                cap = 1e-12
            tau = mass_cp / cap
            relax = -float(_expm1(-h / tau))
            return temp + (t_in - temp) * relax
        return temp

    def _ehx_transfer(self, t_hot, flow_hot, t_cold, flow_cold, ua):
        """Scalar CounterflowHX.transfer mirror (water/water EHX bank)."""
        c_hot = (
            self.w_rho_ref + self.w_drho * (t_hot - self.w_tref)
        ) * flow_hot * self.w_cp
        c_cold = (
            self.w_rho_ref + self.w_drho * (t_cold - self.w_tref)
        ) * flow_cold * self.w_cp
        c_min = c_hot if c_hot < c_cold else c_cold
        c_max = c_hot if c_hot > c_cold else c_cold
        dead = c_min <= 1e-9
        c_min_safe = 1.0 if dead else c_min
        cr = 0.0 if dead else c_min / (c_max if c_max > 1e-12 else 1e-12)
        ntu = ua / c_min_safe
        e = float(_exp(-ntu * (1.0 - cr)))
        den = 1.0 - cr * e
        eps = (1.0 - e) / (den if den > 1e-12 else 1e-12)
        if abs(1.0 - cr) < 1e-6:
            eps = ntu / (1.0 + ntu)
        if eps < 0.0:
            eps = 0.0
        elif eps > 1.0:
            eps = 1.0
        if dead:
            eps = 0.0
        q = eps * c_min * (t_hot - t_cold)
        t_hot_out = (
            t_hot - q / (c_hot if c_hot > 1e-12 else 1e-12)
            if c_hot > 1e-9
            else t_hot
        )
        t_cold_out = (
            t_cold + q / (c_cold if c_cold > 1e-12 else 1e-12)
            if c_cold > 1e-9
            else t_cold
        )
        return q, t_hot_out, t_cold_out

    def _farm_outlet(self, t_in, wetbulb, total_flow, n_cells, fan_speed):
        """Scalar CoolingTowerFarm.outlet_temperature mirror."""
        if n_cells == 0 or total_flow == 0:
            return float(t_in)
        per_cell = total_flow / n_cells
        fan = 0.0 if fan_speed < 0.0 else (1.0 if fan_speed > 1.0 else fan_speed)
        loading = per_cell / self.farm_design_flow
        if loading < 1e-3:
            loading = 1e-3
        # The reference's clip/maximum on 0-d inputs return np.float64
        # *scalars*, so its ``fan**0.6`` / ``loading**-0.4`` go through
        # the numpy scalar pow (which differs from the array-ufunc pow
        # at the ULP level) — mirror exactly that path.
        f = float(np.float64(fan) ** 0.6)
        if f < 0.15:
            f = 0.15
        eps = self.farm_eff * f * float(np.float64(loading) ** -0.4)
        if eps < 0.0:
            eps = 0.0
        elif eps > 0.98:
            eps = 0.98
        return float(t_in - eps * (t_in - wetbulb))

    # -- scalar substep sections -------------------------------------------------
    #
    # The facility half of a substep is pure Python-float state: these
    # three sections are factored into methods so the batched kernel
    # (:class:`repro.batch.kernel.BatchedPlantKernel`) can run them per
    # lane while vectorizing the CDU-bank array sections across lanes.

    def _alpha_for(self, h: float) -> float:
        """The HTWS delay filter coefficient for substep ``h`` (memoized)."""
        if self._alpha_h != h:
            self._alpha = 1.0 - float(_exp(-h / self.delay_tau))
            self._alpha_h = h
        return self._alpha

    def _tower_controls(self, h: float, alpha: float) -> float:
        """Substep section 2: tower fan/pump/cell controls (all scalar).

        Returns the HTW supply temperature the CDU thermal section uses.
        """
        htws = self.p_supply_t
        if self.prev_htws is None:
            self.prev_htws = htws
        gradient = (htws - self.prev_htws) / h * 60.0
        self.prev_htws = htws
        err = htws - self.p_supply_sp
        self.delay_y += alpha * ((err + 2.0 * gradient) - self.delay_y)
        self.t_fan_speed = self.fan_pid.update(self.p_supply_sp, htws, h)
        self.cell_stage.update(self.delay_y, h)
        self.t_n_running = self.t_stage.count
        q = self.t_total_flow
        dp = self.t_res_k * q * abs(q)
        self.t_pump_speed = self.speed_pid.update(self.t_press_sp, dp, h)
        self.t_stage.update(self.t_pump_speed, h)
        if self.t_n_running == 0:
            self.t_total_flow = 0.0
        else:
            s = self.t_pump_speed
            s = 0.0 if s < 0.0 else (1.0 if s > 1.0 else s)
            if s <= 0.0:
                self.t_total_flow = 0.0
            else:
                denom = self.t_kp / self.t_n_running**2 + self.t_res_k
                self.t_total_flow = sqrt(s**2 * self.t_h0 / denom)
        return htws

    def _primary_tracking(self, demand: float, h: float) -> None:
        """Substep sections 4-5: primary speed/flow/staging + EHX staging."""
        self.p_n_running = self.p_stage.count
        if demand <= 0 or self.p_n_running == 0:
            speed = 0.0
        else:
            denom = self.p_kp / self.p_n_running**2 + self.p_res_k
            speed = sqrt(demand**2 * denom / self.p_h0)
            if speed > 1.0:
                speed = 1.0
        self.p_pump_speed = max(speed, self.p_min_speed)
        q_cap = self.p_qcap[self.p_n_running]
        self.p_total_flow = min(demand, q_cap)
        self.p_stage.update(self.p_pump_speed, h)
        towers_running = ceil(
            self.cell_stage.count / max(self.cells_per_tower, 1)
        )
        m = towers_running
        self.p_n_ehx = (
            1 if m < 1 else (self.p_num_ehx if m > self.p_num_ehx else m)
        )

    def _facility_thermal(self, mix_c: float, wetbulb_c: float, h: float) -> None:
        """Substep sections 8-9: primary + tower thermal advance."""
        self.p_return_t = self._advance_volume_scalar(
            self.p_return_t, mix_c, self.p_total_flow, h, self.p_mcp
        )
        ua = self.p_n_ehx * self.ehx_ua
        qx, t_hot2, ehx_cold_out = self._ehx_transfer(
            self.p_return_t,
            self.p_total_flow,
            self.t_supply_t,
            self.t_total_flow,
            ua,
        )
        self.p_ehx_heat = float(qx)
        self.p_supply_t = self._advance_volume_scalar(
            self.p_supply_t, t_hot2, self.p_total_flow, h, self.p_mcp
        )
        self.t_return_t = self._advance_volume_scalar(
            self.t_return_t, ehx_cold_out, self.t_total_flow, h, self.t_mcp
        )
        t_ct_out = self._farm_outlet(
            self.t_return_t,
            wetbulb_c,
            self.t_total_flow,
            self.cell_stage.count,
            self.t_fan_speed,
        )
        self.t_supply_t = self._advance_volume_scalar(
            self.t_supply_t, t_ct_out, self.t_total_flow, h, self.t_mcp
        )

    # -- the fused macro step ----------------------------------------------------

    def advance(self, plant, cdu_heat_w, wetbulb_c, h, n_sub: int) -> None:
        """Advance ``n_sub`` substeps of size ``h`` (one macro step)."""
        self.pull(plant)
        n = self.n
        b = self.b
        mb0, mb1, mb2 = self.mb
        blockage = self.blockage
        sec_flow = self.sec_flow
        pri_flow = self.pri_flow
        hot_t = self.hot_t
        cold_t = self.cold_t
        pri_return = self.pri_return
        hx_heat = self.hx_heat
        out50 = self.out50
        integ50 = self.integ50
        sp50 = self.sp50
        meas50 = self.meas50
        e50 = self.e50
        c50a = self.c50a
        c50b = self.c50b
        m50a = self.m50a
        m50b = self.m50b
        m50c = self.m50c
        pump_speed = out50[:n]
        valve_opening = out50[n:]
        cdu_res_k = self.cdu_res_k
        hx_ua = self.hx_ua
        pg_tref, pg_drho, pg_rho_ref, pg_cp = (
            self.pg_tref, self.pg_drho, self.pg_rho_ref, self.pg_cp
        )
        heat = cdu_heat_w
        # Ufunc locals: the loop below issues a few hundred tiny calls
        # per macro step, so attribute lookups are measurable.
        mul, add, sub, div = np.multiply, np.add, np.subtract, np.divide
        npmax, npmin, nsum = np.maximum, np.minimum, np.sum
        gt, lt, le, absolute = np.greater, np.less, np.less_equal, np.absolute
        where, clip, neg = np.where, np.clip, np.negative
        land, lor, lnot = np.logical_and, np.logical_or, np.logical_not
        copyto = np.copyto
        exp = _exp
        advance_bank = self._advance_volume_bank
        # Equal-percentage valve flow at the (constant) header dp.
        dp_term = float(np.sqrt(self.header_dp / self.valve_dp_rated))
        alpha = self._alpha_for(h)

        for _ in range(n_sub):
            # --- 1. CDU controls: the stacked pump-speed + valve PID bank.
            absolute(sec_flow, out=b[0])
            mul(sec_flow, cdu_res_k, out=b[1])
            mul(b[1], b[0], out=b[1])
            mul(b[1], blockage, out=b[1])  # measured loop dp
            meas50[:n] = b[1]
            meas50[n:] = cold_t
            sub(sp50, meas50, out=e50)
            mul(e50, self.sign50, out=e50)
            mul(e50, h, out=c50a)
            add(integ50, c50a, out=c50a)  # candidate integral
            mul(self.kp50, e50, out=c50b)
            mul(self.ki50, c50a, out=out50)
            add(c50b, out50, out=c50b)  # unclamped output
            clip(c50b, self.umin50, self.umax50, out=out50)
            gt(c50b, self.umax50, out=m50a)
            gt(e50, 0.0, out=m50b)
            land(m50a, m50b, out=m50a)
            lt(c50b, self.umin50, out=m50b)
            lt(e50, 0.0, out=m50c)
            land(m50b, m50c, out=m50b)
            lor(m50a, m50b, out=m50a)
            lnot(m50a, out=m50a)  # integrator keep mask
            copyto(integ50, c50a, where=m50a)
            copyto(self.preve50, e50)
            self.pump_has_prev = True
            self.valve_has_prev = True

            # --- 2. Tower controls (all scalar state).
            htws = self._tower_controls(h, alpha)

            # --- 3. Hydraulics: secondary pump points + valve draws.
            np.sqrt(blockage, out=b[0])
            mul(pump_speed, self.cdu_q1, out=sec_flow)
            div(sec_flow, b[0], out=sec_flow)
            # The valve PID clamps its output to [0.05, 1], so the
            # reference's re-clip in flow_fraction is an exact identity.
            sub(valve_opening, 1.0, out=b[0])
            _power(self.valve_rangeability, b[0], out=b[0])
            mul(b[0], self.valve_cv_max, out=pri_flow)
            mul(pri_flow, dp_term, out=pri_flow)

            # --- 4-5. Primary loop tracks the total valve demand; EHX
            # staging follows the tower-cell count.
            demand = float(nsum(pri_flow))
            self._primary_tracking(demand, h)

            # --- 6. CDU thermal: racks -> hot volume -> HEX-1600 -> cold.
            sub(cold_t, pg_tref, out=b[0])
            mul(b[0], pg_drho, out=b[0])
            add(b[0], pg_rho_ref, out=b[0])
            mul(b[0], sec_flow, out=b[0])
            mul(b[0], pg_cp, out=b[0])  # secondary cap rate
            npmax(b[0], 1e-12, out=b[1])
            div(heat, b[1], out=b[1])
            gt(b[0], 1e-9, out=mb0)
            if mb0.all():
                add(cold_t, b[1], out=b[1])  # rack outlet temperature
            else:
                rise = where(mb0, b[1], 0.0)
                add(cold_t, rise, out=b[1])
            advance_bank(hot_t, b[1], sec_flow, h, self.hot_mcp)
            # HEX-1600 bank: secondary hot side -> primary cold side.
            sub(hot_t, pg_tref, out=b[0])
            mul(b[0], pg_drho, out=b[0])
            add(b[0], pg_rho_ref, out=b[0])
            mul(b[0], sec_flow, out=b[0])
            mul(b[0], pg_cp, out=b[0])  # c_hot
            rho_w = self.w_rho_ref + self.w_drho * (htws - self.w_tref)
            mul(pri_flow, rho_w, out=b[1])
            mul(b[1], self.w_cp, out=b[1])  # c_cold
            npmin(b[0], b[1], out=b[2])  # c_min
            npmax(b[0], b[1], out=b[3])  # c_max
            le(b[2], 1e-9, out=mb0)  # dead channels
            npmax(b[3], 1e-12, out=b[4])
            div(b[2], b[4], out=b[4])
            if mb0.any():
                dead_any = True
                cr = where(mb0, 0.0, b[4])
                c_min_safe = where(mb0, 1.0, b[2])
            else:
                dead_any = False
                cr = b[4]
                c_min_safe = b[2]
            div(hx_ua, c_min_safe, out=b[3])  # ntu (c_max retired)
            sub(1.0, cr, out=b[5])
            absolute(b[5], out=b[6])
            lt(b[6], 1e-6, out=mb1)  # near-unity Cr
            mul(b[3], b[5], out=b[6])
            neg(b[6], out=b[6])
            exp(b[6], out=b[6])  # e
            sub(1.0, b[6], out=b[5])
            mul(cr, b[6], out=b[7])
            sub(1.0, b[7], out=b[7])
            npmax(b[7], 1e-12, out=b[7])
            div(b[5], b[7], out=b[5])  # general effectiveness
            add(b[3], 1.0, out=b[7])
            div(b[3], b[7], out=b[7])  # balanced effectiveness
            eps = where(mb1, b[7], b[5]) if mb1.any() else b[5]
            clip(eps, 0.0, 1.0, out=eps)
            if dead_any:
                mul(eps, ~mb0, out=eps)  # dead channels: eps = 0
            sub(hot_t, htws, out=b[6])
            mul(eps, b[2], out=b[4])
            mul(b[4], b[6], out=b[4])  # q
            hx_heat[:] = b[4]
            npmax(b[0], 1e-12, out=b[7])
            div(b[4], b[7], out=b[7])
            sub(hot_t, b[7], out=b[7])
            gt(b[0], 1e-9, out=mb1)
            t_hot_out = b[7] if mb1.all() else where(mb1, b[7], hot_t)
            npmax(b[1], 1e-12, out=b[8])
            div(b[4], b[8], out=b[8])
            add(b[8], htws, out=b[8])
            gt(b[1], 1e-9, out=mb2)
            if mb2.all():
                pri_return[:] = b[8]
            else:
                pri_return[:] = where(mb2, b[8], htws)
            advance_bank(cold_t, t_hot_out, sec_flow, h, self.cold_mcp)

            # --- 7. Flow-weighted CDU return mix into the HTW header.
            # pri_flow is unchanged since step 4, so its sum is reused.
            if demand > 1e-9:
                mul(pri_flow, pri_return, out=b[0])
                mix_c = float(nsum(b[0]) / demand)
            else:
                mix_c = self.p_return_t

            # --- 8-9. Primary + tower loop thermal (all scalar).
            self._facility_thermal(mix_c, wetbulb_c, h)

        self.push(plant)



__all__ = ["FusedPlantKernel"]
