"""AutoCSM: automated cooling-system model generation (paper Section V).

The paper's AutoCSM inputs a JSON specification of a cooling-system
architecture and emits an initial Modelica model compiled to an FMU.
Here the target is the library's own component graph: ``generate_plant``
builds a ready-to-step :class:`~repro.cooling.fmu.CoolingFMU` directly
from a :class:`~repro.config.schema.SystemSpec` (or its JSON file), and
``autocsm_report`` emits the generated architecture as a human-readable
inventory — the analogue of the generated model source.
"""

from __future__ import annotations

from pathlib import Path

from repro.config.loader import load_system
from repro.config.schema import SystemSpec
from repro.cooling.fmu import CoolingFMU
from repro.cooling.plant import output_names
from repro.exceptions import ConfigError


def generate_plant(
    spec: SystemSpec | str | Path, *, substep_s: float = 3.0
) -> CoolingFMU:
    """Build a cooling FMU from a system spec or its JSON file path."""
    if isinstance(spec, (str, Path)):
        spec = load_system(spec)
    if not isinstance(spec, SystemSpec):
        raise ConfigError("generate_plant needs a SystemSpec or JSON path")
    return CoolingFMU(spec.cooling, substep_s=substep_s)


def autocsm_report(spec: SystemSpec | str | Path) -> str:
    """Human-readable inventory of the generated cooling model.

    Mirrors the paper's generated-model artifact: loops, component
    counts, design points, and the output-variable table.
    """
    if isinstance(spec, (str, Path)):
        spec = load_system(spec)
    c = spec.cooling
    lines = [
        f"AutoCSM generated cooling model for system '{spec.name}'",
        "=" * 60,
        "",
        "CDU-rack loops:",
        f"  count:                {c.num_cdus}",
        f"  racks per CDU:        {c.racks_per_cdu}",
        f"  secondary flow (design): {c.cdu_loop.design_flow_m3s:.4f} m^3/s",
        f"  supply setpoint:      {c.cdu_loop.supply_setpoint_c:.1f} degC",
        f"  HX ({c.cdu_hx.name}): UA = {c.cdu_hx.ua_w_per_k:.3g} W/K",
        f"  pumps per CDU:        {c.cdu_pumps.count} x "
        f"{c.cdu_pumps.rated_power_w / 1e3:.2f} kW",
        "",
        "Primary (HTW) loop:",
        f"  pumps ({c.htw_pumps.name}): {c.htw_pumps.count} x "
        f"{c.htw_pumps.rated_power_w / 1e3:.0f} kW, "
        f"{c.htw_pumps.rated_flow_m3s:.3f} m^3/s rated",
        f"  design flow:          {c.primary_loop.design_flow_m3s:.3f} m^3/s",
        f"  supply setpoint:      {c.primary_loop.supply_setpoint_c:.1f} degC",
        f"  intermediate HX ({c.intermediate_hx.name}): "
        f"{c.intermediate_hx.count} x UA {c.intermediate_hx.ua_w_per_k:.3g} W/K",
        "",
        "Cooling-tower loop:",
        f"  pumps ({c.ctw_pumps.name}): {c.ctw_pumps.count} x "
        f"{c.ctw_pumps.rated_power_w / 1e3:.0f} kW",
        f"  towers: {c.cooling_towers.towers} x "
        f"{c.cooling_towers.cells_per_tower} cells "
        f"({c.cooling_towers.total_cells} total), fan "
        f"{c.cooling_towers.fan_power_w / 1e3:.0f} kW/cell",
        f"  design flow:          {c.tower_loop.design_flow_m3s:.3f} m^3/s",
        "",
        f"Coupling step: {c.step_seconds:.0f} s",
        f"Output variables: "
        f"{len(output_names(c.num_cdus, c.cooling_towers.total_cells))}",
    ]
    return "\n".join(lines)


__all__ = ["generate_plant", "autocsm_report"]
