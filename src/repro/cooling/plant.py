"""The assembled Frontier cooling system (paper Fig. 5).

Three loops joined by heat exchangers:

    racks -> CDU secondary loops (25x) -> HEX-1600 -> primary HTW loop
          -> EHX1-5 -> cooling-tower loop -> 5x4-cell tower farm -> ambient

Inputs per macro step (15 s): heat extracted per CDU (W, 25 values) and
wet-bulb temperature (degC); optionally the total system power for PUE.
The macro step is operator-split into control + quasi-static hydraulics
+ exponential thermal substeps (DESIGN.md section 5).

Outputs: exactly the 317 quantities of paper section III-C4, tallied as

    25 CDUs x 11        = 275   (pump work; primary/secondary flow;
                                 supply/return temperatures and pressures
                                 at stations 12-15)
    primary pump loop    =  10   (pumps + EHX staged; 4x HTWP power,
                                 4x HTWP speed)
    cooling-tower loop   =  25   (cells staged; 4x CTWP power;
                                 20x cell fan power)
    facility + PUE       =   7   (HTW supply/return temp + pressure,
                                 CTW supply/return temp, PUE)
    -------------------------------------------------------------------
    total                = 317
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from repro.config.schema import CoolingSpec
from repro.cooling.loops.cdu import CduLoopBank
from repro.cooling.loops.primary import PrimaryLoop
from repro.cooling.loops.tower import TowerLoop
from repro.exceptions import CoolingModelError

#: Number of model outputs per simulation step (paper section III-C4).
NUM_OUTPUTS = 317

#: Plant stepping backends: the fused flat-array kernel (default) and
#: the reference object-graph integrator it is bit-identical to.
BACKENDS = ("fused", "reference")


@dataclass
class PlantState:
    """Snapshot of the plant after one macro step."""

    time_s: float
    cdu_pump_power_w: np.ndarray
    cdu_primary_flow_m3s: np.ndarray
    cdu_secondary_flow_m3s: np.ndarray
    cdu_primary_supply_temp_c: np.ndarray
    cdu_primary_return_temp_c: np.ndarray
    cdu_secondary_supply_temp_c: np.ndarray
    cdu_secondary_return_temp_c: np.ndarray
    cdu_primary_supply_pressure_pa: np.ndarray
    cdu_primary_return_pressure_pa: np.ndarray
    cdu_secondary_supply_pressure_pa: np.ndarray
    cdu_secondary_return_pressure_pa: np.ndarray
    num_htwp_staged: int
    num_ehx_staged: int
    htwp_power_w: np.ndarray
    htwp_speed: np.ndarray
    num_ct_staged: int
    ctwp_power_w: np.ndarray
    ct_fan_power_w: np.ndarray
    htw_supply_temp_c: float
    htw_return_temp_c: float
    htw_supply_pressure_pa: float
    htw_return_pressure_pa: float
    ctw_supply_temp_c: float
    ctw_return_temp_c: float
    pue: float
    aux_power_w: float = 0.0
    extras: dict = field(default_factory=dict)

    def as_output_vector(self) -> np.ndarray:
        """Flatten to the canonical 317-value output vector."""
        parts = [
            self.cdu_pump_power_w,
            self.cdu_primary_flow_m3s,
            self.cdu_secondary_flow_m3s,
            self.cdu_primary_supply_temp_c,
            self.cdu_primary_return_temp_c,
            self.cdu_secondary_supply_temp_c,
            self.cdu_secondary_return_temp_c,
            self.cdu_primary_supply_pressure_pa,
            self.cdu_primary_return_pressure_pa,
            self.cdu_secondary_supply_pressure_pa,
            self.cdu_secondary_return_pressure_pa,
            [float(self.num_htwp_staged), float(self.num_ehx_staged)],
            self.htwp_power_w,
            self.htwp_speed,
            [float(self.num_ct_staged)],
            self.ctwp_power_w,
            self.ct_fan_power_w,
            [
                self.htw_supply_temp_c,
                self.htw_return_temp_c,
                self.htw_supply_pressure_pa,
                self.htw_return_pressure_pa,
                self.ctw_supply_temp_c,
                self.ctw_return_temp_c,
                self.pue,
            ],
        ]
        return np.concatenate([np.asarray(p, dtype=np.float64).ravel() for p in parts])


def output_names(num_cdus: int = 25, num_cells: int = 20) -> list[str]:
    """Canonical names of the flattened output vector entries."""
    names: list[str] = []
    per_cdu = [
        "pump_power_w",
        "primary_flow_m3s",
        "secondary_flow_m3s",
        "primary_supply_temp_c",
        "primary_return_temp_c",
        "secondary_supply_temp_c",
        "secondary_return_temp_c",
        "primary_supply_pressure_pa",
        "primary_return_pressure_pa",
        "secondary_supply_pressure_pa",
        "secondary_return_pressure_pa",
    ]
    for quantity in per_cdu:
        names.extend(f"cdu{i:02d}_{quantity}" for i in range(num_cdus))
    names.extend(["num_htwp_staged", "num_ehx_staged"])
    names.extend(f"htwp{i+1}_power_w" for i in range(4))
    names.extend(f"htwp{i+1}_speed" for i in range(4))
    names.append("num_ct_staged")
    names.extend(f"ctwp{i+1}_power_w" for i in range(4))
    names.extend(f"ct_cell{i+1:02d}_fan_power_w" for i in range(num_cells))
    names.extend(
        [
            "htw_supply_temp_c",
            "htw_return_temp_c",
            "htw_supply_pressure_pa",
            "htw_return_pressure_pa",
            "ctw_supply_temp_c",
            "ctw_return_temp_c",
            "pue",
        ]
    )
    return names


@dataclass
class PlantSnapshot:
    """Opaque deep-copied capsule of a :class:`CoolingPlant`'s state.

    Produced by :meth:`CoolingPlant.snapshot`, consumed by
    :meth:`CoolingPlant.restore`.  Picklable (pure Python + NumPy), so
    snapshots can be cached per process or shipped between them.
    """

    cdus: object
    primary: object
    tower: object
    time_s: float
    primary_header_dp_pa: float


class CoolingPlant:
    """Transient model of the CEP + 25 CDU loops.

    Parameters
    ----------
    cooling:
        Plant description (defaults reproduce Frontier's Fig. 5 layout).
    substep_s:
        Internal integration substep; the 15 s macro step is divided
        into ceil(dt / substep_s) substeps.
    backend:
        ``"fused"`` (default) advances all substeps of a macro step in
        one :class:`~repro.cooling.kernel.FusedPlantKernel` call over
        flat preallocated arrays; ``"reference"`` walks the original
        component object graph substep by substep.  The two are
        bit-identical (the fused kernel mirrors the reference
        arithmetic operation for operation); the reference backend is
        kept as the oracle the equivalence tests check against.
    """

    #: Static reference pressure for the secondary loops, Pa.
    SECONDARY_STATIC_PA = 150.0e3

    def __init__(
        self,
        cooling: CoolingSpec,
        *,
        substep_s: float = 3.0,
        backend: str = "fused",
    ) -> None:
        if substep_s <= 0:
            raise CoolingModelError("substep must be positive")
        if backend not in BACKENDS:
            raise CoolingModelError(
                f"unknown plant backend {backend!r}; expected one of {BACKENDS}"
            )
        self.spec = cooling
        self.substep_s = float(substep_s)
        self.backend = backend
        self.cdus = CduLoopBank(cooling)
        self.primary = PrimaryLoop(cooling)
        self.tower = TowerLoop(cooling)
        self.time_s = 0.0
        #: Header dp the HTWP VFDs hold for the CDU valves, Pa.
        self.primary_header_dp_pa = 0.7 * cooling.primary_loop.design_dp_pa
        self._kernel = None
        if backend == "fused":
            from repro.cooling.kernel import FusedPlantKernel

            self._kernel = FusedPlantKernel(self)

    # -- stepping --------------------------------------------------------------

    def step(
        self,
        cdu_heat_w: np.ndarray,
        wetbulb_c: float,
        dt: float | None = None,
        *,
        system_power_w: float | None = None,
    ) -> PlantState:
        """Advance one macro step (default: the spec's 15 s coupling).

        ``cdu_heat_w`` is the heat deposited in each CDU's secondary
        loop (the RAPS coupling input, already scaled by the cooling
        efficiency); ``system_power_w`` (if given) is used for the PUE
        denominator, otherwise it is estimated from the heat input.
        """
        if dt is None:
            dt = self.spec.step_seconds
        if dt <= 0:
            raise CoolingModelError("dt must be positive")
        cdu_heat_w = np.asarray(cdu_heat_w, dtype=np.float64)
        if cdu_heat_w.shape != (self.spec.num_cdus,):
            raise CoolingModelError(
                f"cdu_heat_w must have shape ({self.spec.num_cdus},)"
            )
        if np.any(cdu_heat_w < 0):
            raise CoolingModelError("heat must be non-negative")
        n_sub = max(1, int(np.ceil(dt / self.substep_s)))
        h = dt / n_sub
        if self._kernel is not None:
            self._kernel.advance(self, cdu_heat_w, float(wetbulb_c), h, n_sub)
        else:
            for _ in range(n_sub):
                self._substep(cdu_heat_w, float(wetbulb_c), h)
        self.time_s += dt
        return self._snapshot(cdu_heat_w, system_power_w)

    def _substep(self, cdu_heat_w: np.ndarray, wetbulb_c: float, h: float) -> None:
        # 1. Controls.
        self.cdus.update_controls(h)
        self.tower.update_controls(
            self.primary.supply_temp_c, self.primary.supply_setpoint_c, h
        )
        # 2. Quasi-static hydraulics.
        self.cdus.update_flows(self.primary_header_dp_pa)
        self.primary.update_flows(self.cdus.total_primary_flow, h)
        # 3. Staging couplings.
        self.primary.stage_ehx(
            self.tower.n_cells, self.spec.cooling_towers.cells_per_tower
        )
        # 4. Thermal advance, upstream to downstream.
        self.cdus.advance_thermal(cdu_heat_w, self.primary.supply_temp_c, h)
        q = self.cdus.primary_flow
        q_total = float(np.sum(q))
        if q_total > 1e-9:
            mix_c = float(np.sum(q * self.cdus.primary_return_c) / q_total)
        else:
            mix_c = self.primary.return_temp_c
        ehx_cold_out = self.primary.advance_thermal(
            mix_c, self.tower.supply_temp_c, self.tower.total_flow, h
        )
        self.tower.advance_thermal(ehx_cold_out, wetbulb_c, h)

    # -- outputs -----------------------------------------------------------------

    def _snapshot(
        self, cdu_heat_w: np.ndarray, system_power_w: float | None
    ) -> PlantState:
        n = self.spec.num_cdus
        htw_supply_p, htw_return_p = self.primary.header_pressures_pa()
        # CDU branch pressures: header minus branch losses ~ Q^2.
        q_pri = self.cdus.primary_flow
        branch_drop = 0.15 * self.primary_header_dp_pa * (
            q_pri / self.cdus.Q_PRIMARY_MAX
        ) ** 2
        cdu_pri_supply_p = np.full(n, htw_supply_p) - branch_drop
        cdu_pri_return_p = np.full(n, htw_return_p) + 0.2 * branch_drop
        sec_dp = np.asarray(
            self.cdus.resistance.pressure_drop(self.cdus.secondary_flow)
        )
        sec_supply_p = self.SECONDARY_STATIC_PA + sec_dp
        sec_return_p = np.full(n, self.SECONDARY_STATIC_PA)

        cdu_pump_w = self.cdus.pump_power_w()
        htwp_w = self.primary.per_pump_power_w()
        ctwp_w = self.tower.per_pump_power_w()
        fan_w = self.tower.per_cell_fan_power_w()
        aux_cep_w = float(np.sum(htwp_w) + np.sum(ctwp_w) + np.sum(fan_w))
        aux_total_w = aux_cep_w + float(np.sum(cdu_pump_w))

        if system_power_w is None:
            cooling_eff = 0.945
            system_power_w = float(np.sum(cdu_heat_w)) / cooling_eff + float(
                np.sum(cdu_pump_w)
            )
        pue = (
            (system_power_w + aux_cep_w) / system_power_w
            if system_power_w > 0
            else 1.0
        )

        htwp_speed = np.zeros(4)
        htwp_speed[: self.primary.pumps.n_running] = self.primary.pump_speed

        return PlantState(
            time_s=self.time_s,
            cdu_pump_power_w=cdu_pump_w,
            cdu_primary_flow_m3s=self.cdus.primary_flow.copy(),
            cdu_secondary_flow_m3s=self.cdus.secondary_flow.copy(),
            cdu_primary_supply_temp_c=np.full(n, self.primary.supply_temp_c),
            cdu_primary_return_temp_c=self.cdus.primary_return_c.copy(),
            cdu_secondary_supply_temp_c=self.cdus.secondary_supply_c.copy(),
            cdu_secondary_return_temp_c=self.cdus.secondary_return_c.copy(),
            cdu_primary_supply_pressure_pa=cdu_pri_supply_p,
            cdu_primary_return_pressure_pa=cdu_pri_return_p,
            cdu_secondary_supply_pressure_pa=sec_supply_p,
            cdu_secondary_return_pressure_pa=sec_return_p,
            num_htwp_staged=self.primary.pumps.n_running,
            num_ehx_staged=self.primary.n_ehx,
            htwp_power_w=htwp_w,
            htwp_speed=htwp_speed,
            num_ct_staged=self.tower.n_cells,
            ctwp_power_w=ctwp_w,
            ct_fan_power_w=fan_w,
            htw_supply_temp_c=self.primary.supply_temp_c,
            htw_return_temp_c=self.primary.return_temp_c,
            htw_supply_pressure_pa=htw_supply_p,
            htw_return_pressure_pa=htw_return_p,
            ctw_supply_temp_c=self.tower.supply_temp_c,
            ctw_return_temp_c=self.tower.return_temp_c,
            pue=float(pue),
            aux_power_w=aux_total_w,
        )

    # -- state snapshot / restore ----------------------------------------------

    def snapshot(self) -> "PlantSnapshot":
        """Capture the plant's full transient state as an opaque capsule.

        The capsule is deep-copied both ways, so one snapshot of a
        warmed plant can seed any number of later runs (the serving
        layer's :class:`~repro.service.warmcache.WarmStateCache` keys
        these by spec hash to amortize the 1800 s cooling warmup).
        Restoring a snapshot reproduces the subsequent trajectory bit
        for bit: stepping is a pure function of plant state and inputs.
        """
        return PlantSnapshot(
            cdus=copy.deepcopy(self.cdus),
            primary=copy.deepcopy(self.primary),
            tower=copy.deepcopy(self.tower),
            time_s=self.time_s,
            primary_header_dp_pa=self.primary_header_dp_pa,
        )

    def restore(self, snapshot: "PlantSnapshot") -> None:
        """Overwrite the plant's state from a :meth:`snapshot` capsule."""
        if not isinstance(snapshot, PlantSnapshot):
            raise CoolingModelError(
                f"restore() takes a PlantSnapshot, got "
                f"{type(snapshot).__name__}"
            )
        if snapshot.cdus.n != self.spec.num_cdus:
            raise CoolingModelError(
                f"snapshot holds {snapshot.cdus.n} CDU loops, plant has "
                f"{self.spec.num_cdus}"
            )
        self.cdus = copy.deepcopy(snapshot.cdus)
        self.primary = copy.deepcopy(snapshot.primary)
        self.tower = copy.deepcopy(snapshot.tower)
        self.time_s = snapshot.time_s
        self.primary_header_dp_pa = snapshot.primary_header_dp_pa

    def warmup(
        self, cdu_heat_w: np.ndarray, wetbulb_c: float, duration_s: float = 3600.0
    ) -> PlantState:
        """Run the plant to (near) steady state at a fixed load."""
        steps = max(1, int(duration_s / self.spec.step_seconds))
        state = None
        for _ in range(steps):
            state = self.step(cdu_heat_w, wetbulb_c)
        assert state is not None
        return state


__all__ = [
    "CoolingPlant",
    "PlantState",
    "PlantSnapshot",
    "output_names",
    "BACKENDS",
    "NUM_OUTPUTS",
]
