"""The CDU-rack loops: 25 units, vectorized as one bank (paper Fig. 5).

Each CDU's secondary (blade) loop: CDU pumps circulate PG25 coolant
through three racks (64 blades each), picking up the rack heat, through
the hot side of the HEX-1600, and back.  Controls per paper III-C5:

- a PID regulates CDU pump speed on the loop differential pressure
  (both pumps always run at the same speed),
- a control valve regulates the primary (HTW) coolant draw to hold the
  secondary supply temperature at its setpoint.

State per CDU: hot-side temperature (return from racks, entering the
HX) and cold-side temperature (supply to racks, leaving the HX).
"""

from __future__ import annotations

import numpy as np

from repro.config.schema import CoolingSpec
from repro.cooling.components.heat_exchanger import CounterflowHX
from repro.cooling.components.pipe import FlowResistance
from repro.cooling.components.pump import PumpGroup
from repro.cooling.components.valve import ControlValve
from repro.cooling.components.volume import ThermalVolume
from repro.cooling.control.pid import PidController
from repro.cooling.properties import PG25, WATER
from repro.exceptions import CoolingModelError


class CduLoopBank:
    """All 25 CDU secondary loops advanced together."""

    #: Maximum primary draw per CDU when its valve is wide open, m^3/s.
    Q_PRIMARY_MAX = 0.020

    def __init__(self, cooling: CoolingSpec, *, t0_c: float = 33.0) -> None:
        self.spec = cooling
        self.n = cooling.num_cdus
        loop = cooling.cdu_loop
        self.pumps = PumpGroup(cooling.cdu_pumps)
        self.resistance = FlowResistance.from_design_point(
            loop.design_dp_pa, loop.design_flow_m3s
        )
        self.hx = CounterflowHX(cooling.cdu_hx.ua_w_per_k, PG25, WATER)
        self.valve = ControlValve(
            cv_max_flow_m3s=self.Q_PRIMARY_MAX,
            dp_rated_pa=cooling.primary_loop.design_dp_pa,
        )
        # Secondary thermal state: hot (post-racks) and cold (post-HX).
        half_volume = loop.volume_m3 / 2.0
        self.hot = ThermalVolume(half_volume, PG25, t0_c + 5.0, width=self.n)
        self.cold = ThermalVolume(half_volume, PG25, t0_c, width=self.n)
        # Pump-speed PID on loop differential pressure.
        self.dp_setpoint_pa = loop.design_dp_pa
        self.pump_pid = PidController(
            kp=1.2e-6, ki=2.5e-7, u_min=0.3, u_max=1.0, width=self.n, u0=0.95
        )
        # Valve PID on secondary supply temperature (reverse: hotter ->
        # open wider -> more primary flow).
        self.supply_setpoint_c = loop.supply_setpoint_c
        self.valve_pid = PidController(
            kp=0.10, ki=0.012, u_min=0.05, u_max=1.0, width=self.n,
            reverse=True, u0=0.6,
        )
        self.pump_speed = np.full(self.n, 0.95)
        self.valve_opening = np.full(self.n, 0.6)
        self.secondary_flow = np.full(self.n, loop.design_flow_m3s)
        self.primary_flow = np.full(self.n, 0.015)
        self.hx_heat_w = np.zeros(self.n)
        self.primary_return_c = np.full(self.n, t0_c)
        #: Per-CDU hydraulic blockage: resistance multiplier (>= 1).
        #: Models the biological-growth blockage use case (paper III-A).
        self.blockage_factor = np.ones(self.n)

    # -- control -----------------------------------------------------------------

    def set_blockage(self, cdu_index: int, severity: float) -> None:
        """Partially block one CDU's secondary loop.

        ``severity`` multiplies the loop's hydraulic resistance (1 =
        clean, 4 = three-quarters blocked).  Models the biological-
        growth blockage failure mode from the requirements analysis.
        """
        if severity < 1.0:
            raise CoolingModelError("blockage severity must be >= 1")
        if not 0 <= cdu_index < self.n:
            raise CoolingModelError("cdu_index out of range")
        self.blockage_factor[cdu_index] = float(severity)

    def update_controls(self, dt: float) -> None:
        """Advance the pump-speed and valve PIDs one step."""
        # Measured loop dp at current speed (quasi-static), including
        # any per-CDU blockage.
        dp = self.resistance.pressure_drop(self.secondary_flow) * (
            self.blockage_factor
        )
        self.pump_speed = self.pump_pid.update(self.dp_setpoint_pa, dp, dt)
        self.valve_opening = self.valve_pid.update(
            self.supply_setpoint_c, self.cold.temp_c, dt
        )

    def update_flows(self, primary_header_dp_pa: float) -> None:
        """Solve secondary pump operating points and valve primary draws."""
        if primary_header_dp_pa < 0:
            raise CoolingModelError("header dp must be non-negative")
        # All 25 pump groups share one curve; op point scales with speed
        # and degrades with the per-CDU blockage (q ~ 1/sqrt(k)).
        q1, _ = self.pumps.operating_point(self.resistance, 1.0)
        self.secondary_flow = (
            q1 * self.pump_speed / np.sqrt(self.blockage_factor)
        )
        self.primary_flow = np.asarray(
            self.valve.flow_at(self.valve_opening, primary_header_dp_pa)
        )

    # -- thermal ---------------------------------------------------------------------

    def advance_thermal(
        self,
        cdu_heat_w: np.ndarray,
        htw_supply_c: float,
        dt: float,
    ) -> None:
        """One thermal substep for all CDUs.

        ``cdu_heat_w`` is the heat deposited by each CDU's racks (the
        RAPS coupling input); ``htw_supply_c`` is the primary supply
        header temperature.
        """
        cdu_heat_w = np.asarray(cdu_heat_w, dtype=np.float64)
        if cdu_heat_w.shape != (self.n,):
            raise CoolingModelError(
                f"cdu_heat_w must have shape ({self.n},)"
            )
        if np.any(cdu_heat_w < 0):
            raise CoolingModelError("heat must be non-negative")
        # Racks heat the stream leaving the cold volume.
        cap = np.asarray(
            PG25.heat_capacity_rate(self.secondary_flow, self.cold.temp_c)
        )
        rack_out_c = self.cold.temp_c + np.where(
            cap > 1e-9, cdu_heat_w / np.maximum(cap, 1e-12), 0.0
        )
        # Hot volume collects the rack outlet stream.
        self.hot.advance(rack_out_c, self.secondary_flow, 0.0, dt)
        # HX: secondary hot side -> primary cold side.
        q, t_hot_out, t_cold_out = self.hx.transfer(
            self.hot.temp_c,
            self.secondary_flow,
            htw_supply_c,
            self.primary_flow,
        )
        self.hx_heat_w = np.asarray(q)
        self.primary_return_c = np.asarray(t_cold_out)
        # Cold volume collects the HX hot-side outlet.
        self.cold.advance(t_hot_out, self.secondary_flow, 0.0, dt)

    # -- outputs -----------------------------------------------------------------------

    def pump_power_w(self) -> np.ndarray:
        """Per-CDU pump electrical power (both pumps), W."""
        return self.pumps.n_running * np.asarray(
            self.pumps.curve.power(self.pump_speed)
        )

    @property
    def secondary_supply_c(self) -> np.ndarray:
        return self.cold.temp_c

    @property
    def secondary_return_c(self) -> np.ndarray:
        return self.hot.temp_c

    @property
    def total_primary_flow(self) -> float:
        return float(np.sum(self.primary_flow))


__all__ = ["CduLoopBank"]
