"""The cooling-tower loop: CTWP1-4 and the 5x4-cell tower farm.

CTW circulates from the towers through the four cooling-tower water
pumps (~9000-10000 gpm) to the cold side of the EHX bank and back
(paper Fig. 5).  Controls per III-C5:

- CTWP speed is regulated to hold the CT supply header pressure within
  its band, staging pumps up/down in concert with the running speeds,
- cells are staged and fans are modulated to stabilize the HTW supply
  temperature (the HTWS-stability criterion), with the cross-loop
  coupling low-pass filtered by the paper's delay transfer function.

State: tower-outlet (CTW supply) and EHX-outlet (CTW return) header
temperatures.
"""

from __future__ import annotations

import numpy as np

from repro.config.schema import CoolingSpec
from repro.cooling.components.cooling_tower import CoolingTowerFarm
from repro.cooling.components.pipe import FlowResistance
from repro.cooling.components.pump import PumpGroup
from repro.cooling.components.volume import ThermalVolume
from repro.cooling.control.pid import PidController
from repro.cooling.control.staging import DelayedSignal, StagingController
from repro.cooling.properties import WATER
from repro.exceptions import CoolingModelError


class TowerLoop:
    """CTW loop model with pump/cell staging and fan modulation."""

    def __init__(self, cooling: CoolingSpec, *, t0_c: float = 25.0) -> None:
        self.spec = cooling
        loop = cooling.tower_loop
        self.pumps = PumpGroup(cooling.ctw_pumps, n_running=2)
        self.resistance = FlowResistance.from_design_point(
            loop.design_dp_pa, loop.design_flow_m3s
        )
        farm_spec = cooling.cooling_towers
        self.farm = CoolingTowerFarm(
            farm_spec,
            design_flow_per_cell_m3s=loop.design_flow_m3s / farm_spec.total_cells,
        )
        half_volume = loop.volume_m3 / 2.0
        self.supply = ThermalVolume(half_volume, WATER, t0_c, width=1)
        self.return_ = ThermalVolume(half_volume, WATER, t0_c + 9.0, width=1)
        self.pump_staging = StagingController(
            n_min=1,
            n_max=cooling.ctw_pumps.count,
            hi=0.92,
            lo=0.45,
            up_delay_s=60.0,
            down_delay_s=600.0,
            n0=2,
        )
        # Cell staging driven by the (delayed) HTWS temperature error +
        # its gradient — the paper's HTWS-stability criterion.
        self.cell_staging = StagingController(
            n_min=2,
            n_max=farm_spec.total_cells,
            hi=0.5,
            lo=-1.0,
            up_delay_s=120.0,
            down_delay_s=900.0,
            n0=6,
        )
        self.htws_delay = DelayedSignal(tau_s=300.0)
        self._prev_htws_c: float | None = None
        # Fan PID holds the HTW supply temperature (reverse action).
        self.fan_pid = PidController(
            kp=0.20, ki=0.004, kd=2.0, u_min=0.05, u_max=1.0, width=1,
            reverse=True, u0=0.6,
        )
        # CTWP speed PID holds the supply header pressure.
        self.pressure_setpoint_pa = loop.design_dp_pa * 0.7
        self.speed_pid = PidController(
            kp=1.0e-6, ki=1.5e-7, u_min=cooling.ctw_pumps.min_speed_fraction,
            u_max=1.0, width=1, u0=0.75,
        )
        self.pump_speed = 0.75
        self.total_flow = loop.design_flow_m3s * 0.6
        self.fan_speed = 0.6

    # -- control / hydraulics ---------------------------------------------------------

    def update_controls(
        self, htws_temp_c: float, htws_setpoint_c: float, dt: float
    ) -> None:
        """Fan modulation + cell/pump staging on the HTWS criterion."""
        if self._prev_htws_c is None:
            self._prev_htws_c = htws_temp_c
        gradient_c_per_min = (htws_temp_c - self._prev_htws_c) / dt * 60.0
        self._prev_htws_c = htws_temp_c
        error = htws_temp_c - htws_setpoint_c
        # Delay transfer function between the loops (paper III-C5).
        signal = self.htws_delay.update(
            error + 2.0 * gradient_c_per_min, dt
        )
        self.fan_speed = float(
            self.fan_pid.update(htws_setpoint_c, htws_temp_c, dt)[0]
        )
        self.cell_staging.update(signal, dt)
        # Header-pressure loop for the CTWPs.
        self.pumps.n_running = self.pump_staging.count
        dp = float(self.resistance.pressure_drop(self.total_flow))
        self.pump_speed = float(
            self.speed_pid.update(self.pressure_setpoint_pa, dp, dt)[0]
        )
        self.pump_staging.update(self.pump_speed, dt)
        q, _ = self.pumps.operating_point(self.resistance, self.pump_speed)
        self.total_flow = q

    @property
    def n_cells(self) -> int:
        return self.cell_staging.count

    # -- thermal -------------------------------------------------------------------------

    def advance_thermal(
        self, ehx_cold_out_c: float, wetbulb_c: float, dt: float
    ) -> None:
        """One thermal substep: EHX outlet -> towers -> supply header."""
        self.return_.advance(ehx_cold_out_c, self.total_flow, 0.0, dt)
        t_ct_out = self.farm.outlet_temperature(
            self.return_temp_c,
            wetbulb_c,
            self.total_flow,
            self.n_cells,
            self.fan_speed,
        )
        self.supply.advance(t_ct_out, self.total_flow, 0.0, dt)

    # -- outputs --------------------------------------------------------------------------

    @property
    def supply_temp_c(self) -> float:
        return float(self.supply.temp_c[0])

    @property
    def return_temp_c(self) -> float:
        return float(self.return_.temp_c[0])

    def pump_power_w(self) -> float:
        return self.pumps.power(self.pump_speed)

    def per_pump_power_w(self) -> np.ndarray:
        return self.pumps.per_pump_power(self.pump_speed)

    def fan_power_w(self) -> float:
        return self.farm.fan_power_w(self.n_cells, self.fan_speed)

    def per_cell_fan_power_w(self) -> np.ndarray:
        return self.farm.per_cell_fan_power_w(self.n_cells, self.fan_speed)


__all__ = ["TowerLoop"]
