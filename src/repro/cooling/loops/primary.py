"""The primary (high-temperature water) loop: HTWP1-4 and EHX1-5.

HTW circulates from the intermediate heat exchangers (EHX1-5) through
the four high-temperature water pumps to the 25 HEX-1600s and back
(paper Fig. 5, ~5000-6000 gpm).  Controls per III-C5:

- a PID regulates the HTWPs to hold the supply header differential
  pressure against the valve-driven flow demand of the CDUs,
- pumps stage up/down on the relative speed of the running pumps,
- EHXs stage with the number of cooling-tower cells in operation.

State: supply header temperature (post-EHX) and return header
temperature (mixed CDU primary returns).
"""

from __future__ import annotations

import numpy as np

from repro.config.schema import CoolingSpec
from repro.cooling.components.heat_exchanger import CounterflowHX
from repro.cooling.components.pipe import FlowResistance
from repro.cooling.components.pump import PumpGroup
from repro.cooling.components.volume import ThermalVolume
from repro.cooling.control.staging import StagingController
from repro.cooling.properties import WATER
from repro.exceptions import CoolingModelError


class PrimaryLoop:
    """HTW loop model with pump staging and the EHX bank."""

    def __init__(self, cooling: CoolingSpec, *, t0_c: float = 29.0) -> None:
        self.spec = cooling
        loop = cooling.primary_loop
        self.pumps = PumpGroup(cooling.htw_pumps, n_running=2)
        self.resistance = FlowResistance.from_design_point(
            loop.design_dp_pa, loop.design_flow_m3s
        )
        self.ehx = CounterflowHX(
            cooling.intermediate_hx.ua_w_per_k, WATER, WATER
        )
        self.num_ehx_installed = cooling.intermediate_hx.count
        self.n_ehx = 2
        half_volume = loop.volume_m3 / 2.0
        self.supply = ThermalVolume(half_volume, WATER, t0_c, width=1)
        self.return_ = ThermalVolume(half_volume, WATER, t0_c + 8.0, width=1)
        self.pump_staging = StagingController(
            n_min=1,
            n_max=cooling.htw_pumps.count,
            hi=0.92,
            lo=0.45,
            up_delay_s=60.0,
            down_delay_s=600.0,
            n0=2,
        )
        self.supply_setpoint_c = loop.supply_setpoint_c
        self.pump_speed = 0.7
        self.total_flow = loop.design_flow_m3s * 0.7
        self.ehx_heat_w = 0.0

    # -- hydraulics / staging -------------------------------------------------------

    def update_flows(self, demand_flow_m3s: float, dt: float) -> None:
        """Track the CDU valves' total primary demand.

        The HTWP VFDs hold the header dp, so the loop delivers whatever
        the valves ask for (up to pump capability); the speed needed is
        recovered from the pump curve and drives staging.
        """
        if demand_flow_m3s < 0:
            raise CoolingModelError("flow demand must be non-negative")
        self.pumps.n_running = self.pump_staging.count
        speed = self.pumps.speed_for_flow(self.resistance, demand_flow_m3s)
        self.pump_speed = max(speed, self.pumps.spec.min_speed_fraction)
        # Deliverable flow at the commanded speed (saturates at capacity).
        q_cap, _ = self.pumps.operating_point(self.resistance, 1.0)
        self.total_flow = min(demand_flow_m3s, q_cap)
        self.pump_staging.update(self.pump_speed, dt)

    def stage_ehx(self, n_ct_cells: int, cells_per_tower: int) -> int:
        """EHXs staged with the number of towers in operation (III-C5)."""
        if n_ct_cells < 0:
            raise CoolingModelError("cell count must be >= 0")
        towers_running = int(np.ceil(n_ct_cells / max(cells_per_tower, 1)))
        self.n_ehx = int(np.clip(towers_running, 1, self.num_ehx_installed))
        return self.n_ehx

    # -- thermal -----------------------------------------------------------------------

    def advance_thermal(
        self,
        cdu_return_mix_c: float,
        ctw_supply_c: float,
        ctw_flow_m3s: float,
        dt: float,
    ) -> float:
        """One thermal substep; returns the CTW-side outlet temperature.

        ``cdu_return_mix_c`` is the flow-weighted mix of the 25 CDU
        primary returns entering the return header; the EHX bank rejects
        the loop heat into the tower loop.
        """
        self.return_.advance(cdu_return_mix_c, self.total_flow, 0.0, dt)
        ua = self.n_ehx * self.ehx.ua
        q, t_hot_out, t_cold_out = self.ehx.transfer(
            self.return_.temp_c,
            self.total_flow,
            ctw_supply_c,
            ctw_flow_m3s,
            ua=ua,
        )
        self.ehx_heat_w = float(q[0]) if np.ndim(q) else float(q)
        self.supply.advance(t_hot_out, self.total_flow, 0.0, dt)
        t_cold = np.asarray(t_cold_out)
        return float(t_cold[0]) if t_cold.ndim else float(t_cold)

    # -- outputs ------------------------------------------------------------------------

    @property
    def supply_temp_c(self) -> float:
        return float(self.supply.temp_c[0])

    @property
    def return_temp_c(self) -> float:
        return float(self.return_.temp_c[0])

    def pump_power_w(self) -> float:
        return self.pumps.power(self.pump_speed)

    def per_pump_power_w(self) -> np.ndarray:
        return self.pumps.per_pump_power(self.pump_speed)

    def header_pressures_pa(self, static_pa: float = 200.0e3) -> tuple[float, float]:
        """(supply, return) header pressures.

        Supply = static + pump head less supply-side piping loss; return
        = static plus the residual.  Tracks flow^2, which is the shape
        Fig. 7(c) validates.
        """
        head = self.pumps.curve.head(
            self.total_flow / max(self.pumps.n_running, 1), self.pump_speed
        )
        head = float(np.maximum(head, 0.0))
        supply = static_pa + 0.75 * head
        ret = static_pa + 0.10 * head
        return supply, ret


__all__ = ["PrimaryLoop"]
