"""Loop models: the CDU-rack, primary (HTW), and cooling-tower loops."""

from repro.cooling.loops.cdu import CduLoopBank
from repro.cooling.loops.primary import PrimaryLoop
from repro.cooling.loops.tower import TowerLoop

__all__ = ["CduLoopBank", "PrimaryLoop", "TowerLoop"]
