"""FMI-like co-simulation wrapper around the cooling plant.

The paper exports its Modelica model through the Functional Mock-up
Interface and drives it from RAPS via FMPy (section III-C6).  This class
reproduces the FMI 2.0 co-simulation lifecycle —

    instantiate -> setup_experiment -> set inputs -> do_step -> get outputs

— including protocol-order enforcement, named variable access, and
reset, so the RAPS engine couples to the cooling model exactly the way
the paper's stack does (and so a real FMU could be swapped in behind the
same interface).
"""

from __future__ import annotations

import copy
import enum
from dataclasses import dataclass

import numpy as np

from repro.config.schema import CoolingSpec
from repro.cooling.plant import (
    CoolingPlant,
    PlantSnapshot,
    PlantState,
    output_names,
)
from repro.exceptions import FMUError


@dataclass
class FmuStateSnapshot:
    """One captured FMU state (the FMI 2.0 ``fmi2GetFMUstate`` analog).

    Holds the full plant capsule plus the wrapper's clock, inputs, and
    last outputs, so :meth:`CoolingFMU.set_fmu_state` resumes stepping
    exactly where the capture left off — the mechanism behind the
    serving layer's warm-plant cache (restore a warmed state instead of
    re-running the 1800 s warmup).
    """

    plant: PlantSnapshot
    time: float
    cdu_heat: np.ndarray
    wetbulb_c: float
    system_power_w: float | None
    outputs: np.ndarray
    last_state: PlantState | None
    lifecycle: "FmuState"


class FmuState(enum.Enum):
    """FMI co-simulation lifecycle states."""

    INSTANTIATED = "instantiated"
    EXPERIMENT_READY = "experiment_ready"
    STEPPING = "stepping"
    TERMINATED = "terminated"


class CoolingFMU:
    """FMI 2.0-style co-simulation unit for the cooling plant.

    Input variables: ``cdu_heat[i]`` (W, one per CDU),
    ``wetbulb_temperature`` (degC), and optional ``system_power`` (W).
    Output variables: the 317 named plant outputs (see
    :func:`repro.cooling.plant.output_names`).
    """

    def __init__(
        self,
        cooling: CoolingSpec,
        *,
        substep_s: float = 3.0,
        backend: str = "fused",
    ) -> None:
        self._cooling = cooling
        self._substep_s = substep_s
        self._backend = backend
        self._plant = CoolingPlant(cooling, substep_s=substep_s, backend=backend)
        self.state = FmuState.INSTANTIATED
        self._time = 0.0
        self._stop_time: float | None = None
        self._cdu_heat = np.zeros(cooling.num_cdus)
        self._wetbulb_c = 15.0
        self._system_power_w: float | None = None
        self._output_names = output_names(
            cooling.num_cdus, cooling.cooling_towers.total_cells
        )
        self._outputs = np.zeros(len(self._output_names))
        self._index = {name: i for i, name in enumerate(self._output_names)}
        self.last_state: PlantState | None = None

    # -- lifecycle -----------------------------------------------------------------

    def setup_experiment(
        self, start_time: float = 0.0, stop_time: float | None = None
    ) -> None:
        """Declare the simulation window (FMI setupExperiment)."""
        if self.state is not FmuState.INSTANTIATED:
            raise FMUError(
                f"setup_experiment called in state {self.state.value}"
            )
        self._time = float(start_time)
        self._plant.time_s = self._time
        self._stop_time = stop_time
        self.state = FmuState.EXPERIMENT_READY

    def terminate(self) -> None:
        """End the co-simulation (FMI terminate)."""
        self.state = FmuState.TERMINATED

    def reset(self) -> None:
        """Return to a freshly instantiated unit (FMI reset)."""
        self._plant = CoolingPlant(
            self._cooling, substep_s=self._substep_s, backend=self._backend
        )
        self._time = 0.0
        self._stop_time = None
        self._cdu_heat = np.zeros(self._cooling.num_cdus)
        self._system_power_w = None
        self.last_state = None
        self.state = FmuState.INSTANTIATED

    # -- state snapshot / restore (FMI 2.0 get/setFMUstate) -------------------------

    def get_fmu_state(self) -> FmuStateSnapshot:
        """Capture the unit's complete state (``fmi2GetFMUstate``)."""
        return FmuStateSnapshot(
            plant=self._plant.snapshot(),
            time=self._time,
            cdu_heat=self._cdu_heat.copy(),
            wetbulb_c=self._wetbulb_c,
            system_power_w=self._system_power_w,
            outputs=self._outputs.copy(),
            last_state=copy.deepcopy(self.last_state),
            lifecycle=self.state,
        )

    def set_fmu_state(self, snapshot: FmuStateSnapshot) -> None:
        """Restore a captured state (``fmi2SetFMUstate``).

        Legal from any lifecycle state except ``TERMINATED``; the
        snapshot is copied in, so one capture can seed many runs and
        each restored run reproduces the original trajectory bit for
        bit (stepping is a pure function of state and inputs).
        """
        if not isinstance(snapshot, FmuStateSnapshot):
            raise FMUError(
                f"set_fmu_state takes an FmuStateSnapshot, got "
                f"{type(snapshot).__name__}"
            )
        if self.state is FmuState.TERMINATED:
            raise FMUError("set_fmu_state called on a terminated unit")
        self._plant.restore(snapshot.plant)
        self._time = snapshot.time
        self._cdu_heat = snapshot.cdu_heat.copy()
        self._wetbulb_c = snapshot.wetbulb_c
        self._system_power_w = snapshot.system_power_w
        self._outputs = snapshot.outputs.copy()
        self.last_state = copy.deepcopy(snapshot.last_state)
        self.state = snapshot.lifecycle

    # -- inputs ---------------------------------------------------------------------

    def set_cdu_heat(self, heat_w: np.ndarray) -> None:
        """Set the per-CDU heat input for the next step, W."""
        self._check_running("set_cdu_heat")
        heat_w = np.asarray(heat_w, dtype=np.float64)
        if heat_w.shape != (self._cooling.num_cdus,):
            raise FMUError(
                f"cdu_heat must have shape ({self._cooling.num_cdus},)"
            )
        if np.any(heat_w < 0):
            raise FMUError("cdu_heat must be non-negative")
        self._cdu_heat = heat_w

    def set_wetbulb(self, wetbulb_c: float) -> None:
        """Set the outdoor wet-bulb temperature, degC."""
        self._check_running("set_wetbulb")
        if not -40.0 <= wetbulb_c <= 45.0:
            raise FMUError(f"implausible wet-bulb {wetbulb_c} degC")
        self._wetbulb_c = float(wetbulb_c)

    def set_system_power(self, power_w: float | None) -> None:
        """Set total system power for the PUE denominator (optional)."""
        self._check_running("set_system_power")
        if power_w is not None and power_w < 0:
            raise FMUError("system power must be non-negative")
        self._system_power_w = power_w

    def set_cdu_blockage(self, cdu_index: int, severity: float) -> None:
        """Throttle one CDU loop (fault injection; 1.0 restores it).

        Routes to :meth:`~repro.cooling.loops.cdu.CduLoopBank.set_blockage`
        on the live plant; both stepping backends honor the change from
        the next step (the fused kernel re-pulls ``blockage_factor``
        every macro step).
        """
        self._check_running("set_cdu_blockage")
        self._plant.cdus.set_blockage(int(cdu_index), float(severity))

    def _check_running(self, op: str) -> None:
        if self.state not in (FmuState.EXPERIMENT_READY, FmuState.STEPPING):
            raise FMUError(f"{op} called in state {self.state.value}")

    # -- stepping -------------------------------------------------------------------

    def do_step(
        self, current_time: float, step_size: float | None = None
    ) -> None:
        """Advance the unit by one communication step (FMI doStep)."""
        self._check_running("do_step")
        if step_size is None:
            step_size = self._cooling.step_seconds
        if step_size <= 0:
            raise FMUError("step_size must be positive")
        if abs(current_time - self._time) > 1e-6:
            raise FMUError(
                f"do_step time mismatch: unit at {self._time}, "
                f"caller at {current_time}"
            )
        if self._stop_time is not None and current_time + step_size > self._stop_time + 1e-9:
            raise FMUError("do_step would pass the experiment stop time")
        state = self._plant.step(
            self._cdu_heat,
            self._wetbulb_c,
            step_size,
            system_power_w=self._system_power_w,
        )
        self.last_state = state
        self._outputs = state.as_output_vector()
        self._time += step_size
        self.state = FmuState.STEPPING

    # -- outputs --------------------------------------------------------------------

    @property
    def time(self) -> float:
        return self._time

    @property
    def substep_s(self) -> float:
        """The plant's internal integration substep, s."""
        return self._substep_s

    @property
    def backend(self) -> str:
        """The plant stepping backend (``"fused"`` or ``"reference"``)."""
        return self._backend

    def variable_names(self) -> list[str]:
        """All 317 output variable names, in vector order."""
        return list(self._output_names)

    def get_output(self, name: str) -> float:
        """Read one named output from the last completed step."""
        try:
            return float(self._outputs[self._index[name]])
        except KeyError:
            raise FMUError(f"unknown output variable {name!r}") from None

    def get_outputs(self) -> np.ndarray:
        """The full 317-value output vector from the last step."""
        return self._outputs.copy()

    def get_state(self) -> PlantState:
        """Structured snapshot of the last step."""
        if self.last_state is None:
            raise FMUError("no step has completed yet")
        return self.last_state


__all__ = ["CoolingFMU", "FmuState", "FmuStateSnapshot"]
