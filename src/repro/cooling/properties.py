"""Coolant thermophysical properties.

The facility loops run treated water; the blade-level loop runs a
water/propylene-glycol mix (PG25).  A light linear temperature
correction on density is included; specific heat is treated as constant
over the 15-55 degC operating band (the variation is < 1 %, far below
the model's other uncertainties).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import CoolingModelError


@dataclass(frozen=True)
class CoolantProperties:
    """Density/heat-capacity model for a single-phase liquid coolant."""

    name: str
    #: Density at the reference temperature, kg/m^3.
    rho_ref_kg_m3: float
    #: Reference temperature for the density fit, degC.
    t_ref_c: float
    #: Linear thermal-expansion slope d(rho)/dT, kg/(m^3 degC).
    drho_dt: float
    #: Specific heat capacity, J/(kg degC).
    cp_j_kg_c: float

    def __post_init__(self) -> None:
        if self.rho_ref_kg_m3 <= 0:
            raise CoolingModelError("density must be positive")
        if self.cp_j_kg_c <= 0:
            raise CoolingModelError("specific heat must be positive")

    def density(self, t_c: np.ndarray | float) -> np.ndarray | float:
        """Density at temperature ``t_c`` (degC), kg/m^3."""
        return self.rho_ref_kg_m3 + self.drho_dt * (np.asarray(t_c) - self.t_ref_c)

    def heat_capacity_rate(
        self, flow_m3s: np.ndarray | float, t_c: np.ndarray | float = 25.0
    ) -> np.ndarray | float:
        """Capacity rate ``C = rho * Q * cp`` in W/degC."""
        flow = np.asarray(flow_m3s)
        if np.any(flow < 0):
            raise CoolingModelError("flow must be non-negative")
        return self.density(t_c) * flow * self.cp_j_kg_c

    def heat_rate(
        self,
        flow_m3s: np.ndarray | float,
        dt_c: np.ndarray | float,
        t_c: np.ndarray | float = 25.0,
    ) -> np.ndarray | float:
        """Heat carried by a stream with temperature rise ``dt_c``
        (paper Eq. 7: H = rho * Q * dT * c)."""
        return self.heat_capacity_rate(flow_m3s, t_c) * np.asarray(dt_c)

    def thermal_mass(self, volume_m3: float, t_c: float = 25.0) -> float:
        """Lumped thermal mass ``rho * V * cp`` in J/degC."""
        if volume_m3 <= 0:
            raise CoolingModelError("volume must be positive")
        return float(self.density(t_c)) * volume_m3 * self.cp_j_kg_c


#: Facility treated water (CT / HTW loops).
WATER = CoolantProperties(
    name="water", rho_ref_kg_m3=997.0, t_ref_c=25.0, drho_dt=-0.25,
    cp_j_kg_c=4186.0,
)

#: 25 % propylene-glycol blade coolant (CDU secondary loop).
PG25 = CoolantProperties(
    name="pg25", rho_ref_kg_m3=1022.0, t_ref_c=25.0, drho_dt=-0.35,
    cp_j_kg_c=3900.0,
)

__all__ = ["CoolantProperties", "WATER", "PG25"]
