"""Transient thermo-fluid cooling model of the CEP + CDU loops.

This package is the Python substitution for the paper's Modelica
(TRANSFORM + Modelica Buildings Library) cooling model exported as an
FMU: a lumped-parameter transient network of thermal capacitance
volumes, quadratic pump/resistance hydraulics, epsilon-NTU heat
exchangers, Merkel-style evaporative cooling towers, PID controllers,
and the staging state machines of paper section III-C5, assembled per
Fig. 5 and wrapped in an FMI-like stepping interface
(:class:`repro.cooling.fmu.CoolingFMU`).

Inputs per 15 s step: heat extracted per CDU (W, 25 values) and wet-bulb
temperature; outputs: the 317 quantities enumerated in section III-C4.

Two interchangeable stepping backends share one state representation:
the default ``backend="fused"`` flat-array kernel
(:class:`repro.cooling.kernel.FusedPlantKernel`, several times faster)
and the ``backend="reference"`` component object graph it mirrors bit
for bit (kept as the oracle).
"""

from repro.cooling.properties import CoolantProperties, WATER
from repro.cooling.plant import BACKENDS, CoolingPlant, PlantState
from repro.cooling.kernel import FusedPlantKernel
from repro.cooling.fmu import CoolingFMU, FmuState
from repro.cooling.autocsm import generate_plant, autocsm_report

__all__ = [
    "CoolantProperties",
    "WATER",
    "BACKENDS",
    "CoolingPlant",
    "FusedPlantKernel",
    "PlantState",
    "CoolingFMU",
    "FmuState",
    "generate_plant",
    "autocsm_report",
]
