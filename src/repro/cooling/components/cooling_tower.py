"""Evaporative cooling towers (Merkel-style effectiveness model).

The MBL variable-fan-speed tower model the paper uses reduces, at the
system level, to an effectiveness against the entering wet-bulb
temperature:

    T_out = T_in - eps(fan, flow) * (T_in - T_wb)

with effectiveness rising with fan speed and falling with per-cell water
loading.  Fan power follows the affinity cube law.  A farm staggers
``n_cells`` active cells; water is distributed evenly across them.
"""

from __future__ import annotations

import numpy as np

from repro.config.schema import CoolingTowerSpec
from repro.exceptions import CoolingModelError


class CoolingTowerFarm:
    """The 5-tower x 4-cell Frontier farm (20 independent cells)."""

    def __init__(self, spec: CoolingTowerSpec, design_flow_per_cell_m3s: float) -> None:
        if design_flow_per_cell_m3s <= 0:
            raise CoolingModelError("design flow per cell must be positive")
        self.spec = spec
        self.design_flow_per_cell = float(design_flow_per_cell_m3s)

    def effectiveness(
        self, fan_speed: np.ndarray | float, flow_per_cell_m3s: np.ndarray | float
    ) -> np.ndarray | float:
        """Cell effectiveness at the given fan speed and water loading.

        At design loading and full fan speed this returns the spec's
        design effectiveness; effectiveness scales ~ fan^0.6 (air-side
        NTU) and degrades with over-loading ~ (Q/Q_d)^-0.4.  A free-
        convection floor of 15 % of design represents fan-off operation.
        """
        fan = np.clip(np.asarray(fan_speed, dtype=np.float64), 0.0, 1.0)
        flow = np.asarray(flow_per_cell_m3s, dtype=np.float64)
        loading = np.maximum(flow / self.design_flow_per_cell, 1e-3)
        eps = self.spec.design_effectiveness * np.maximum(
            fan**0.6, 0.15
        ) * loading**-0.4
        return np.clip(eps, 0.0, 0.98)

    def outlet_temperature(
        self,
        t_in_c: float,
        t_wetbulb_c: float,
        total_flow_m3s: float,
        n_cells: int,
        fan_speed: float,
    ) -> float:
        """Mixed water outlet temperature of the active cells, degC.

        Physically the water cannot be cooled below the wet-bulb; the
        effectiveness form enforces that automatically.
        """
        if n_cells < 0 or n_cells > self.spec.total_cells:
            raise CoolingModelError("n_cells outside farm size")
        if total_flow_m3s < 0:
            raise CoolingModelError("flow must be non-negative")
        if n_cells == 0 or total_flow_m3s == 0:
            return float(t_in_c)
        per_cell = total_flow_m3s / n_cells
        eps = float(self.effectiveness(fan_speed, per_cell))
        return float(t_in_c - eps * (t_in_c - t_wetbulb_c))

    def fan_power_w(self, n_cells: int, fan_speed: float) -> float:
        """Total fan power of the active cells (affinity cube law)."""
        if n_cells < 0 or n_cells > self.spec.total_cells:
            raise CoolingModelError("n_cells outside farm size")
        s = float(np.clip(fan_speed, 0.0, 1.0))
        return n_cells * self.spec.fan_power_w * max(s**3, 0.02)

    def per_cell_fan_power_w(self, n_cells: int, fan_speed: float) -> np.ndarray:
        """Per-cell fan power over all installed cells (0 when off)."""
        out = np.zeros(self.spec.total_cells)
        if n_cells:
            out[:n_cells] = self.fan_power_w(n_cells, fan_speed) / n_cells
        return out


__all__ = ["CoolingTowerFarm"]
