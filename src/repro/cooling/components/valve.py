"""Control valves: variable flow resistance with equal-percentage trim.

Each CDU regulates its primary coolant draw with a control valve (paper
section III-C5, CDU-rack loop).  Opening maps to a flow coefficient via
an equal-percentage characteristic, the standard trim for temperature
control loops.
"""

from __future__ import annotations

import numpy as np

from repro.cooling.components.pipe import FlowResistance
from repro.exceptions import CoolingModelError


class ControlValve:
    """Equal-percentage valve: Cv(x) = Cv_max * R^(x-1), x in [0, 1].

    ``rangeability`` R sets the turndown (Cv at x=0 is Cv_max/R).
    The valve exposes an equivalent quadratic resistance at the current
    opening, composable with the loop's fixed piping resistance.
    """

    def __init__(
        self,
        cv_max_flow_m3s: float,
        dp_rated_pa: float,
        *,
        rangeability: float = 30.0,
    ) -> None:
        if cv_max_flow_m3s <= 0 or dp_rated_pa <= 0:
            raise CoolingModelError("valve rating must be positive")
        if rangeability <= 1:
            raise CoolingModelError("rangeability must exceed 1")
        self.cv_max_flow = float(cv_max_flow_m3s)
        self.dp_rated = float(dp_rated_pa)
        self.rangeability = float(rangeability)

    def flow_fraction(self, opening: np.ndarray | float) -> np.ndarray | float:
        """Relative flow coefficient at ``opening`` (equal-percentage)."""
        x = np.clip(np.asarray(opening, dtype=np.float64), 0.0, 1.0)
        return self.rangeability ** (x - 1.0)

    def flow_at(
        self, opening: np.ndarray | float, dp_pa: np.ndarray | float
    ) -> np.ndarray | float:
        """Flow through the valve at the given opening and pressure drop."""
        dp = np.asarray(dp_pa, dtype=np.float64)
        if np.any(dp < 0):
            raise CoolingModelError("valve dp must be non-negative")
        frac = self.flow_fraction(opening)
        return self.cv_max_flow * frac * np.sqrt(dp / self.dp_rated)

    def resistance(self, opening: float) -> FlowResistance:
        """Equivalent quadratic resistance at a fixed opening."""
        frac = float(self.flow_fraction(opening))
        q_rated = self.cv_max_flow * frac
        return FlowResistance(self.dp_rated / q_rated**2)


__all__ = ["ControlValve"]
