"""Thermal capacitance control volume.

The Modelica model builds every loop from volumes (mass/energy storage)
connected by resistances (paper section III-C4, templated layout of
[56]).  A :class:`ThermalVolume` is a well-mixed lumped volume:

    rho V cp dT/dt = m_dot cp (T_in - T) + Q_heat

advanced with the exact exponential update for the advection term, which
is unconditionally stable even when ``m_dot dt > rho V`` (fast flushing),
so the plant can sub-step coarsely without blowing up.
Vector state supports banks of identical volumes (the 25 CDUs).
"""

from __future__ import annotations

import numpy as np

from repro.cooling.properties import CoolantProperties
from repro.exceptions import CoolingModelError


class ThermalVolume:
    """Well-mixed liquid volume with through-flow and heat injection."""

    def __init__(
        self,
        volume_m3: float,
        fluid: CoolantProperties,
        t0_c: float,
        *,
        width: int = 1,
    ) -> None:
        if volume_m3 <= 0:
            raise CoolingModelError("volume must be positive")
        if width < 1:
            raise CoolingModelError("width must be >= 1")
        self.volume_m3 = float(volume_m3)
        self.fluid = fluid
        self.width = int(width)
        self.temp_c = np.full(width, float(t0_c))

    def advance(
        self,
        t_in_c: np.ndarray | float,
        flow_m3s: np.ndarray | float,
        heat_w: np.ndarray | float,
        dt: float,
    ) -> np.ndarray:
        """Advance the volume temperature by ``dt`` seconds.

        Exact solution of the linear ODE over the step with frozen
        inputs: T -> T_eq + (T - T_eq) exp(-dt/tau), where
        tau = V / Q_flow and T_eq = T_in + Q_heat / (rho Q cp).
        Zero-flow volumes integrate the heat directly.
        """
        if dt <= 0:
            raise CoolingModelError("dt must be positive")
        t_in = np.broadcast_to(np.asarray(t_in_c, dtype=np.float64), (self.width,))
        flow = np.broadcast_to(np.asarray(flow_m3s, dtype=np.float64), (self.width,))
        heat = np.broadcast_to(np.asarray(heat_w, dtype=np.float64), (self.width,))
        if np.any(flow < 0):
            raise CoolingModelError("flow must be non-negative")
        mass_cp = self.fluid.thermal_mass(self.volume_m3)
        cap_rate = np.asarray(self.fluid.heat_capacity_rate(flow, self.temp_c))
        # Below 1e-9 m^3/s (a microliter per second) advection is
        # negligible against any real volume: treat the channel as
        # stagnant.  This is the documented contract boundary (see
        # test_volume_stability_property) — thresholding on cap_rate
        # instead would let physically-meaningless flows advect.
        flowing = flow > 1e-9
        # Flowing channels: exponential relaxation toward equilibrium.
        with np.errstate(divide="ignore", invalid="ignore"):
            t_eq = t_in + np.where(flowing, heat / np.maximum(cap_rate, 1e-12), 0.0)
            tau = mass_cp / np.maximum(cap_rate, 1e-12)
        # expm1 keeps the convex combination exact when dt/tau underflows
        # (near-zero flow: exp(-dt/tau) rounds to 1.0 and the naive
        # t_eq + (T - t_eq)*decay cancels catastrophically against a
        # huge t_eq, stepping T backwards).
        relax = -np.expm1(-dt / tau)
        new_flowing = self.temp_c + (t_eq - self.temp_c) * relax
        # Stagnant channels: pure heat integration.
        new_stagnant = self.temp_c + heat * dt / mass_cp
        self.temp_c = np.where(flowing, new_flowing, new_stagnant)
        return self.temp_c

    def set_temperature(self, t_c: np.ndarray | float) -> None:
        """Force the state (initialization / test hooks)."""
        self.temp_c = np.broadcast_to(
            np.asarray(t_c, dtype=np.float64), (self.width,)
        ).copy()


__all__ = ["ThermalVolume"]
