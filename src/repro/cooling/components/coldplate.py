"""CPU/GPU cold plates: junction temperature from thermal resistance.

Each Frontier blade carries two CPU cold plates and eight GPU cold plates
(paper section III-C1).  A cold plate is a thermal resistance between the
die and the blade coolant:

    T_die = T_coolant + R_th(Q) * P_die

with the convective part of ``R_th`` falling with coolant flow ^0.8
(Dittus-Boelter scaling).  This feeds the thermal-throttling detection
use case from the requirements analysis (section III-A): dies crossing
their throttle limit are flagged.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CoolingModelError


class ColdPlate:
    """Die-to-coolant thermal resistance model (vectorized over dies)."""

    def __init__(
        self,
        r_conduction_c_per_w: float,
        r_convection_design_c_per_w: float,
        design_flow_m3s: float,
        *,
        throttle_limit_c: float = 95.0,
    ) -> None:
        if r_conduction_c_per_w < 0 or r_convection_design_c_per_w <= 0:
            raise CoolingModelError("thermal resistances must be positive")
        if design_flow_m3s <= 0:
            raise CoolingModelError("design flow must be positive")
        self.r_cond = float(r_conduction_c_per_w)
        self.r_conv_design = float(r_convection_design_c_per_w)
        self.design_flow = float(design_flow_m3s)
        self.throttle_limit_c = float(throttle_limit_c)

    def thermal_resistance(self, flow_m3s: np.ndarray | float) -> np.ndarray | float:
        """R_th at the given per-plate coolant flow, degC/W."""
        flow = np.asarray(flow_m3s, dtype=np.float64)
        if np.any(flow < 0):
            raise CoolingModelError("flow must be non-negative")
        ratio = np.maximum(flow / self.design_flow, 1e-3)
        return self.r_cond + self.r_conv_design * ratio**-0.8

    def die_temperature(
        self,
        coolant_temp_c: np.ndarray | float,
        die_power_w: np.ndarray | float,
        flow_m3s: np.ndarray | float,
    ) -> np.ndarray | float:
        """Junction temperature for the given load and coolant state."""
        power = np.asarray(die_power_w, dtype=np.float64)
        if np.any(power < 0):
            raise CoolingModelError("die power must be non-negative")
        return np.asarray(coolant_temp_c) + self.thermal_resistance(flow_m3s) * power

    def throttling(
        self,
        coolant_temp_c: np.ndarray | float,
        die_power_w: np.ndarray | float,
        flow_m3s: np.ndarray | float,
    ) -> np.ndarray:
        """Boolean mask of dies exceeding the throttle limit."""
        t = self.die_temperature(coolant_temp_c, die_power_w, flow_m3s)
        return np.asarray(t) > self.throttle_limit_c


#: Default GPU cold plate: ~0.08 degC/W total at design flow.
def default_gpu_coldplate() -> ColdPlate:
    """MI250X-class cold plate at ~0.5 L/min per plate design flow."""
    return ColdPlate(
        r_conduction_c_per_w=0.02,
        r_convection_design_c_per_w=0.06,
        design_flow_m3s=8.3e-6,
        throttle_limit_c=95.0,
    )


#: Default CPU cold plate: ~0.15 degC/W total at design flow.
def default_cpu_coldplate() -> ColdPlate:
    """Trento-class cold plate at ~0.4 L/min per plate design flow."""
    return ColdPlate(
        r_conduction_c_per_w=0.04,
        r_convection_design_c_per_w=0.11,
        design_flow_m3s=6.7e-6,
        throttle_limit_c=90.0,
    )


__all__ = ["ColdPlate", "default_gpu_coldplate", "default_cpu_coldplate"]
