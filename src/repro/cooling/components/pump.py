"""Centrifugal pump curves, affinity scaling, and parallel pump groups.

One pump: quadratic head curve ``H(Q, s) = s^2 H0 - k_p Q^2`` (affinity
laws move the curve with speed fraction ``s``).  The operating point
against a system resistance ``dp = k_r Q^2`` solves in closed form:

    Q = sqrt(s^2 H0 / (k_p / n^2 + k_r))        (n identical pumps)

Shaft power follows the affinity cube law anchored at the design point,
with a hotel floor so idling VFD pumps still draw power.
"""

from __future__ import annotations

import numpy as np

from repro.config.schema import PumpSpec
from repro.cooling.components.pipe import FlowResistance
from repro.exceptions import CoolingModelError


class PumpCurve:
    """Head/power model of a single pump derived from its spec.

    ``k_p`` is chosen so the design point (rated flow at rated head)
    sits at 75 % of the shut-off head — a typical centrifugal shape.
    """

    SHUTOFF_FACTOR = 1.0 / 0.75

    def __init__(self, spec: PumpSpec) -> None:
        self.spec = spec
        self.h0 = spec.rated_head_pa * self.SHUTOFF_FACTOR
        # H(Q_d, 1) = H_rated  =>  k_p = (H0 - H_rated)/Q_d^2.
        self.k_p = (self.h0 - spec.rated_head_pa) / spec.rated_flow_m3s**2

    def head(self, flow_m3s: np.ndarray | float, speed: np.ndarray | float) -> np.ndarray | float:
        """Head at the given per-pump flow and speed fraction, Pa."""
        q = np.asarray(flow_m3s, dtype=np.float64)
        s = np.asarray(speed, dtype=np.float64)
        return s**2 * self.h0 - self.k_p * q * q

    def power(self, speed: np.ndarray | float) -> np.ndarray | float:
        """Electrical power via the affinity cube law with a 5 % floor."""
        s = np.asarray(speed, dtype=np.float64)
        if np.any(s < 0) or np.any(s > 1.2):
            raise CoolingModelError("pump speed out of range [0, 1.2]")
        return self.spec.rated_power_w * np.maximum(s**3, 0.05)


class PumpGroup:
    """``count`` identical pumps in parallel against a loop resistance.

    The group solves its quasi-static operating point each control step;
    ``n_running`` is set by the staging controller.
    """

    def __init__(self, spec: PumpSpec, *, n_running: int | None = None) -> None:
        self.spec = spec
        self.curve = PumpCurve(spec)
        self.n_running = spec.count if n_running is None else int(n_running)
        if not 0 <= self.n_running <= spec.count:
            raise CoolingModelError("n_running outside [0, count]")

    def operating_point(
        self, resistance: FlowResistance, speed: float
    ) -> tuple[float, float]:
        """(total flow m^3/s, head Pa) against ``resistance`` at ``speed``.

        With ``n`` pumps each carrying Q/n:
        s^2 H0 - k_p (Q/n)^2 = k_r Q^2.
        """
        if self.n_running == 0:
            return 0.0, 0.0
        s = float(np.clip(speed, 0.0, 1.0))
        if s <= 0.0:
            return 0.0, 0.0
        n = self.n_running
        denom = self.curve.k_p / n**2 + resistance.k
        q_total = float(np.sqrt(s**2 * self.curve.h0 / denom))
        head = float(resistance.pressure_drop(q_total))
        return q_total, head

    def speed_for_flow(self, resistance: FlowResistance, q_total: float) -> float:
        """Speed fraction needed to push ``q_total`` through the loop."""
        if q_total <= 0 or self.n_running == 0:
            return 0.0
        n = self.n_running
        denom = self.curve.k_p / n**2 + resistance.k
        s = float(np.sqrt(q_total**2 * denom / self.curve.h0))
        return min(s, 1.0)

    def power(self, speed: float) -> float:
        """Total electrical power of the running pumps, W."""
        if self.n_running == 0:
            return 0.0
        return float(self.curve.power(speed)) * self.n_running

    def per_pump_power(self, speed: float) -> np.ndarray:
        """Per-pump power vector over all installed pumps (0 when off)."""
        powers = np.zeros(self.spec.count)
        if self.n_running:
            powers[: self.n_running] = float(self.curve.power(speed))
        return powers


__all__ = ["PumpCurve", "PumpGroup"]
