"""Counterflow heat exchangers via the effectiveness-NTU method.

Covers both the five intermediate EHXs (tower loop <-> HTW loop) and the
25 HEX-1600s (HTW loop <-> CDU secondary loop).  Effectiveness for a
counterflow exchanger:

    NTU = UA / C_min,   Cr = C_min / C_max
    eps = (1 - exp(-NTU (1 - Cr))) / (1 - Cr exp(-NTU (1 - Cr)))
    eps = NTU / (1 + NTU)                        when Cr ~= 1

Vectorized so a bank of 25 identical units computes in one call.
"""

from __future__ import annotations

import numpy as np

from repro.cooling.properties import CoolantProperties
from repro.exceptions import CoolingModelError


class CounterflowHX:
    """epsilon-NTU counterflow heat exchanger (bank-capable)."""

    def __init__(
        self,
        ua_w_per_k: float,
        hot_fluid: CoolantProperties,
        cold_fluid: CoolantProperties,
    ) -> None:
        if ua_w_per_k <= 0:
            raise CoolingModelError("UA must be positive")
        self.ua = float(ua_w_per_k)
        self.hot_fluid = hot_fluid
        self.cold_fluid = cold_fluid

    def effectiveness(
        self, c_hot: np.ndarray, c_cold: np.ndarray, ua: np.ndarray | float | None = None
    ) -> np.ndarray:
        """Counterflow effectiveness for capacity-rate arrays (W/K)."""
        c_hot = np.asarray(c_hot, dtype=np.float64)
        c_cold = np.asarray(c_cold, dtype=np.float64)
        ua_eff = self.ua if ua is None else np.asarray(ua, dtype=np.float64)
        c_min = np.minimum(c_hot, c_cold)
        c_max = np.maximum(c_hot, c_cold)
        # Degenerate (no-flow) channels transfer nothing.
        dead = c_min <= 1e-9
        c_min_safe = np.where(dead, 1.0, c_min)
        cr = np.where(dead, 0.0, c_min / np.maximum(c_max, 1e-12))
        ntu = ua_eff / c_min_safe
        near_unity = np.abs(1.0 - cr) < 1e-6
        with np.errstate(over="ignore"):
            e = np.exp(-ntu * (1.0 - cr))
        eps_general = (1.0 - e) / np.maximum(1.0 - cr * e, 1e-12)
        eps_balanced = ntu / (1.0 + ntu)
        eps = np.where(near_unity, eps_balanced, eps_general)
        return np.where(dead, 0.0, np.clip(eps, 0.0, 1.0))

    def transfer(
        self,
        t_hot_in_c: np.ndarray | float,
        flow_hot_m3s: np.ndarray | float,
        t_cold_in_c: np.ndarray | float,
        flow_cold_m3s: np.ndarray | float,
        *,
        ua: np.ndarray | float | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Steady heat transfer: returns (q_w, t_hot_out_c, t_cold_out_c).

        Positive ``q_w`` flows hot -> cold; if the "hot" inlet is colder
        than the "cold" inlet the transfer reverses sign, conserving
        energy either way.
        """
        t_hot = np.asarray(t_hot_in_c, dtype=np.float64)
        t_cold = np.asarray(t_cold_in_c, dtype=np.float64)
        c_hot = np.asarray(
            self.hot_fluid.heat_capacity_rate(flow_hot_m3s, t_hot)
        )
        c_cold = np.asarray(
            self.cold_fluid.heat_capacity_rate(flow_cold_m3s, t_cold)
        )
        eps = self.effectiveness(c_hot, c_cold, ua)
        c_min = np.minimum(c_hot, c_cold)
        q = eps * c_min * (t_hot - t_cold)
        with np.errstate(divide="ignore", invalid="ignore"):
            t_hot_out = np.where(c_hot > 1e-9, t_hot - q / np.maximum(c_hot, 1e-12), t_hot)
            t_cold_out = np.where(
                c_cold > 1e-9, t_cold + q / np.maximum(c_cold, 1e-12), t_cold
            )
        return q, t_hot_out, t_cold_out


__all__ = ["CounterflowHX"]
