"""Thermo-fluid component models: volumes, pumps, HXs, towers, valves."""

from repro.cooling.components.volume import ThermalVolume
from repro.cooling.components.pipe import FlowResistance
from repro.cooling.components.pump import PumpCurve, PumpGroup
from repro.cooling.components.heat_exchanger import CounterflowHX
from repro.cooling.components.cooling_tower import CoolingTowerFarm
from repro.cooling.components.valve import ControlValve
from repro.cooling.components.coldplate import ColdPlate

__all__ = [
    "ThermalVolume",
    "FlowResistance",
    "PumpCurve",
    "PumpGroup",
    "CounterflowHX",
    "CoolingTowerFarm",
    "ControlValve",
    "ColdPlate",
]
