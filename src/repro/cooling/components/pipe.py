"""Quadratic flow resistances (pipes, fittings, cold-plate manifolds).

Turbulent-regime pressure drop: ``dp = k Q^2`` with ``k`` fit at a design
point.  Series and parallel composition follow the usual hydraulic
algebra, letting loop models collapse their piping into one equivalent
resistance the way the Modelica templated layout does.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CoolingModelError


class FlowResistance:
    """dp = k * Q^2 resistance element."""

    def __init__(self, k_pa_per_m3s2: float) -> None:
        if k_pa_per_m3s2 <= 0:
            raise CoolingModelError("resistance coefficient must be positive")
        self.k = float(k_pa_per_m3s2)

    @classmethod
    def from_design_point(
        cls, dp_pa: float, flow_m3s: float
    ) -> "FlowResistance":
        """Fit ``k`` so the element drops ``dp_pa`` at ``flow_m3s``."""
        if dp_pa <= 0 or flow_m3s <= 0:
            raise CoolingModelError("design point must be positive")
        return cls(dp_pa / flow_m3s**2)

    def pressure_drop(self, flow_m3s: np.ndarray | float) -> np.ndarray | float:
        """Pressure drop at the given flow, Pa."""
        q = np.asarray(flow_m3s, dtype=np.float64)
        return self.k * q * np.abs(q)

    def flow_at(self, dp_pa: np.ndarray | float) -> np.ndarray | float:
        """Flow passing the element under ``dp_pa``, m^3/s."""
        dp = np.asarray(dp_pa, dtype=np.float64)
        return np.sign(dp) * np.sqrt(np.abs(dp) / self.k)

    def series(self, other: "FlowResistance") -> "FlowResistance":
        """Equivalent resistance of self followed by ``other``."""
        return FlowResistance(self.k + other.k)

    def parallel(self, other: "FlowResistance") -> "FlowResistance":
        """Equivalent resistance of self alongside ``other``."""
        inv = 1.0 / np.sqrt(self.k) + 1.0 / np.sqrt(other.k)
        return FlowResistance(1.0 / inv**2)

    def parallel_n(self, n: int) -> "FlowResistance":
        """``n`` identical copies of this element in parallel."""
        if n < 1:
            raise CoolingModelError("n must be >= 1")
        return FlowResistance(self.k / n**2)


__all__ = ["FlowResistance"]
