"""Command-line interface: the paper's terminal console (Fig. 6).

Subcommands mirror the operations the paper exposes through its console
and dashboard, wired through the declarative scenario API:

- ``run`` — synthetic-workload simulation with the end-of-run report
  (``--live`` streams per-quantum status lines while it runs),
- ``verify`` — the Table III verification points (an experiment suite),
- ``replay`` — replay a saved telemetry dataset (native format),
- ``whatif`` — the section IV-3 counterfactual studies,
- ``suite`` — run a JSON-described scenario suite, optionally across
  worker processes, and print the comparison table,
- ``sweep`` — sweep one scenario parameter over a value grid,
- ``campaign`` — persisted sweep campaigns: ``campaign run`` executes a
  grid/LHS sweep into an artifact directory (skipping already-completed
  cells), ``campaign resume`` finishes an interrupted one, and
  ``campaign compare`` reloads stored campaigns — without re-simulating
  — into comparison tables and heat maps,
- ``scene`` — emit the descriptive-twin scene graph as JSON,
- ``autocsm`` — print the generated cooling-model inventory,
- ``systems`` — list bundled machine specifications.

Entry point::

    python -m repro.cli <subcommand> [options]

(or the ``repro`` console script when the package is installed).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.config.loader import builtin_system_names
from repro.cooling.autocsm import autocsm_report
from repro.core.stats import compute_statistics
from repro.exceptions import ExaDigiTError
from repro.scenarios import (
    Campaign,
    CampaignStore,
    DigitalTwin,
    ExperimentSuite,
    GridSweepScenario,
    LatinHypercubeSweepScenario,
    ReplayScenario,
    Scenario,
    SweepScenario,
    SyntheticScenario,
    VerificationScenario,
    WhatIfScenario,
)
from repro.viz.campaign import (
    CAMPAIGN_METRICS,
    campaign_comparison,
    campaign_heatmap,
)
from repro.viz.dashboard import LiveDashboard, render_dashboard
from repro.viz.export import export_result
from repro.viz.scene import build_scene


def _add_system_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--system",
        default="frontier",
        help="builtin system name or path to a JSON spec (default: frontier)",
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    _add_system_arg(parser)
    parser.add_argument(
        "--hours", type=float, default=2.0, help="simulated hours (default 2)"
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument(
        "--no-cooling",
        action="store_true",
        help="skip the cooling model (paper: 3x faster replays)",
    )
    parser.add_argument(
        "--export",
        metavar="PATH",
        help="write the run series to PATH.json",
    )


def _add_workers_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for scenario execution (default 1 = serial)",
    )


def cmd_run(args: argparse.Namespace) -> int:
    twin = DigitalTwin(args.system)
    scenario = SyntheticScenario(
        duration_s=args.hours * 3600.0,
        seed=args.seed,
        with_cooling=not args.no_cooling,
    )
    if args.live:
        live = LiveDashboard(every=max(1, int(args.hours * 6)))

        def progress(step):
            line = live.update(step)
            if line is not None:
                print(line, flush=True)

        outcome = scenario.run(twin, progress=progress)
    else:
        outcome = scenario.run(twin)
    result = outcome.result
    print(outcome.statistics.report())
    print()
    print(render_dashboard(result, title=twin.spec.name))
    if args.export:
        path = export_result(result, args.export)
        print(f"\nseries written to {path}")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    suite = ExperimentSuite(args.system)
    for point in ("idle", "hpl", "peak"):
        suite.add(
            VerificationScenario(
                name=point, point=point, duration_s=600.0, with_cooling=False
            )
        )
    outcome = suite.run(workers=args.workers)
    print(f"{'point':8s} {'MW':>8s}")
    for r in outcome:
        print(f"{r.name:8s} {r.result.mean_power_w / 1e6:8.2f}")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    twin = DigitalTwin(args.system)
    scenario = ReplayScenario(
        dataset_path=args.dataset,
        duration_s=args.hours * 3600.0,
        seed=args.seed,
        with_cooling=not args.no_cooling,
    )
    outcome = scenario.run(twin)
    print(compute_statistics(outcome.result, twin.spec.economics).report())
    if args.export:
        path = export_result(outcome.result, args.export)
        print(f"\nseries written to {path}")
    return 0


def cmd_whatif(args: argparse.Namespace) -> int:
    # What-ifs compare conversion chains; they run uncoupled (the
    # paper's fast path) regardless of --no-cooling, as before.
    scenario = WhatIfScenario(
        modification=args.scenario,
        duration_s=args.hours * 3600.0,
        seed=args.seed,
        with_cooling=False,
    )
    outcome = scenario.run(DigitalTwin(args.system))
    print(outcome.comparison.report())
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    suite = ExperimentSuite.from_file(
        args.scenarios, system=args.system
    )
    outcome = suite.run(
        workers=args.workers,
        progress=lambda s, done, total: print(
            f"[{done}/{total}] {s.name}", file=sys.stderr, flush=True
        ),
    )
    print(outcome.comparison_table())
    _export_suite(outcome, args.export)
    return 0


def _export_suite(outcome, prefix: str | None) -> None:
    """Write each scenario's series to ``prefix-<name>.json``."""
    if not prefix:
        return
    for r in outcome:
        if r.result is not None:
            # Sweep children are named "base/param=value"; flatten the
            # separators and dots so every artifact lands beside the
            # prefix (export_result's .with_suffix would truncate at a
            # dot, silently overwriting e.g. wetbulb 22.5 with 22.75).
            safe = (
                r.name.replace("/", "-").replace("=", "-").replace(".", "_")
            )
            export_result(r.result, f"{prefix}-{safe}")
    print(f"\nper-scenario series written to {prefix}-<name>.json")


def _parse_value(raw: str):
    """Parse one CLI sweep value: bool, int, float, or bare string."""
    raw = raw.strip()
    if raw.lower() in ("true", "false"):
        return raw.lower() == "true"
    try:
        return int(raw)
    except ValueError:
        try:
            return float(raw)
        except ValueError:
            return raw


def cmd_sweep(args: argparse.Namespace) -> int:
    base = Scenario.from_dict(
        {
            "kind": args.kind,
            "name": args.kind,
            "duration_s": args.hours * 3600.0,
            "seed": args.seed,
            "with_cooling": not args.no_cooling,
        }
    )
    values = [_parse_value(raw) for raw in args.values.split(",")]
    sweep = SweepScenario(
        name=f"{args.kind}-{args.param}",
        base=base,
        parameter=args.param,
        values=tuple(values),
    )
    suite = ExperimentSuite(args.system, [sweep])
    outcome = suite.run(workers=args.workers)
    print(outcome.comparison_table())
    _export_suite(outcome, args.export)
    return 0


def _parse_grid(text: str) -> dict[str, tuple]:
    """Parse ``"wetbulb_c=12,15,18;seed=0,1,2,3"`` into a grid mapping."""
    grid: dict[str, tuple] = {}
    for axis in text.split(";"):
        axis = axis.strip()
        if not axis:
            continue
        if "=" not in axis:
            raise ExaDigiTError(
                f"bad grid axis {axis!r}; expected param=v1,v2,..."
            )
        name, _, values = axis.partition("=")
        grid[name.strip()] = tuple(
            _parse_value(v) for v in values.split(",") if v.strip()
        )
    if not grid:
        raise ExaDigiTError("empty --grid specification")
    return grid


def _parse_ranges(text: str) -> dict[str, tuple]:
    """Parse ``"wetbulb_c=5.0:25;seed=0:100"`` into an LHS ranges mapping.

    Bounds keep the type they are written with: a bound containing a
    decimal point is a float, a bare integer stays an integer — and an
    axis whose bounds are *both* integers samples integers (see
    :class:`~repro.scenarios.library.LatinHypercubeSweepScenario`).
    Write ``5.0:25`` for a continuous axis, ``0:100`` for a discrete
    one like ``seed``.
    """
    ranges: dict[str, tuple] = {}
    for axis in text.split(";"):
        axis = axis.strip()
        if not axis:
            continue
        name, _, bounds = axis.partition("=")
        low, sep, high = bounds.partition(":")
        if "=" not in axis or not sep:
            raise ExaDigiTError(
                f"bad LHS axis {axis!r}; expected param=low:high"
            )
        ranges[name.strip()] = (_parse_value(low), _parse_value(high))
    if not ranges:
        raise ExaDigiTError("empty --lhs specification")
    return ranges


def _campaign_scenarios(args: argparse.Namespace) -> tuple[list, object]:
    """Build the declared scenario list (and system) for ``campaign run``."""
    if args.scenarios:
        suite = ExperimentSuite.from_file(args.scenarios, system=args.system)
        return suite.scenarios, suite.twin
    base = Scenario.from_dict(
        {
            "kind": args.kind,
            "name": args.kind,
            "duration_s": args.hours * 3600.0,
            "seed": args.seed,
            "with_cooling": not args.no_cooling,
        }
    )
    if args.grid:
        sweep: Scenario = GridSweepScenario(
            name=f"{args.kind}-grid", base=base, grid=_parse_grid(args.grid)
        )
    elif args.lhs:
        sweep = LatinHypercubeSweepScenario(
            name=f"{args.kind}-lhs",
            base=base,
            ranges=_parse_ranges(args.lhs),
            samples=args.samples,
            seed=args.seed,
        )
    else:
        raise ExaDigiTError(
            "campaign run needs --grid, --lhs, or --scenarios FILE"
        )
    return [sweep], args.system or "frontier"


def _campaign_progress(scenario, done: int, total: int) -> None:
    print(f"[{done}/{total}] {scenario.name}", file=sys.stderr, flush=True)


def cmd_campaign_run(args: argparse.Namespace) -> int:
    if CampaignStore.exists(args.directory):
        print(
            f"campaign exists at {args.directory}; resuming "
            "(completed cells are skipped)",
            file=sys.stderr,
        )
        campaign = Campaign.open(args.directory)
    else:
        scenarios, system = _campaign_scenarios(args)
        campaign = Campaign.create(
            args.directory, scenarios, system=system, name=args.name
        )
    outcome = campaign.run(
        workers=args.workers, progress=_campaign_progress
    )
    print(outcome.comparison_table())
    print(f"\nartifacts: {campaign.path}", file=sys.stderr)
    return 0


def cmd_campaign_resume(args: argparse.Namespace) -> int:
    campaign = Campaign.open(args.directory)
    pending = len(campaign.pending())
    total = len(campaign.cells)
    print(
        f"resuming {campaign.store.name}: {total - pending}/{total} cells "
        "already done",
        file=sys.stderr,
    )
    outcome = campaign.run(workers=args.workers, progress=_campaign_progress)
    print(outcome.comparison_table())
    return 0


def cmd_campaign_compare(args: argparse.Namespace) -> int:
    stores = [CampaignStore.open(d) for d in args.directories]
    loaded = [(store.name, store.load()) for store in stores]
    if len(loaded) == 1:
        print(loaded[0][1].comparison_table())
    else:
        print(campaign_comparison(loaded, metric=args.metric))
    if args.heatmap:
        for store, (label, outcome) in zip(stores, loaded):
            for scenario in store.declared_scenarios():
                if isinstance(scenario, GridSweepScenario):
                    print()
                    print(f"campaign {label}:")
                    print(
                        campaign_heatmap(
                            outcome, scenario, metric=args.metric
                        )
                    )
    return 0


def cmd_scene(args: argparse.Namespace) -> int:
    print(build_scene(DigitalTwin(args.system).spec).to_json())
    return 0


def cmd_autocsm(args: argparse.Namespace) -> int:
    print(autocsm_report(DigitalTwin(args.system).spec))
    return 0


def cmd_systems(args: argparse.Namespace) -> int:
    for name in builtin_system_names():
        print(name)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ExaDigiT digital-twin console",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="synthetic-workload simulation")
    _add_common(p)
    p.add_argument(
        "--live",
        action="store_true",
        help="stream per-quantum status lines while the run progresses",
    )
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("verify", help="Table III verification points")
    _add_system_arg(p)
    _add_workers_arg(p)
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("replay", help="replay a saved telemetry dataset")
    _add_common(p)
    p.add_argument("dataset", help="path prefix of a saved dataset")
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser("whatif", help="counterfactual studies (IV-3)")
    _add_common(p)
    p.add_argument(
        "scenario",
        choices=("smart-rectifier", "direct-dc"),
        help="which modification to evaluate",
    )
    p.set_defaults(func=cmd_whatif)

    p = sub.add_parser(
        "suite", help="run a JSON scenario suite (optionally in parallel)"
    )
    p.add_argument(
        "scenarios",
        help="JSON file: array of scenario objects or "
        '{"system": ..., "scenarios": [...]}',
    )
    p.add_argument(
        "--system",
        default=None,
        help="override the suite file's system (builtin name or JSON path)",
    )
    _add_workers_arg(p)
    p.add_argument(
        "--export",
        metavar="PREFIX",
        help="write each scenario's series to PREFIX-<name>.json",
    )
    p.set_defaults(func=cmd_suite)

    p = sub.add_parser("sweep", help="sweep one scenario parameter")
    _add_common(p)
    _add_workers_arg(p)
    p.add_argument(
        "--kind",
        default="synthetic",
        help="base scenario kind to sweep (default: synthetic)",
    )
    p.add_argument(
        "--param",
        default="seed",
        help="scenario field to sweep (default: seed)",
    )
    p.add_argument(
        "--values",
        default="0,1,2,3",
        help="comma-separated values for the swept field",
    )
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "campaign",
        help="persisted sweep campaigns (run / resume / compare)",
    )
    campaign_sub = p.add_subparsers(dest="campaign_command", required=True)

    cp = campaign_sub.add_parser(
        "run",
        help="run a sweep campaign into an artifact directory "
        "(resumes if it exists)",
    )
    cp.add_argument("directory", help="campaign artifact directory")
    cp.add_argument(
        "--system",
        default=None,
        help="builtin system name or JSON spec path (default: frontier, "
        "or the --scenarios file's system)",
    )
    cp.add_argument(
        "--hours", type=float, default=2.0, help="simulated hours (default 2)"
    )
    cp.add_argument("--seed", type=int, default=0, help="RNG seed")
    cp.add_argument(
        "--no-cooling",
        action="store_true",
        help="skip the cooling model (paper: 3x faster replays)",
    )
    _add_workers_arg(cp)
    cp.add_argument(
        "--kind",
        default="synthetic",
        help="base scenario kind to sweep (default: synthetic)",
    )
    cp.add_argument(
        "--grid",
        metavar="SPEC",
        help='cartesian grid, e.g. "wetbulb_c=12,15,18;seed=0,1,2,3"',
    )
    cp.add_argument(
        "--lhs",
        metavar="SPEC",
        help='latin-hypercube box, e.g. "wetbulb_c=5.0:25;seed=0:100" '
        "(integer bounds sample integers; use a decimal point for "
        "continuous axes)",
    )
    cp.add_argument(
        "--samples",
        type=int,
        default=8,
        help="LHS sample count (default 8)",
    )
    cp.add_argument(
        "--scenarios",
        metavar="FILE",
        help="JSON suite file instead of --grid/--lhs",
    )
    cp.add_argument(
        "--name", default=None, help="campaign name (default: directory name)"
    )
    cp.set_defaults(func=cmd_campaign_run)

    cp = campaign_sub.add_parser(
        "resume", help="finish an interrupted campaign (skips done cells)"
    )
    cp.add_argument("directory", help="campaign artifact directory")
    _add_workers_arg(cp)
    cp.set_defaults(func=cmd_campaign_resume)

    cp = campaign_sub.add_parser(
        "compare",
        help="reload stored campaigns (no simulation) into tables/heat maps",
    )
    cp.add_argument(
        "directories", nargs="+", help="campaign artifact directories"
    )
    cp.add_argument(
        "--metric",
        default="mean_power_mw",
        choices=CAMPAIGN_METRICS,
        help="metric for cross-campaign tables and heat maps",
    )
    cp.add_argument(
        "--heatmap",
        action="store_true",
        help="also render grid-sweep heat maps",
    )
    cp.set_defaults(func=cmd_campaign_compare)

    p = sub.add_parser("scene", help="emit the L1 scene graph as JSON")
    _add_system_arg(p)
    p.set_defaults(func=cmd_scene)

    p = sub.add_parser("autocsm", help="generated cooling-model inventory")
    _add_system_arg(p)
    p.set_defaults(func=cmd_autocsm)

    p = sub.add_parser("systems", help="list bundled machine specs")
    p.set_defaults(func=cmd_systems)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ExaDigiTError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout consumer (e.g. `head`) went away mid-stream; point the
        # fd at devnull so the interpreter-exit flush doesn't re-raise.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
