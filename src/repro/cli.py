"""Command-line interface: the paper's terminal console (Fig. 6).

Subcommands mirror the operations the paper exposes through its console
and dashboard, wired through the declarative scenario API:

- ``run`` — synthetic-workload simulation with the end-of-run report
  (``--live`` streams per-quantum status lines while it runs;
  ``--cooling-backend`` picks the fused kernel or the reference oracle),
- ``profile`` — per-phase wall-time profile of the engine hot path
  (schedule / power / cooling / collect), emitted as JSON,
- ``verify`` — the Table III verification points (an experiment suite),
- ``replay`` — replay a saved telemetry dataset (native format),
- ``whatif`` — the section IV-3 counterfactual studies,
- ``suite`` — run a JSON-described scenario suite, optionally across
  worker processes, and print the comparison table,
- ``sweep`` — sweep one scenario parameter over a value grid,
- ``campaign`` — persisted sweep campaigns: ``campaign run`` executes a
  grid/LHS sweep into an artifact directory (skipping already-completed
  cells; ``--fidelity surrogate`` runs every cell on the fast path, and
  ``--refine-top K`` turns it into a multi-fidelity campaign: surrogate
  screen, then full-fidelity refinement of the top K cells), ``campaign
  resume`` finishes an interrupted one, and ``campaign compare`` reloads
  stored campaigns — without re-simulating — into comparison tables and
  heat maps,
- ``surrogate`` — the fast-path model store: ``surrogate fit`` trains a
  bundle (from L4 sampling or a persisted campaign) and ``surrogate
  eval`` audits a saved bundle against full fidelity,
- ``serve`` / ``submit`` / ``watch`` / ``jobs`` — the twin service
  (:mod:`repro.service`): ``serve`` runs the asyncio job server (worker
  pool, warm-plant cache, persisted result store), ``submit`` posts a
  scenario JSON (``--watch`` streams it), ``watch`` streams a job's
  per-quantum records over NDJSON or websocket, and ``jobs`` tabulates
  the server's job list,
- ``workload`` — the parametric workload-generator subsystem
  (:mod:`repro.workloads`): ``workload list`` catalogs the registered
  generators with their typed parameter schemas, ``workload preview``
  generates one workload and renders its arrival / wet-bulb / grid
  trace as an ASCII chart (plus its content-address spec-SHA) without
  simulating anything, and ``workload sweep`` runs a stress-suite
  campaign over a generator grid — resumable, optionally
  surrogate-screened (``--screen-top K``), with per-cell invariant
  validation written to ``validation.json``,
- ``scene`` — emit the descriptive-twin scene graph as JSON,
- ``autocsm`` — print the generated cooling-model inventory,
- ``systems`` — list bundled machine specifications.

Entry point::

    python -m repro.cli <subcommand> [options]

(or the ``repro`` console script when the package is installed).
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys

from repro.config.loader import builtin_system_names
from repro.cooling.autocsm import autocsm_report
from repro.core.stats import compute_statistics
from repro.exceptions import ExaDigiTError
from repro.fastpath import (
    MultiFidelityCampaign,
    SurrogateBundle,
    fit_bundle,
    fit_bundle_from_store,
)
from repro.fastpath.multifidelity import with_fidelity
from repro.scenarios import (
    Campaign,
    CampaignStore,
    DigitalTwin,
    ExperimentSuite,
    GridSweepScenario,
    LatinHypercubeSweepScenario,
    ReplayScenario,
    Scenario,
    SweepScenario,
    SyntheticScenario,
    VerificationScenario,
    WhatIfScenario,
)
from repro.viz.campaign import (
    CAMPAIGN_METRICS,
    campaign_comparison,
    campaign_heatmap,
    fidelity_error_heatmap,
)
from repro.viz.dashboard import LiveDashboard, render_dashboard
from repro.viz.export import StepStreamWriter, export_result
from repro.viz.scene import build_scene


def _add_system_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--system",
        default="frontier",
        help="builtin system name or path to a JSON spec (default: frontier)",
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    _add_system_arg(parser)
    parser.add_argument(
        "--hours", type=float, default=2.0, help="simulated hours (default 2)"
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument(
        "--no-cooling",
        action="store_true",
        help="skip the cooling model (paper: 3x faster replays)",
    )
    parser.add_argument(
        "--export",
        metavar="PATH",
        help="write the run series to PATH.json",
    )


def _add_workers_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for scenario execution (default 1 = serial)",
    )


def _add_execution_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--execution",
        choices=("serial", "batched"),
        default="serial",
        help="cell execution backend: serial per-cell runs, or one "
        "vectorized batched sweep across all pending cells "
        "(bit-identical results; --workers is ignored when batched)",
    )


def cmd_run(args: argparse.Namespace) -> int:
    twin = DigitalTwin(
        args.system,
        fidelity=args.fidelity,
        surrogates=args.surrogates,
        cooling_backend=args.cooling_backend,
    )
    scenario = SyntheticScenario(
        duration_s=args.hours * 3600.0,
        seed=args.seed,
        with_cooling=not args.no_cooling,
    )
    callbacks = []
    if args.live:
        live = LiveDashboard(every=max(1, int(args.hours * 6)))

        def live_progress(step):
            line = live.update(step)
            if line is not None:
                print(line, flush=True)

        callbacks.append(live_progress)
    writer = None
    if args.export_steps:
        writer = StepStreamWriter(args.export_steps)
        callbacks.append(writer)
    progress = (
        (lambda step: [cb(step) for cb in callbacks]) if callbacks else None
    )
    reg = None
    if getattr(args, "verbose", False):
        from repro.obs import MetricsRegistry, use_registry

        reg = MetricsRegistry()
    try:
        if reg is not None:
            with use_registry(reg):
                outcome = scenario.run(twin, progress=progress)
        else:
            outcome = scenario.run(twin, progress=progress)
    finally:
        if writer is not None:
            writer.close()
    result = outcome.result
    print(outcome.statistics.report())
    print()
    print(render_dashboard(result, title=twin.spec.name))
    if reg is not None:
        steps = int(reg.value("repro_engine_steps_total") or 0)
        evals = int(reg.value("repro_engine_power_evals_total") or 0)
        reuses = int(reg.value("repro_engine_power_reuses_total") or 0)
        print(
            f"\nengine work: steps={steps} power_evals={evals} "
            f"power_reuses={reuses}"
        )
    if args.export:
        path = export_result(result, args.export)
        print(f"\nseries written to {path}")
    if writer is not None:
        print(f"\n{writer.count} step records streamed to {writer.path}")
    return 0


def _snapshot_value(metrics: dict, name: str, **labels) -> float:
    """One sample's value out of a registry ``snapshot()`` document."""
    family = metrics.get(name)
    if not family:
        return 0.0
    for sample in family["samples"]:
        if not labels or sample["labels"] == labels:
            return float(sample.get("value", 0.0))
    return 0.0


def cmd_profile(args: argparse.Namespace) -> int:
    import json
    from time import perf_counter

    scenario = SyntheticScenario(
        duration_s=args.hours * 3600.0,
        seed=args.seed,
        with_cooling=not args.no_cooling,
    )
    mode = getattr(args, "mode", "direct")
    if mode == "direct":
        from repro.core.profiling import PhaseProfiler

        twin = DigitalTwin(
            args.system, cooling_backend=args.cooling_backend
        )
        plan = scenario.plan(twin)
        engine = scenario.build_engine(twin, plan)
        engine.profiler = profiler = PhaseProfiler()
        engine.run(plan.jobs, plan.duration_s, wetbulb=plan.wetbulb)
        doc = profiler.as_dict()
        doc["system"] = twin.spec.name
    elif mode == "batched":
        # The same scenario through BatchedEngine, observed through the
        # registry the engines fold their counters into.
        from repro.batch import BatchedEngine
        from repro.obs import MetricsRegistry, use_registry

        twin = DigitalTwin(
            args.system, cooling_backend=args.cooling_backend
        )
        with use_registry(MetricsRegistry()) as reg:
            t0 = perf_counter()
            engine = BatchedEngine([scenario], twin)
            engine.run()
            wall = perf_counter() - t0
        metrics = reg.snapshot()
        doc = {
            "wall_s": round(wall, 6),
            "lane_steps": int(
                _snapshot_value(metrics, "repro_batch_lane_steps_total")
            ),
            "padded_lane_steps": int(
                _snapshot_value(
                    metrics, "repro_batch_padded_lane_steps_total"
                )
            ),
            "engine_steps": int(
                _snapshot_value(metrics, "repro_engine_steps_total")
            ),
            "power_evals": engine.power_evals,
            "power_reuses": engine.power_reuses,
            "system": twin.spec.name,
        }
    else:  # serve: one ephemeral server, observed through /statusz
        from repro.service import TwinClient, TwinServer

        with TwinServer(args.system, workers=1, port=0) as server:
            client = TwinClient(server.url)
            t0 = perf_counter()
            job = client.submit(scenario.to_dict(), use_cache=False)
            client.wait(job["id"])
            wall = perf_counter() - t0
            metrics = client.statusz()["metrics"]
        doc = {
            "wall_s": round(wall, 6),
            "jobs_executed": int(
                _snapshot_value(
                    metrics,
                    "repro_service_jobs_finished_total",
                    state="done",
                )
            ),
            "steps_streamed": int(
                _snapshot_value(
                    metrics, "repro_service_steps_streamed_total"
                )
            ),
            "job_wall_s_sum": round(
                float(
                    (metrics.get("repro_service_job_seconds") or {})
                    .get("samples", [{}])[0]
                    .get("sum", 0.0)
                ),
                6,
            ),
            "warm_hits": int(
                _snapshot_value(metrics, "repro_service_warm_hits_total")
            ),
            "system": server.spec.name,
        }
    doc["mode"] = mode
    doc["hours"] = args.hours
    doc["cooling_backend"] = (
        None if args.no_cooling else args.cooling_backend
    )
    text = json.dumps(doc, indent=2)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        if mode == "direct":
            print(profiler.summary())
        print(f"\nprofile written to {args.out}")
    else:
        print(text)
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    suite = ExperimentSuite(args.system)
    for point in ("idle", "hpl", "peak"):
        suite.add(
            VerificationScenario(
                name=point, point=point, duration_s=600.0, with_cooling=False
            )
        )
    outcome = suite.run(workers=args.workers)
    print(f"{'point':8s} {'MW':>8s}")
    for r in outcome:
        print(f"{r.name:8s} {r.result.mean_power_w / 1e6:8.2f}")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    twin = DigitalTwin(args.system)
    scenario = ReplayScenario(
        dataset_path=args.dataset,
        duration_s=args.hours * 3600.0,
        seed=args.seed,
        with_cooling=not args.no_cooling,
    )
    outcome = scenario.run(twin)
    print(compute_statistics(outcome.result, twin.spec.economics).report())
    if args.export:
        path = export_result(outcome.result, args.export)
        print(f"\nseries written to {path}")
    return 0


def cmd_whatif(args: argparse.Namespace) -> int:
    # What-ifs compare conversion chains; they run uncoupled (the
    # paper's fast path) regardless of --no-cooling, as before.
    scenario = WhatIfScenario(
        modification=args.scenario,
        duration_s=args.hours * 3600.0,
        seed=args.seed,
        with_cooling=False,
    )
    outcome = scenario.run(DigitalTwin(args.system))
    print(outcome.comparison.report())
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    suite = ExperimentSuite.from_file(
        args.scenarios, system=args.system
    )
    outcome = suite.run(
        workers=args.workers,
        progress=lambda s, done, total: print(
            f"[{done}/{total}] {s.name}", file=sys.stderr, flush=True
        ),
    )
    print(outcome.comparison_table())
    _export_suite(outcome, args.export)
    return 0


def _export_suite(outcome, prefix: str | None) -> None:
    """Write each scenario's series to ``prefix-<name>.json``."""
    if not prefix:
        return
    for r in outcome:
        if r.result is not None:
            # Sweep children are named "base/param=value"; flatten the
            # separators and dots so every artifact lands beside the
            # prefix (export_result's .with_suffix would truncate at a
            # dot, silently overwriting e.g. wetbulb 22.5 with 22.75).
            safe = (
                r.name.replace("/", "-").replace("=", "-").replace(".", "_")
            )
            export_result(r.result, f"{prefix}-{safe}")
    print(f"\nper-scenario series written to {prefix}-<name>.json")


def _parse_value(raw: str):
    """Parse one CLI sweep value: bool, int, float, or bare string."""
    raw = raw.strip()
    if raw.lower() in ("true", "false"):
        return raw.lower() == "true"
    try:
        return int(raw)
    except ValueError:
        try:
            return float(raw)
        except ValueError:
            return raw


def cmd_sweep(args: argparse.Namespace) -> int:
    base = Scenario.from_dict(
        {
            "kind": args.kind,
            "name": args.kind,
            "duration_s": args.hours * 3600.0,
            "seed": args.seed,
            "with_cooling": not args.no_cooling,
        }
    )
    values = [_parse_value(raw) for raw in args.values.split(",")]
    sweep = SweepScenario(
        name=f"{args.kind}-{args.param}",
        base=base,
        parameter=args.param,
        values=tuple(values),
    )
    suite = ExperimentSuite(args.system, [sweep])
    outcome = suite.run(workers=args.workers)
    print(outcome.comparison_table())
    _export_suite(outcome, args.export)
    return 0


def _parse_grid(text: str) -> dict[str, tuple]:
    """Parse ``"wetbulb_c=12,15,18;seed=0,1,2,3"`` into a grid mapping."""
    grid: dict[str, tuple] = {}
    for axis in text.split(";"):
        axis = axis.strip()
        if not axis:
            continue
        if "=" not in axis:
            raise ExaDigiTError(
                f"bad grid axis {axis!r}; expected param=v1,v2,..."
            )
        name, _, values = axis.partition("=")
        grid[name.strip()] = tuple(
            _parse_value(v) for v in values.split(",") if v.strip()
        )
    if not grid:
        raise ExaDigiTError("empty --grid specification")
    return grid


def _parse_ranges(text: str) -> dict[str, tuple]:
    """Parse ``"wetbulb_c=5.0:25;seed=0:100"`` into an LHS ranges mapping.

    Bounds keep the type they are written with: a bound containing a
    decimal point is a float, a bare integer stays an integer — and an
    axis whose bounds are *both* integers samples integers (see
    :class:`~repro.scenarios.library.LatinHypercubeSweepScenario`).
    Write ``5.0:25`` for a continuous axis, ``0:100`` for a discrete
    one like ``seed``.
    """
    ranges: dict[str, tuple] = {}
    for axis in text.split(";"):
        axis = axis.strip()
        if not axis:
            continue
        name, _, bounds = axis.partition("=")
        low, sep, high = bounds.partition(":")
        if "=" not in axis or not sep:
            raise ExaDigiTError(
                f"bad LHS axis {axis!r}; expected param=low:high"
            )
        ranges[name.strip()] = (_parse_value(low), _parse_value(high))
    if not ranges:
        raise ExaDigiTError("empty --lhs specification")
    return ranges


def _campaign_scenarios(args: argparse.Namespace) -> tuple[list, object]:
    """Build the declared scenario list (and system) for ``campaign run``."""
    if args.scenarios:
        suite = ExperimentSuite.from_file(args.scenarios, system=args.system)
        return suite.scenarios, suite.twin
    base = Scenario.from_dict(
        {
            "kind": args.kind,
            "name": args.kind,
            "duration_s": args.hours * 3600.0,
            "seed": args.seed,
            "with_cooling": not args.no_cooling,
        }
    )
    if args.grid:
        sweep: Scenario = GridSweepScenario(
            name=f"{args.kind}-grid", base=base, grid=_parse_grid(args.grid)
        )
    elif args.lhs:
        sweep = LatinHypercubeSweepScenario(
            name=f"{args.kind}-lhs",
            base=base,
            ranges=_parse_ranges(args.lhs),
            samples=args.samples,
            seed=args.seed,
        )
    else:
        raise ExaDigiTError(
            "campaign run needs --grid, --lhs, or --scenarios FILE"
        )
    return [sweep], args.system or "frontier"


def _fidelity_scenarios(args: argparse.Namespace) -> tuple[list, object]:
    """Declared campaign scenarios with the --fidelity knob applied."""
    scenarios, system = _campaign_scenarios(args)
    fidelity = getattr(args, "fidelity", None)
    if fidelity:
        scenarios = [with_fidelity(s, fidelity) for s in scenarios]
    return scenarios, system


def _campaign_progress(scenario, done: int, total: int) -> None:
    print(f"[{done}/{total}] {scenario.name}", file=sys.stderr, flush=True)


def cmd_campaign_run(args: argparse.Namespace) -> int:
    # An existing multi-fidelity directory always resumes as one, even
    # if --refine-top is omitted this time — a plain campaign must
    # never be created inside a multi-fidelity root.
    if args.refine_top is not None or MultiFidelityCampaign.exists(
        args.directory
    ):
        return _run_multifidelity(args)
    if CampaignStore.exists(args.directory):
        if args.fidelity:
            raise ExaDigiTError(
                f"campaign {args.directory} already exists with its cell "
                "fidelities frozen in the manifest; --fidelity only "
                "applies at creation (use a new directory)"
            )
        print(
            f"campaign exists at {args.directory}; resuming "
            "(completed cells are skipped)",
            file=sys.stderr,
        )
        campaign = Campaign.open(args.directory, surrogates=args.surrogates)
    else:
        scenarios, system = _fidelity_scenarios(args)
        campaign = Campaign.create(
            args.directory,
            scenarios,
            system=system,
            name=args.name,
            surrogates=args.surrogates,
        )
    outcome = campaign.run(
        workers=args.workers,
        progress=_campaign_progress,
        execution=args.execution,
    )
    print(outcome.comparison_table())
    print(f"\nartifacts: {campaign.path}", file=sys.stderr)
    return 0


def _run_multifidelity(args: argparse.Namespace) -> int:
    """``campaign run --refine-top K``: screen → rank → refine."""
    if args.fidelity == "full":
        raise ExaDigiTError(
            "--refine-top screens at surrogate fidelity and refines at "
            "full; it cannot be combined with --fidelity full"
        )
    if MultiFidelityCampaign.exists(args.directory):
        print(
            f"multi-fidelity campaign exists at {args.directory}; resuming",
            file=sys.stderr,
        )
        mf = MultiFidelityCampaign.open(
            args.directory, surrogates=args.surrogates
        )
    else:
        scenarios, system = _campaign_scenarios(args)
        mf = MultiFidelityCampaign.create(
            args.directory,
            scenarios,
            system=system,
            top_k=args.refine_top,
            metric=args.metric,
            objective=args.objective,
            name=args.name,
            surrogates=args.surrogates,
        )
    result = mf.run(workers=args.workers, progress=_campaign_progress)
    if not result.complete:
        print("campaign interrupted before refinement; resume to finish")
        return 0
    print(result.report())
    for scenario in mf.screen_campaign().store.declared_scenarios():
        if isinstance(scenario, GridSweepScenario):
            print()
            print(
                fidelity_error_heatmap(
                    result.screen,
                    result.refined,
                    scenario,
                    metric=mf.metric,
                )
            )
    print(f"\nartifacts: {mf.path}", file=sys.stderr)
    return 0


def cmd_campaign_resume(args: argparse.Namespace) -> int:
    if MultiFidelityCampaign.exists(args.directory):
        mf = MultiFidelityCampaign.open(
            args.directory, surrogates=args.surrogates
        )
        print(f"resuming multi-fidelity {mf.name}", file=sys.stderr)
        result = mf.run(workers=args.workers, progress=_campaign_progress)
        print(
            result.report()
            if result.complete
            else "still incomplete; resume again to finish"
        )
        return 0
    campaign = Campaign.open(args.directory, surrogates=args.surrogates)
    pending = len(campaign.pending())
    total = len(campaign.cells)
    print(
        f"resuming {campaign.store.name}: {total - pending}/{total} cells "
        "already done",
        file=sys.stderr,
    )
    outcome = campaign.run(
        workers=args.workers,
        progress=_campaign_progress,
        execution=args.execution,
    )
    print(outcome.comparison_table())
    return 0


def cmd_surrogate_fit(args: argparse.Namespace) -> int:
    if args.from_campaign:
        store = CampaignStore.open(args.from_campaign)
        bundle = fit_bundle_from_store(
            store,
            cooling=not args.no_cooling,
            power_samples=args.power_samples,
            cooling_degree=args.cooling_degree,
            seed=args.seed,
        )
        system_name = store.system_spec().name
    else:
        twin = DigitalTwin(args.system)
        bundle = fit_bundle(
            twin.spec,
            cooling=not args.no_cooling,
            power_samples=args.power_samples,
            cooling_grid=args.grid,
            cooling_degree=args.cooling_degree,
            settle_s=args.settle,
            seed=args.seed,
        )
        system_name = twin.spec.name
    out = args.out or f"models/{system_name}.json"
    path = bundle.save(out)
    print(bundle.describe())
    print(f"\nbundle written to {path}")
    return 0


def cmd_surrogate_eval(args: argparse.Namespace) -> int:
    import time as _time

    twin = DigitalTwin(args.system)
    bundle = SurrogateBundle.load(args.bundle, spec=twin.spec)
    print(bundle.describe())
    with_cooling = bundle.has_cooling and not args.no_cooling
    scenario = SyntheticScenario(
        duration_s=args.hours * 3600.0,
        seed=args.seed,
        with_cooling=with_cooling,
    )
    t0 = _time.perf_counter()
    full = scenario.run(twin)
    full_s = _time.perf_counter() - t0
    fast_twin = DigitalTwin(
        twin.spec, fidelity="surrogate", surrogates=bundle
    )
    t0 = _time.perf_counter()
    fast = scenario.run(fast_twin)
    fast_s = _time.perf_counter() - t0
    full_m, fast_m = full.metrics(), fast.metrics()
    print()
    print(f"{'metric':14s} {'full':>10s} {'surrogate':>10s} {'abs err':>10s}")
    for key in full_m:
        err = abs(full_m[key] - fast_m[key])
        print(
            f"{key:14s} {full_m[key]:10.4f} {fast_m[key]:10.4f} {err:10.4f}"
        )
    print(
        f"\nwall time: full {full_s:.2f} s, surrogate {fast_s * 1e3:.1f} ms "
        f"-> {full_s / fast_s:.0f}x speedup"
    )
    return 0


def cmd_campaign_compare(args: argparse.Namespace) -> int:
    stores = [CampaignStore.open(d) for d in args.directories]
    loaded = [(store.name, store.load()) for store in stores]
    if len(loaded) == 1:
        print(loaded[0][1].comparison_table())
    else:
        print(campaign_comparison(loaded, metric=args.metric))
    if args.heatmap:
        for store, (label, outcome) in zip(stores, loaded):
            for scenario in store.declared_scenarios():
                if isinstance(scenario, GridSweepScenario):
                    print()
                    print(f"campaign {label}:")
                    print(
                        campaign_heatmap(
                            outcome, scenario, metric=args.metric
                        )
                    )
    return 0


DEFAULT_SERVICE_URL = "http://127.0.0.1:8787"


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.service import TwinServer

    server = TwinServer(
        args.system,
        host=args.host,
        port=args.port,
        workers=args.workers,
        store=args.store,
        fidelity=args.fidelity,
        surrogates=args.surrogates,
        max_attempts=args.max_attempts,
        execution=args.execution,
        metrics=args.metrics,
        history_interval=args.history_interval,
        alert_rules=args.alert_rules,
        chaos=args.chaos,
        max_queue_depth=args.max_queue_depth,
        max_inflight_per_client=args.max_inflight,
        drain_grace_s=args.drain_grace_s,
    )

    def banner(srv) -> None:
        # SIGTERM drains gracefully: stop admitting, finish running
        # jobs, checkpoint the pending queue, then exit.  A restart on
        # the same --store re-enqueues the checkpointed jobs.
        with contextlib.suppress(NotImplementedError, RuntimeError):
            asyncio.get_running_loop().add_signal_handler(
                signal.SIGTERM, lambda: srv.begin_drain()
            )
        print(
            f"twin service for {srv.spec.name!r} listening on "
            f"{srv.url} ({args.workers} workers"
            + (f", store {srv.store.path}" if srv.store is not None else "")
            + ")",
            file=sys.stderr,
            flush=True,
        )
        if srv.metrics.enabled:
            print(
                f"telemetry: {srv.url}/metrics  {srv.url}/statusz  "
                f"console: {srv.url}/console",
                file=sys.stderr,
                flush=True,
            )
        if srv.alerts is not None and srv.alerts.rules:
            print(
                f"alerting: {len(srv.alerts.rules)} rule(s) at "
                f"{srv.url}/alertz, history at {srv.url}/api/query",
                file=sys.stderr,
                flush=True,
            )
        if srv.chaos.enabled:
            print(
                f"CHAOS ENABLED (seed {args.chaos}): injecting "
                "seed-deterministic faults — not for production",
                file=sys.stderr,
                flush=True,
            )

    try:
        asyncio.run(server.run_forever(on_start=banner))
    except KeyboardInterrupt:
        print("\nservice stopped", file=sys.stderr)
    if server.drained:
        print("service drained cleanly", file=sys.stderr)
    return 0


def _service_client(args: argparse.Namespace):
    from repro.service import TwinClient

    return TwinClient(args.url)


def cmd_submit(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    if args.scenario_file:
        doc = _json.loads(Path(args.scenario_file).read_text("utf-8"))
    else:
        doc = {
            "kind": args.kind,
            "name": args.kind,
            "duration_s": args.hours * 3600.0,
            "seed": args.seed,
            "with_cooling": not args.no_cooling,
        }
        if args.fidelity:
            doc["fidelity"] = args.fidelity
    client = _service_client(args)
    jobs = client.submit_all(doc, use_cache=not args.no_cache)
    for job in jobs:
        print(
            f"{job['id']}  {job['state']:9s}  {job['kind']:12s} "
            f"{job['name']}" + ("  (cached)" if job["cached"] else "")
        )
    if args.watch:
        for doc in client.watch(jobs[0]["id"]):
            print(_json.dumps(doc))
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    import json as _json

    client = _service_client(args)
    stream = (
        client.watch_ws(args.job_id)
        if args.ws
        else client.watch(args.job_id)
    )
    for doc in stream:
        print(_json.dumps(doc), flush=True)
        if doc.get("event") == "failed":
            return 1
    return 0


def cmd_drain(args: argparse.Namespace) -> int:
    client = _service_client(args)
    doc = client.drain()
    checkpointed = doc.get("checkpointed", [])
    running = doc.get("running", [])
    print(
        f"draining: {len(checkpointed)} queued job(s) checkpointed, "
        f"{len(running)} running job(s) finishing"
    )
    for jid in checkpointed:
        print(f"  checkpointed {jid}")
    return 0


def cmd_jobs(args: argparse.Namespace) -> int:
    client = _service_client(args)
    jobs = client.jobs()
    if not jobs:
        print("(no jobs)")
        return 0
    print(
        f"{'id':10s} {'state':10s} {'kind':14s} {'steps':>6s} "
        f"{'attempts':>8s} {'cached':>6s}  name"
    )
    for job in jobs:
        print(
            f"{job['id']:10s} {job['state']:10s} {job['kind']:14s} "
            f"{job['steps']:6d} {job['attempts']:8d} "
            f"{str(job['cached']).lower():>6s}  {job['name']}"
        )
    return 0


_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def _sparkline(points: list, width: int = 40) -> str:
    """Unicode sparkline from ``[[t, value-or-None], ...]`` points."""
    values = [v for _, v in points if v is not None][-width:]
    if not values:
        return "(no data)"
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _SPARK_CHARS[0] * len(values) + f"  ({hi:g})"
    chars = "".join(
        _SPARK_CHARS[
            min(
                int((v - lo) / span * len(_SPARK_CHARS)),
                len(_SPARK_CHARS) - 1,
            )
        ]
        for v in values
    )
    return f"{chars}  ({lo:g}..{hi:g})"


def _render_top(
    doc: dict,
    prev_steps: float | None,
    prev_t: float | None,
    history: dict | None = None,
) -> tuple[str, float, float]:
    """One `repro top` frame from a /statusz document."""
    server = doc["server"]
    metrics = doc.get("metrics", {})
    checks = server.get("checks", {})
    workers = server["workers"]
    queue = server["queue"]
    jobs_by_state = server["jobs"]
    flight = doc.get("flight", {})
    now = doc.get("time", 0.0)
    steps = _snapshot_value(metrics, "repro_service_steps_streamed_total")
    rate = ""
    if prev_steps is not None and prev_t is not None and now > prev_t:
        rate = f"  ({(steps - prev_steps) / (now - prev_t):.1f} steps/s)"
    clients = _snapshot_value(metrics, "repro_service_stream_clients")
    lag = checks.get("event_loop", {}).get("lag_s", 0.0)
    lines = [
        f"twin service {server['system']!r} @ {doc.get('url', '?')}  "
        f"status {server['status']}",
        f"workers {workers['alive']}/{workers['configured']} alive   "
        f"queue {queue['depth']}   "
        f"running {jobs_by_state.get('running', 0)}   "
        f"stream clients {int(clients)}   loop lag {lag:.3f}s",
        "jobs: "
        + "  ".join(
            f"{state}={count}"
            for state, count in sorted(jobs_by_state.items())
        )
        + f"  (total {doc.get('jobs_total', 0)})",
        f"steps streamed {int(steps)}{rate}   cache hits "
        f"{int(_snapshot_value(metrics, 'repro_service_cache_hits_total'))}"
        "   warm hits "
        f"{int(_snapshot_value(metrics, 'repro_service_warm_hits_total'))}"
        "   requeues "
        f"{int(_snapshot_value(metrics, 'repro_service_requeues_total'))}",
        f"flight recorder: {flight.get('events', 0)} events buffered, "
        f"{flight.get('dumps', 0)} crash dumps",
    ]
    job_seconds = doc.get("job_seconds", {})
    if job_seconds.get("count"):
        lines.append(
            f"job wall time: p50 {job_seconds.get('p50', 0) or 0:.2f}s  "
            f"p95 {job_seconds.get('p95', 0) or 0:.2f}s  "
            f"p99 {job_seconds.get('p99', 0) or 0:.2f}s  "
            f"({job_seconds['count']} jobs)"
        )
    alerts = doc.get("alerts", {})
    if alerts.get("enabled"):
        firing = [
            a for a in alerts.get("alerts", []) if a["state"] == "firing"
        ]
        if firing:
            lines.append("")
            for a in firing:
                value = a.get("value")
                shown = f"{value:g}" if value is not None else "?"
                lines.append(
                    f"ALERT [{a['severity']}] {a['rule']}: "
                    f"{a['metric']} {a['op']} {a['threshold']:g} "
                    f"(value {shown})"
                )
        else:
            lines.append(
                f"alerts: {len(alerts.get('alerts', []))} rule(s), "
                "none firing"
            )
    for label, points in (history or {}).items():
        lines.append(f"{label:>12s} {_sparkline(points)}")
    recent = doc.get("jobs", [])[-10:]
    if recent:
        lines.append("")
        lines.append(
            f"{'id':10s} {'state':10s} {'kind':14s} {'steps':>6s} "
            f"{'attempts':>8s}  name"
        )
        for job in recent:
            lines.append(
                f"{job['id']:10s} {job['state']:10s} {job['kind']:14s} "
                f"{job['steps']:6d} {job['attempts']:8d}  {job['name']}"
            )
    return "\n".join(lines), steps, now


def cmd_top(args: argparse.Namespace) -> int:
    import time as _time

    client = _service_client(args)
    iterations = 1 if args.once else args.iterations
    prev_steps = prev_t = None
    shown = 0
    try:
        while True:
            doc = client.statusz()
            history = None
            if doc.get("history", {}).get("enabled"):
                history = {}
                try:
                    for label, metric, agg in (
                        ("steps/s", "repro_service_steps_streamed_total",
                         "rate"),
                        ("queue", "repro_service_queue_depth", "max"),
                    ):
                        history[label] = client.query(
                            metric, start=-120, step=3, agg=agg
                        )["points"]
                except ExaDigiTError:
                    history = None  # server predates /api/query
            frame, prev_steps, prev_t = _render_top(
                doc, prev_steps, prev_t, history
            )
            if not args.once and sys.stdout.isatty():
                print("\x1b[2J\x1b[H", end="")
            print(frame, flush=True)
            shown += 1
            if iterations and shown >= iterations:
                break
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


def cmd_alerts(args: argparse.Namespace) -> int:
    """Tabulate a service's alert rules, states, and transitions."""
    client = _service_client(args)
    doc = client.alertz()
    if not doc.get("enabled"):
        print("alerting disabled (serve with --history-interval > 0)")
        return 0
    alerts = doc.get("alerts", [])
    if not alerts:
        print("(no alert rules; serve with --alert-rules FILE)")
        return 0
    print(
        f"{'rule':20s} {'state':9s} {'severity':9s} "
        f"{'value':>10s}  condition"
    )
    for a in alerts:
        value = a.get("value")
        shown = f"{value:.4g}" if value is not None else "-"
        print(
            f"{a['rule']:20s} {a['state']:9s} {a['severity']:9s} "
            f"{shown:>10s}  {a['agg']}({a['metric']}"
            f"[{a['window_s']:g}s]) {a['op']} {a['threshold']:g} "
            f"for {a['for_s']:g}s"
        )
    transitions = doc.get("transitions", [])
    if args.transitions and transitions:
        print()
        print("recent transitions:")
        for t in transitions[-args.transitions:]:
            value = t.get("value")
            shown = f"{value:.4g}" if value is not None else "-"
            print(
                f"  t={t['t']:.3f}  {t['rule']:20s} -> {t['state']:9s} "
                f"(value {shown})"
            )
    firing = doc.get("firing", 0)
    print(
        f"\n{firing} firing / {len(alerts)} rule(s), "
        f"{doc.get('evaluations', 0)} evaluations"
    )
    return 1 if firing and args.fail_on_firing else 0


def _build_generator(kind: str, assignments, seed: int):
    """Construct a workload generator from CLI ``--set key=value`` pairs."""
    from repro.workloads import WorkloadGenerator

    doc = {"generator": kind, "seed": seed}
    for assignment in assignments or ():
        # Accept both repeated --set flags and the ;-separated form the
        # --grid flag uses.
        for pair in assignment.split(";"):
            pair = pair.strip()
            if not pair:
                continue
            if "=" not in pair:
                raise ExaDigiTError(
                    f"bad --set {pair!r}; expected param=value"
                )
            key, _, raw = pair.partition("=")
            doc[key.strip()] = _parse_value(raw)
    return WorkloadGenerator.from_dict(doc)


def cmd_workload_list(args: argparse.Namespace) -> int:
    from repro.workloads import GENERATOR_TYPES

    print(f"{'kind':16s} {'role':8s} parameters (name=default)")
    for kind in sorted(GENERATOR_TYPES):
        cls = GENERATOR_TYPES[kind]
        params = ", ".join(
            f"{name}={info['default']}"
            for name, info in cls.param_schema().items()
        )
        print(f"{kind:16s} {cls.role:8s} {params}")
    return 0


def cmd_workload_preview(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.viz.traces import render_trace

    spec = DigitalTwin(args.system).spec
    gen = _build_generator(args.kind, args.set, args.seed)
    duration_s = args.hours * 3600.0
    payload = gen.generate(spec, duration_s)
    print(f"generator {gen.generator} (role {gen.role})")
    print(f"spec-sha  {gen.spec_sha()}")
    print()
    if gen.role == "jobs":
        submits = np.array([job.submit_time for job in payload])
        nodes = np.array([job.nodes_required for job in payload])
        bins = min(72, max(8, int(args.hours * 12)))
        counts, edges = np.histogram(submits, bins=bins, range=(0, duration_s))
        centers = (edges[:-1] + edges[1:]) / 2.0
        print(
            f"{len(payload)} jobs, mean {nodes.mean():.1f} nodes/job "
            f"(max {nodes.max()})" if len(payload) else "0 jobs"
        )
        if len(payload):
            print(render_trace(centers, counts, title="arrivals per bin"))
    elif gen.role == "events":
        print(f"{len(payload)} fault events")
        for event in payload:
            detail = (
                f"cdu={event.cdu_index} severity={event.severity:g}"
                if event.kind == "cdu-blockage"
                else f"nodes={list(event.nodes)}"
                + ("" if event.kill_running else " (soft)")
            )
            print(f"  t={event.time_s:10.1f}s  {event.kind:12s} {detail}")
    elif gen.role == "wetbulb":
        print(
            render_trace(
                payload.times, payload.values,
                title="wet-bulb temperature", unit="degC",
            )
        )
    elif gen.role == "grid":
        print(
            render_trace(
                payload.times_s, payload.carbon_intensity_lb_per_mwh,
                title="grid carbon intensity", unit="lb CO2 / MWh",
            )
        )
        print()
        print(
            render_trace(
                payload.times_s, payload.price_usd_per_kwh,
                title="grid price", unit="USD / kWh",
            )
        )
    return 0


def cmd_workload_sweep(args: argparse.Namespace) -> int:
    from repro.scenarios import GeneratedScenario
    from repro.workloads import StressSuite

    if (
        MultiFidelityCampaign.exists(args.directory)
        or CampaignStore.exists(args.directory)
    ):
        print(
            f"stress suite exists at {args.directory}; resuming",
            file=sys.stderr,
        )
        suite = StressSuite.open(args.directory, surrogates=args.surrogates)
    else:
        if not args.grid:
            raise ExaDigiTError("workload sweep needs --grid on first run")
        gen = _build_generator(args.kind, args.set, args.seed)
        base = GeneratedScenario(
            name=f"gen-{args.kind}",
            duration_s=args.hours * 3600.0,
            seed=args.seed,
            with_cooling=not args.no_cooling,
            workload=gen,
        )
        sweep = GridSweepScenario(
            name=f"{args.kind}-stress",
            base=base,
            grid=_parse_grid(args.grid),
        )
        suite = StressSuite.create(
            args.directory,
            [sweep],
            system=args.system or "frontier",
            screen_top_k=args.screen_top,
            metric=args.metric,
            objective=args.objective,
            name=args.name,
            surrogates=args.surrogates,
        )
    report = suite.run(
        workers=args.workers,
        progress=_campaign_progress,
        execution=args.execution,
    )
    print(report.report())
    print(f"\nartifacts: {args.directory}", file=sys.stderr)
    return 1 if report.failed else 0


def cmd_scene(args: argparse.Namespace) -> int:
    print(build_scene(DigitalTwin(args.system).spec).to_json())
    return 0


def cmd_autocsm(args: argparse.Namespace) -> int:
    print(autocsm_report(DigitalTwin(args.system).spec))
    return 0


def cmd_systems(args: argparse.Namespace) -> int:
    for name in builtin_system_names():
        print(name)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ExaDigiT digital-twin console",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="synthetic-workload simulation")
    _add_common(p)
    p.add_argument(
        "--live",
        action="store_true",
        help="stream per-quantum status lines while the run progresses",
    )
    p.add_argument(
        "--fidelity",
        choices=("full", "surrogate"),
        default="full",
        help="execution backend: L4 engine (full) or the L3 fast path",
    )
    p.add_argument(
        "--surrogates",
        metavar="BUNDLE",
        default=None,
        help="saved surrogate bundle for --fidelity surrogate "
        "(default: train one on first use)",
    )
    p.add_argument(
        "--export-steps",
        metavar="PATH",
        help="stream per-quantum StepState records to PATH as JSONL "
        "(tail-able by external dashboards)",
    )
    p.add_argument(
        "--cooling-backend",
        choices=("fused", "reference"),
        default="fused",
        help="cooling-plant stepping backend (bit-identical; reference "
        "is the slow oracle)",
    )
    p.add_argument(
        "--verbose",
        action="store_true",
        help="print engine work counters (steps, power evals/reuses) "
        "after the run",
    )
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "profile",
        help="profile the engine hot path (per-phase wall time as JSON)",
    )
    _add_system_arg(p)
    p.add_argument(
        "--hours", type=float, default=1.0, help="simulated hours (default 1)"
    )
    p.add_argument("--seed", type=int, default=0, help="RNG seed")
    p.add_argument(
        "--no-cooling",
        action="store_true",
        help="profile an uncoupled run (no cooling phase)",
    )
    p.add_argument(
        "--cooling-backend",
        choices=("fused", "reference"),
        default="fused",
        help="cooling-plant stepping backend to profile",
    )
    p.add_argument(
        "--out",
        metavar="PATH",
        help="write the JSON profile to PATH (default: stdout)",
    )
    p.add_argument(
        "--mode",
        choices=("direct", "batched", "serve"),
        default="direct",
        help="what to profile: the engine hot path directly, the same "
        "scenario through BatchedEngine (registry counters), or an "
        "ephemeral twin service observed through /statusz",
    )
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("verify", help="Table III verification points")
    _add_system_arg(p)
    _add_workers_arg(p)
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("replay", help="replay a saved telemetry dataset")
    _add_common(p)
    p.add_argument("dataset", help="path prefix of a saved dataset")
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser("whatif", help="counterfactual studies (IV-3)")
    _add_common(p)
    p.add_argument(
        "scenario",
        choices=("smart-rectifier", "direct-dc"),
        help="which modification to evaluate",
    )
    p.set_defaults(func=cmd_whatif)

    p = sub.add_parser(
        "suite", help="run a JSON scenario suite (optionally in parallel)"
    )
    p.add_argument(
        "scenarios",
        help="JSON file: array of scenario objects or "
        '{"system": ..., "scenarios": [...]}',
    )
    p.add_argument(
        "--system",
        default=None,
        help="override the suite file's system (builtin name or JSON path)",
    )
    _add_workers_arg(p)
    p.add_argument(
        "--export",
        metavar="PREFIX",
        help="write each scenario's series to PREFIX-<name>.json",
    )
    p.set_defaults(func=cmd_suite)

    p = sub.add_parser("sweep", help="sweep one scenario parameter")
    _add_common(p)
    _add_workers_arg(p)
    p.add_argument(
        "--kind",
        default="synthetic",
        help="base scenario kind to sweep (default: synthetic)",
    )
    p.add_argument(
        "--param",
        default="seed",
        help="scenario field to sweep (default: seed)",
    )
    p.add_argument(
        "--values",
        default="0,1,2,3",
        help="comma-separated values for the swept field",
    )
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "campaign",
        help="persisted sweep campaigns (run / resume / compare)",
    )
    campaign_sub = p.add_subparsers(dest="campaign_command", required=True)

    cp = campaign_sub.add_parser(
        "run",
        help="run a sweep campaign into an artifact directory "
        "(resumes if it exists)",
    )
    cp.add_argument("directory", help="campaign artifact directory")
    cp.add_argument(
        "--system",
        default=None,
        help="builtin system name or JSON spec path (default: frontier, "
        "or the --scenarios file's system)",
    )
    cp.add_argument(
        "--hours", type=float, default=2.0, help="simulated hours (default 2)"
    )
    cp.add_argument("--seed", type=int, default=0, help="RNG seed")
    cp.add_argument(
        "--no-cooling",
        action="store_true",
        help="skip the cooling model (paper: 3x faster replays)",
    )
    _add_workers_arg(cp)
    _add_execution_arg(cp)
    cp.add_argument(
        "--kind",
        default="synthetic",
        help="base scenario kind to sweep (default: synthetic)",
    )
    cp.add_argument(
        "--grid",
        metavar="SPEC",
        help='cartesian grid, e.g. "wetbulb_c=12,15,18;seed=0,1,2,3"',
    )
    cp.add_argument(
        "--lhs",
        metavar="SPEC",
        help='latin-hypercube box, e.g. "wetbulb_c=5.0:25;seed=0:100" '
        "(integer bounds sample integers; use a decimal point for "
        "continuous axes)",
    )
    cp.add_argument(
        "--samples",
        type=int,
        default=8,
        help="LHS sample count (default 8)",
    )
    cp.add_argument(
        "--scenarios",
        metavar="FILE",
        help="JSON suite file instead of --grid/--lhs",
    )
    cp.add_argument(
        "--name", default=None, help="campaign name (default: directory name)"
    )
    cp.add_argument(
        "--fidelity",
        choices=("full", "surrogate"),
        default=None,
        help="pin every cell to one execution backend "
        "(surrogate = the L3 fast path)",
    )
    cp.add_argument(
        "--refine-top",
        type=int,
        metavar="K",
        default=None,
        help="multi-fidelity mode: surrogate-screen the whole grid, then "
        "re-run the top K cells at full fidelity with an error report",
    )
    cp.add_argument(
        "--metric",
        default="mean_pue",
        choices=CAMPAIGN_METRICS,
        help="ranking metric for --refine-top (default: mean_pue)",
    )
    cp.add_argument(
        "--objective",
        choices=("max", "min"),
        default="max",
        help="whether top cells maximize or minimize --metric",
    )
    cp.add_argument(
        "--surrogates",
        metavar="BUNDLE",
        default=None,
        help="saved surrogate bundle for surrogate-fidelity cells "
        "(shared with worker processes; default: train on first use)",
    )
    cp.set_defaults(func=cmd_campaign_run)

    cp = campaign_sub.add_parser(
        "resume", help="finish an interrupted campaign (skips done cells)"
    )
    cp.add_argument("directory", help="campaign artifact directory")
    _add_workers_arg(cp)
    _add_execution_arg(cp)
    cp.add_argument(
        "--surrogates",
        metavar="BUNDLE",
        default=None,
        help="saved surrogate bundle for surrogate-fidelity cells",
    )
    cp.set_defaults(func=cmd_campaign_resume)

    cp = campaign_sub.add_parser(
        "compare",
        help="reload stored campaigns (no simulation) into tables/heat maps",
    )
    cp.add_argument(
        "directories", nargs="+", help="campaign artifact directories"
    )
    cp.add_argument(
        "--metric",
        default="mean_power_mw",
        choices=CAMPAIGN_METRICS,
        help="metric for cross-campaign tables and heat maps",
    )
    cp.add_argument(
        "--heatmap",
        action="store_true",
        help="also render grid-sweep heat maps",
    )
    cp.set_defaults(func=cmd_campaign_compare)

    p = sub.add_parser(
        "surrogate",
        help="fast-path model bundles (fit / eval)",
    )
    surrogate_sub = p.add_subparsers(dest="surrogate_command", required=True)

    sp = surrogate_sub.add_parser(
        "fit",
        help="train a surrogate bundle (from L4 sampling or a campaign) "
        "and save it with provenance",
    )
    _add_system_arg(sp)
    sp.add_argument("--seed", type=int, default=0, help="RNG seed")
    sp.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="bundle output path (default: models/<system>.json)",
    )
    sp.add_argument(
        "--no-cooling",
        action="store_true",
        help="skip the cooling surrogate (power-only bundle, fast)",
    )
    sp.add_argument(
        "--power-samples",
        type=int,
        default=400,
        help="L4 power-model samples for the power heads (default 400)",
    )
    sp.add_argument(
        "--grid",
        type=int,
        default=4,
        help="cooling training grid size per axis (default 4)",
    )
    sp.add_argument(
        "--settle",
        type=float,
        default=3600.0,
        help="plant settle seconds per cooling grid point (default 3600)",
    )
    sp.add_argument(
        "--cooling-degree",
        type=int,
        default=2,
        help="cooling response-surface polynomial degree (default 2; "
        "lower it when training --from-campaign with few cells)",
    )
    sp.add_argument(
        "--from-campaign",
        metavar="DIR",
        default=None,
        help="train from a persisted campaign's artifacts instead of "
        "fresh simulation (uses the spec embedded in its manifest)",
    )
    sp.set_defaults(func=cmd_surrogate_fit)

    sp = surrogate_sub.add_parser(
        "eval",
        help="audit a saved bundle: provenance, fit quality, and "
        "surrogate-vs-full accuracy + speedup on a shared scenario",
    )
    _add_system_arg(sp)
    sp.add_argument("bundle", help="path to a saved bundle JSON")
    sp.add_argument(
        "--hours", type=float, default=0.5, help="eval scenario hours"
    )
    sp.add_argument("--seed", type=int, default=0, help="RNG seed")
    sp.add_argument(
        "--no-cooling",
        action="store_true",
        help="evaluate the power path only",
    )
    sp.set_defaults(func=cmd_surrogate_eval)

    p = sub.add_parser(
        "serve", help="run the twin service (asyncio job server)"
    )
    _add_system_arg(p)
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port",
        type=int,
        default=8787,
        help="listen port (default 8787; 0 picks a free port)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes in the work-stealing pool (default 2)",
    )
    p.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="persist results + step streams to an open-ended campaign "
        "store (also the cross-restart result cache)",
    )
    p.add_argument(
        "--fidelity",
        choices=("full", "surrogate"),
        default="full",
        help="default backend for scenarios that don't pin one",
    )
    p.add_argument(
        "--surrogates",
        metavar="BUNDLE",
        default=None,
        help="saved surrogate bundle shipped to every worker",
    )
    p.add_argument(
        "--max-attempts",
        type=int,
        default=2,
        help="dispatch attempts per job before a worker crash fails it",
    )
    p.add_argument(
        "--execution",
        choices=("processes", "batched"),
        default="processes",
        help="job execution backend: dispatch cells to the worker pool, "
        "or run each submission's cells as one vectorized in-process "
        "batch (bit-identical results)",
    )
    p.add_argument(
        "--metrics",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="expose /metrics, /statusz and the /console dashboard "
        "(--no-metrics serves them empty at zero recording cost)",
    )
    p.add_argument(
        "--history-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="telemetry-history sampling period feeding /api/query and "
        "the alert engine (default 1.0; 0 disables retention)",
    )
    p.add_argument(
        "--alert-rules",
        metavar="FILE",
        default=None,
        help="JSON alert-rules file evaluated every sampling tick "
        "(see docs/observability.md; served at /alertz)",
    )
    p.add_argument(
        "--chaos",
        type=int,
        default=None,
        metavar="SEED",
        help="inject seed-deterministic faults (worker crashes, store "
        "write failures, slow I/O, connection drops, loop stalls) for "
        "resilience testing; same seed, same fault schedule",
    )
    p.add_argument(
        "--max-queue-depth",
        type=int,
        default=1024,
        help="admission control: queued jobs beyond this are rejected "
        "with 429 + Retry-After (default 1024)",
    )
    p.add_argument(
        "--max-inflight",
        type=int,
        default=256,
        help="admission control: per-client cap on unfinished jobs, "
        "keyed on the X-Repro-Client header (default 256)",
    )
    p.add_argument(
        "--drain-grace-s",
        type=float,
        default=30.0,
        help="seconds a drain (POST /drainz or SIGTERM) waits for "
        "running jobs before checkpointing the leftovers (default 30)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit", help="submit a scenario to a running twin service"
    )
    p.add_argument(
        "--url",
        default=DEFAULT_SERVICE_URL,
        help=f"service base URL (default {DEFAULT_SERVICE_URL})",
    )
    p.add_argument(
        "scenario_file",
        nargs="?",
        default=None,
        help="scenario JSON file (omit to build one from the flags)",
    )
    p.add_argument(
        "--kind", default="synthetic", help="scenario kind (no file)"
    )
    p.add_argument(
        "--hours", type=float, default=2.0, help="simulated hours (no file)"
    )
    p.add_argument("--seed", type=int, default=0, help="RNG seed (no file)")
    p.add_argument(
        "--no-cooling", action="store_true", help="uncoupled run (no file)"
    )
    p.add_argument(
        "--fidelity",
        choices=("full", "surrogate"),
        default=None,
        help="pin the execution backend (no file)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="force simulation even when the result cache has this job",
    )
    p.add_argument(
        "--watch",
        action="store_true",
        help="stream the first job's records after submitting",
    )
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "watch", help="stream a service job's step records (NDJSON lines)"
    )
    p.add_argument(
        "--url",
        default=DEFAULT_SERVICE_URL,
        help=f"service base URL (default {DEFAULT_SERVICE_URL})",
    )
    p.add_argument("job_id", help="job id (from submit / jobs)")
    p.add_argument(
        "--ws",
        action="store_true",
        help="use the websocket transport instead of NDJSON",
    )
    p.set_defaults(func=cmd_watch)

    p = sub.add_parser("jobs", help="list a twin service's jobs")
    p.add_argument(
        "--url",
        default=DEFAULT_SERVICE_URL,
        help=f"service base URL (default {DEFAULT_SERVICE_URL})",
    )
    p.set_defaults(func=cmd_jobs)

    p = sub.add_parser(
        "drain",
        help="gracefully drain a twin service (finish running jobs, "
        "checkpoint the queue, then exit)",
    )
    p.add_argument(
        "--url",
        default=DEFAULT_SERVICE_URL,
        help=f"service base URL (default {DEFAULT_SERVICE_URL})",
    )
    p.set_defaults(func=cmd_drain)

    p = sub.add_parser(
        "top",
        help="live terminal view of a twin service (polls /statusz)",
    )
    p.add_argument(
        "--url",
        default=DEFAULT_SERVICE_URL,
        help=f"service base URL (default {DEFAULT_SERVICE_URL})",
    )
    p.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between polls (default 2)",
    )
    p.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="stop after N frames (default 0: run until interrupted)",
    )
    p.add_argument(
        "--once",
        action="store_true",
        help="print a single snapshot and exit (no screen clearing)",
    )
    p.set_defaults(func=cmd_top)

    p = sub.add_parser(
        "alerts",
        help="show a twin service's alert rules and states (/alertz)",
    )
    p.add_argument(
        "--url",
        default=DEFAULT_SERVICE_URL,
        help=f"service base URL (default {DEFAULT_SERVICE_URL})",
    )
    p.add_argument(
        "--transitions",
        type=int,
        default=10,
        metavar="N",
        help="show the last N state transitions (default 10; 0 hides)",
    )
    p.add_argument(
        "--fail-on-firing",
        action="store_true",
        help="exit 1 when any rule is firing (for scripts/CI probes)",
    )
    p.set_defaults(func=cmd_alerts)

    p = sub.add_parser(
        "workload",
        help="parametric workload generators (list / preview / sweep)",
    )
    workload_sub = p.add_subparsers(dest="workload_command", required=True)

    wp = workload_sub.add_parser(
        "list", help="catalog the registered generators and their schemas"
    )
    wp.set_defaults(func=cmd_workload_list)

    wp = workload_sub.add_parser(
        "preview",
        help="generate one workload and render its trace (no simulation)",
    )
    wp.add_argument("kind", help="generator kind (see `repro workload list`)")
    _add_system_arg(wp)
    wp.add_argument(
        "--hours", type=float, default=2.0, help="generated hours (default 2)"
    )
    wp.add_argument("--seed", type=int, default=0, help="generator seed")
    wp.add_argument(
        "--set",
        action="append",
        metavar="PARAM=VALUE",
        help="override one generator parameter (repeatable)",
    )
    wp.set_defaults(func=cmd_workload_preview)

    wp = workload_sub.add_parser(
        "sweep",
        help="stress-suite campaign over a generator grid "
        "(resumable; validates every cell)",
    )
    wp.add_argument("directory", help="campaign artifact directory")
    wp.add_argument(
        "--system",
        default=None,
        help="builtin system name or JSON spec path (default: frontier)",
    )
    wp.add_argument(
        "--kind",
        default="diurnal",
        help="workload generator kind for the base cell (default: diurnal)",
    )
    wp.add_argument(
        "--set",
        action="append",
        metavar="PARAM=VALUE",
        help="base generator parameter override (repeatable)",
    )
    wp.add_argument(
        "--grid",
        metavar="SPEC",
        help="sweep grid; dotted paths reach generator fields, e.g. "
        '"workload.mean_arrival_s=120,240;seed=0,1"',
    )
    wp.add_argument(
        "--hours", type=float, default=0.5, help="simulated hours per cell"
    )
    wp.add_argument("--seed", type=int, default=0, help="base seed")
    wp.add_argument(
        "--no-cooling",
        action="store_true",
        help="uncoupled cells (no cooling model)",
    )
    _add_workers_arg(wp)
    _add_execution_arg(wp)
    wp.add_argument(
        "--screen-top",
        type=int,
        metavar="K",
        default=None,
        help="surrogate-screen the grid and refine only the top K cells",
    )
    wp.add_argument(
        "--metric",
        default="mean_power_mw",
        choices=CAMPAIGN_METRICS,
        help="ranking metric for --screen-top (default: mean_power_mw)",
    )
    wp.add_argument(
        "--objective",
        choices=("max", "min"),
        default="max",
        help="whether top cells maximize or minimize --metric",
    )
    wp.add_argument(
        "--name", default=None, help="campaign name (default: directory name)"
    )
    wp.add_argument(
        "--surrogates",
        metavar="BUNDLE",
        default=None,
        help="saved surrogate bundle for screened / surrogate cells",
    )
    wp.set_defaults(func=cmd_workload_sweep)

    p = sub.add_parser("scene", help="emit the L1 scene graph as JSON")
    _add_system_arg(p)
    p.set_defaults(func=cmd_scene)

    p = sub.add_parser("autocsm", help="generated cooling-model inventory")
    _add_system_arg(p)
    p.set_defaults(func=cmd_autocsm)

    p = sub.add_parser("systems", help="list bundled machine specs")
    p.set_defaults(func=cmd_systems)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ExaDigiTError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout consumer (e.g. `head`) went away mid-stream; point the
        # fd at devnull so the interpreter-exit flush doesn't re-raise.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
