"""Command-line interface: the paper's terminal console (Fig. 6).

Subcommands mirror the operations the paper exposes through its console
and dashboard:

- ``run`` — synthetic-workload simulation with the end-of-run report,
- ``verify`` — the Table III verification points,
- ``replay`` — replay a saved telemetry dataset (native format),
- ``whatif`` — the section IV-3 counterfactual studies,
- ``scene`` — emit the descriptive-twin scene graph as JSON,
- ``autocsm`` — print the generated cooling-model inventory,
- ``systems`` — list bundled machine specifications.

Entry point::

    python -m repro.cli <subcommand> [options]
"""

from __future__ import annotations

import argparse
import sys

from repro.config.loader import builtin_system_names
from repro.cooling.autocsm import autocsm_report
from repro.core.replay import replay_dataset
from repro.core.scenarios import run_whatif
from repro.core.simulation import Simulation
from repro.core.stats import compute_statistics
from repro.exceptions import ExaDigiTError
from repro.telemetry.dataset import TelemetryDataset
from repro.viz.dashboard import render_dashboard
from repro.viz.export import export_result
from repro.viz.scene import build_scene


def _add_system_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--system",
        default="frontier",
        help="builtin system name or path to a JSON spec (default: frontier)",
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    _add_system_arg(parser)
    parser.add_argument(
        "--hours", type=float, default=2.0, help="simulated hours (default 2)"
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument(
        "--no-cooling",
        action="store_true",
        help="skip the cooling model (paper: 3x faster replays)",
    )
    parser.add_argument(
        "--export",
        metavar="PATH",
        help="write the run series to PATH.json",
    )


def cmd_run(args: argparse.Namespace) -> int:
    sim = Simulation(
        args.system, with_cooling=not args.no_cooling, seed=args.seed
    )
    result = sim.run_synthetic(args.hours * 3600.0)
    print(sim.statistics().report())
    print()
    print(render_dashboard(result, title=sim.spec.name))
    if args.export:
        path = export_result(result, args.export)
        print(f"\nseries written to {path}")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    sim = Simulation(args.system, with_cooling=False)
    print(f"{'point':8s} {'MW':>8s}")
    for point in ("idle", "hpl", "peak"):
        result = sim.run_verification(point, 600.0)
        print(f"{point:8s} {result.mean_power_w / 1e6:8.2f}")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    sim = Simulation(
        args.system, with_cooling=not args.no_cooling, seed=args.seed
    )
    dataset = TelemetryDataset.load(args.dataset)
    result = sim.run_replay(dataset, args.hours * 3600.0)
    print(compute_statistics(result, sim.spec.economics).report())
    if args.export:
        path = export_result(result, args.export)
        print(f"\nseries written to {path}")
    return 0


def cmd_whatif(args: argparse.Namespace) -> int:
    from repro.telemetry.synthesis import SyntheticTelemetryGenerator

    sim = Simulation(args.system, with_cooling=False, seed=args.seed)
    gen = SyntheticTelemetryGenerator(sim.spec, seed=args.seed)
    day = gen.day(0)
    comparison = run_whatif(
        sim.spec, day, args.hours * 3600.0, args.scenario
    )
    print(comparison.report())
    return 0


def cmd_scene(args: argparse.Namespace) -> int:
    sim = Simulation(args.system, with_cooling=False)
    print(build_scene(sim.spec).to_json())
    return 0


def cmd_autocsm(args: argparse.Namespace) -> int:
    sim = Simulation(args.system, with_cooling=False)
    print(autocsm_report(sim.spec))
    return 0


def cmd_systems(args: argparse.Namespace) -> int:
    for name in builtin_system_names():
        print(name)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ExaDigiT digital-twin console",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="synthetic-workload simulation")
    _add_common(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("verify", help="Table III verification points")
    _add_system_arg(p)
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("replay", help="replay a saved telemetry dataset")
    _add_common(p)
    p.add_argument("dataset", help="path prefix of a saved dataset")
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser("whatif", help="counterfactual studies (IV-3)")
    _add_common(p)
    p.add_argument(
        "scenario",
        choices=("smart-rectifier", "direct-dc"),
        help="which modification to evaluate",
    )
    p.set_defaults(func=cmd_whatif)

    p = sub.add_parser("scene", help="emit the L1 scene graph as JSON")
    _add_system_arg(p)
    p.set_defaults(func=cmd_scene)

    p = sub.add_parser("autocsm", help="generated cooling-model inventory")
    _add_system_arg(p)
    p.set_defaults(func=cmd_autocsm)

    p = sub.add_parser("systems", help="list bundled machine specs")
    p.set_defaults(func=cmd_systems)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ExaDigiTError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
