"""The built-in scenario types.

One class per experiment family from the paper, unified behind the
``scenario.run(twin)`` protocol of :mod:`repro.scenarios.base`:

- :class:`SyntheticScenario` — Poisson synthetic workload (III-B3),
- :class:`ReplayScenario` — telemetry replay at recorded starts (Finding 8),
- :class:`VerificationScenario` — one Table III operating point,
- :class:`WhatIfScenario` — the IV-3 counterfactual chain studies,
- :class:`SweepScenario` — a parametric sweep expanding any base
  scenario over a value grid (the suite runner parallelizes it).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, ClassVar

from repro.core.engine import SimulationResult
from repro.core.replay import replay_dataset
from repro.core.scenarios import ScenarioComparison, _make_chain, compare_results
from repro.core.stats import compute_statistics
from repro.exceptions import ScenarioError
from repro.scenarios.base import RunPlan, Scenario, register_scenario
from repro.scenarios.result import ScenarioResult
from repro.scenarios.twin import DigitalTwin, as_twin
from repro.scheduler.workloads import (
    hpl_verification_workload,
    idle_workload,
    peak_workload,
    synthetic_workload,
)
from repro.telemetry.dataset import TelemetryDataset


@register_scenario
@dataclass(frozen=True)
class SyntheticScenario(Scenario):
    """Poisson-arrival synthetic workload at a fixed wet-bulb temperature."""

    kind: ClassVar[str] = "synthetic"

    wetbulb_c: float = 15.0

    def plan(self, twin: DigitalTwin, **kwargs: Any) -> RunPlan:
        jobs = synthetic_workload(twin.spec, self.duration_s, seed=self.seed)
        return RunPlan(
            jobs=jobs,
            duration_s=self.duration_s,
            wetbulb=self.wetbulb_c,
            honor_recorded=False,
        )


@register_scenario
@dataclass(frozen=True)
class ReplayScenario(Scenario):
    """Telemetry replay with recorded start times.

    Declaratively references the dataset by path; the legacy facade may
    inject an in-memory dataset via ``run(twin, dataset=...)`` instead.
    """

    kind: ClassVar[str] = "replay"

    dataset_path: str = ""

    def resolve_dataset(
        self, twin: DigitalTwin, dataset: TelemetryDataset | None = None
    ) -> TelemetryDataset:
        if dataset is not None:
            return dataset
        if not self.dataset_path:
            raise ScenarioError(
                "ReplayScenario needs a dataset_path or an injected dataset"
            )
        return twin.dataset(self.dataset_path)

    def plan(
        self,
        twin: DigitalTwin,
        *,
        dataset: TelemetryDataset | None = None,
        **kwargs: Any,
    ) -> RunPlan:
        from repro.scheduler.workloads import jobs_from_dataset

        data = self.resolve_dataset(twin, dataset)
        wetbulb = (
            data["wetbulb_temperature"]
            if "wetbulb_temperature" in data
            else 15.0
        )
        return RunPlan(
            jobs=jobs_from_dataset(data),
            duration_s=self.duration_s,
            wetbulb=wetbulb,
            honor_recorded=True,
        )


#: Table III operating-point workload builders.
_VERIFICATION_BUILDERS = {
    "idle": idle_workload,
    "hpl": hpl_verification_workload,
    "peak": peak_workload,
}


@register_scenario
@dataclass(frozen=True)
class VerificationScenario(Scenario):
    """One Table III verification point: 'idle', 'hpl', or 'peak'."""

    kind: ClassVar[str] = "verification"

    point: str = "idle"
    duration_s: float = 1800.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.point not in _VERIFICATION_BUILDERS:
            raise ScenarioError(
                f"unknown verification point {self.point!r}; "
                f"expected one of {sorted(_VERIFICATION_BUILDERS)}"
            )

    def plan(self, twin: DigitalTwin, **kwargs: Any) -> RunPlan:
        jobs = _VERIFICATION_BUILDERS[self.point](twin.spec, self.duration_s)
        return RunPlan(
            jobs=jobs,
            duration_s=self.duration_s,
            wetbulb=15.0,
            honor_recorded=True,
        )


@register_scenario
@dataclass(frozen=True)
class WhatIfScenario(Scenario):
    """Counterfactual chain study (paper IV-3): baseline vs modified.

    ``modification`` selects the virtual hardware change
    (``"smart-rectifier"`` or ``"direct-dc"``).  The workload replays a
    telemetry dataset referenced by ``dataset_path``, or — when no path
    is given — a synthesized production day drawn from ``seed``.
    """

    kind: ClassVar[str] = "whatif"

    modification: str = "direct-dc"
    dataset_path: str = ""
    with_cooling: bool = False

    def resolve_dataset(
        self, twin: DigitalTwin, dataset: TelemetryDataset | None = None
    ) -> TelemetryDataset:
        if dataset is not None:
            return dataset
        if self.dataset_path:
            return twin.dataset(self.dataset_path)
        from repro.telemetry.synthesis import SyntheticTelemetryGenerator

        return SyntheticTelemetryGenerator(twin.spec, seed=self.seed).day(0)

    def iter_steps(self, twin: DigitalTwin | Any, **kwargs: Any):
        raise ScenarioError(
            "WhatIfScenario does not stream: it executes two engine runs "
            "(baseline + modified); use run(twin, progress=...) instead"
        )

    def run(
        self,
        twin: DigitalTwin | Any,
        *,
        dataset: TelemetryDataset | None = None,
        baseline_result: SimulationResult | None = None,
        chain_factory: Callable[..., Any] | None = None,
        progress: Callable[..., None] | None = None,
        **kwargs: Any,
    ) -> ScenarioResult:
        """Replay baseline and modified twins, report the deltas.

        ``baseline_result`` amortizes the baseline replay across several
        what-ifs; ``chain_factory`` substitutes a custom chain for the
        built-in modifications; ``progress`` sees the steps of both
        replays (baseline first, then modified).
        """
        if kwargs:
            # Keep protocol-generic callers on a catchable error: the
            # base protocol's stop_when/chain/wetbulb extras don't map
            # onto a two-run comparison.
            raise ScenarioError(
                f"WhatIfScenario.run does not support {sorted(kwargs)}; "
                "supported extras: dataset, baseline_result, "
                "chain_factory, progress"
            )
        twin = as_twin(twin)
        data = self.resolve_dataset(twin, dataset)
        if baseline_result is None:
            baseline_result = replay_dataset(
                twin.spec,
                data,
                self.duration_s,
                with_cooling=self.with_cooling,
                progress=progress,
            )
        chain = (
            chain_factory(twin.spec)
            if chain_factory is not None
            else _make_chain(twin.spec, self.modification)
        )
        modified = replay_dataset(
            twin.spec,
            data,
            self.duration_s,
            with_cooling=self.with_cooling,
            chain=chain,
            progress=progress,
        )
        comparison: ScenarioComparison = compare_results(
            self.modification, twin.spec, baseline_result, modified
        )
        return ScenarioResult(
            scenario=self,
            result=modified,
            statistics=compute_statistics(modified, twin.spec.economics),
            baseline=baseline_result,
            comparison=comparison,
        )


@register_scenario
@dataclass(frozen=True)
class SweepScenario(Scenario):
    """Parametric sweep: one base scenario replicated over a value grid.

    ``expand()`` yields one concrete scenario per value, with
    ``parameter`` substituted via ``dataclasses.replace``; an
    :class:`~repro.scenarios.suite.ExperimentSuite` flattens sweeps
    before dispatch so the grid runs in parallel.  Run standalone, the
    children execute serially and land in ``ScenarioResult.children``.
    """

    kind: ClassVar[str] = "sweep"

    base: Scenario | None = None
    parameter: str = ""
    values: tuple = ()

    def expand(self) -> list[Scenario]:
        """Concrete child scenarios, one per swept value."""
        if self.base is None:
            raise ScenarioError("SweepScenario needs a base scenario")
        if not self.parameter:
            raise ScenarioError("SweepScenario needs a parameter name")
        if not self.values:
            raise ScenarioError("SweepScenario needs at least one value")
        field_names = {f.name for f in dataclasses.fields(self.base)}
        if self.parameter not in field_names:
            raise ScenarioError(
                f"base scenario {self.base.kind!r} has no field "
                f"{self.parameter!r}"
            )
        children = []
        for value in self.values:
            children.append(
                dataclasses.replace(
                    self.base,
                    **{
                        self.parameter: value,
                        "name": f"{self.base.name}/{self.parameter}={value}",
                    },
                )
            )
        return children

    def iter_steps(self, twin: DigitalTwin | Any, **kwargs: Any):
        raise ScenarioError(
            "SweepScenario does not stream: expand() it and stream the "
            "children, or run(twin) for the collected results"
        )

    def run(self, twin: DigitalTwin | Any, **kwargs: Any) -> ScenarioResult:
        twin = as_twin(twin)
        children = [child.run(twin, **kwargs) for child in self.expand()]
        return ScenarioResult(scenario=self, children=children)


__all__ = [
    "SyntheticScenario",
    "ReplayScenario",
    "VerificationScenario",
    "WhatIfScenario",
    "SweepScenario",
]
