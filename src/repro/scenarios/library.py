"""The built-in scenario types.

One class per experiment family from the paper, unified behind the
``scenario.run(twin)`` protocol of :mod:`repro.scenarios.base`:

- :class:`SyntheticScenario` — Poisson synthetic workload (III-B3),
- :class:`ReplayScenario` — telemetry replay at recorded starts (Finding 8),
- :class:`VerificationScenario` — one Table III operating point,
- :class:`WhatIfScenario` — the IV-3 counterfactual chain studies,
- :class:`SweepScenario` — a one-parameter sweep expanding any base
  scenario over a value list,
- :class:`GridSweepScenario` — a cartesian grid over several base
  fields at once (wet-bulb × arrival seed × setpoints, ...),
- :class:`LatinHypercubeSweepScenario` — a seeded latin-hypercube
  sample of a multi-dimensional parameter box.

The three sweep kinds share :class:`BaseSweepScenario`: each expands to
concrete child scenarios via ``expand()``, which
:class:`~repro.scenarios.suite.ExperimentSuite` flattens before
dispatch (so grids run in parallel) and the campaign runner
(:mod:`repro.scenarios.campaign`) persists cell by cell.
"""

from __future__ import annotations

import dataclasses
import itertools
import numbers
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any, Callable, ClassVar

import numpy as np

from repro.core.engine import SimulationResult
from repro.core.replay import replay_dataset
from repro.core.whatif import ScenarioComparison, _make_chain, compare_results
from repro.core.stats import compute_statistics
from repro.exceptions import ScenarioError
from repro.scenarios.base import RunPlan, Scenario, register_scenario
from repro.scenarios.result import ScenarioResult
from repro.scenarios.twin import DigitalTwin, as_twin
from repro.seeding import spawn_rng
from repro.scheduler.workloads import (
    benchmark_sequence,
    hpl_verification_workload,
    idle_workload,
    peak_workload,
    synthetic_workload,
)
from repro.telemetry.dataset import TelemetryDataset


@register_scenario
@dataclass(frozen=True)
class SyntheticScenario(Scenario):
    """Poisson-arrival synthetic workload at a fixed wet-bulb temperature."""

    kind: ClassVar[str] = "synthetic"

    wetbulb_c: float = 15.0

    def plan(self, twin: DigitalTwin, **kwargs: Any) -> RunPlan:
        jobs = synthetic_workload(twin.spec, self.duration_s, seed=self.seed)
        return RunPlan(
            jobs=jobs,
            duration_s=self.duration_s,
            wetbulb=self.wetbulb_c,
            honor_recorded=False,
        )


@register_scenario
@dataclass(frozen=True)
class ReplayScenario(Scenario):
    """Telemetry replay with recorded start times.

    Declaratively references the dataset by path; the legacy facade may
    inject an in-memory dataset via ``run(twin, dataset=...)`` instead.
    """

    kind: ClassVar[str] = "replay"

    dataset_path: str = ""

    def resolve_dataset(
        self, twin: DigitalTwin, dataset: TelemetryDataset | None = None
    ) -> TelemetryDataset:
        if dataset is not None:
            return dataset
        if not self.dataset_path:
            raise ScenarioError(
                "ReplayScenario needs a dataset_path or an injected dataset"
            )
        return twin.dataset(self.dataset_path)

    def plan(
        self,
        twin: DigitalTwin,
        *,
        dataset: TelemetryDataset | None = None,
        **kwargs: Any,
    ) -> RunPlan:
        from repro.scheduler.workloads import jobs_from_dataset

        data = self.resolve_dataset(twin, dataset)
        wetbulb = (
            data["wetbulb_temperature"]
            if "wetbulb_temperature" in data
            else 15.0
        )
        return RunPlan(
            jobs=jobs_from_dataset(data),
            duration_s=self.duration_s,
            wetbulb=wetbulb,
            honor_recorded=True,
        )


#: Table III operating-point workload builders.
_VERIFICATION_BUILDERS = {
    "idle": idle_workload,
    "hpl": hpl_verification_workload,
    "peak": peak_workload,
}


@register_scenario
@dataclass(frozen=True)
class VerificationScenario(Scenario):
    """One Table III verification point: 'idle', 'hpl', or 'peak'."""

    kind: ClassVar[str] = "verification"

    point: str = "idle"
    duration_s: float = 1800.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.point not in _VERIFICATION_BUILDERS:
            raise ScenarioError(
                f"unknown verification point {self.point!r}; "
                f"expected one of {sorted(_VERIFICATION_BUILDERS)}"
            )

    def plan(self, twin: DigitalTwin, **kwargs: Any) -> RunPlan:
        jobs = _VERIFICATION_BUILDERS[self.point](twin.spec, self.duration_s)
        return RunPlan(
            jobs=jobs,
            duration_s=self.duration_s,
            wetbulb=15.0,
            honor_recorded=True,
        )


@register_scenario
@dataclass(frozen=True)
class BenchmarkSequenceScenario(Scenario):
    """The paper's Fig. 8 benchmark sequence: HPL then OpenMxP.

    HPL is submitted at t=1800 s (5400 s wall) and OpenMxP at
    t=9000 s (3600 s wall) on ``node_count`` nodes, with idle gaps
    between — the synthetic benchmark verification workload whose
    power surges and thermal lag the paper validates against measured
    Frontier runs.  The default 13500 s duration covers the whole
    sequence; shorter durations truncate it (useful for smoke tests).
    Jobs dispatch at their recorded start times, so the timeline is
    exact regardless of scheduler policy.
    """

    kind: ClassVar[str] = "benchmark-sequence"

    duration_s: float = 13500.0
    node_count: int = 9216
    wetbulb_c: float = 15.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not (
            isinstance(self.node_count, numbers.Integral)
            and not isinstance(self.node_count, bool)
        ):
            raise ScenarioError(
                f"node_count must be an integer, got {self.node_count!r}"
            )
        object.__setattr__(self, "node_count", int(self.node_count))
        if self.node_count < 1:
            raise ScenarioError("node_count must be >= 1")

    def plan(self, twin: DigitalTwin, **kwargs: Any) -> RunPlan:
        jobs = benchmark_sequence(twin.spec, node_count=self.node_count)
        return RunPlan(
            jobs=jobs,
            duration_s=self.duration_s,
            wetbulb=self.wetbulb_c,
            honor_recorded=True,
        )


@register_scenario
@dataclass(frozen=True)
class WhatIfScenario(Scenario):
    """Counterfactual chain study (paper IV-3): baseline vs modified.

    ``modification`` selects the virtual hardware change
    (``"smart-rectifier"`` or ``"direct-dc"``).  The workload replays a
    telemetry dataset referenced by ``dataset_path``, or — when no path
    is given — a synthesized production day drawn from ``seed``.
    """

    kind: ClassVar[str] = "whatif"

    modification: str = "direct-dc"
    dataset_path: str = ""
    with_cooling: bool = False

    def resolve_dataset(
        self, twin: DigitalTwin, dataset: TelemetryDataset | None = None
    ) -> TelemetryDataset:
        if dataset is not None:
            return dataset
        if self.dataset_path:
            return twin.dataset(self.dataset_path)
        from repro.telemetry.synthesis import SyntheticTelemetryGenerator

        return SyntheticTelemetryGenerator(twin.spec, seed=self.seed).day(0)

    def iter_steps(self, twin: DigitalTwin | Any, **kwargs: Any):
        raise ScenarioError(
            "WhatIfScenario does not stream: it executes two engine runs "
            "(baseline + modified); use run(twin, progress=...) instead"
        )

    def run(
        self,
        twin: DigitalTwin | Any,
        *,
        dataset: TelemetryDataset | None = None,
        baseline_result: SimulationResult | None = None,
        chain_factory: Callable[..., Any] | None = None,
        progress: Callable[..., None] | None = None,
        **kwargs: Any,
    ) -> ScenarioResult:
        """Replay baseline and modified twins, report the deltas.

        ``baseline_result`` amortizes the baseline replay across several
        what-ifs; ``chain_factory`` substitutes a custom chain for the
        built-in modifications; ``progress`` sees the steps of both
        replays (baseline first, then modified).
        """
        if kwargs:
            # Keep protocol-generic callers on a catchable error: the
            # base protocol's stop_when/chain/wetbulb extras don't map
            # onto a two-run comparison.
            raise ScenarioError(
                f"WhatIfScenario.run does not support {sorted(kwargs)}; "
                "supported extras: dataset, baseline_result, "
                "chain_factory, progress"
            )
        twin = as_twin(twin)
        if self.effective_fidelity(twin) == "surrogate":
            raise ScenarioError(
                "WhatIfScenario compares conversion chains, which the "
                "surrogate backend does not model; run at fidelity='full'"
            )
        data = self.resolve_dataset(twin, dataset)
        if baseline_result is None:
            baseline_result = replay_dataset(
                twin.spec,
                data,
                self.duration_s,
                with_cooling=self.with_cooling,
                progress=progress,
            )
        chain = (
            chain_factory(twin.spec)
            if chain_factory is not None
            else _make_chain(twin.spec, self.modification)
        )
        modified = replay_dataset(
            twin.spec,
            data,
            self.duration_s,
            with_cooling=self.with_cooling,
            chain=chain,
            progress=progress,
        )
        comparison: ScenarioComparison = compare_results(
            self.modification, twin.spec, baseline_result, modified
        )
        return ScenarioResult(
            scenario=self,
            result=modified,
            statistics=compute_statistics(modified, twin.spec.economics),
            baseline=baseline_result,
            comparison=comparison,
        )


def _format_value(value: Any) -> str:
    """Short stable rendering of a swept value for child names."""
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, float):
        return format(value, "g")
    return str(value)


def _apply_assignment(obj: Any, path: str, value: Any) -> Any:
    """Functionally set a dotted field path on nested frozen dataclasses.

    ``_apply_assignment(scenario, "workload.mean_arrival_s", 90.0)``
    rebuilds the scenario with a replaced workload generator, leaving
    every other object shared.  Paths are validated up front by
    ``BaseSweepScenario._check_fields``.
    """
    head, _, rest = path.partition(".")
    if not rest:
        return dataclasses.replace(obj, **{head: value})
    inner = _apply_assignment(getattr(obj, head), rest, value)
    return dataclasses.replace(obj, **{head: inner})


@dataclass(frozen=True)
class BaseSweepScenario(Scenario):
    """Common machinery of the sweep scenario family.

    A sweep is itself a :class:`Scenario` (declarative, seedable,
    JSON-round-trippable) whose ``expand()`` yields the concrete child
    scenarios — one per grid cell or sample.  Anything that subclasses
    this is flattened by :class:`~repro.scenarios.suite.ExperimentSuite`
    before dispatch and enumerable cell-by-cell by the campaign runner.

    Run standalone, the children execute serially and land in
    ``ScenarioResult.children``; sweeps do not stream (expand and
    stream the children instead).
    """

    base: Scenario | None = None

    def points(self) -> list[dict[str, Any]]:
        """Per-child field assignments, in expansion order (subclass hook)."""
        raise NotImplementedError

    def expand(self) -> list[Scenario]:
        """Concrete child scenarios, one per swept point.

        Child names are unique within the sweep: two points landing on
        the same label (e.g. an integer LHS axis sampling the same
        value twice) get a ``#<index>`` suffix, so name-keyed joins —
        campaign comparison tables, heat-map pivots, ``SuiteResult``
        lookup — never silently collapse cells.
        """
        if self.base is None:
            raise ScenarioError(f"{type(self).__name__} needs a base scenario")
        children = []
        seen: set[str] = set()
        for index, assignments in enumerate(self.points()):
            label = ",".join(
                f"{k}={_format_value(v)}" for k, v in assignments.items()
            )
            name = f"{self.base.name}/{label}"
            if name in seen:
                name = f"{name}#{index}"
            seen.add(name)
            plain = {
                k: v for k, v in assignments.items() if "." not in k
            }
            child = dataclasses.replace(self.base, **plain, name=name)
            for path, value in assignments.items():
                if "." in path:
                    child = _apply_assignment(child, path, value)
            children.append(child)
        return children

    def _check_fields(self, parameters: list[str]) -> None:
        """Validate every swept name against the base scenario.

        Dotted paths (``workload.mean_arrival_s``) descend into nested
        dataclass fields — e.g. the workload generators of a
        ``generated`` base scenario — validating each segment.
        """
        for parameter in parameters:
            target = self.base
            context = f"base scenario {self.base.kind!r}"
            for segment in parameter.split("."):
                if not dataclasses.is_dataclass(target) or target is None:
                    raise ScenarioError(
                        f"{context} is not a parametric object; cannot "
                        f"sweep {parameter!r}"
                    )
                field_names = {f.name for f in dataclasses.fields(target)}
                if segment not in field_names:
                    raise ScenarioError(
                        f"{context} has no field {segment!r}"
                    )
                target = getattr(target, segment)
                context = f"field {segment!r} of {context}"

    def iter_steps(self, twin: DigitalTwin | Any, **kwargs: Any):
        raise ScenarioError(
            f"{type(self).__name__} does not stream: expand() it and "
            "stream the children, or run(twin) for the collected results"
        )

    def run(self, twin: DigitalTwin | Any, **kwargs: Any) -> ScenarioResult:
        twin = as_twin(twin)
        children = [child.run(twin, **kwargs) for child in self.expand()]
        return ScenarioResult(scenario=self, children=children)


@register_scenario
@dataclass(frozen=True)
class SweepScenario(BaseSweepScenario):
    """One-parameter sweep: a base scenario replicated over a value list."""

    kind: ClassVar[str] = "sweep"

    parameter: str = ""
    values: tuple = ()

    def points(self) -> list[dict[str, Any]]:
        if not self.parameter:
            raise ScenarioError("SweepScenario needs a parameter name")
        if not self.values:
            raise ScenarioError("SweepScenario needs at least one value")
        self._check_fields([self.parameter])
        return [{self.parameter: value} for value in self.values]


@register_scenario
@dataclass(frozen=True)
class GridSweepScenario(BaseSweepScenario):
    """Cartesian grid sweep over several base-scenario fields at once.

    ``grid`` maps field names to value lists; expansion is the cartesian
    product in declared order, the last axis varying fastest::

        GridSweepScenario(
            base=SyntheticScenario(duration_s=1800.0),
            grid={"wetbulb_c": (12.0, 18.0, 24.0), "seed": (0, 1, 2, 3)},
        )  # 12 cells

    A mapping passed at construction is normalized to a tuple of
    ``(name, values)`` pairs so the scenario stays frozen, hashable, and
    JSON-round-trippable.
    """

    kind: ClassVar[str] = "grid-sweep"

    grid: tuple = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "grid", _normalize_grid(self.grid))

    @property
    def parameters(self) -> list[str]:
        """Swept field names, in declared (pivot) order."""
        return [name for name, _ in self.grid]

    def shape(self) -> tuple[int, ...]:
        """Cells per axis, in declared order."""
        return tuple(len(values) for _, values in self.grid)

    def points(self) -> list[dict[str, Any]]:
        if not self.grid:
            raise ScenarioError("GridSweepScenario needs a non-empty grid")
        self._check_fields(self.parameters)
        axes = [values for _, values in self.grid]
        return [
            dict(zip(self.parameters, combo))
            for combo in itertools.product(*axes)
        ]


@register_scenario
@dataclass(frozen=True)
class LatinHypercubeSweepScenario(BaseSweepScenario):
    """Seeded latin-hypercube sample of a multi-dimensional box.

    ``ranges`` maps field names to ``(low, high)`` bounds; ``samples``
    points are drawn with one stratified sample per axis bin and the
    bins permuted independently per axis — the standard LHS
    construction.  The draw is fully determined by the scenario's
    ``seed``, so the same scenario expands to the same children on any
    host (and a persisted campaign can be resumed cell-by-cell).

    An axis whose bounds are both integers yields integers (the sampled
    value is floored within the bin), so discrete fields like ``seed``
    can be swept alongside continuous ones.
    """

    kind: ClassVar[str] = "lhs-sweep"

    ranges: tuple = ()
    samples: int = 8

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "ranges", _normalize_ranges(self.ranges))
        if not (
            isinstance(self.samples, numbers.Integral)
            and not isinstance(self.samples, bool)
        ):
            raise ScenarioError(
                f"samples must be an integer, got {self.samples!r}"
            )
        object.__setattr__(self, "samples", int(self.samples))
        if self.samples < 1:
            raise ScenarioError("samples must be >= 1")

    @property
    def parameters(self) -> list[str]:
        """Swept field names, in declared order."""
        return [name for name, _, _ in self.ranges]

    def points(self) -> list[dict[str, Any]]:
        if not self.ranges:
            raise ScenarioError(
                "LatinHypercubeSweepScenario needs at least one range"
            )
        self._check_fields(self.parameters)
        rng = spawn_rng(self.seed, "lhs-sweep")
        n = self.samples
        columns: list[list[Any]] = []
        for _, low, high in self.ranges:
            # One stratum per sample, shuffled: bin k covers
            # [low + k*w, low + (k+1)*w) with w = (high-low)/n.
            strata = rng.permutation(n)
            offsets = rng.random(n)
            values = low + (strata + offsets) / n * (high - low)
            if isinstance(low, int) and isinstance(high, int):
                columns.append([int(v) for v in np.floor(values)])
            else:
                columns.append([float(v) for v in values])
        return [
            dict(zip(self.parameters, point)) for point in zip(*columns)
        ]


def _normalize_grid(grid: Any) -> tuple:
    """Coerce a grid mapping / pair list to ``((name, values), ...)``."""
    if isinstance(grid, Mapping):
        items = list(grid.items())
    elif isinstance(grid, (list, tuple)):
        items = list(grid)
    else:
        raise ScenarioError(
            f"grid must be a mapping or (name, values) pairs, got "
            f"{type(grid).__name__}"
        )
    out = []
    for item in items:
        if not (isinstance(item, (list, tuple)) and len(item) == 2):
            raise ScenarioError(
                f"grid entries must be (name, values) pairs, got {item!r}"
            )
        name, values = item
        if not isinstance(name, str) or not name:
            raise ScenarioError(f"grid field name must be a string: {name!r}")
        if isinstance(values, (list, tuple, np.ndarray)):
            values = tuple(
                v.item() if isinstance(v, np.generic) else v for v in values
            )
        else:
            values = (values,)
        if not values:
            raise ScenarioError(f"grid axis {name!r} has no values")
        out.append((name, values))
    return tuple(out)


def _normalize_ranges(ranges: Any) -> tuple:
    """Coerce a ranges mapping / triple list to ``((name, lo, hi), ...)``."""
    if isinstance(ranges, Mapping):
        items = [(name, bounds) for name, bounds in ranges.items()]
    elif isinstance(ranges, (list, tuple)):
        items = []
        for entry in ranges:
            if isinstance(entry, (list, tuple)) and len(entry) == 3:
                items.append((entry[0], (entry[1], entry[2])))
            elif isinstance(entry, (list, tuple)) and len(entry) == 2:
                items.append((entry[0], entry[1]))
            else:
                raise ScenarioError(
                    f"ranges entries must be (name, low, high), got {entry!r}"
                )
    else:
        raise ScenarioError(
            f"ranges must be a mapping or (name, low, high) triples, got "
            f"{type(ranges).__name__}"
        )
    out = []
    for name, bounds in items:
        if not isinstance(name, str) or not name:
            raise ScenarioError(
                f"ranges field name must be a string: {name!r}"
            )
        if not (isinstance(bounds, (list, tuple)) and len(bounds) == 2):
            raise ScenarioError(
                f"range for {name!r} must be (low, high), got {bounds!r}"
            )
        low, high = bounds
        for v in (low, high):
            if not isinstance(v, numbers.Real) or isinstance(v, bool):
                raise ScenarioError(
                    f"range bounds for {name!r} must be numbers, got {v!r}"
                )
        low = low.item() if isinstance(low, np.generic) else low
        high = high.item() if isinstance(high, np.generic) else high
        if not low < high:
            raise ScenarioError(
                f"range for {name!r} needs low < high, got ({low}, {high})"
            )
        out.append((name, low, high))
    return tuple(out)


__all__ = [
    "SyntheticScenario",
    "ReplayScenario",
    "VerificationScenario",
    "BenchmarkSequenceScenario",
    "WhatIfScenario",
    "BaseSweepScenario",
    "SweepScenario",
    "GridSweepScenario",
    "LatinHypercubeSweepScenario",
]
