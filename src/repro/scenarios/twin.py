"""The digital twin handle scenarios execute against.

A :class:`DigitalTwin` resolves a system reference (builtin name, JSON
path, or an already-built :class:`~repro.config.schema.SystemSpec`) once
and caches shared expensive inputs — loaded telemetry datasets and
trained surrogate bundles — so an
:class:`~repro.scenarios.suite.ExperimentSuite` pays for spec/dataset
loading and surrogate training a single time no matter how many
scenarios run against it.

The twin also carries the default execution *fidelity*: ``"full"``
(the L4 first-principles engine) or ``"surrogate"`` (the L3 fast path,
:mod:`repro.fastpath`).  Scenarios inherit it unless they pin their own
``fidelity`` field, so an unchanged scenario library can be re-run on
the fast path with nothing but ``DigitalTwin("frontier",
fidelity="surrogate")``.
"""

from __future__ import annotations

from pathlib import Path

from repro.config.loader import load_builtin_system, load_system
from repro.config.schema import SystemSpec
from repro.cooling.plant import BACKENDS as COOLING_BACKENDS
from repro.exceptions import ScenarioError
from repro.telemetry.dataset import TelemetryDataset

#: Valid execution fidelities ("" on a scenario means: inherit the twin's).
FIDELITIES = ("full", "surrogate")


def resolve_spec(system: str | Path | SystemSpec) -> SystemSpec:
    """Resolve a system reference to a :class:`SystemSpec`.

    Accepts a spec instance (returned as-is), a path to a JSON spec, or
    a builtin system name (``"frontier"``, ``"setonix"``, ...).
    """
    if isinstance(system, SystemSpec):
        return system
    text = str(system)
    if text.endswith(".json") or Path(text).exists():
        return load_system(system)
    return load_builtin_system(text)


class DigitalTwin:
    """One resolved system that many scenarios can run against.

    Parameters
    ----------
    system:
        Spec instance, JSON path, or builtin name.
    fidelity:
        Default execution backend for scenarios that don't pin one:
        ``"full"`` (default) or ``"surrogate"``.
    surrogates:
        Optional fast-path models: a trained
        :class:`~repro.fastpath.bundle.SurrogateBundle` or a path to a
        saved bundle JSON (loaded lazily, spec-checked).  Without it,
        surrogate-fidelity runs train a default bundle on first use
        (memoized per process).
    warm_cache:
        Optional warm-plant state cache (a
        :class:`~repro.service.warmcache.WarmStateCache`), shared by
        every full-fidelity coupled run against this twin: the first
        run pays the 1800 s cooling warmup and snapshots the warmed
        plant; later runs restore it, bit-identically.
    cooling_backend:
        Cooling-plant stepping backend for full-fidelity coupled runs:
        the fused flat-array kernel (``"fused"``, default) or the
        reference object graph (``"reference"``).  The two are
        bit-identical; the knob exists for oracle comparisons and
        perf forensics.
    """

    def __init__(
        self,
        system: str | Path | SystemSpec = "frontier",
        *,
        fidelity: str = "full",
        surrogates=None,
        warm_cache=None,
        cooling_backend: str = "fused",
    ) -> None:
        if fidelity not in FIDELITIES:
            raise ScenarioError(
                f"unknown fidelity {fidelity!r}; expected one of {FIDELITIES}"
            )
        if cooling_backend not in COOLING_BACKENDS:
            raise ScenarioError(
                f"unknown cooling backend {cooling_backend!r}; expected "
                f"one of {COOLING_BACKENDS}"
            )
        self.spec = resolve_spec(system)
        self.fidelity = fidelity
        self.warm_cache = warm_cache
        self.cooling_backend = cooling_backend
        self._datasets: dict[str, TelemetryDataset] = {}
        self._bundle = None
        self._bundle_explicit = surrogates is not None
        self._bundle_path: Path | None = None
        if surrogates is not None:
            from repro.fastpath.bundle import SurrogateBundle

            if isinstance(surrogates, SurrogateBundle):
                surrogates.check_spec(self.spec)
                self._bundle = surrogates
            else:
                self._bundle_path = Path(surrogates)

    def dataset(self, path: str | Path) -> TelemetryDataset:
        """Load a telemetry dataset, cached per path."""
        key = str(path)
        if key not in self._datasets:
            self._datasets[key] = TelemetryDataset.load(path)
        return self._datasets[key]

    def surrogates(self, *, cooling: bool = True):
        """The fast-path model bundle for this twin (cached).

        Resolution order: a bundle passed at construction, a bundle
        path passed at construction (loaded and spec-checked once),
        else train-on-first-use via
        :func:`repro.fastpath.train.default_bundle`.  ``cooling=False``
        is satisfied by any cached bundle; a coupled request upgrades a
        cached power-only bundle.
        """
        from repro.fastpath.bundle import SurrogateBundle
        from repro.fastpath.train import default_bundle

        if self._bundle is None and self._bundle_path is not None:
            self._bundle = SurrogateBundle.load(
                self._bundle_path, spec=self.spec
            )
        if self._bundle is not None and (
            self._bundle_explicit or self._bundle.has_cooling or not cooling
        ):
            # An explicitly attached bundle is authoritative even if it
            # lacks cooling — the engine raises a clear error rather
            # than silently retraining over the user's model.
            return self._bundle
        self._bundle = default_bundle(self.spec, cooling=cooling)
        return self._bundle

    def use_surrogates(self, bundle) -> "DigitalTwin":
        """Attach a trained bundle (spec-checked); returns self."""
        bundle.check_spec(self.spec)
        self._bundle = bundle
        self._bundle_explicit = True
        return self

    def surrogate_doc(self) -> dict | None:
        """The attached bundle as its JSON document, or None.

        This is how suites and campaigns ship a trained bundle to
        worker processes: the document is plain JSON (cheap to pickle)
        and rebuilds the exact same predictions on the other side.
        Only an explicitly attached/loaded bundle is shipped — never a
        train-on-demand default (workers memoize their own).
        """
        from repro.fastpath.bundle import SurrogateBundle

        if self._bundle is None and self._bundle_path is not None:
            self._bundle = SurrogateBundle.load(
                self._bundle_path, spec=self.spec
            )
        if self._bundle is None or not self._bundle_explicit:
            return None
        return self._bundle.to_doc()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DigitalTwin(spec={self.spec.name!r}, "
            f"fidelity={self.fidelity!r})"
        )


def as_twin(obj: DigitalTwin | str | Path | SystemSpec) -> DigitalTwin:
    """Coerce a twin / spec / name / path into a :class:`DigitalTwin`."""
    if isinstance(obj, DigitalTwin):
        return obj
    return DigitalTwin(obj)


__all__ = [
    "DigitalTwin",
    "as_twin",
    "resolve_spec",
    "FIDELITIES",
    "COOLING_BACKENDS",
]
