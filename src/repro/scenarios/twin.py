"""The digital twin handle scenarios execute against.

A :class:`DigitalTwin` resolves a system reference (builtin name, JSON
path, or an already-built :class:`~repro.config.schema.SystemSpec`) once
and caches shared expensive inputs — currently loaded telemetry
datasets — so an :class:`~repro.scenarios.suite.ExperimentSuite` pays
for spec/dataset loading a single time no matter how many scenarios run
against it.
"""

from __future__ import annotations

from pathlib import Path

from repro.config.loader import load_builtin_system, load_system
from repro.config.schema import SystemSpec
from repro.telemetry.dataset import TelemetryDataset


def resolve_spec(system: str | Path | SystemSpec) -> SystemSpec:
    """Resolve a system reference to a :class:`SystemSpec`.

    Accepts a spec instance (returned as-is), a path to a JSON spec, or
    a builtin system name (``"frontier"``, ``"setonix"``, ...).
    """
    if isinstance(system, SystemSpec):
        return system
    text = str(system)
    if text.endswith(".json") or Path(text).exists():
        return load_system(system)
    return load_builtin_system(text)


class DigitalTwin:
    """One resolved system that many scenarios can run against."""

    def __init__(self, system: str | Path | SystemSpec = "frontier") -> None:
        self.spec = resolve_spec(system)
        self._datasets: dict[str, TelemetryDataset] = {}

    def dataset(self, path: str | Path) -> TelemetryDataset:
        """Load a telemetry dataset, cached per path."""
        key = str(path)
        if key not in self._datasets:
            self._datasets[key] = TelemetryDataset.load(path)
        return self._datasets[key]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DigitalTwin(spec={self.spec.name!r})"


def as_twin(obj: DigitalTwin | str | Path | SystemSpec) -> DigitalTwin:
    """Coerce a twin / spec / name / path into a :class:`DigitalTwin`."""
    if isinstance(obj, DigitalTwin):
        return obj
    return DigitalTwin(obj)


__all__ = ["DigitalTwin", "as_twin", "resolve_spec"]
