"""Per-scenario result artifact returned by ``scenario.run(twin)``.

Bundles the raw engine series with the end-of-run statistics and, for
counterfactual scenarios, the baseline run and the comparison report.
The ``summary_row`` view is what :class:`~repro.scenarios.suite.SuiteResult`
tabulates across a whole experiment suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.engine import SimulationResult
from repro.core.scenarios import ScenarioComparison
from repro.core.stats import RunStatistics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.scenarios.base import Scenario


@dataclass
class ScenarioResult:
    """Everything one scenario produced.

    ``result`` is the (modified, for what-ifs) engine run; ``baseline``
    and ``comparison`` are set only by counterfactual scenarios;
    ``children`` is set by sweep scenarios run standalone.
    """

    scenario: "Scenario"
    result: SimulationResult | None = None
    statistics: RunStatistics | None = None
    baseline: SimulationResult | None = None
    comparison: ScenarioComparison | None = None
    children: list["ScenarioResult"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.scenario.name

    @property
    def kind(self) -> str:
        return self.scenario.kind

    @property
    def mean_power_mw(self) -> float:
        if self.result is None:
            return math.nan
        return self.result.mean_power_w / 1e6

    @property
    def energy_mwh(self) -> float:
        if self.result is None:
            return math.nan
        return self.result.energy_mwh

    @property
    def loss_percent(self) -> float:
        if self.result is None or self.result.mean_power_w == 0:
            return math.nan
        return self.result.mean_loss_w / self.result.mean_power_w * 100.0

    @property
    def mean_pue(self) -> float:
        if self.result is None or "pue" not in self.result.cooling:
            return math.nan
        return float(np.mean(self.result.cooling["pue"]))

    def summary_row(self) -> dict[str, str]:
        """One formatted table row for the suite comparison view."""

        def num(value: float, fmt: str) -> str:
            return "-" if math.isnan(value) else format(value, fmt)

        row = {
            "scenario": self.name,
            "kind": self.kind,
            "power MW": num(self.mean_power_mw, ".2f"),
            "energy MWh": num(self.energy_mwh, ".1f"),
            "loss %": num(self.loss_percent, ".2f"),
            "PUE": num(self.mean_pue, ".3f"),
        }
        if self.comparison is not None:
            row["Δeff pp"] = f"{self.comparison.efficiency_gain_percent:+.2f}"
            row["savings $/yr"] = f"{self.comparison.annual_savings_usd:,.0f}"
        return row


__all__ = ["ScenarioResult"]
