"""Per-scenario result artifact returned by ``scenario.run(twin)``.

Bundles the raw engine series with the end-of-run statistics and, for
counterfactual scenarios, the baseline run and the comparison report.
The ``summary_row`` view is what :class:`~repro.scenarios.suite.SuiteResult`
tabulates across a whole experiment suite.

The row is computed in two stages shared with the campaign artifact
store: :func:`~repro.core.summary.result_metrics` extracts the raw
scalars and :func:`format_summary_row` formats them.  A persisted
campaign cell stores the raw scalars and reuses the same formatter, so
a reloaded comparison table is byte-identical to the live one (see
:mod:`repro.scenarios.artifacts`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.engine import SimulationResult
from repro.core.whatif import ScenarioComparison
from repro.core.stats import RunStatistics
from repro.core.summary import result_metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.scenarios.base import Scenario


def format_summary_row(
    name: str,
    kind: str,
    metrics: dict[str, float],
    comparison: ScenarioComparison | None = None,
) -> dict[str, str]:
    """Format one comparison-table row from raw summary metrics.

    ``metrics`` is the :func:`~repro.core.summary.result_metrics` dict;
    NaN renders as ``-``.  Both live :class:`ScenarioResult` objects and
    reloaded artifact cells go through this single formatter.
    """

    def num(value: float, fmt: str) -> str:
        return "-" if math.isnan(value) else format(value, fmt)

    row = {
        "scenario": name,
        "kind": kind,
        "power MW": num(metrics["mean_power_mw"], ".2f"),
        "energy MWh": num(metrics["energy_mwh"], ".1f"),
        "loss %": num(metrics["loss_percent"], ".2f"),
        "PUE": num(metrics["mean_pue"], ".3f"),
    }
    if comparison is not None:
        row["Δeff pp"] = f"{comparison.efficiency_gain_percent:+.2f}"
        row["savings $/yr"] = f"{comparison.annual_savings_usd:,.0f}"
    return row


@dataclass
class ScenarioResult:
    """Everything one scenario produced.

    ``result`` is the (modified, for what-ifs) engine run; ``baseline``
    and ``comparison`` are set only by counterfactual scenarios;
    ``children`` is set by sweep scenarios run standalone.
    """

    scenario: "Scenario"
    result: SimulationResult | None = None
    statistics: RunStatistics | None = None
    baseline: SimulationResult | None = None
    comparison: ScenarioComparison | None = None
    children: list["ScenarioResult"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.scenario.name

    @property
    def kind(self) -> str:
        return self.scenario.kind

    @property
    def mean_power_mw(self) -> float:
        if self.result is None:
            return math.nan
        return self.result.mean_power_w / 1e6

    @property
    def energy_mwh(self) -> float:
        if self.result is None:
            return math.nan
        return self.result.energy_mwh

    @property
    def loss_percent(self) -> float:
        if self.result is None or self.result.mean_power_w == 0:
            return math.nan
        return self.result.mean_loss_w / self.result.mean_power_w * 100.0

    @property
    def mean_pue(self) -> float:
        return self.metrics()["mean_pue"]

    def metrics(self) -> dict[str, float]:
        """Raw (unformatted) summary scalars of this scenario's run."""
        return result_metrics(self.result)

    def summary_row(self) -> dict[str, str]:
        """One formatted table row for the suite comparison view."""
        return format_summary_row(
            self.name, self.kind, self.metrics(), self.comparison
        )


__all__ = ["ScenarioResult", "format_summary_row"]
