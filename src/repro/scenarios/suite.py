"""Batch experiment runner: N scenarios, one twin, optional parallelism.

An :class:`ExperimentSuite` resolves the system spec once, flattens any
sweep scenarios into their concrete children, and executes every
scenario either serially or across worker processes
(``suite.run(workers=4)``).  Scenarios are declarative and seeded, so
each run is independent and deterministic: the parallel path produces
results bit-identical to the serial path (both dispatch through the
same single-scenario executor).

The returned :class:`SuiteResult` keeps per-scenario artifacts in
submission order and renders a cross-scenario comparison table.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from repro.config.schema import SystemSpec
from repro.exceptions import ScenarioError
from repro.scenarios.base import Scenario
from repro.scenarios.library import BaseSweepScenario
from repro.scenarios.result import ScenarioResult
from repro.scenarios.twin import DigitalTwin, as_twin


#: Per-process warm-plant cache shared by every suite scenario this
#: worker executes (created lazily on first coupled scenario).
_WORKER_WARM_CACHE = None


def _process_warm_cache():
    """The process-local :class:`~repro.service.warmcache.WarmStateCache`.

    Pool workers are reused across scenarios, so one cache per worker
    process lets every coupled scenario after the first skip the 1800 s
    cooling warmup.  Warmup is deterministic (see
    :meth:`RapsEngine._warmup_cooling
    <repro.core.engine.RapsEngine._warmup_cooling>`), so cached runs
    stay bit-identical to serial execution.
    """
    global _WORKER_WARM_CACHE
    if _WORKER_WARM_CACHE is None:
        from repro.service.warmcache import WarmStateCache

        _WORKER_WARM_CACHE = WarmStateCache()
    return _WORKER_WARM_CACHE


def execute_scenario(
    spec: SystemSpec,
    scenario: Scenario,
    surrogate_doc: dict | None = None,
    use_warm_cache: bool = False,
    cooling_backend: str = "fused",
) -> ScenarioResult:
    """Run one scenario against a fresh twin built from ``spec``.

    Module-level so :class:`ProcessPoolExecutor` can pickle it — this
    is the worker-process entry point.  The serial path shares the
    suite's twin instead (amortizing its dataset cache); results are
    identical either way because scenarios are seeded and every run
    builds a fresh engine.

    ``surrogate_doc`` is the serialized fast-path bundle of the
    driving twin (:meth:`DigitalTwin.surrogate_doc
    <repro.scenarios.twin.DigitalTwin.surrogate_doc>`): rebuilding it
    here keeps surrogate-fidelity cells bit-identical between serial
    and worker execution — without it a worker would train its own
    default bundle.  ``use_warm_cache`` attaches the process-local
    warm-plant cache, so repeated coupled scenarios in one worker skip
    the cooling warmup (suite workers pass True by default).
    ``cooling_backend`` forwards the driving twin's plant backend so an
    explicit oracle (``"reference"``) selection survives into workers.
    """
    twin = DigitalTwin(
        spec,
        warm_cache=_process_warm_cache() if use_warm_cache else None,
        cooling_backend=cooling_backend,
    )
    if surrogate_doc is not None:
        from repro.fastpath.bundle import SurrogateBundle

        twin.use_surrogates(SurrogateBundle.from_doc(surrogate_doc))
    return scenario.run(twin)


@dataclass
class SuiteResult:
    """Ordered per-scenario artifacts + a comparison table."""

    results: list[ScenarioResult] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[ScenarioResult]:
        return iter(self.results)

    def __getitem__(self, key: int | str) -> ScenarioResult:
        if isinstance(key, int):
            return self.results[key]
        for r in self.results:
            if r.name == key:
                return r
        raise KeyError(key)

    def comparison_table(self) -> str:
        """Aligned cross-scenario table of the headline metrics."""
        if not self.results:
            return "(empty suite)"
        rows = [r.summary_row() for r in self.results]
        columns: list[str] = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        widths = {
            c: max(len(c), *(len(row.get(c, "-")) for row in rows))
            for c in columns
        }
        header = "  ".join(c.ljust(widths[c]) for c in columns)
        rule = "  ".join("-" * widths[c] for c in columns)
        lines = [header, rule]
        for row in rows:
            lines.append(
                "  ".join(row.get(c, "-").rjust(widths[c]) for c in columns)
            )
        return "\n".join(lines)


class ExperimentSuite:
    """Run many scenarios against one digital twin.

    Parameters
    ----------
    system:
        Twin, spec, builtin name, or JSON path — resolved once and
        shared by every scenario in the suite.
    scenarios:
        Initial scenario list; :meth:`add` appends more fluently.
    """

    def __init__(
        self,
        system: DigitalTwin | SystemSpec | str | Path = "frontier",
        scenarios: Iterable[Scenario] = (),
    ) -> None:
        self.twin = as_twin(system)
        self.scenarios: list[Scenario] = list(scenarios)
        for s in self.scenarios:
            self._check(s)

    def _check(self, scenario: Scenario) -> None:
        if not isinstance(scenario, Scenario):
            raise ScenarioError(
                f"ExperimentSuite takes Scenario objects, got "
                f"{type(scenario).__name__}"
            )

    def add(self, scenario: Scenario) -> "ExperimentSuite":
        """Append a scenario; returns self for chaining."""
        self._check(scenario)
        self.scenarios.append(scenario)
        return self

    def expanded(self) -> list[Scenario]:
        """The flat run list: sweep-family scenarios replaced by their
        children (any :class:`BaseSweepScenario` subclass expands)."""
        flat: list[Scenario] = []
        for s in self.scenarios:
            if isinstance(s, BaseSweepScenario):
                flat.extend(s.expand())
            else:
                flat.append(s)
        return flat

    def run(
        self,
        workers: int = 1,
        *,
        progress: Callable[[Scenario, int, int], None] | None = None,
        warm_workers: bool = True,
    ) -> SuiteResult:
        """Execute every scenario; ``workers > 1`` uses process parallelism.

        Results come back in submission order regardless of completion
        order, and are bit-identical to a ``workers=1`` run (each
        scenario is seeded and runs on its own fresh engine either way).
        ``progress(scenario, done, total)`` fires as scenarios finish.

        With ``warm_workers`` (the default), each pool worker keeps a
        process-local warm-plant cache so repeated coupled scenarios in
        one suite pay the 1800 s cooling warmup once per worker — the
        warmup is deterministic, so this changes wall-clock only, never
        results.
        """
        scenarios = self.expanded()
        if not scenarios:
            raise ScenarioError("suite has no scenarios to run")
        total = len(scenarios)
        results: list[ScenarioResult | None] = [None] * total
        if workers <= 1:
            for i, scenario in enumerate(scenarios):
                results[i] = scenario.run(self.twin)
                if progress is not None:
                    progress(scenario, i + 1, total)
        else:
            surrogate_doc = self.twin.surrogate_doc()
            with ProcessPoolExecutor(max_workers=min(workers, total)) as pool:
                futures = {
                    pool.submit(
                        execute_scenario,
                        self.twin.spec,
                        s,
                        surrogate_doc,
                        warm_workers,
                        self.twin.cooling_backend,
                    ): i
                    for i, s in enumerate(scenarios)
                }
                for done, future in enumerate(as_completed(futures), start=1):
                    i = futures[future]
                    results[i] = future.result()
                    if progress is not None:
                        progress(scenarios[i], done, total)
        return SuiteResult(results=list(results))  # type: ignore[arg-type]

    # -- declarative suite files ----------------------------------------------

    def to_dicts(self) -> list[dict[str, Any]]:
        """JSON-compatible description of the scenario list."""
        return [s.to_dict() for s in self.scenarios]

    @classmethod
    def from_file(
        cls,
        path: str | Path,
        *,
        system: DigitalTwin | SystemSpec | str | Path | None = None,
    ) -> "ExperimentSuite":
        """Load a suite from a JSON file.

        The document is either a JSON array of scenario objects or an
        object ``{"system": ..., "scenarios": [...]}``; an explicit
        ``system`` argument overrides the file's.
        """
        p = Path(path)
        if not p.exists():
            raise ScenarioError(f"suite file not found: {p}")
        try:
            doc = json.loads(p.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"invalid suite JSON: {exc}") from exc
        if isinstance(doc, list):
            file_system, entries = None, doc
        elif isinstance(doc, dict):
            file_system = doc.get("system")
            entries = doc.get("scenarios")
            if not isinstance(entries, list):
                raise ScenarioError("suite object needs a 'scenarios' array")
        else:
            raise ScenarioError("suite JSON must be an array or an object")
        chosen = system if system is not None else (file_system or "frontier")
        return cls(chosen, [Scenario.from_dict(e) for e in entries])


__all__ = ["ExperimentSuite", "SuiteResult", "execute_scenario"]
