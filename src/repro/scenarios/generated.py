"""The ``generated`` scenario kind: workload generators as scenarios.

A :class:`GeneratedScenario` composes up to four
:class:`~repro.workloads.base.WorkloadGenerator`\\ s — one per role —
into a runnable, JSON-round-trippable scenario:

- ``workload`` (role ``jobs``, required to run) supplies the job list;
- ``faults`` (role ``events``) supplies a fault-injection stream;
- ``weather`` (role ``wetbulb``) supplies the wet-bulb trace
  (``wetbulb_c`` is the constant fallback);
- ``grid`` (role ``grid``) supplies a carbon/price signal for
  emissions post-processing (it does not affect the physics).

Generation is memoized (:func:`~repro.workloads.base.generate_cached`),
so sweeping engine-side parameters over a fixed workload re-generates
nothing, and :meth:`GeneratedScenario.workload_provenance` exposes the
spec-SHA content addresses that campaign artifacts persist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.exceptions import ScenarioError
from repro.scenarios.base import RunPlan, Scenario, register_scenario
from repro.scenarios.twin import DigitalTwin
from repro.workloads.base import WorkloadGenerator, generate_cached


def _check_role(value, role: str, field_name: str) -> None:
    if value is None:
        return
    if not isinstance(value, WorkloadGenerator):
        raise ScenarioError(
            f"{field_name} must be a WorkloadGenerator, "
            f"got {type(value).__name__}"
        )
    if value.role != role:
        raise ScenarioError(
            f"{field_name} needs a {role!r}-role generator, "
            f"got {value.generator!r} (role {value.role!r})"
        )


@register_scenario
@dataclass(frozen=True)
class GeneratedScenario(Scenario):
    """Run a parametric generated workload (with optional faults/weather)."""

    kind = "generated"

    workload: WorkloadGenerator | None = None
    faults: WorkloadGenerator | None = None
    weather: WorkloadGenerator | None = None
    grid: WorkloadGenerator | None = None
    wetbulb_c: float = 15.0

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_role(self.workload, "jobs", "workload")
        _check_role(self.faults, "events", "faults")
        _check_role(self.weather, "wetbulb", "weather")
        _check_role(self.grid, "grid", "grid")
        object.__setattr__(self, "wetbulb_c", float(self.wetbulb_c))

    def plan(self, twin: DigitalTwin, **kwargs: Any) -> RunPlan:
        if self.workload is None:
            raise ScenarioError(
                f"generated scenario {self.name!r} has no workload generator"
            )
        jobs = generate_cached(self.workload, twin.spec, self.duration_s)
        events = (
            tuple(generate_cached(self.faults, twin.spec, self.duration_s))
            if self.faults is not None
            else ()
        )
        wetbulb = (
            generate_cached(self.weather, twin.spec, self.duration_s)
            if self.weather is not None
            else self.wetbulb_c
        )
        return RunPlan(
            jobs=jobs,
            duration_s=self.duration_s,
            wetbulb=wetbulb,
            honor_recorded=False,
            events=events,
        )

    def grid_signal(self, twin: DigitalTwin):
        """The generated :class:`~repro.power.emissions.GridSignal`.

        Returns None when no grid generator is attached.  Feed it to
        :meth:`EmissionsModel.co2_tons_timeseries
        <repro.power.emissions.EmissionsModel.co2_tons_timeseries>` /
        ``energy_cost_usd_timeseries`` over the run's power series.
        """
        if self.grid is None:
            return None
        return generate_cached(self.grid, twin.spec, self.duration_s)

    def workload_provenance(self) -> dict[str, dict]:
        """Content addresses of every attached generator, by role field.

        This is what :class:`~repro.scenarios.artifacts.CampaignStore`
        persists in its manifest next to the scenario document, so an
        artifact records exactly which generated inputs produced it.
        """
        out: dict[str, dict] = {}
        for field_name in ("workload", "faults", "weather", "grid"):
            gen = getattr(self, field_name)
            if gen is not None:
                out[field_name] = gen.provenance()
        return out


__all__ = ["GeneratedScenario"]
