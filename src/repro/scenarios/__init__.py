"""Scenario-first experiment API (the batch front door of the twin).

A :class:`Scenario` is a declarative, seedable, JSON-round-trippable
description of one experiment; ``scenario.run(twin)`` executes it on
the streaming RAPS engine; an :class:`ExperimentSuite` runs many of
them — optionally across worker processes — against one shared system
spec and tabulates the results.  A :class:`Campaign` adds a persistent
spine: every finished cell of a sweep lands in an on-disk artifact
directory (:mod:`repro.scenarios.artifacts`) that reloads bit-identical
tables and resumes interrupted runs without recomputation.

Scenario kinds (all JSON round-trippable via ``Scenario.from_dict``):

========================  =================================================
``synthetic``             Poisson synthetic workload at fixed wet-bulb
``replay``                telemetry replay at recorded start times
``verification``          one Table III operating point (idle/hpl/peak)
``benchmark-sequence``    Fig. 8 HPL + OpenMxP sequence at recorded starts
``whatif``                counterfactual conversion-chain study (IV-3)
``generated``             parametric workload generators (+faults/weather)
``sweep``                 one parameter over a value list
``grid-sweep``            cartesian grid over several parameters at once
``lhs-sweep``             seeded latin-hypercube sample of a parameter box
========================  =================================================

Quickstart::

    from repro.scenarios import (
        DigitalTwin, ExperimentSuite, SyntheticScenario, WhatIfScenario,
    )

    twin = DigitalTwin("frontier")
    result = SyntheticScenario(duration_s=2 * 3600, seed=42).run(twin)
    print(result.statistics.report())

    suite = ExperimentSuite(twin)
    suite.add(VerificationScenario(point="idle"))
    suite.add(VerificationScenario(point="peak"))
    suite.add(WhatIfScenario(modification="direct-dc"))
    print(suite.run(workers=3).comparison_table())

Every scenario also carries a declarative ``fidelity`` field (``"full"``
| ``"surrogate"`` | ``""`` = inherit the twin's): the surrogate setting
swaps the L4 engine for the :mod:`repro.fastpath` surrogate backend —
same protocol, milliseconds per run — so whole suites and campaigns
move to the fast path unchanged.

Persisted campaign (resumable, comparable across code revisions)::

    from repro.scenarios import Campaign, GridSweepScenario

    sweep = GridSweepScenario(
        base=SyntheticScenario(duration_s=1800.0, with_cooling=False),
        grid={"wetbulb_c": (12.0, 18.0, 24.0), "seed": (0, 1, 2, 3)},
    )
    campaign = Campaign.create("artifacts/wb-grid", [sweep])
    campaign.run(workers=4)
    print(Campaign.open("artifacts/wb-grid").load().comparison_table())
"""

from repro.scenarios.artifacts import (
    CampaignStore,
    StoredScenarioResult,
    git_revision,
    spec_sha256,
)
from repro.scenarios.base import (
    SCENARIO_TYPES,
    RunPlan,
    Scenario,
    register_scenario,
)
from repro.scenarios.campaign import Campaign
from repro.scenarios.generated import GeneratedScenario
from repro.scenarios.library import (
    BaseSweepScenario,
    BenchmarkSequenceScenario,
    GridSweepScenario,
    LatinHypercubeSweepScenario,
    ReplayScenario,
    SweepScenario,
    SyntheticScenario,
    VerificationScenario,
    WhatIfScenario,
)
from repro.scenarios.result import ScenarioResult, format_summary_row
from repro.scenarios.suite import ExperimentSuite, SuiteResult, execute_scenario
from repro.scenarios.twin import FIDELITIES, DigitalTwin, as_twin, resolve_spec

__all__ = [
    "FIDELITIES",
    "Scenario",
    "RunPlan",
    "SCENARIO_TYPES",
    "register_scenario",
    "SyntheticScenario",
    "ReplayScenario",
    "VerificationScenario",
    "BenchmarkSequenceScenario",
    "WhatIfScenario",
    "GeneratedScenario",
    "BaseSweepScenario",
    "SweepScenario",
    "GridSweepScenario",
    "LatinHypercubeSweepScenario",
    "ScenarioResult",
    "format_summary_row",
    "ExperimentSuite",
    "SuiteResult",
    "execute_scenario",
    "Campaign",
    "CampaignStore",
    "StoredScenarioResult",
    "spec_sha256",
    "git_revision",
    "DigitalTwin",
    "as_twin",
    "resolve_spec",
]
