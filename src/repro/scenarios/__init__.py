"""Scenario-first experiment API (the batch front door of the twin).

A :class:`Scenario` is a declarative, seedable, JSON-round-trippable
description of one experiment; ``scenario.run(twin)`` executes it on
the streaming RAPS engine; an :class:`ExperimentSuite` runs many of
them — optionally across worker processes — against one shared system
spec and tabulates the results.

Quickstart::

    from repro.scenarios import (
        DigitalTwin, ExperimentSuite, SyntheticScenario, WhatIfScenario,
    )

    twin = DigitalTwin("frontier")
    result = SyntheticScenario(duration_s=2 * 3600, seed=42).run(twin)
    print(result.statistics.report())

    suite = ExperimentSuite(twin)
    suite.add(VerificationScenario(point="idle"))
    suite.add(VerificationScenario(point="peak"))
    suite.add(WhatIfScenario(modification="direct-dc"))
    print(suite.run(workers=3).comparison_table())
"""

from repro.scenarios.base import (
    SCENARIO_TYPES,
    RunPlan,
    Scenario,
    register_scenario,
)
from repro.scenarios.library import (
    ReplayScenario,
    SweepScenario,
    SyntheticScenario,
    VerificationScenario,
    WhatIfScenario,
)
from repro.scenarios.result import ScenarioResult
from repro.scenarios.suite import ExperimentSuite, SuiteResult, execute_scenario
from repro.scenarios.twin import DigitalTwin, as_twin, resolve_spec

__all__ = [
    "Scenario",
    "RunPlan",
    "SCENARIO_TYPES",
    "register_scenario",
    "SyntheticScenario",
    "ReplayScenario",
    "VerificationScenario",
    "WhatIfScenario",
    "SweepScenario",
    "ScenarioResult",
    "ExperimentSuite",
    "SuiteResult",
    "execute_scenario",
    "DigitalTwin",
    "as_twin",
    "resolve_spec",
]
