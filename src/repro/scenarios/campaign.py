"""Resumable sweep campaigns: an ExperimentSuite with a persistent spine.

A :class:`Campaign` binds an expanded scenario cell list to a
:class:`~repro.scenarios.artifacts.CampaignStore` directory.  Running
it executes only the cells that have no persisted result yet — each
finished cell is appended to ``results.jsonl`` as it completes, so a
campaign killed at cell 7 of 12 resumes with 5 simulations, not 12 —
and returns the merged :class:`~repro.scenarios.suite.SuiteResult`
(stored cells + freshly run cells, in cell order).

Scenarios are declarative and seeded, so a resumed cell is bit-identical
to what the interrupted run would have produced; the artifact directory
is therefore a faithful record of the whole campaign no matter how many
sessions it took.  Parallel execution reuses the suite's worker-process
entry point and keeps the same determinism guarantee.

Quickstart::

    from repro.scenarios import Campaign, GridSweepScenario, SyntheticScenario

    sweep = GridSweepScenario(
        base=SyntheticScenario(duration_s=1800.0, with_cooling=False),
        grid={"wetbulb_c": (12.0, 18.0, 24.0), "seed": (0, 1, 2, 3)},
    )
    campaign = Campaign.create("artifacts/wb-x-seed", [sweep], system="frontier")
    print(campaign.run(workers=4).comparison_table())

    # later (new process, nothing recomputed):
    print(Campaign.open("artifacts/wb-x-seed").load().comparison_table())
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.config.schema import SystemSpec
from repro.exceptions import ScenarioError
from repro.obs.registry import get_registry
from repro.scenarios.artifacts import CampaignStore
from repro.scenarios.base import Scenario
from repro.scenarios.result import ScenarioResult
from repro.scenarios.suite import SuiteResult, execute_scenario
from repro.scenarios.twin import DigitalTwin, as_twin


class Campaign:
    """One persisted sweep campaign (cells + artifact store).

    ``surrogates`` optionally supplies the fast-path model bundle (a
    :class:`~repro.fastpath.bundle.SurrogateBundle` or a saved-bundle
    path) that surrogate-fidelity cells run on — shared by the serial
    path and shipped to worker processes, so parallel campaigns never
    retrain their own defaults.  ``warm_cache`` attaches a
    :class:`~repro.service.warmcache.WarmStateCache` to the campaign's
    twin, so serial coupled cells share one warmed plant; worker
    processes always keep their own process-local cache (see
    :func:`~repro.scenarios.suite.execute_scenario`).
    """

    def __init__(
        self,
        store: CampaignStore,
        *,
        surrogates=None,
        warm_cache=None,
        cooling_backend: str = "fused",
    ) -> None:
        self.store = store
        self.cells: list[Scenario] = store.cells()
        self.twin = DigitalTwin(
            store.system_spec(),
            surrogates=surrogates,
            warm_cache=warm_cache,
            cooling_backend=cooling_backend,
        )

    # -- construction ----------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str | Path,
        scenarios: Iterable[Scenario],
        *,
        system: DigitalTwin | SystemSpec | str | Path = "frontier",
        name: str | None = None,
        surrogates=None,
        warm_cache=None,
        cooling_backend: str = "fused",
    ) -> "Campaign":
        """Start a new campaign directory from declared scenarios.

        Sweeps expand here; the cell order is frozen in the manifest.
        The full system spec is embedded too, so the directory is
        self-contained — ``open()`` needs no external spec file.
        """
        twin = as_twin(system)
        store = CampaignStore.create(
            path, list(scenarios), twin.spec, name=name
        )
        return cls(
            store,
            surrogates=surrogates,
            warm_cache=warm_cache,
            cooling_backend=cooling_backend,
        )

    @classmethod
    def open(
        cls,
        path: str | Path,
        *,
        surrogates=None,
        warm_cache=None,
        cooling_backend: str = "fused",
    ) -> "Campaign":
        """Attach to an existing campaign directory."""
        return cls(
            CampaignStore.open(path),
            surrogates=surrogates,
            warm_cache=warm_cache,
            cooling_backend=cooling_backend,
        )

    # -- state -----------------------------------------------------------------

    @property
    def path(self) -> Path:
        return self.store.path

    def pending(self) -> list[tuple[int, Scenario]]:
        """(index, scenario) for every cell without a persisted result."""
        done = self.store.completed_indices()
        return [
            (i, cell) for i, cell in enumerate(self.cells) if i not in done
        ]

    def is_complete(self) -> bool:
        return self.store.is_complete()

    # -- execution -------------------------------------------------------------

    def run(
        self,
        workers: int = 1,
        *,
        progress: Callable[[Scenario, int, int], None] | None = None,
        stop_after: int | None = None,
        execution: str = "serial",
    ) -> SuiteResult:
        """Execute the missing cells, persisting each as it finishes.

        Already-completed cells are loaded from the store and never
        re-simulated.  ``workers > 1`` runs pending cells across
        processes (same bit-identical guarantee as
        :meth:`ExperimentSuite.run <repro.scenarios.suite.ExperimentSuite.run>`).
        ``progress(scenario, done, total)`` counts persisted cells,
        so a resumed campaign starts partway through.  ``stop_after``
        limits how many *new* cells run this call (used by tests to
        simulate interruption; the store stays consistent).

        ``execution="batched"`` runs the pending cells through one
        :class:`~repro.batch.engine.BatchedEngine` — a single
        vectorized sweep in this process instead of B worker processes
        (``workers`` is ignored).  Lanes are bit-identical to the
        serial path, so the persisted artifacts are indistinguishable
        from a serial run; cells the batched engine cannot lane-align
        (sweeps, what-ifs, reduced fidelity) fall back to
        ``scenario.run`` internally.

        Returns the merged suite result in cell order: stored results
        for old cells, live results for the ones just run.
        """
        if execution not in ("serial", "batched"):
            raise ScenarioError(
                f"unknown execution backend {execution!r} "
                "(expected 'serial' or 'batched')"
            )
        total = len(self.cells)
        if total == 0:
            raise ScenarioError("campaign has no cells to run")
        stored = self.store.completed()
        merged: dict[int, Any] = dict(stored)
        # Derive the work list from the single JSONL parse above —
        # campaigns can hold hundreds of cells with per-step series, so
        # one read has to be enough.
        pending = [
            (i, cell) for i, cell in enumerate(self.cells) if i not in stored
        ]
        if stop_after is not None:
            pending = pending[: max(stop_after, 0)]
        done_count = len(stored)
        reg = get_registry()
        if stored:
            reg.counter("repro_campaign_cells_skipped_total").inc(
                len(stored)
            )

        def finish(index: int, scenario: Scenario, outcome: ScenarioResult):
            nonlocal done_count
            self.store.record(index, outcome)
            merged[index] = outcome
            done_count += 1
            reg.counter("repro_campaign_cells_done_total").inc()
            if progress is not None:
                progress(scenario, done_count, total)

        if execution == "batched":
            if pending:
                from repro.batch import BatchedEngine

                engine = BatchedEngine(
                    [scenario for _, scenario in pending], self.twin
                )
                for (index, scenario), outcome in zip(
                    pending, engine.run()
                ):
                    finish(index, scenario, outcome)
        elif workers <= 1:
            for index, scenario in pending:
                finish(index, scenario, scenario.run(self.twin))
        elif pending:
            surrogate_doc = self.twin.surrogate_doc()
            with ProcessPoolExecutor(
                max_workers=min(workers, len(pending))
            ) as pool:
                futures = {
                    pool.submit(
                        execute_scenario,
                        self.twin.spec,
                        s,
                        surrogate_doc,
                        True,
                        self.twin.cooling_backend,
                    ): (i, s)
                    for i, s in pending
                }
                for future in as_completed(futures):
                    index, scenario = futures[future]
                    finish(index, scenario, future.result())
        results = [merged[i] for i in sorted(merged)]
        return SuiteResult(results=results)  # type: ignore[arg-type]

    def load(self) -> SuiteResult:
        """Reload persisted results only — never simulates."""
        return self.store.load()


__all__ = ["Campaign"]
