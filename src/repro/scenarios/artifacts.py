"""Persisted campaign artifacts: a JSONL + manifest directory per campaign.

A campaign directory is the durable record of one sweep campaign and
the unit of cross-PR comparison: run a 12-cell grid today, optimize the
engine next month, and diff the two stored comparison tables without
re-simulating the baseline.  Layout::

    my-campaign/
        manifest.json      # provenance + the frozen cell list
        results.jsonl      # one line per completed cell, append-only

``manifest.json`` is written once at creation and freezes the campaign:
the declared (un-expanded) scenarios, the expanded cell list in run
order, the full system spec document, and provenance (spec SHA-256, git
revision, package version, creation time).  ``results.jsonl`` grows one
line per finished cell — an interrupted campaign is just a shorter
file, and resume replays only the missing indices.

Each result line stores the cell's scenario document, the raw summary
metrics (:func:`~repro.core.summary.result_metrics`), the end-of-run
statistics, the what-if comparison when present, and the per-step
scalar series.  Floats persist as JSON numbers, which round-trip
bit-exactly, so :meth:`CampaignStore.load` reproduces the live
``comparison_table()`` byte for byte.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

try:  # POSIX advisory locks; fall back to sentinel files elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.config.loader import dumps_system, loads_system
from repro.config.schema import SystemSpec
from repro.core.whatif import ScenarioComparison
from repro.core.stats import RunStatistics
from repro.core.summary import (
    comparison_from_doc,
    comparison_to_doc,
    result_metrics,
    result_series_doc,
    series_from_doc,
    statistics_from_doc,
    statistics_to_doc,
)
from repro.exceptions import ScenarioError
from repro.scenarios.base import Scenario
from repro.scenarios.result import ScenarioResult, format_summary_row
from repro.scenarios.suite import SuiteResult

#: On-disk format version, bumped on breaking layout changes.
ARTIFACT_FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"
RESULTS_NAME = "results.jsonl"
LOCK_NAME = ".lock"


class StoreLock:
    """Advisory inter-process lock on one campaign directory.

    Serializes manifest rewrites and the append heal-check across
    concurrent writer processes (the service worker pool shares one
    store).  POSIX ``flock`` where available; elsewhere a sentinel
    file acquired with ``O_EXCL`` and a bounded spin.  Reentrant within
    one process is NOT supported — hold it briefly.
    """

    def __init__(self, directory: str | Path, *, timeout_s: float = 30.0) -> None:
        self.path = Path(directory) / LOCK_NAME
        self.timeout_s = timeout_s
        self._fh = None
        self._sentinel: Path | None = None

    def __enter__(self) -> "StoreLock":
        if fcntl is not None:
            self._fh = open(self.path, "a+b")
            fcntl.flock(self._fh.fileno(), fcntl.LOCK_EX)
            return self
        sentinel = self.path.with_suffix(".pid")
        deadline = time.monotonic() + self.timeout_s
        while True:  # pragma: no cover - non-POSIX fallback
            try:
                fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.write(fd, str(os.getpid()).encode())
                os.close(fd)
                self._sentinel = sentinel
                return self
            except FileExistsError:
                if time.monotonic() > deadline:
                    raise ScenarioError(
                        f"timed out acquiring store lock {sentinel}"
                    ) from None
                time.sleep(0.02)

    def __exit__(self, *exc) -> None:
        if self._fh is not None:
            fcntl.flock(self._fh.fileno(), fcntl.LOCK_UN)
            self._fh.close()
            self._fh = None
        if self._sentinel is not None:  # pragma: no cover - non-POSIX
            try:
                self._sentinel.unlink()
            except OSError:
                pass
            self._sentinel = None


def spec_sha256(spec: SystemSpec) -> str:
    """Stable content hash of a system spec (its canonical JSON form)."""
    text = dumps_system(spec, indent=None)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def git_revision(cwd: str | Path | None = None) -> str | None:
    """Current git commit hash, or None outside a repository."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


@dataclass
class StoredScenarioResult:
    """One reloaded campaign cell: the persisted view of a scenario run.

    Quacks like :class:`~repro.scenarios.result.ScenarioResult` for
    everything a :class:`~repro.scenarios.suite.SuiteResult` needs —
    ``name`` / ``kind`` / ``metrics()`` / ``summary_row()`` — plus the
    reloaded statistics, comparison, and per-step series.  It does not
    carry the raw engine result (jobs and 2-D CDU series are not
    persisted); rerun the scenario if you need those.
    """

    scenario: Scenario
    metrics_doc: dict[str, float]
    statistics: RunStatistics | None = None
    comparison: ScenarioComparison | None = None
    series: dict[str, np.ndarray] = field(default_factory=dict)

    #: Reloaded cells have no live engine result.
    result = None

    @property
    def name(self) -> str:
        return self.scenario.name

    @property
    def kind(self) -> str:
        return self.scenario.kind

    def metrics(self) -> dict[str, float]:
        """The persisted raw summary scalars (bit-exact reload)."""
        return dict(self.metrics_doc)

    def summary_row(self) -> dict[str, str]:
        """Same formatter as the live path — tables reload identically."""
        return format_summary_row(
            self.name, self.kind, self.metrics_doc, self.comparison
        )


def result_to_cell_doc(index: int, outcome: Any) -> dict[str, Any]:
    """Serialize one finished cell to its ``results.jsonl`` line document.

    ``outcome`` is a live :class:`ScenarioResult` (or an already-stored
    one being re-recorded, e.g. when copying campaigns).
    """
    if isinstance(outcome, StoredScenarioResult):
        doc: dict[str, Any] = {
            "index": index,
            "scenario": outcome.scenario.to_dict(),
            "metrics": dict(outcome.metrics_doc),
            "statistics": (
                statistics_to_doc(outcome.statistics)
                if outcome.statistics is not None
                else None
            ),
            "comparison": (
                comparison_to_doc(outcome.comparison)
                if outcome.comparison is not None
                else None
            ),
            "series": {k: v.tolist() for k, v in outcome.series.items()},
        }
        return doc
    return {
        "index": index,
        "scenario": outcome.scenario.to_dict(),
        "metrics": result_metrics(outcome.result),
        "statistics": (
            statistics_to_doc(outcome.statistics)
            if outcome.statistics is not None
            else None
        ),
        "comparison": (
            comparison_to_doc(outcome.comparison)
            if outcome.comparison is not None
            else None
        ),
        "series": (
            result_series_doc(outcome.result)
            if outcome.result is not None
            else {}
        ),
    }


def _nulled_nans(value: Any) -> Any:
    """Recursively map non-finite floats to None (strict-JSON encoding).

    ``json.dumps`` would otherwise emit bare ``NaN`` tokens, which any
    non-Python consumer (``jq``, JavaScript, strict parsers) rejects;
    artifacts must stay plain JSON.  :func:`_restored_nans` inverts.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _nulled_nans(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_nulled_nans(v) for v in value]
    return value


def _restored_nans(doc: dict[str, Any]) -> dict[str, Any]:
    """Map None values of a flat numeric document back to NaN."""
    return {k: math.nan if v is None else v for k, v in doc.items()}


def cell_doc_to_result(doc: dict[str, Any]) -> StoredScenarioResult:
    """Rebuild a :class:`StoredScenarioResult` from its JSONL document."""
    return StoredScenarioResult(
        scenario=Scenario.from_dict(doc["scenario"]),
        metrics_doc=_restored_nans(doc.get("metrics", {})),
        statistics=(
            statistics_from_doc(_restored_nans(doc["statistics"]))
            if doc.get("statistics") is not None
            else None
        ),
        comparison=(
            comparison_from_doc(_restored_nans(doc["comparison"]))
            if doc.get("comparison") is not None
            else None
        ),
        series=series_from_doc(doc.get("series", {})),
    )


def _cell_entry(index: int, scenario: Scenario) -> dict[str, Any]:
    """One manifest cell document, with workload provenance when offered.

    Scenarios that expose a ``workload_provenance()`` method (the
    ``generated`` kind) get a ``workloads`` key mapping role fields to
    generator spec-SHAs, so every artifact records the exact
    content-addressed inputs that produced it.
    """
    entry: dict[str, Any] = {
        "index": index,
        "name": scenario.name,
        "scenario": scenario.to_dict(),
    }
    prov = getattr(scenario, "workload_provenance", None)
    if callable(prov):
        workloads = prov()
        if workloads:
            entry["workloads"] = workloads
    return entry


class CampaignStore:
    """The artifact directory of one campaign (manifest + results JSONL).

    Create with :meth:`create` (writes the manifest, freezing the cell
    list) or attach to an existing directory with :meth:`open`.  Record
    finished cells with :meth:`record`; reload everything with
    :meth:`load`.  Appends are line-atomic enough for crash recovery: a
    torn final line is detected and ignored on read, so an interrupted
    campaign resumes from its last complete cell.
    """

    def __init__(self, path: str | Path, manifest: dict[str, Any]) -> None:
        self.path = Path(path)
        self.manifest = manifest
        self._cells: list[Scenario] | None = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str | Path,
        scenarios: list[Scenario],
        spec: SystemSpec,
        *,
        name: str | None = None,
    ) -> "CampaignStore":
        """Initialize a campaign directory and write its manifest.

        ``scenarios`` is the declared list; sweeps are expanded here and
        the resulting cell order is frozen in the manifest so resume and
        compare agree on cell indices forever after.
        """
        from repro.scenarios.library import BaseSweepScenario

        path = Path(path)
        if (path / MANIFEST_NAME).exists():
            raise ScenarioError(
                f"campaign already exists at {path}; open() or resume it"
            )
        if not scenarios:
            raise ScenarioError("campaign needs at least one scenario")
        cells: list[Scenario] = []
        for s in scenarios:
            if isinstance(s, BaseSweepScenario):
                cells.extend(s.expand())
            else:
                cells.append(s)
        manifest = {
            "format_version": ARTIFACT_FORMAT_VERSION,
            "name": name or path.name,
            "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "provenance": {
                "spec_sha256": spec_sha256(spec),
                # Anchor the rev lookup to the package source, not the
                # process CWD — a pip-installed repro run from inside
                # some other git checkout must not record that repo's
                # HEAD as the simulator revision.
                "git_rev": git_revision(cwd=Path(__file__).parent),
                "repro_version": _package_version(),
            },
            "system": json.loads(dumps_system(spec, indent=None)),
            "scenarios": [s.to_dict() for s in scenarios],
            "cells": [_cell_entry(i, c) for i, c in enumerate(cells)],
        }
        path.mkdir(parents=True, exist_ok=True)
        (path / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2), encoding="utf-8"
        )
        (path / RESULTS_NAME).touch()
        return cls(path, manifest)

    @classmethod
    def create_open_ended(
        cls,
        path: str | Path,
        spec: SystemSpec,
        *,
        name: str | None = None,
    ) -> "CampaignStore":
        """Initialize an *open-ended* store: no frozen cell list.

        Where :meth:`create` freezes a sweep's cells up front, an
        open-ended store starts empty and grows one cell at a time via
        :meth:`append_cell` — the persistence mode of the twin service,
        whose jobs arrive over the network for the life of the server.
        Everything else (provenance, results JSONL, reload) is shared
        with frozen campaigns, so ``repro campaign compare`` reads a
        service store unchanged.
        """
        path = Path(path)
        if (path / MANIFEST_NAME).exists():
            raise ScenarioError(
                f"campaign already exists at {path}; open() or resume it"
            )
        manifest = {
            "format_version": ARTIFACT_FORMAT_VERSION,
            "name": name or path.name,
            "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "open_ended": True,
            "provenance": {
                "spec_sha256": spec_sha256(spec),
                "git_rev": git_revision(cwd=Path(__file__).parent),
                "repro_version": _package_version(),
            },
            "system": json.loads(dumps_system(spec, indent=None)),
            "scenarios": [],
            "cells": [],
        }
        path.mkdir(parents=True, exist_ok=True)
        (path / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2), encoding="utf-8"
        )
        (path / RESULTS_NAME).touch()
        return cls(path, manifest)

    @property
    def open_ended(self) -> bool:
        """Whether this store grows cells dynamically (service mode)."""
        return bool(self.manifest.get("open_ended", False))

    def append_cell(
        self, scenario: Scenario, *, meta: dict[str, Any] | None = None
    ) -> int:
        """Append one cell to an open-ended store; returns its index.

        The manifest is re-read, extended, and atomically replaced
        under the store lock, so concurrent appender processes never
        lose cells or hand out duplicate indices.  ``meta`` attaches
        extra fields to the manifest cell entry (the service stores its
        content-addressed job key there for result-cache lookups).
        """
        if not self.open_ended:
            raise ScenarioError(
                "append_cell needs an open-ended store; frozen campaigns "
                "fix their cells at create()"
            )
        manifest_path = self.path / MANIFEST_NAME
        with StoreLock(self.path):
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            cells = manifest.setdefault("cells", [])
            index = len(cells)
            entry = _cell_entry(index, scenario)
            if meta:
                entry.update(meta)
            cells.append(entry)
            tmp = manifest_path.with_suffix(".json.tmp")
            tmp.write_text(json.dumps(manifest, indent=2), encoding="utf-8")
            os.replace(tmp, manifest_path)
            self.manifest = manifest
            self._cells = None
        return index

    def reload_manifest(self) -> None:
        """Re-read the manifest (another process may have appended)."""
        manifest_path = self.path / MANIFEST_NAME
        self.manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        self._cells = None

    @classmethod
    def open(cls, path: str | Path) -> "CampaignStore":
        """Attach to an existing campaign directory."""
        path = Path(path)
        manifest_path = path / MANIFEST_NAME
        if not manifest_path.exists():
            raise ScenarioError(f"no campaign manifest at {manifest_path}")
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"corrupt campaign manifest: {exc}") from exc
        version = manifest.get("format_version")
        if version != ARTIFACT_FORMAT_VERSION:
            raise ScenarioError(
                f"unsupported campaign format_version {version!r} "
                f"(this build reads {ARTIFACT_FORMAT_VERSION})"
            )
        return cls(path, manifest)

    @staticmethod
    def exists(path: str | Path) -> bool:
        """Whether ``path`` holds a campaign manifest."""
        return (Path(path) / MANIFEST_NAME).exists()

    # -- manifest views --------------------------------------------------------

    @property
    def name(self) -> str:
        return self.manifest.get("name", self.path.name)

    @property
    def provenance(self) -> dict[str, Any]:
        return dict(self.manifest.get("provenance", {}))

    def system_spec(self) -> SystemSpec:
        """Rebuild the system spec frozen into the manifest."""
        return loads_system(json.dumps(self.manifest["system"]))

    def cells(self) -> list[Scenario]:
        """The frozen expanded cell list, in run order."""
        if self._cells is None:
            self._cells = [
                Scenario.from_dict(entry["scenario"])
                for entry in self.manifest.get("cells", [])
            ]
        return self._cells

    def declared_scenarios(self) -> list[Scenario]:
        """The un-expanded scenario list the campaign was created from."""
        return [
            Scenario.from_dict(doc)
            for doc in self.manifest.get("scenarios", [])
        ]

    # -- results ---------------------------------------------------------------

    @property
    def results_path(self) -> Path:
        return self.path / RESULTS_NAME

    def record(
        self, index: int, outcome: Any, *, extra: dict[str, Any] | None = None
    ) -> None:
        """Append one finished cell to ``results.jsonl`` (durable write).

        Safe under concurrent writer *processes* (the service worker
        pool shares one store): the whole record goes down in a single
        ``write(2)`` on a descriptor opened with ``O_APPEND``, so
        concurrent appends never interleave mid-line, and the
        torn-tail heal check runs under the directory's
        :class:`StoreLock`.  If a previous process died mid-append the
        file may end in an unterminated line; a newline is prepended in
        the same atomic write so the torn fragment stays isolated (and
        ignored on read) instead of corrupting this record.

        ``extra`` merges additional top-level fields into the line
        document (the service records its job key and timings there).
        """
        n = len(self.cells())
        if not 0 <= index < n:
            raise ScenarioError(
                f"cell index {index} out of range for {n}-cell campaign"
            )
        doc = result_to_cell_doc(index, outcome)
        if extra:
            for key in extra:
                if key in doc:
                    raise ScenarioError(
                        f"extra field {key!r} collides with a cell field"
                    )
            doc.update(extra)
        line = json.dumps(_nulled_nans(doc), allow_nan=False)
        with StoreLock(self.path):
            heal_newline = False
            if self.results_path.exists() and self.results_path.stat().st_size:
                with self.results_path.open("rb") as fh:
                    fh.seek(-1, 2)  # SEEK_END
                    heal_newline = fh.read(1) != b"\n"
            payload = ("\n" if heal_newline else "") + line + "\n"
            fd = os.open(
                self.results_path,
                os.O_WRONLY | os.O_APPEND | os.O_CREAT,
                0o644,
            )
            try:
                os.write(fd, payload.encode("utf-8"))
            finally:
                os.close(fd)

    def _iter_docs(self):
        """Yield ``(index, doc)`` per valid ``results.jsonl`` record.

        The single definition of line validity: blank lines and the
        torn tail of an interrupted append are skipped (earlier lines
        are always intact because records are appended whole and
        newline-terminated), and records need an integer ``index``.
        """
        if not self.results_path.exists():
            return
        with self.results_path.open("r", encoding="utf-8") as fh:
            for raw in fh:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    doc = json.loads(raw)
                except json.JSONDecodeError:
                    continue  # torn tail of an interrupted append
                index = doc.get("index")
                if isinstance(index, int):
                    yield index, doc

    def completed(self) -> dict[int, StoredScenarioResult]:
        """Reloaded results keyed by cell index (first record wins)."""
        out: dict[int, StoredScenarioResult] = {}
        for index, doc in self._iter_docs():
            if index not in out:
                out[index] = cell_doc_to_result(doc)
        return out

    def completed_indices(self) -> set[int]:
        """Indices of cells that already have a persisted result.

        Parses each line's document but skips the scenario/series
        reconstruction :meth:`completed` does — use this when only the
        done-set is needed (resume banners, ``pending()``).
        """
        return {index for index, _ in self._iter_docs()}

    def is_complete(self) -> bool:
        """Whether every manifest cell has a persisted result."""
        return self.completed_indices() >= set(range(len(self.cells())))

    def load(self) -> SuiteResult:
        """Reload the campaign as a :class:`SuiteResult`, no simulation.

        Results come back in cell order; cells not yet run are simply
        absent (compare on a partial campaign shows what is done).
        The rendered ``comparison_table()`` is byte-identical to the
        table of the live run that produced the artifacts.
        """
        done = self.completed()
        results = [done[i] for i in sorted(done)]
        return SuiteResult(results=results)  # type: ignore[arg-type]


def _package_version() -> str | None:
    try:
        from repro import __version__

        return __version__
    except Exception:  # pragma: no cover - defensive
        return None


__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "MANIFEST_NAME",
    "RESULTS_NAME",
    "LOCK_NAME",
    "StoreLock",
    "CampaignStore",
    "StoredScenarioResult",
    "result_to_cell_doc",
    "cell_doc_to_result",
    "spec_sha256",
    "git_revision",
]
