"""Declarative scenario protocol: parametric, seedable, serializable.

A :class:`Scenario` is a frozen dataclass that fully *describes* one
experiment against a digital twin — it holds no live objects, only
parameters — so it can round-trip through JSON
(``Scenario.from_dict(s.to_dict()) == s``), be shipped to a worker
process, and be re-run reproducibly from its seed.  Execution is a
single protocol method, ``scenario.run(twin)``, which plans a workload,
drives the streaming :class:`~repro.core.engine.RapsEngine`, and
returns a :class:`~repro.scenarios.result.ScenarioResult`.

Concrete scenario types live in :mod:`repro.scenarios.library` and
register themselves here by their ``kind`` tag: ``synthetic``,
``replay``, ``verification``, ``whatif``, ``generated`` (workload
generators, :mod:`repro.scenarios.generated`), plus the sweep family
(``sweep``, ``grid-sweep``, ``lhs-sweep``) that expands into child
scenarios for suite and campaign execution.  The declarative contract
is what makes the rest of the stack work: suites ship scenarios to
worker processes, and campaign artifact directories freeze scenario
documents on disk and rebuild them bit-identically on resume.
"""

from __future__ import annotations

import dataclasses
import json
import numbers
from dataclasses import dataclass
from typing import Any, Callable, ClassVar, Iterator

import numpy as np

from repro.core.engine import RapsEngine, SimulationResult, StepState
from repro.core.stats import compute_statistics
from repro.exceptions import ScenarioError
from repro.scenarios.result import ScenarioResult
from repro.scenarios.twin import DigitalTwin, as_twin
from repro.scheduler.job import Job
from repro.telemetry.dataset import TimeSeries

#: Registry of scenario classes by their ``kind`` tag (for from_dict).
SCENARIO_TYPES: dict[str, type["Scenario"]] = {}


def register_scenario(cls: type["Scenario"]) -> type["Scenario"]:
    """Class decorator: register ``cls`` under its ``kind`` tag."""
    if not cls.kind:
        raise ScenarioError(f"{cls.__name__} must define a non-empty kind")
    if cls.kind in SCENARIO_TYPES:
        raise ScenarioError(f"duplicate scenario kind {cls.kind!r}")
    SCENARIO_TYPES[cls.kind] = cls
    return cls


@dataclass(frozen=True)
class RunPlan:
    """A planned engine run: the imperative output of a declarative scenario.

    ``events`` is an optional time-sorted stream of
    :class:`~repro.core.events.FaultEvent`\\ s (node outages, CDU
    blockages) the engine applies while the run advances.
    """

    jobs: list[Job]
    duration_s: float
    wetbulb: float | TimeSeries = 15.0
    honor_recorded: bool = False
    chain: Any = None
    events: tuple = ()


@dataclass(frozen=True)
class Scenario:
    """Base class for declarative scenarios.

    Parameters common to every scenario: a display ``name`` (defaults
    to the kind tag), the simulated ``duration_s``, the RNG ``seed``,
    whether the run couples the cooling FMU, an optional scheduler
    policy override, and the execution ``fidelity`` — ``"full"`` (L4
    first-principles engine), ``"surrogate"`` (the L3 fast path,
    :class:`~repro.fastpath.engine.SurrogateEngine`), or ``""`` to
    inherit the twin's default.  Fidelity is a declarative field, so a
    persisted campaign records which backend produced every cell.
    """

    kind: ClassVar[str] = ""

    name: str = ""
    duration_s: float = 3600.0
    seed: int = 0
    with_cooling: bool = True
    policy: str | None = None
    fidelity: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            object.__setattr__(self, "name", self.kind or "scenario")
        # Coerce numpy scalars to plain Python so sweep grids built with
        # np.arange/np.linspace stay declarative and JSON-serializable.
        if isinstance(self.duration_s, numbers.Real) and not isinstance(
            self.duration_s, (bool, np.bool_)
        ):
            object.__setattr__(self, "duration_s", float(self.duration_s))
        else:
            raise ScenarioError(
                f"duration_s must be a number, got {self.duration_s!r}"
            )
        if self.duration_s <= 0:
            raise ScenarioError("duration_s must be positive")
        if isinstance(self.seed, numbers.Integral) and not isinstance(
            self.seed, (bool, np.bool_)
        ):
            object.__setattr__(self, "seed", int(self.seed))
        else:
            raise ScenarioError(
                f"seed must be an integer, got {self.seed!r}"
            )
        if isinstance(self.with_cooling, (bool, np.bool_)):
            object.__setattr__(self, "with_cooling", bool(self.with_cooling))
        else:
            raise ScenarioError(
                f"with_cooling must be a boolean, got {self.with_cooling!r}"
            )
        if self.fidelity not in ("", "full", "surrogate"):
            raise ScenarioError(
                f"unknown fidelity {self.fidelity!r}; expected 'full', "
                "'surrogate', or '' (inherit the twin's)"
            )

    # -- execution protocol ----------------------------------------------------

    def plan(self, twin: DigitalTwin, **kwargs: Any) -> RunPlan:
        """Materialize the workload for this scenario (subclass hook)."""
        raise NotImplementedError

    def run(
        self,
        twin: DigitalTwin | Any,
        *,
        progress: Callable[[StepState], None] | None = None,
        stop_when: Callable[[StepState], bool] | None = None,
        chain: Any = None,
        wetbulb: float | TimeSeries | None = None,
        **plan_kwargs: Any,
    ) -> ScenarioResult:
        """Execute against ``twin`` (a DigitalTwin, spec, name, or path).

        ``progress`` / ``stop_when`` hook into the engine's streaming
        step loop; ``chain`` and ``wetbulb`` override the planned
        conversion chain and weather (used by the legacy facade).
        """
        twin = as_twin(twin)
        plan = self.plan(twin, **plan_kwargs)
        engine = self.build_engine(twin, plan, chain=chain)
        result = engine.run(
            plan.jobs,
            plan.duration_s,
            wetbulb=plan.wetbulb if wetbulb is None else wetbulb,
            events=plan.events,
            progress=progress,
            stop_when=stop_when,
        )
        return self._finish(twin, result)

    def iter_steps(
        self,
        twin: DigitalTwin | Any,
        *,
        chain: Any = None,
        wetbulb: float | TimeSeries | None = None,
        **plan_kwargs: Any,
    ) -> Iterator[StepState]:
        """Stream the scenario's run one quantum at a time (live feeds)."""
        twin = as_twin(twin)
        plan = self.plan(twin, **plan_kwargs)
        engine = self.build_engine(twin, plan, chain=chain)
        return engine.iter_steps(
            plan.jobs,
            plan.duration_s,
            wetbulb=plan.wetbulb if wetbulb is None else wetbulb,
            events=plan.events,
        )

    def effective_fidelity(self, twin: DigitalTwin) -> str:
        """This scenario's backend: its own field, else the twin's."""
        return self.fidelity or getattr(twin, "fidelity", "full")

    def build_engine(
        self, twin: DigitalTwin, plan: RunPlan, *, chain: Any = None
    ):
        """Construct the engine for one planned run.

        Dispatches on the effective fidelity: the full L4
        :class:`~repro.core.engine.RapsEngine`, or the surrogate-backed
        :class:`~repro.fastpath.engine.SurrogateEngine` (both implement
        the same ``iter_steps``/``run`` protocol).
        """
        if self.effective_fidelity(twin) == "surrogate":
            # Deferred import: repro.fastpath depends on this module.
            from repro.fastpath.engine import SurrogateEngine

            if chain is not None or plan.chain is not None:
                raise ScenarioError(
                    "surrogate fidelity cannot apply conversion-chain "
                    "overrides (the bundle is trained on the baseline "
                    "chain); run what-ifs at fidelity='full'"
                )
            return SurrogateEngine(
                twin.spec,
                twin.surrogates(cooling=self.with_cooling),
                with_cooling=self.with_cooling,
                honor_recorded_starts=plan.honor_recorded,
                policy=self.policy,
            )
        return RapsEngine(
            twin.spec,
            chain=chain or plan.chain,
            with_cooling=self.with_cooling,
            honor_recorded_starts=plan.honor_recorded,
            policy=self.policy,
            warm_cache=getattr(twin, "warm_cache", None),
            cooling_backend=getattr(twin, "cooling_backend", "fused"),
        )

    def _finish(
        self, twin: DigitalTwin, result: SimulationResult
    ) -> ScenarioResult:
        return ScenarioResult(
            scenario=self,
            result=result,
            statistics=compute_statistics(result, twin.spec.economics),
        )

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible description, round-trippable via from_dict."""
        doc: dict[str, Any] = {"kind": self.kind}
        for f in dataclasses.fields(self):
            doc[f.name] = _to_jsonable(getattr(self, f.name))
        return doc

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @staticmethod
    def from_dict(doc: dict[str, Any]) -> "Scenario":
        """Rebuild a scenario from its :meth:`to_dict` description."""
        if not isinstance(doc, dict):
            raise ScenarioError(
                f"scenario document must be an object, got {type(doc).__name__}"
            )
        kind = doc.get("kind")
        cls = SCENARIO_TYPES.get(kind)
        if cls is None:
            raise ScenarioError(
                f"unknown scenario kind {kind!r}; "
                f"registered: {sorted(SCENARIO_TYPES)}"
            )
        fields = {f.name: f for f in dataclasses.fields(cls)}
        kwargs: dict[str, Any] = {}
        for key, value in doc.items():
            if key == "kind":
                continue
            if key not in fields:
                raise ScenarioError(
                    f"unknown scenario field {key!r} for kind {kind!r}"
                )
            kwargs[key] = _from_jsonable(value)
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ScenarioError(f"bad scenario document: {exc}") from exc

    @staticmethod
    def from_json(text: str) -> "Scenario":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"invalid scenario JSON: {exc}") from exc
        return Scenario.from_dict(doc)


def _to_jsonable(value: Any) -> Any:
    if isinstance(value, Scenario):
        return value.to_dict()
    # Deferred import: repro.workloads must not be a module-level
    # dependency of the scenario core (generated.py imports us).
    from repro.workloads.base import WorkloadGenerator

    if isinstance(value, WorkloadGenerator):
        return value.to_dict()
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(v) for v in value]
    # Numeric checks run before the plain passthrough so numpy scalars
    # (sweep grids from np.arange/np.linspace) normalize to Python types.
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    if isinstance(value, str) or value is None:
        return value
    raise ScenarioError(
        f"scenario field value of type {type(value).__name__} is not "
        "JSON-serializable; scenarios must stay declarative"
    )


def _from_jsonable(value: Any) -> Any:
    if isinstance(value, dict):
        if "generator" in value:
            from repro.workloads.base import WorkloadGenerator

            return WorkloadGenerator.from_dict(value)
        return Scenario.from_dict(value)
    if isinstance(value, list):
        # Sequence fields are declared as tuples so scenarios stay
        # hashable/frozen; JSON arrays come back as tuples.
        return tuple(_from_jsonable(v) for v in value)
    return value


__all__ = [
    "RunPlan",
    "Scenario",
    "SCENARIO_TYPES",
    "register_scenario",
]
