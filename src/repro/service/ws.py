"""Minimal RFC 6455 websocket codec (stdlib only).

Implements exactly what the twin service's streaming transport needs —
the opening-handshake accept key, frame encode, and an incremental
frame decoder — shared by :class:`~repro.service.server.TwinServer`
(server side: unmasked sends, masked receives) and
:class:`~repro.service.client.TwinClient` (the inverse).  Fragmented
messages (FIN=0 continuations) are reassembled; extensions and
subprotocols are not negotiated.
"""

from __future__ import annotations

import base64
import hashlib
import os
import struct
from dataclasses import dataclass

from repro.exceptions import ExaDigiTError

#: The protocol-fixed handshake GUID (RFC 6455 section 1.3).
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: Frame opcodes used by the service.
OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

_CONTROL_OPS = (OP_CLOSE, OP_PING, OP_PONG)


def accept_key(client_key: str) -> str:
    """The Sec-WebSocket-Accept value for a client's Sec-WebSocket-Key."""
    digest = hashlib.sha1((client_key.strip() + WS_GUID).encode("ascii"))
    return base64.b64encode(digest.digest()).decode("ascii")


def encode_frame(
    payload: bytes | str,
    *,
    opcode: int = OP_TEXT,
    masked: bool = False,
    fin: bool = True,
) -> bytes:
    """Serialize one websocket frame.

    Servers send unmasked, clients MUST mask (RFC 6455 section 5.3);
    the mask is drawn from ``os.urandom`` per frame.
    """
    if isinstance(payload, str):
        payload = payload.encode("utf-8")
    if opcode in _CONTROL_OPS and len(payload) > 125:
        raise ExaDigiTError("control frame payloads are capped at 125 bytes")
    head = bytearray()
    head.append((0x80 if fin else 0x00) | (opcode & 0x0F))
    mask_bit = 0x80 if masked else 0x00
    n = len(payload)
    if n < 126:
        head.append(mask_bit | n)
    elif n < 1 << 16:
        head.append(mask_bit | 126)
        head += struct.pack("!H", n)
    else:
        head.append(mask_bit | 127)
        head += struct.pack("!Q", n)
    if masked:
        mask = os.urandom(4)
        head += mask
        payload = bytes(
            b ^ mask[i % 4] for i, b in enumerate(payload)
        )
    return bytes(head) + payload


@dataclass
class Frame:
    """One decoded (already unmasked, reassembled) websocket message."""

    opcode: int
    payload: bytes

    @property
    def text(self) -> str:
        return self.payload.decode("utf-8")


class FrameReader:
    """Incremental frame decoder: feed bytes, pop complete messages.

    Tolerates arbitrary chunking (one ``feed`` may carry half a header
    or ten frames) and reassembles fragmented data messages; control
    frames are surfaced immediately and may interleave fragments, per
    the RFC.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self._frames: list[Frame] = []
        self._partial_op: int | None = None
        self._partial: bytearray = bytearray()

    def feed(self, data: bytes) -> list[Frame]:
        """Consume bytes; return the messages completed by them."""
        self._buf += data
        while self._try_decode_one():
            pass
        out, self._frames = self._frames, []
        return out

    def _try_decode_one(self) -> bool:
        buf = self._buf
        if len(buf) < 2:
            return False
        fin = bool(buf[0] & 0x80)
        opcode = buf[0] & 0x0F
        masked = bool(buf[1] & 0x80)
        length = buf[1] & 0x7F
        offset = 2
        if length == 126:
            if len(buf) < offset + 2:
                return False
            (length,) = struct.unpack_from("!H", buf, offset)
            offset += 2
        elif length == 127:
            if len(buf) < offset + 8:
                return False
            (length,) = struct.unpack_from("!Q", buf, offset)
            offset += 8
        if masked:
            if len(buf) < offset + 4:
                return False
            mask = bytes(buf[offset : offset + 4])
            offset += 4
        if len(buf) < offset + length:
            return False
        payload = bytes(buf[offset : offset + length])
        del self._buf[: offset + length]
        if masked:
            payload = bytes(b ^ mask[i % 4] for i, b in enumerate(payload))
        if opcode in _CONTROL_OPS:
            # Control frames may interleave fragments; surface directly.
            self._frames.append(Frame(opcode, payload))
            return True
        if opcode == OP_CONT:
            if self._partial_op is None:
                raise ExaDigiTError("continuation frame with no message open")
            self._partial += payload
            if fin:
                self._frames.append(
                    Frame(self._partial_op, bytes(self._partial))
                )
                self._partial_op = None
                self._partial = bytearray()
            return True
        if self._partial_op is not None:
            raise ExaDigiTError("new data frame while a message is open")
        if fin:
            self._frames.append(Frame(opcode, payload))
        else:
            self._partial_op = opcode
            self._partial = bytearray(payload)
        return True


__all__ = [
    "WS_GUID",
    "OP_CONT",
    "OP_TEXT",
    "OP_BINARY",
    "OP_CLOSE",
    "OP_PING",
    "OP_PONG",
    "accept_key",
    "encode_frame",
    "Frame",
    "FrameReader",
]
