"""`TwinClient`: a thin synchronous client for the twin service.

Stdlib only: plain :mod:`http.client` for the request/response verbs,
a chunk-aware line reader for the NDJSON stream, and a raw socket with
the shared :mod:`repro.service.ws` codec for the websocket transport.
Both transports yield the identical decoded documents, so callers pick
framing, not semantics::

    client = TwinClient("http://127.0.0.1:8787")
    job = client.submit(SyntheticScenario(duration_s=1800.0))
    for doc in client.watch(job["id"]):        # or watch_ws(...)
        ...  # step records, then one terminal event

    steps = client.steps(job["id"])            # just the step records
"""

from __future__ import annotations

import base64
import http.client
import json
import os
import socket
from typing import Any, Iterator
from urllib.parse import urlencode, urlsplit

from repro.exceptions import ExaDigiTError
from repro.scenarios.base import Scenario
from repro.service import ws as wsproto
from repro.service.protocol import is_step_record
from repro.viz.export import decode_step_line


class TwinClient:
    """Talk to one :class:`~repro.service.server.TwinServer`."""

    def __init__(self, url: str, *, timeout_s: float = 300.0) -> None:
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("http", ""):
            raise ExaDigiTError(f"unsupported scheme {parts.scheme!r}")
        if parts.hostname is None or parts.port is None:
            raise ExaDigiTError(f"service URL needs host:port, got {url!r}")
        self.host = parts.hostname
        self.port = parts.port
        self.timeout_s = timeout_s

    # -- plain verbs -----------------------------------------------------------

    def _request(
        self, method: str, path: str, body: dict | None = None
    ) -> dict[str, Any]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            payload = None if body is None else json.dumps(body)
            headers = (
                {"Content-Type": "application/json"} if body is not None else {}
            )
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
            except OSError as exc:
                raise ExaDigiTError(
                    f"cannot reach twin service at "
                    f"{self.host}:{self.port}: {exc}"
                ) from exc
            doc = json.loads(response.read().decode("utf-8") or "{}")
            if response.status >= 400:
                raise ExaDigiTError(
                    f"{method} {path} -> {response.status}: "
                    f"{doc.get('error', doc)}"
                )
            return doc
        finally:
            conn.close()

    def _request_text(self, method: str, path: str) -> str:
        """A verb whose response body is plain text, not JSON."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            try:
                conn.request(method, path)
                response = conn.getresponse()
            except OSError as exc:
                raise ExaDigiTError(
                    f"cannot reach twin service at "
                    f"{self.host}:{self.port}: {exc}"
                ) from exc
            body = response.read().decode("utf-8")
            if response.status >= 400:
                raise ExaDigiTError(
                    f"{method} {path} -> {response.status}: {body[:200]}"
                )
            return body
        finally:
            conn.close()

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")

    def statusz(self) -> dict[str, Any]:
        """The server's full ops snapshot (``GET /statusz``)."""
        return self._request("GET", "/statusz")

    def metrics_text(self) -> str:
        """The Prometheus text exposition (``GET /metrics``)."""
        return self._request_text("GET", "/metrics")

    def console_html(self) -> str:
        """The ops console page (``GET /console``)."""
        return self._request_text("GET", "/console")

    def alertz(self) -> dict[str, Any]:
        """Alert rules, states, and recent transitions (``GET /alertz``)."""
        return self._request("GET", "/alertz")

    def query(
        self,
        metric: str,
        *,
        start: float | None = None,
        end: float | None = None,
        step: float | None = None,
        agg: str = "last",
    ) -> dict[str, Any]:
        """Range-query recorded telemetry (``GET /api/query``).

        Non-positive ``start``/``end`` are relative to now, so
        ``query(m, start=-300, step=10, agg="rate")`` is "the last five
        minutes at 10 s resolution".  Returns the server's document:
        ``{"metric", "agg", "start", "end", "step", "tier", "points"}``
        where ``points`` is ``[[t, value-or-null], ...]``.
        """
        params = [("metric", metric), ("agg", agg)]
        for key, value in (("start", start), ("end", end), ("step", step)):
            if value is not None:
                params.append((key, repr(float(value))))
        return self._request("GET", f"/api/query?{urlencode(params)}")

    def submit(
        self,
        scenario: Scenario | dict[str, Any],
        *,
        use_cache: bool = True,
    ) -> dict[str, Any]:
        """Submit one scenario; returns the (first) job summary.

        Sweep scenarios expand server-side into one job per cell; use
        :meth:`submit_all` when you need every summary.
        """
        return self.submit_all(scenario, use_cache=use_cache)[0]

    def submit_all(
        self,
        scenario: Scenario | dict[str, Any],
        *,
        use_cache: bool = True,
    ) -> list[dict[str, Any]]:
        doc = (
            scenario.to_dict()
            if isinstance(scenario, Scenario)
            else scenario
        )
        out = self._request(
            "POST", "/jobs", {"scenario": doc, "use_cache": use_cache}
        )
        return out["jobs"]

    def jobs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")["job"]

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/cancel")["job"]

    def result(self, job_id: str) -> dict[str, Any]:
        """The persisted cell document of a done job (metrics, series)."""
        return self._request("GET", f"/jobs/{job_id}/result")

    # -- streaming: NDJSON over chunked HTTP -----------------------------------

    def watch(self, job_id: str) -> Iterator[dict[str, Any]]:
        """Stream a job's documents over NDJSON until the terminal event.

        Yields every line the server sends: step records interleaved
        with control events (``restart`` on a worker-crash requeue,
        then exactly one of ``done`` / ``failed`` / ``cancelled``).
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            try:
                conn.request("GET", f"/jobs/{job_id}/stream")
                response = conn.getresponse()
            except OSError as exc:
                raise ExaDigiTError(
                    f"cannot reach twin service at "
                    f"{self.host}:{self.port}: {exc}"
                ) from exc
            if response.status != 200:
                doc = json.loads(response.read().decode("utf-8") or "{}")
                raise ExaDigiTError(
                    f"stream {job_id} -> {response.status}: "
                    f"{doc.get('error', doc)}"
                )
            buffer = b""
            while True:
                chunk = response.read1(65536)
                if not chunk:
                    return
                buffer += chunk
                while b"\n" in buffer:
                    raw, _, buffer = buffer.partition(b"\n")
                    doc = decode_step_line(raw.decode("utf-8"))
                    if doc is None:
                        continue
                    yield doc
                    if doc.get("event") in ("done", "failed", "cancelled"):
                        return
        finally:
            conn.close()

    # -- streaming: websocket --------------------------------------------------

    def watch_ws(self, job_id: str) -> Iterator[dict[str, Any]]:
        """The same stream as :meth:`watch`, over RFC 6455 frames."""
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
        except OSError as exc:
            raise ExaDigiTError(
                f"cannot reach twin service at "
                f"{self.host}:{self.port}: {exc}"
            ) from exc
        try:
            key = base64.b64encode(os.urandom(16)).decode("ascii")
            sock.sendall(
                (
                    f"GET /jobs/{job_id}/ws HTTP/1.1\r\n"
                    f"Host: {self.host}:{self.port}\r\n"
                    "Upgrade: websocket\r\n"
                    "Connection: Upgrade\r\n"
                    f"Sec-WebSocket-Key: {key}\r\n"
                    "Sec-WebSocket-Version: 13\r\n\r\n"
                ).encode("ascii")
            )
            # Read the handshake response up to the blank line.
            head = b""
            while b"\r\n\r\n" not in head:
                data = sock.recv(4096)
                if not data:
                    raise ExaDigiTError("connection closed during handshake")
                head += data
            header_blob, _, leftover = head.partition(b"\r\n\r\n")
            status_line = header_blob.split(b"\r\n", 1)[0].decode("latin-1")
            if " 101 " not in f"{status_line} ":
                raise ExaDigiTError(
                    f"websocket handshake refused: {status_line}"
                )
            expected = wsproto.accept_key(key)
            if expected.encode("ascii") not in header_blob:
                raise ExaDigiTError("bad Sec-WebSocket-Accept from server")
            frames = wsproto.FrameReader()
            pending = frames.feed(leftover) if leftover else []
            while True:
                for frame in pending:
                    if frame.opcode == wsproto.OP_CLOSE:
                        with _suppress_socket_errors():
                            sock.sendall(
                                wsproto.encode_frame(
                                    b"",
                                    opcode=wsproto.OP_CLOSE,
                                    masked=True,
                                )
                            )
                        return
                    if frame.opcode == wsproto.OP_PING:
                        sock.sendall(
                            wsproto.encode_frame(
                                frame.payload,
                                opcode=wsproto.OP_PONG,
                                masked=True,
                            )
                        )
                        continue
                    if frame.opcode != wsproto.OP_TEXT:
                        continue
                    doc = decode_step_line(frame.text)
                    if doc is None:
                        continue
                    yield doc
                    if doc.get("event") in ("done", "failed", "cancelled"):
                        with _suppress_socket_errors():
                            sock.sendall(
                                wsproto.encode_frame(
                                    b"",
                                    opcode=wsproto.OP_CLOSE,
                                    masked=True,
                                )
                            )
                        return
                data = sock.recv(65536)
                if not data:
                    return
                pending = frames.feed(data)
        finally:
            sock.close()

    # -- conveniences ----------------------------------------------------------

    def steps(
        self, job_id: str, *, transport: str = "ndjson"
    ) -> list[dict[str, Any]]:
        """Drain a watch stream into just its step records.

        Handles ``restart`` events (worker crash) by resetting the
        collected list, so the return value is always the step stream
        of the attempt that finished.  Raises on a ``failed`` or
        ``cancelled`` terminal event.
        """
        stream = (
            self.watch_ws(job_id)
            if transport == "ws"
            else self.watch(job_id)
        )
        steps: list[dict[str, Any]] = []
        for doc in stream:
            if is_step_record(doc):
                steps.append(doc)
            elif doc.get("event") == "restart":
                steps = []
            elif doc.get("event") == "done":
                return steps
            elif doc.get("event") in ("failed", "cancelled"):
                raise ExaDigiTError(
                    f"job {job_id} ended {doc['event']}: "
                    f"{doc.get('error') or ''}"
                )
        raise ExaDigiTError(f"stream for {job_id} ended without a terminal event")

    def wait(self, job_id: str) -> dict[str, Any]:
        """Block until the job reaches a terminal state; returns its summary."""
        for doc in self.watch(job_id):
            if doc.get("event") in ("done", "failed", "cancelled"):
                return doc["job"]
        raise ExaDigiTError(f"stream for {job_id} ended without a terminal event")


class _suppress_socket_errors:
    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return exc_type is not None and issubclass(exc_type, OSError)


__all__ = ["TwinClient"]
