"""`TwinClient`: a thin synchronous client for the twin service.

Stdlib only: plain :mod:`http.client` for the request/response verbs,
a chunk-aware line reader for the NDJSON stream, and a raw socket with
the shared :mod:`repro.service.ws` codec for the websocket transport.
Both transports yield the identical decoded documents, so callers pick
framing, not semantics::

    client = TwinClient("http://127.0.0.1:8787")
    job = client.submit(SyntheticScenario(duration_s=1800.0))
    for doc in client.watch(job["id"]):        # or watch_ws(...)
        ...  # step records, then one terminal event

    steps = client.steps(job["id"])            # just the step records

Resilience:

- **Split timeouts** — a hung *connect* fails after ``connect_timeout_s``
  (seconds), while a long-running watch may sit quietly for up to
  ``read_timeout_s`` between lines.
- **Retries** — every idempotent verb (submit/poll/result/cancel; safe
  because jobs are content-addressed by
  :func:`~repro.service.protocol.job_key`) retries on connection
  failures and on 429/503 admission rejections, paced by a
  :class:`~repro.service.resilience.RetryPolicy` (exponential backoff,
  decorrelated jitter, hard sleep budget) and honoring ``Retry-After``.
  Each retry counts on ``repro_retries_total``.
- **Resumable watches** — :meth:`watch` / :meth:`watch_ws` survive a
  dropped connection: they reconnect with ``?from_seq=<n>`` (the count
  of step records already held for the current attempt) and the server
  replays only the missing suffix — or sends a ``restart`` event when
  the held prefix belongs to an abandoned attempt.  The resumed stream
  is bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import base64
import http.client
import json
import os
import socket
import time
import uuid
from typing import Any, Callable, Iterator
from urllib.parse import urlencode, urlsplit

from repro.exceptions import ExaDigiTError
from repro.obs.registry import get_registry
from repro.scenarios.base import Scenario
from repro.service import ws as wsproto
from repro.service.protocol import TERMINAL_EVENTS, is_step_record
from repro.service.resilience import RetryPolicy
from repro.viz.export import decode_step_line

#: Default seconds to establish a TCP connection before giving up.
DEFAULT_CONNECT_TIMEOUT_S = 10.0
#: Default seconds a response (or the next stream line) may take.
DEFAULT_READ_TIMEOUT_S = 300.0


class _Retryable(Exception):
    """A failure the retry loop may pace and repeat.

    ``wait_s`` carries a server-provided ``Retry-After`` floor.
    """

    def __init__(self, message: str, wait_s: float | None = None) -> None:
        super().__init__(message)
        self.wait_s = wait_s


class TwinClient:
    """Talk to one :class:`~repro.service.server.TwinServer`.

    ``timeout_s`` is the legacy single knob: when given it sets *both*
    split timeouts.  ``retry`` defaults to a standard
    :class:`~repro.service.resilience.RetryPolicy`; pass
    ``RetryPolicy.none()`` for strict fail-fast behavior.  ``client_id``
    is sent as the ``X-Repro-Client`` header (the server's per-client
    in-flight cap keys on it); by default each client instance gets a
    stable random id.
    """

    def __init__(
        self,
        url: str,
        *,
        connect_timeout_s: float = DEFAULT_CONNECT_TIMEOUT_S,
        read_timeout_s: float = DEFAULT_READ_TIMEOUT_S,
        timeout_s: float | None = None,
        retry: RetryPolicy | None = None,
        client_id: str | None = None,
    ) -> None:
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("http", ""):
            raise ExaDigiTError(f"unsupported scheme {parts.scheme!r}")
        if parts.hostname is None or parts.port is None:
            raise ExaDigiTError(f"service URL needs host:port, got {url!r}")
        self.host = parts.hostname
        self.port = parts.port
        if timeout_s is not None:
            connect_timeout_s = read_timeout_s = timeout_s
        self.connect_timeout_s = float(connect_timeout_s)
        self.read_timeout_s = float(read_timeout_s)
        self.retry = retry if retry is not None else RetryPolicy()
        self.client_id = client_id or f"c{uuid.uuid4().hex[:12]}"

    # -- retry plumbing --------------------------------------------------------

    def _count_retry(self, op: str) -> None:
        get_registry().counter("repro_retries_total").labels(op=op).inc()

    def _with_retry(
        self, op: str, attempt_fn: Callable[[], Any], *, idempotent: bool = True
    ) -> Any:
        """Run one idempotent operation under the retry policy."""
        policy = self.retry if idempotent else RetryPolicy.none()
        backoffs = policy.backoffs()
        slept = 0.0
        attempts = 0
        while True:
            attempts += 1
            try:
                return attempt_fn()
            except _Retryable as exc:
                if attempts >= policy.max_attempts:
                    raise ExaDigiTError(
                        f"{op} failed after {attempts} attempt(s): {exc}"
                    ) from exc
                wait = next(backoffs)
                if exc.wait_s is not None:
                    wait = max(wait, float(exc.wait_s))
                if slept + wait > policy.budget_s:
                    raise ExaDigiTError(
                        f"{op}: retry budget exhausted after "
                        f"{attempts} attempt(s): {exc}"
                    ) from exc
                self._count_retry(op)
                time.sleep(wait)
                slept += wait

    def _connect(self) -> http.client.HTTPConnection:
        """An HTTP connection with split connect/read timeouts."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.connect_timeout_s
        )
        conn.connect()
        if conn.sock is not None:
            conn.sock.settimeout(self.read_timeout_s)
        return conn

    def _headers(self, body: dict | None) -> dict[str, str]:
        headers = {"X-Repro-Client": self.client_id}
        if body is not None:
            headers["Content-Type"] = "application/json"
        return headers

    def _request_once(
        self, method: str, path: str, body: dict | None = None
    ) -> dict[str, Any]:
        """One request/response cycle; raises ``_Retryable`` on
        connection failures and on 429/503 admission rejections."""
        try:
            conn = self._connect()
        except OSError as exc:
            raise _Retryable(
                f"cannot reach twin service at "
                f"{self.host}:{self.port}: {exc}"
            ) from exc
        try:
            payload = None if body is None else json.dumps(body)
            try:
                conn.request(
                    method, path, body=payload, headers=self._headers(body)
                )
                response = conn.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise _Retryable(
                    f"connection to twin service at {self.host}:{self.port} "
                    f"failed mid-request: {exc}"
                ) from exc
            doc = json.loads(raw.decode("utf-8") or "{}")
            if response.status in (429, 503):
                retry_after = response.getheader("Retry-After")
                raise _Retryable(
                    f"{method} {path} -> {response.status}: "
                    f"{doc.get('error', doc)}",
                    wait_s=float(retry_after) if retry_after else None,
                )
            if response.status >= 400:
                raise ExaDigiTError(
                    f"{method} {path} -> {response.status}: "
                    f"{doc.get('error', doc)}"
                )
            return doc
        finally:
            conn.close()

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        *,
        op: str = "request",
        idempotent: bool = True,
    ) -> dict[str, Any]:
        return self._with_retry(
            op,
            lambda: self._request_once(method, path, body),
            idempotent=idempotent,
        )

    def _request_text(
        self, method: str, path: str, *, op: str = "request"
    ) -> str:
        """A verb whose response body is plain text, not JSON."""

        def attempt() -> str:
            try:
                conn = self._connect()
            except OSError as exc:
                raise _Retryable(
                    f"cannot reach twin service at "
                    f"{self.host}:{self.port}: {exc}"
                ) from exc
            try:
                try:
                    conn.request(method, path, headers=self._headers(None))
                    response = conn.getresponse()
                    text = response.read().decode("utf-8")
                except (OSError, http.client.HTTPException) as exc:
                    raise _Retryable(
                        f"connection to twin service at "
                        f"{self.host}:{self.port} failed mid-request: {exc}"
                    ) from exc
                if response.status >= 400:
                    raise ExaDigiTError(
                        f"{method} {path} -> {response.status}: {text[:200]}"
                    )
                return text
            finally:
                conn.close()

        return self._with_retry(op, attempt)

    # -- plain verbs -----------------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/healthz", op="health")

    def statusz(self) -> dict[str, Any]:
        """The server's full ops snapshot (``GET /statusz``)."""
        return self._request("GET", "/statusz", op="statusz")

    def metrics_text(self) -> str:
        """The Prometheus text exposition (``GET /metrics``)."""
        return self._request_text("GET", "/metrics", op="metrics")

    def console_html(self) -> str:
        """The ops console page (``GET /console``)."""
        return self._request_text("GET", "/console", op="console")

    def alertz(self) -> dict[str, Any]:
        """Alert rules, states, and recent transitions (``GET /alertz``)."""
        return self._request("GET", "/alertz", op="alertz")

    def query(
        self,
        metric: str,
        *,
        start: float | None = None,
        end: float | None = None,
        step: float | None = None,
        agg: str = "last",
    ) -> dict[str, Any]:
        """Range-query recorded telemetry (``GET /api/query``).

        Non-positive ``start``/``end`` are relative to now, so
        ``query(m, start=-300, step=10, agg="rate")`` is "the last five
        minutes at 10 s resolution".  Returns the server's document:
        ``{"metric", "agg", "start", "end", "step", "tier", "points"}``
        where ``points`` is ``[[t, value-or-null], ...]``.
        """
        params = [("metric", metric), ("agg", agg)]
        for key, value in (("start", start), ("end", end), ("step", step)):
            if value is not None:
                params.append((key, repr(float(value))))
        return self._request(
            "GET", f"/api/query?{urlencode(params)}", op="query"
        )

    def submit(
        self,
        scenario: Scenario | dict[str, Any],
        *,
        use_cache: bool = True,
        deadline_s: float | None = None,
    ) -> dict[str, Any]:
        """Submit one scenario; returns the (first) job summary.

        Sweep scenarios expand server-side into one job per cell; use
        :meth:`submit_all` when you need every summary.  ``deadline_s``
        bounds each job's total queue+run time; past it the server
        cancels the job and marks it ``timeout``.
        """
        return self.submit_all(
            scenario, use_cache=use_cache, deadline_s=deadline_s
        )[0]

    def submit_all(
        self,
        scenario: Scenario | dict[str, Any],
        *,
        use_cache: bool = True,
        deadline_s: float | None = None,
    ) -> list[dict[str, Any]]:
        doc = (
            scenario.to_dict()
            if isinstance(scenario, Scenario)
            else scenario
        )
        body: dict[str, Any] = {"scenario": doc, "use_cache": use_cache}
        if deadline_s is not None:
            body["deadline_s"] = float(deadline_s)
        # Safe to retry: jobs are content-addressed, so a duplicate
        # submission of the same scenario is a cache/registry hit,
        # never a second simulation.
        out = self._request("POST", "/jobs", body, op="submit")
        return out["jobs"]

    def jobs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/jobs", op="jobs")["jobs"]

    def job(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}", op="job")["job"]

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._request(
            "POST", f"/jobs/{job_id}/cancel", op="cancel"
        )["job"]

    def result(self, job_id: str) -> dict[str, Any]:
        """The persisted cell document of a done job (metrics, series)."""
        return self._request(
            "GET", f"/jobs/{job_id}/result", op="result"
        )

    def drain(self) -> dict[str, Any]:
        """Ask the server to drain gracefully (``POST /drainz``)."""
        return self._request("POST", "/drainz", op="drain")

    # -- streaming: shared resume loop -----------------------------------------

    def _watch_resume(
        self,
        job_id: str,
        once: Callable[[str, int], Iterator[dict[str, Any]]],
        from_seq: int | None,
        op: str,
    ) -> Iterator[dict[str, Any]]:
        """Reconnect-and-resume wrapper around one transport attempt.

        ``n_ok`` counts the step records held for the current attempt —
        by determinism, that count is the correct ``from_seq`` against
        any server life: the server either resumes exactly there or
        answers with a ``restart`` event and a full (bit-identical)
        replay.  Progress resets the failure budget, so a long stream
        may survive many well-spaced drops while a dead server still
        exhausts the policy quickly.
        """
        n_ok = int(from_seq or 0)
        policy = self.retry
        backoffs = policy.backoffs()
        failures = 0
        slept = 0.0
        while True:
            progressed = False
            try:
                for doc in once(job_id, n_ok):
                    if is_step_record(doc):
                        doc.pop("seq", None)
                        n_ok += 1
                    elif doc.get("event") == "restart":
                        n_ok = 0
                    progressed = True
                    yield doc
                    if doc.get("event") in TERMINAL_EVENTS:
                        return
                raise _Retryable(
                    f"stream for {job_id} ended without a terminal event"
                )
            except (
                _Retryable,
                OSError,
                http.client.HTTPException,
            ) as exc:
                if progressed:
                    failures = 0
                    slept = 0.0
                    backoffs = policy.backoffs()
                failures += 1
                if failures >= policy.max_attempts:
                    raise ExaDigiTError(
                        f"{op} {job_id} failed after {failures} "
                        f"attempt(s): {exc}"
                    ) from exc
                wait = next(backoffs)
                if slept + wait > policy.budget_s:
                    raise ExaDigiTError(
                        f"{op} {job_id}: retry budget exhausted: {exc}"
                    ) from exc
                self._count_retry(op)
                time.sleep(wait)
                slept += wait

    # -- streaming: NDJSON over chunked HTTP -----------------------------------

    def watch(
        self, job_id: str, *, from_seq: int | None = None
    ) -> Iterator[dict[str, Any]]:
        """Stream a job's documents over NDJSON until the terminal event.

        Yields every line the server sends: step records interleaved
        with control events (``restart`` on a worker-crash requeue,
        then exactly one of ``done`` / ``failed`` / ``cancelled`` /
        ``timeout``).  A dropped connection reconnects automatically
        and resumes from the last step already yielded (``?from_seq=``)
        under the retry policy — the overall stream stays bit-identical
        to an uninterrupted watch.
        """
        return self._watch_resume(
            job_id, self._watch_ndjson_once, from_seq, "watch"
        )

    def _watch_ndjson_once(
        self, job_id: str, from_seq: int
    ) -> Iterator[dict[str, Any]]:
        try:
            conn = self._connect()
        except OSError as exc:
            raise _Retryable(
                f"cannot reach twin service at "
                f"{self.host}:{self.port}: {exc}"
            ) from exc
        try:
            path = f"/jobs/{job_id}/stream"
            if from_seq:
                path += f"?from_seq={from_seq}"
            conn.request("GET", path, headers=self._headers(None))
            response = conn.getresponse()
            if response.status != 200:
                doc = json.loads(response.read().decode("utf-8") or "{}")
                raise ExaDigiTError(
                    f"stream {job_id} -> {response.status}: "
                    f"{doc.get('error', doc)}"
                )
            buffer = b""
            while True:
                chunk = response.read1(65536)
                if not chunk:
                    return
                buffer += chunk
                while b"\n" in buffer:
                    raw, _, buffer = buffer.partition(b"\n")
                    doc = decode_step_line(raw.decode("utf-8"))
                    if doc is None:
                        continue
                    yield doc
                    if doc.get("event") in TERMINAL_EVENTS:
                        return
        finally:
            conn.close()

    # -- streaming: websocket --------------------------------------------------

    def watch_ws(
        self, job_id: str, *, from_seq: int | None = None
    ) -> Iterator[dict[str, Any]]:
        """The same stream as :meth:`watch`, over RFC 6455 frames
        (including the same reconnect-and-resume behavior)."""
        return self._watch_resume(
            job_id, self._watch_ws_once, from_seq, "watch_ws"
        )

    def _watch_ws_once(
        self, job_id: str, from_seq: int
    ) -> Iterator[dict[str, Any]]:
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout_s
            )
        except OSError as exc:
            raise _Retryable(
                f"cannot reach twin service at "
                f"{self.host}:{self.port}: {exc}"
            ) from exc
        sock.settimeout(self.read_timeout_s)
        try:
            path = f"/jobs/{job_id}/ws"
            if from_seq:
                path += f"?from_seq={from_seq}"
            key = base64.b64encode(os.urandom(16)).decode("ascii")
            sock.sendall(
                (
                    f"GET {path} HTTP/1.1\r\n"
                    f"Host: {self.host}:{self.port}\r\n"
                    "Upgrade: websocket\r\n"
                    "Connection: Upgrade\r\n"
                    f"Sec-WebSocket-Key: {key}\r\n"
                    "Sec-WebSocket-Version: 13\r\n\r\n"
                ).encode("ascii")
            )
            # Read the handshake response up to the blank line.
            head = b""
            while b"\r\n\r\n" not in head:
                data = sock.recv(4096)
                if not data:
                    raise _Retryable("connection closed during handshake")
                head += data
            header_blob, _, leftover = head.partition(b"\r\n\r\n")
            status_line = header_blob.split(b"\r\n", 1)[0].decode("latin-1")
            if " 101 " not in f"{status_line} ":
                raise ExaDigiTError(
                    f"websocket handshake refused: {status_line}"
                )
            expected = wsproto.accept_key(key)
            if expected.encode("ascii") not in header_blob:
                raise ExaDigiTError("bad Sec-WebSocket-Accept from server")
            frames = wsproto.FrameReader()
            pending = frames.feed(leftover) if leftover else []
            while True:
                for frame in pending:
                    if frame.opcode == wsproto.OP_CLOSE:
                        _send_close_frame(sock)
                        return
                    if frame.opcode == wsproto.OP_PING:
                        sock.sendall(
                            wsproto.encode_frame(
                                frame.payload,
                                opcode=wsproto.OP_PONG,
                                masked=True,
                            )
                        )
                        continue
                    if frame.opcode != wsproto.OP_TEXT:
                        continue
                    doc = decode_step_line(frame.text)
                    if doc is None:
                        continue
                    yield doc
                    if doc.get("event") in TERMINAL_EVENTS:
                        _send_close_frame(sock)
                        return
                data = sock.recv(65536)
                if not data:
                    return
                pending = frames.feed(data)
        finally:
            sock.close()

    # -- conveniences ----------------------------------------------------------

    def steps(
        self, job_id: str, *, transport: str = "ndjson"
    ) -> list[dict[str, Any]]:
        """Drain a watch stream into just its step records.

        Handles ``restart`` events (worker crash) by resetting the
        collected list, so the return value is always the step stream
        of the attempt that finished.  Raises on a ``failed`` /
        ``cancelled`` / ``timeout`` terminal event.
        """
        stream = (
            self.watch_ws(job_id)
            if transport == "ws"
            else self.watch(job_id)
        )
        steps: list[dict[str, Any]] = []
        for doc in stream:
            if is_step_record(doc):
                steps.append(doc)
            elif doc.get("event") == "restart":
                steps = []
            elif doc.get("event") == "done":
                return steps
            elif doc.get("event") in ("failed", "cancelled", "timeout"):
                raise ExaDigiTError(
                    f"job {job_id} ended {doc['event']}: "
                    f"{doc.get('error') or ''}"
                )
        raise ExaDigiTError(f"stream for {job_id} ended without a terminal event")

    def wait(self, job_id: str) -> dict[str, Any]:
        """Block until the job reaches a terminal state; returns its summary."""
        for doc in self.watch(job_id):
            if doc.get("event") in TERMINAL_EVENTS:
                return doc["job"]
        raise ExaDigiTError(f"stream for {job_id} ended without a terminal event")


def _send_close_frame(sock: socket.socket) -> None:
    """Best-effort websocket goodbye.

    This is the *only* place a socket error is deliberately swallowed:
    the stream is already complete, the close frame is a courtesy, and
    a peer that vanished first must not turn a finished watch into an
    exception.  Every other path surfaces its errors.
    """
    try:
        sock.sendall(
            wsproto.encode_frame(b"", opcode=wsproto.OP_CLOSE, masked=True)
        )
    except OSError:
        pass


__all__ = ["TwinClient"]
