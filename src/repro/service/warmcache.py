"""Warm-plant state cache: amortize the 1800 s cooling warmup.

Every coupled full-fidelity run pre-conditions the cooling plant by
stepping it at idle load for ``warmup_cooling_s`` (1800 s by default,
120 macro steps) before the first simulated quantum.  That warmup is a
pure function of (system spec, initial wet-bulb, warmup duration, plant
substep) — so its end state can be computed once, snapshotted via the
FMI-style :meth:`~repro.cooling.fmu.CoolingFMU.get_fmu_state`, and
restored into every later run with the same key, bit-identically.

:class:`WarmStateCache` is that memo.  Attach one to a
:class:`~repro.scenarios.twin.DigitalTwin` (``DigitalTwin(spec,
warm_cache=WarmStateCache())``) and every scenario run against the twin
shares it; the service worker pool does exactly this, so a worker pays
the warmup once per (spec, wet-bulb) and repeat jobs start in
milliseconds.  The cache is in-process and thread-safe; entries are
LRU-evicted beyond ``max_entries``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

from repro.config.schema import SystemSpec
from repro.scenarios.artifacts import spec_sha256


class WarmStateCache:
    """LRU memo of warmed cooling-plant snapshots, keyed by spec SHA-256.

    The full key is ``(spec_sha256, wetbulb, warmup_s, substep_s)`` —
    everything the warmup trajectory depends on.  ``lookup`` / ``store``
    are the duck-typed hooks :class:`~repro.core.engine.RapsEngine`
    calls from its warmup path.
    """

    def __init__(self, max_entries: int = 8) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, Any] = OrderedDict()
        self._spec_sha: dict[int, tuple[SystemSpec, str]] = {}

    # -- keying ----------------------------------------------------------------

    def _sha(self, spec: SystemSpec) -> str:
        # Hashing a spec costs a canonical-JSON dump; memo by object id
        # (specs are immutable in practice and twins reuse one
        # instance).  The memo entry keeps a strong reference to the
        # spec so a recycled id() can never alias a dead object's hash.
        entry = self._spec_sha.get(id(spec))
        if entry is not None and entry[0] is spec:
            return entry[1]
        sha = spec_sha256(spec)
        self._spec_sha[id(spec)] = (spec, sha)
        return sha

    def key(
        self,
        spec: SystemSpec,
        wetbulb_c: float,
        warmup_s: float,
        substep_s: float,
    ) -> tuple:
        """The exact cache key for one warmup trajectory."""
        return (
            self._sha(spec),
            float(wetbulb_c),
            float(warmup_s),
            float(substep_s),
        )

    # -- engine hooks ----------------------------------------------------------

    def lookup(
        self,
        spec: SystemSpec,
        wetbulb_c: float,
        warmup_s: float,
        substep_s: float,
    ):
        """The cached warmed-state snapshot, or None (counts hit/miss)."""
        key = self.key(spec, wetbulb_c, warmup_s, substep_s)
        with self._lock:
            snapshot = self._entries.get(key)
            if snapshot is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return snapshot

    def store(
        self,
        spec: SystemSpec,
        wetbulb_c: float,
        warmup_s: float,
        substep_s: float,
        snapshot,
    ) -> None:
        """Memoize one freshly warmed state (LRU-evicting)."""
        key = self.key(spec, wetbulb_c, warmup_s, substep_s)
        with self._lock:
            self._entries[key] = snapshot
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Hit/miss/entry counters (surfaced by the server's /healthz)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
            }


__all__ = ["WarmStateCache"]
