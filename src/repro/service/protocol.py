"""Service wire protocol: job model, content-addressed keys, events.

One vocabulary shared by the server, the worker pool, the persisted
store, and the client:

- a **job** wraps one declarative scenario document submitted over
  HTTP; its lifecycle is the :class:`JobState` machine
  ``queued -> running -> done | failed | cancelled | timeout``
  (``running`` may fall back to ``queued`` when a worker dies and the
  job is requeued; ``timeout`` is a cancellation forced by the job's
  ``deadline_s``);
- the **job key** is the SHA-256 of the canonical scenario JSON plus
  the serving spec's SHA-256 — the content address under which results
  and step streams are cached (two submissions of byte-identical
  scenarios against the same system share one simulation);
- **stream lines** are NDJSON documents: per-quantum step records
  (:func:`repro.viz.export.step_record`, no ``event`` field) inter-
  leaved with control events (``{"event": "restart" | "done" |
  "failed" | "cancelled", ...}``).  The same documents travel as
  websocket text frames — transports differ only in framing.
"""

from __future__ import annotations

import enum
import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any

from repro.scenarios.base import Scenario

#: Stream-terminal event names (a watcher stops after any of these).
TERMINAL_EVENTS = ("done", "failed", "cancelled", "timeout")


class JobState(str, enum.Enum):
    """Lifecycle of one submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMEOUT = "timeout"

    @property
    def terminal(self) -> bool:
        return self in (
            JobState.DONE,
            JobState.FAILED,
            JobState.CANCELLED,
            JobState.TIMEOUT,
        )


def job_key(scenario: Scenario | dict[str, Any], spec_sha: str) -> str:
    """Content address of one scenario run against one system.

    Canonical form: the scenario's ``to_dict`` document with sorted
    keys, concatenated with the spec SHA-256.  Declarative scenarios
    make this exact — two equal keys simulate identically.
    """
    doc = scenario.to_dict() if isinstance(scenario, Scenario) else scenario
    text = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(
        (text + "\n" + spec_sha).encode("utf-8")
    ).hexdigest()


def estimate_cost(scenario: Scenario) -> float:
    """Relative cost estimate of one job, for work-stealing placement.

    Units are arbitrary (seconds-of-simulated-time scaled by backend
    weight): coupling the cooling plant roughly quadruples a quantum,
    what-ifs run two engines, and the surrogate backend answers in
    milliseconds regardless of duration.  Placement only needs the
    *ordering* to be roughly right — stealing corrects the rest.
    """
    cost = float(scenario.duration_s)
    if getattr(scenario, "with_cooling", False):
        cost *= 4.0
    if scenario.kind == "whatif":
        cost *= 2.0
    if scenario.fidelity == "surrogate":
        cost *= 0.01
    return max(cost, 1.0)


@dataclass
class JobRecord:
    """Server-side state of one submitted job.

    ``steps`` buffers every streamed step record for the current
    attempt, so a watcher attaching at any time replays the stream from
    step 0 — the bit-identical-to-direct-run guarantee holds for late
    subscribers too.  ``bell`` is an asyncio Event replaced on every
    update (the "bell" pattern): watchers snapshot it, check for new
    state, and await it when caught up.

    ``seq_base`` anchors the monotonic per-job sequence numbering used
    by resumable streams: the record at ``steps[i]`` has sequence
    ``seq_base + i``, and a requeue advances ``seq_base`` past the
    abandoned attempt before clearing ``steps``, so a sequence number
    is never reused for different content within one server life.
    """

    id: str
    scenario_doc: dict[str, Any]
    key: str
    cost: float
    state: JobState = JobState.QUEUED
    attempts: int = 0
    max_attempts: int = 2
    worker: int | None = None
    steps: list[dict] = field(default_factory=list)
    seq_base: int = 0
    cell: dict[str, Any] | None = None
    error: str | None = None
    cached: bool = False
    deadline_s: float | None = None
    client: str | None = None
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    elapsed_s: float | None = None
    bell: Any = None  # asyncio.Event, attached by the server

    def summary(self) -> dict[str, Any]:
        """The JSON document returned by ``GET /jobs[/<id>]``."""
        scenario = self.scenario_doc
        return {
            "id": self.id,
            "state": self.state.value,
            "name": scenario.get("name", ""),
            "kind": scenario.get("kind", ""),
            "fidelity": scenario.get("fidelity", ""),
            "key": self.key,
            "attempts": self.attempts,
            "worker": self.worker,
            "steps": len(self.steps),
            "next_seq": self.seq_base + len(self.steps),
            "cached": self.cached,
            "deadline_s": self.deadline_s,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "elapsed_s": self.elapsed_s,
        }

    def terminal_event(self) -> dict[str, Any]:
        """The stream line that closes this job's watch streams."""
        if self.state is JobState.DONE:
            return {"event": "done", "job": self.summary()}
        if self.state is JobState.FAILED:
            return {
                "event": "failed",
                "error": self.error,
                "job": self.summary(),
            }
        if self.state is JobState.TIMEOUT:
            return {
                "event": "timeout",
                "error": self.error,
                "job": self.summary(),
            }
        return {"event": "cancelled", "job": self.summary()}


def restart_event(attempt: int, reason: str) -> dict[str, Any]:
    """Stream line announcing a requeue: the step stream restarts at 0."""
    return {"event": "restart", "attempt": attempt, "reason": reason}


def is_step_record(doc: dict[str, Any]) -> bool:
    """Whether a decoded stream line is a step record (vs an event)."""
    return "event" not in doc


__all__ = [
    "JobState",
    "JobRecord",
    "TERMINAL_EVENTS",
    "job_key",
    "estimate_cost",
    "restart_event",
    "is_step_record",
]
