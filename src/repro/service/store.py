"""Persisted job results + step streams for the twin service.

Layout — a superset of a campaign artifact directory::

    service-store/
        manifest.json       # open-ended CampaignStore manifest (cells
                            # appended as jobs arrive, job key per cell)
        results.jsonl       # one line per finished job (cell doc + key)
        steps/<key>.jsonl   # the full per-quantum step stream of a key
        .lock               # StoreLock (shared with worker processes)

Because the spine *is* a :class:`~repro.scenarios.artifacts.
CampaignStore` (open-ended mode), every existing consumer works on a
service store unchanged: ``repro campaign compare <dir>`` tabulates
everything the server ever ran, and ``surrogate fit --from-campaign``
can train on served traffic.

The store doubles as the server's **result cache**: jobs are content-
addressed by :func:`~repro.service.protocol.job_key`, and a repeat
submission replays the persisted step stream (bit-identical — JSON
floats round-trip exactly) without touching the worker pool.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, IO

from repro.exceptions import ScenarioError
from repro.obs.registry import get_registry
from repro.scenarios.artifacts import (
    CampaignStore,
    cell_doc_to_result,
    spec_sha256,
)
from repro.scenarios.base import Scenario
from repro.config.schema import SystemSpec
from repro.viz.export import decode_step_line, encode_step_line

STEPS_DIR = "steps"
CHECKPOINT = "checkpoint.json"


class ServiceStore:
    """Durable record + result cache of one twin server.

    ``metrics`` is an optional :class:`~repro.obs.registry.
    MetricsRegistry`; the owning server passes its own so store traffic
    (appends, replays) shows up under that server's ``/metrics``.
    Without one, the process-global registry applies (a no-op by
    default).
    """

    def __init__(
        self, path: str | Path, spec: SystemSpec, *, metrics=None
    ) -> None:
        self._metrics = metrics if metrics is not None else get_registry()
        path = Path(path)
        sha = spec_sha256(spec)
        if CampaignStore.exists(path):
            self.campaign = CampaignStore.open(path)
            if not self.campaign.open_ended:
                raise ScenarioError(
                    f"{path} is a frozen campaign, not a service store; "
                    "point the server at a fresh directory"
                )
            stored = self.campaign.provenance.get("spec_sha256")
            if stored != sha:
                raise ScenarioError(
                    f"service store {path} was recorded for spec "
                    f"{stored!r}, server is running {sha!r}; results "
                    "would not be comparable — use another directory"
                )
        else:
            self.campaign = CampaignStore.create_open_ended(path, spec)
        self.path = self.campaign.path
        self.steps_dir = self.path / STEPS_DIR
        self.steps_dir.mkdir(exist_ok=True)
        self.healed = self._heal_steps_dir()
        # key -> latest persisted line doc (built once; record() updates).
        self._index: dict[str, dict[str, Any]] = {}
        for _, doc in self.campaign._iter_docs():
            key = doc.get("key")
            if isinstance(key, str):
                self._index[key] = doc

    def _heal_steps_dir(self) -> int:
        """Repair torn step streams left by a crash mid-write.

        Live streaming appends one line per step, so a SIGKILL can
        leave the final line half-written (and ``.jsonl.tmp`` leftovers
        from interrupted atomic rewrites).  Truncate any file that does
        not end in a newline back to its last complete line — the same
        discipline the campaign ``results.jsonl`` applies — and sweep
        the temp files.  Returns the number of files repaired.
        """
        healed = 0
        for tmp in self.steps_dir.glob("*.jsonl.tmp"):
            tmp.unlink()
            healed += 1
        for path in self.steps_dir.glob("*.jsonl"):
            size = path.stat().st_size
            if size == 0:
                continue
            with path.open("rb+") as fh:
                fh.seek(-1, os.SEEK_END)
                if fh.read(1) == b"\n":
                    continue
                blob = path.read_bytes()
                keep = blob.rfind(b"\n") + 1  # 0 when no newline at all
                fh.truncate(keep)
            healed += 1
        return healed

    def __len__(self) -> int:
        return len(self._index)

    def steps_path(self, key: str) -> Path:
        return self.steps_dir / f"{key}.jsonl"

    # -- result cache ----------------------------------------------------------

    def lookup(self, key: str) -> tuple[dict[str, Any], list[dict]] | None:
        """(cell line doc, step records) for a key, or None.

        Only keys whose step stream was fully persisted count as hits —
        a cached job must replay the exact stream a fresh run would
        produce.  When the index line carries ``n_steps``, a stream
        whose surviving line count disagrees (a healed torn tail, a
        truncated copy) is a miss, never a short replay.
        """
        doc = self._index.get(key)
        if doc is None:
            return None
        steps_path = self.steps_path(key)
        if not steps_path.exists():
            return None
        steps: list[dict] = []
        with steps_path.open("r", encoding="utf-8") as fh:
            for raw in fh:
                record = decode_step_line(raw)
                if record is not None:
                    steps.append(record)
        expected = doc.get("n_steps")
        if expected is not None and len(steps) != int(expected):
            return None
        self._metrics.counter("repro_store_replays_total").inc()
        return doc, steps

    def record(
        self,
        key: str,
        scenario: Scenario,
        cell_doc: dict[str, Any],
        steps: list[dict],
        *,
        elapsed_s: float | None = None,
        stream_ready: bool = False,
    ) -> int:
        """Persist one finished job; returns its campaign cell index.

        The step stream is written to a temp file and atomically
        renamed, so :meth:`lookup` never sees a half-written stream;
        the cell line append is the hardened
        :meth:`CampaignStore.record` single-write path.  Pass
        ``stream_ready=True`` when a :meth:`open_step_stream` writer
        already holds the complete stream on disk — the rewrite is
        skipped and only the index line (with its ``n_steps`` count)
        lands.  Torn live streams are caught by :meth:`lookup`'s count
        check, so a crash between the live append and this index write
        can only cause a re-run, never a short replay.
        """
        index = self.campaign.append_cell(scenario, meta={"key": key})
        if not stream_ready:
            tmp = self.steps_path(key).with_suffix(".jsonl.tmp")
            with tmp.open("w", encoding="utf-8") as fh:
                for record in steps:
                    fh.write(encode_step_line(record) + "\n")
            os.replace(tmp, self.steps_path(key))
        stored = cell_doc_to_result({**cell_doc, "index": index})
        extra: dict[str, Any] = {"key": key, "n_steps": len(steps)}
        if elapsed_s is not None:
            extra["elapsed_s"] = float(elapsed_s)
        self.campaign.record(index, stored, extra=extra)
        self._index[key] = {**cell_doc, "index": index, **extra}
        self._metrics.counter("repro_store_appends_total").inc()
        return index

    # -- live step streaming ---------------------------------------------------

    def open_step_stream(self, key: str) -> "LiveStepStream":
        """An append-as-you-go writer for a key's step stream.

        The server appends each step record as it arrives, so the
        persisted prefix always trails the live stream by at most one
        flush — that prefix is what resumable watchers replay after a
        server death.  The writer starts from a truncated file (a fresh
        attempt owns the whole stream).
        """
        return LiveStepStream(self.steps_path(key))

    # -- drain checkpoints -----------------------------------------------------

    def save_checkpoint(self, doc: dict[str, Any]) -> Path:
        """Atomically persist the drain checkpoint document."""
        path = self.path / CHECKPOINT
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(doc, sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, path)
        return path

    def take_checkpoint(self) -> dict[str, Any] | None:
        """Consume the drain checkpoint: return its document and delete it."""
        path = self.path / CHECKPOINT
        if not path.exists():
            return None
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            doc = None
        path.unlink()
        return doc if isinstance(doc, dict) else None


class LiveStepStream:
    """Append-per-step writer for ``steps/<key>.jsonl``.

    Each append is one encoded line plus a flush — durable enough that
    a SIGKILL loses at most the in-flight line, which the next open's
    torn-tail heal removes.  ``abort()`` discards the partial stream
    (used when a job fails or is requeued mid-attempt).
    """

    def __init__(self, path: Path) -> None:
        self.path = path
        self.n_written = 0
        self._fh: IO[str] | None = path.open("w", encoding="utf-8")

    def append(self, record: dict[str, Any]) -> None:
        if self._fh is None:
            raise ScenarioError(f"step stream {self.path} is closed")
        self._fh.write(encode_step_line(record) + "\n")
        self._fh.flush()
        self.n_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def abort(self) -> None:
        """Close and remove the partial stream."""
        self.close()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass


__all__ = ["LiveStepStream", "ServiceStore", "CHECKPOINT", "STEPS_DIR"]
