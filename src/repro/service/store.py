"""Persisted job results + step streams for the twin service.

Layout — a superset of a campaign artifact directory::

    service-store/
        manifest.json       # open-ended CampaignStore manifest (cells
                            # appended as jobs arrive, job key per cell)
        results.jsonl       # one line per finished job (cell doc + key)
        steps/<key>.jsonl   # the full per-quantum step stream of a key
        .lock               # StoreLock (shared with worker processes)

Because the spine *is* a :class:`~repro.scenarios.artifacts.
CampaignStore` (open-ended mode), every existing consumer works on a
service store unchanged: ``repro campaign compare <dir>`` tabulates
everything the server ever ran, and ``surrogate fit --from-campaign``
can train on served traffic.

The store doubles as the server's **result cache**: jobs are content-
addressed by :func:`~repro.service.protocol.job_key`, and a repeat
submission replays the persisted step stream (bit-identical — JSON
floats round-trip exactly) without touching the worker pool.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any

from repro.exceptions import ScenarioError
from repro.obs.registry import get_registry
from repro.scenarios.artifacts import (
    CampaignStore,
    cell_doc_to_result,
    spec_sha256,
)
from repro.scenarios.base import Scenario
from repro.config.schema import SystemSpec
from repro.viz.export import decode_step_line, encode_step_line

STEPS_DIR = "steps"


class ServiceStore:
    """Durable record + result cache of one twin server.

    ``metrics`` is an optional :class:`~repro.obs.registry.
    MetricsRegistry`; the owning server passes its own so store traffic
    (appends, replays) shows up under that server's ``/metrics``.
    Without one, the process-global registry applies (a no-op by
    default).
    """

    def __init__(
        self, path: str | Path, spec: SystemSpec, *, metrics=None
    ) -> None:
        self._metrics = metrics if metrics is not None else get_registry()
        path = Path(path)
        sha = spec_sha256(spec)
        if CampaignStore.exists(path):
            self.campaign = CampaignStore.open(path)
            if not self.campaign.open_ended:
                raise ScenarioError(
                    f"{path} is a frozen campaign, not a service store; "
                    "point the server at a fresh directory"
                )
            stored = self.campaign.provenance.get("spec_sha256")
            if stored != sha:
                raise ScenarioError(
                    f"service store {path} was recorded for spec "
                    f"{stored!r}, server is running {sha!r}; results "
                    "would not be comparable — use another directory"
                )
        else:
            self.campaign = CampaignStore.create_open_ended(path, spec)
        self.path = self.campaign.path
        self.steps_dir = self.path / STEPS_DIR
        self.steps_dir.mkdir(exist_ok=True)
        # key -> latest persisted line doc (built once; record() updates).
        self._index: dict[str, dict[str, Any]] = {}
        for _, doc in self.campaign._iter_docs():
            key = doc.get("key")
            if isinstance(key, str):
                self._index[key] = doc

    def __len__(self) -> int:
        return len(self._index)

    def steps_path(self, key: str) -> Path:
        return self.steps_dir / f"{key}.jsonl"

    # -- result cache ----------------------------------------------------------

    def lookup(self, key: str) -> tuple[dict[str, Any], list[dict]] | None:
        """(cell line doc, step records) for a key, or None.

        Only keys whose step stream was fully persisted count as hits —
        a cached job must replay the exact stream a fresh run would
        produce.
        """
        doc = self._index.get(key)
        if doc is None:
            return None
        steps_path = self.steps_path(key)
        if not steps_path.exists():
            return None
        steps: list[dict] = []
        with steps_path.open("r", encoding="utf-8") as fh:
            for raw in fh:
                record = decode_step_line(raw)
                if record is not None:
                    steps.append(record)
        self._metrics.counter("repro_store_replays_total").inc()
        return doc, steps

    def record(
        self,
        key: str,
        scenario: Scenario,
        cell_doc: dict[str, Any],
        steps: list[dict],
        *,
        elapsed_s: float | None = None,
    ) -> int:
        """Persist one finished job; returns its campaign cell index.

        The step stream is written to a temp file and atomically
        renamed, so :meth:`lookup` never sees a half-written stream;
        the cell line append is the hardened
        :meth:`CampaignStore.record` single-write path.
        """
        index = self.campaign.append_cell(scenario, meta={"key": key})
        tmp = self.steps_path(key).with_suffix(".jsonl.tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            for record in steps:
                fh.write(encode_step_line(record) + "\n")
        os.replace(tmp, self.steps_path(key))
        stored = cell_doc_to_result({**cell_doc, "index": index})
        extra: dict[str, Any] = {"key": key}
        if elapsed_s is not None:
            extra["elapsed_s"] = float(elapsed_s)
        self.campaign.record(index, stored, extra=extra)
        self._index[key] = {**cell_doc, "index": index, **extra}
        self._metrics.counter("repro_store_appends_total").inc()
        return index


__all__ = ["ServiceStore", "STEPS_DIR"]
