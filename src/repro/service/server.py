"""`TwinServer`: the asyncio front door of the twin-as-a-service layer.

One process, one event loop, stdlib only.  Clients submit scenario-JSON
jobs over HTTP; jobs run on the work-stealing process pool
(:mod:`repro.service.workers`) and their per-quantum
:class:`~repro.core.engine.StepState` records stream back over two
transports — NDJSON chunked HTTP and RFC 6455 websocket — carrying the
exact documents :func:`repro.viz.export.step_record` produces, so a
streamed run is bit-identical to a direct ``iter_steps()`` of the same
scenario.

HTTP surface (all JSON)::

    GET  /healthz             liveness + degradable checks (pool alive,
                              store writable, event-loop lag)
    GET  /metrics             Prometheus text exposition of the server's
                              MetricsRegistry (scrape endpoint)
    GET  /statusz             full JSON ops snapshot: health, job
                              summaries, metrics, history, alerts,
                              flight recorder
    GET  /console             the single-file browser ops console
                              (docs/console.html; text/html)
    GET  /api/query           range query over recorded telemetry:
                              ?metric=&start=&end=&step=&agg=
                              (agg in last/avg/max/rate; non-positive
                              start/end are relative to now)
    GET  /alertz              alert rules, per-rule state, and recent
                              pending/firing/resolved transitions
    POST /jobs                submit {"scenario": {...}} or a bare
                              scenario document; sweeps expand into one
                              job per cell; returns {"jobs": [...]}
    GET  /jobs                all job summaries, submission order
    GET  /jobs/<id>           one job summary
    GET  /jobs/<id>/result    summary + persisted cell metrics (done jobs)
    POST /jobs/<id>/cancel    cancel a queued or running job
    GET  /jobs/<id>/stream    NDJSON: buffered + live step records, then
                              a terminal event line (``watch`` is an
                              alias; ``?from_seq=N`` resumes after the
                              last sequence number already seen)
    GET  /jobs/<id>/ws        the same stream as websocket text frames
                              (same ``?from_seq=`` resume support)
    POST /drainz              graceful drain: stop admitting (503 +
                              Retry-After), checkpoint the queue to the
                              store, finish running jobs, then stop;
                              a restart re-enqueues the checkpoint

Guarantees:

- **Disconnect-safe**: a watcher is a subscription, never an owner —
  closing a stream mid-run affects nothing; a later watcher replays
  the full buffered stream from step 0.
- **Crash-safe**: a worker death requeues its in-flight job at the
  queue head (``restart`` event to watchers, attempt-capped) and the
  worker is respawned.
- **Cached**: results are content-addressed by
  :func:`~repro.service.protocol.job_key`; a repeat submission replays
  the stored stream without simulating (in-memory, plus the persisted
  :class:`~repro.service.store.ServiceStore` when a store directory is
  configured).  Warm-plant state is cached *inside* each worker
  (:class:`~repro.service.warmcache.WarmStateCache`), so even novel
  jobs skip the 1800 s cooling warmup after a worker's first coupled
  run.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
import time
from pathlib import Path
from typing import Any, Awaitable, Callable
from urllib.parse import parse_qs, urlsplit

from repro.config.schema import SystemSpec
from repro.exceptions import ExaDigiTError, ScenarioError
from repro.obs.alerts import (
    AlertManager,
    AlertRule,
    disabled_alerts_statusz,
    load_rules,
)
from repro.obs.console import load_console_html
from repro.obs.history import MetricsRecorder, disabled_history_stats
from repro.obs.registry import (
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    get_registry,
    set_registry,
)
from repro.obs.trace import FlightRecorder, Tracer
from repro.scenarios.artifacts import (
    _nulled_nans,
    result_to_cell_doc,
    spec_sha256,
)
from repro.scenarios.base import Scenario
from repro.scenarios.library import BaseSweepScenario
from repro.scenarios.twin import DigitalTwin, FIDELITIES, resolve_spec
from repro.service import ws as wsproto
from repro.service.protocol import (
    JobRecord,
    JobState,
    estimate_cost,
    job_key,
    restart_event,
)
from repro.service.resilience import CircuitBreaker, resolve_chaos
from repro.service.store import LiveStepStream, ServiceStore
from repro.service.workers import WorkerPool, WorkStealingQueue
from repro.viz.export import encode_step_line

SendLine = Callable[[dict], Awaitable[None]]


class _ChaosDrop(Exception):
    """Injected mid-stream connection drop (chaos site ``conn_drop``)."""


class TwinServer:
    """Serve one digital twin to many concurrent clients.

    Parameters
    ----------
    system:
        Spec instance, JSON path, or builtin name — the one system this
        server simulates (frozen into the store's provenance).
    workers:
        Worker process count (the work-stealing pool width).
    store:
        Optional directory for the persisted
        :class:`~repro.service.store.ServiceStore` (results + step
        streams + result cache across restarts).  Without it, caching
        is in-memory only.
    fidelity:
        Default backend for scenarios that don't pin one (``"full"`` or
        ``"surrogate"``).
    surrogates:
        Optional trained bundle (object or saved path) shipped to every
        worker for surrogate-fidelity jobs.
    max_attempts:
        Dispatch attempts per job before a worker crash marks it failed.
    use_cache:
        Whether repeat submissions may be served from the result cache
        (per-request override: ``{"use_cache": false}`` in the POST).
    execution:
        ``"processes"`` (default) dispatches each cell to the worker
        pool; ``"batched"`` runs each submission's uncached cells as
        one vectorized :class:`~repro.batch.engine.BatchedEngine` sweep
        in-process (bit-identical lanes, same streaming transport).
    max_retained_jobs:
        Memory bound for a long-running server: once more than this
        many jobs are terminal, the oldest terminal jobs (and their
        buffered step streams) are evicted from the registry — their
        results live on in the store/result cache.  Watchers already
        attached to an evicted job hold the record directly and finish
        their stream normally; new lookups of its id get a 404.
    metrics:
        ``True`` (default) gives the server its own
        :class:`~repro.obs.registry.MetricsRegistry`, rendered at
        ``GET /metrics`` and snapshotted into ``GET /statusz``;
        ``False`` serves both endpoints empty at zero recording cost;
        an explicit registry instance is used as-is (shared registries
        across servers are allowed).  While a metrics-enabled server
        runs, its registry is also installed process-globally (unless
        one is already installed), so in-process engine/batch/store
        counters land on the same ``/metrics`` page.
    flight_capacity:
        Ring-buffer size of the :class:`~repro.obs.trace.FlightRecorder`
        holding the most recent job spans and worker events; the buffer
        is dumped to ``<store>/flight/`` whenever a worker dies or a
        health check flips healthy→degraded.
    history_interval:
        Sampling period (seconds) of the
        :class:`~repro.obs.history.MetricsRecorder` background task
        feeding ``GET /api/query`` and the alert engine; ``0`` (or
        ``metrics=False``) disables retention entirely.  With a store,
        samples also persist as JSONL segments under
        ``<store>/telemetry/``.
    alert_rules:
        Optional alert rules — a rules-file path, or a list of
        :class:`~repro.obs.alerts.AlertRule` / rule dicts — evaluated
        every sampling tick by an
        :class:`~repro.obs.alerts.AlertManager` (``GET /alertz``).
        Requires history to be enabled.
    chaos:
        Seed-deterministic fault injection
        (:class:`~repro.service.resilience.ChaosPolicy`, or an int seed
        for the default rates).  ``None`` (default) installs the null
        policy — every chaos site costs one attribute load.
    max_queue_depth:
        Admission bound: a submission that would be queued while the
        work-stealing queue already holds this many entries is rejected
        with ``429`` + ``Retry-After``.
    max_inflight_per_client:
        Per-client admission bound over non-terminal jobs, keyed by the
        ``X-Repro-Client`` request header (absent header = no cap).
    breaker:
        Circuit breaker over worker respawn storms (defaults to a
        fresh :class:`~repro.service.resilience.CircuitBreaker`).
    drain_grace_s:
        How long :meth:`begin_drain` waits for running jobs before
        checkpointing them too and stopping the server.
    """

    def __init__(
        self,
        system: str | Path | SystemSpec = "frontier",
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        store: str | Path | None = None,
        fidelity: str = "full",
        surrogates=None,
        max_attempts: int = 2,
        use_cache: bool = True,
        warm_entries: int = 8,
        start_method: str = "spawn",
        max_retained_jobs: int = 4096,
        result_cache_entries: int = 128,
        execution: str = "processes",
        metrics: bool | MetricsRegistry | NullRegistry = True,
        flight_capacity: int = 512,
        history_interval: float = 1.0,
        alert_rules: str | Path | list | None = None,
        chaos=None,
        max_queue_depth: int = 1024,
        max_inflight_per_client: int = 256,
        breaker: CircuitBreaker | None = None,
        drain_grace_s: float = 30.0,
    ) -> None:
        if fidelity not in FIDELITIES:
            raise ExaDigiTError(
                f"unknown fidelity {fidelity!r}; expected one of {FIDELITIES}"
            )
        if max_attempts < 1:
            raise ExaDigiTError("max_attempts must be >= 1")
        if execution not in ("processes", "batched"):
            raise ExaDigiTError(
                f"unknown execution backend {execution!r} "
                "(expected 'processes' or 'batched')"
            )
        self.execution = execution
        self.spec = resolve_spec(system)
        self.spec_sha = spec_sha256(self.spec)
        self.host = host
        self.port = port
        self.n_workers = workers
        self.fidelity = fidelity
        self.max_attempts = max_attempts
        self.use_cache_default = use_cache
        if metrics is True:
            self.metrics: MetricsRegistry | NullRegistry = MetricsRegistry()
        elif metrics is False or metrics is None:
            self.metrics = NULL_REGISTRY
        else:
            self.metrics = metrics
        self.flight = FlightRecorder(flight_capacity)
        self.tracer = Tracer(self.flight)
        self.store = (
            ServiceStore(store, self.spec, metrics=self.metrics)
            if store is not None
            else None
        )
        self.history_interval = float(history_interval or 0.0)
        self.history: MetricsRecorder | None = None
        self.alerts: AlertManager | None = None
        if self.metrics.enabled and self.history_interval > 0:
            self.history = MetricsRecorder(
                self.metrics,
                interval_s=self.history_interval,
                persist_dir=(
                    self.store.path / "telemetry"
                    if self.store is not None
                    else None
                ),
            )
        rules = self._resolve_alert_rules(alert_rules)
        if rules and self.history is None:
            raise ExaDigiTError(
                "alert rules need recorded history: enable metrics and "
                "a history_interval > 0"
            )
        if self.history is not None:
            self.alerts = AlertManager(
                rules,
                self.history,
                tracer=self.tracer,
                registry=self.metrics,
            )
        #: Last observed ok/degraded per named health check, for the
        #: healthy→degraded flight-dump trigger.
        self._check_ok: dict[str, bool] = {}
        self._history_task: asyncio.Task | None = None
        self._surrogate_doc = self._resolve_surrogates(surrogates)
        self.jobs: dict[str, JobRecord] = {}
        self._job_order: list[str] = []
        self._job_seq = 0
        self.queue = WorkStealingQueue(workers)
        self.pool = WorkerPool(
            self.spec,
            workers,
            on_event=self._on_worker_event_threadsafe,
            fidelity=fidelity,
            surrogate_doc=self._surrogate_doc,
            warm_entries=warm_entries,
            start_method=start_method,
        )
        self.max_retained_jobs = max_retained_jobs
        self.result_cache_entries = result_cache_entries
        self.warm_entries = warm_entries
        #: Lazily-built twin for ``execution="batched"`` submissions
        #: (one per server, so batched sweeps share a warm-plant cache).
        self._batch_twin: DigitalTwin | None = None
        #: Terminal job ids in completion order (memory-bound eviction).
        self._terminal_order: list[str] = []
        self.counters = {
            "executed": 0,
            "cache_hits": 0,
            "warm_hits": 0,
            "requeues": 0,
            "persist_errors": 0,
            "timeouts": 0,
            "admission_rejected": 0,
            "chaos_injected": 0,
            "stream_resumes": 0,
        }
        self.chaos = resolve_chaos(chaos)
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        if max_queue_depth < 1 or max_inflight_per_client < 1:
            raise ExaDigiTError("admission bounds must be >= 1")
        self.max_queue_depth = int(max_queue_depth)
        self.max_inflight_per_client = int(max_inflight_per_client)
        self.drain_grace_s = float(drain_grace_s)
        #: Drain lifecycle: ``draining`` stops admission, ``drained``
        #: flips once the grace window closed and the checkpoint landed.
        self.draining = False
        self.drained = False
        self._drain_task: asyncio.Task | None = None
        #: Jobs parked in the drain checkpoint (excluded from dispatch,
        #: deadlines, and the drain wait — the restart re-enqueues them).
        self._checkpointed: set[str] = set()
        #: Worker indices whose next exit is an injected chaos kill —
        #: exempt from breaker and respawn-cap accounting, so chaos
        #: exercises recovery without consuming the real crash budget.
        self._chaos_kills: set[int] = set()
        #: Dead workers waiting on the breaker before respawn.
        self._pending_respawn: set[int] = set()
        #: Running jobs whose deadline expired; the worker's cancel ack
        #: finishes them as TIMEOUT instead of CANCELLED.
        self._timeout_pending: set[str] = set()
        #: Job key -> (owning job id, live step-stream writer): at most
        #: one live append stream per content key.
        self._live_streams: dict[str, tuple[str, LiveStepStream]] = {}
        #: Consecutive exits per worker without finishing a job; a
        #: worker past the cap stays down (a crash-looping environment
        #: must not fork-bomb the host).
        self._worker_respawns = [0] * workers
        self.max_worker_respawns = 3
        # key -> (cell line doc, step records); in-memory result cache,
        # LRU-bounded (the persisted store is the durable tier).
        from collections import OrderedDict

        self._result_cache: "OrderedDict[str, tuple[dict, list[dict]]]" = (
            OrderedDict()
        )
        self._cancel_requested: set[str] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._thread_error: BaseException | None = None
        #: Open job spans (job id -> Span), closed in :meth:`_finish`.
        self._spans: dict[str, Any] = {}
        self._flight_dumps = 0
        self._last_flight_dump: str | None = None
        self._heartbeat_task: asyncio.Task | None = None
        self._hb_interval_s = 0.25
        self._last_beat: float | None = None
        self._installed_global_registry = False
        self._register_metrics()

    def _register_metrics(self) -> None:
        """Register this server's metric families (handles cached).

        With a :class:`NullRegistry` every handle is the inert null
        metric, so the hot handlers below stay branch-free.
        """
        m = self.metrics
        self._m_submitted = m.counter("repro_service_jobs_submitted_total")
        self._m_finished = m.counter("repro_service_jobs_finished_total")
        self._m_cache_hits = m.counter("repro_service_cache_hits_total")
        self._m_warm_hits = m.counter("repro_service_warm_hits_total")
        self._m_warm_misses = m.counter("repro_service_warm_misses_total")
        self._m_requeues = m.counter("repro_service_requeues_total")
        self._m_crashes = m.counter("repro_service_worker_crashes_total")
        self._m_respawns = m.counter("repro_service_worker_respawns_total")
        self._m_steps = m.counter("repro_service_steps_streamed_total")
        self._m_stream_clients = m.gauge("repro_service_stream_clients")
        self._m_job_seconds = m.histogram("repro_service_job_seconds")
        m.gauge("repro_service_queue_depth", fn=lambda: len(self.queue))
        m.counter(
            "repro_service_queue_steals_total",
            fn=lambda: self.queue.steals,
        )
        m.gauge("repro_service_workers_alive", fn=self.pool.alive_count)
        m.gauge(
            "repro_service_jobs_running",
            fn=lambda: sum(
                1
                for j in self.jobs.values()
                if j.state is JobState.RUNNING
            ),
        )
        m.gauge("repro_service_loop_lag_seconds", fn=self._loop_lag_s)
        self._m_timeouts = m.counter("repro_jobs_timeout_total")
        self._m_admission = m.counter("repro_admission_rejected_total")
        self._m_chaos = m.counter("repro_chaos_injected_total")
        self._m_resumes = m.counter("repro_stream_resumes_total")
        m.gauge("repro_breaker_state", fn=self.breaker.value)
        m.gauge(
            "repro_service_draining",
            fn=lambda: 1.0 if self.draining else 0.0,
        )

    def _loop_lag_s(self) -> float:
        """Event-loop scheduling lag seen by the heartbeat probe."""
        loop, last = self._loop, self._last_beat
        if loop is None or last is None or self._heartbeat_task is None:
            return 0.0
        try:
            now = loop.time()
        except RuntimeError:  # pragma: no cover - loop torn down
            return 0.0
        return max(0.0, now - last - self._hb_interval_s)

    async def _heartbeat(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            self._last_beat = loop.time()
            try:
                self._tick_resilience()
            except Exception as exc:  # noqa: BLE001 - the lag probe
                # must keep beating even if a resilience check bugs out.
                self.tracer.event(
                    "resilience-tick-error",
                    error=f"{type(exc).__name__}: {exc}",
                )
            await asyncio.sleep(self._hb_interval_s)

    def _tick_resilience(self) -> None:
        """Per-beat resilience duties: deadlines and breaker probes."""
        self._check_deadlines()
        self._probe_respawns()

    def _resolve_alert_rules(self, alert_rules) -> list[AlertRule]:
        if alert_rules is None:
            return []
        if isinstance(alert_rules, (str, Path)):
            return load_rules(alert_rules)
        return [
            entry
            if isinstance(entry, AlertRule)
            else AlertRule.from_dict(entry)
            for entry in alert_rules
        ]

    async def _history_loop(self) -> None:
        """Background sampler: record telemetry, evaluate alerts, and
        keep the degradable health probes observed even when nobody
        polls ``/healthz``."""
        while True:
            await asyncio.sleep(self.history.interval_s)
            try:
                self._history_tick()
            except Exception as exc:  # noqa: BLE001 - a recorder bug
                # must not kill the sampler; leave a trace instead.
                self.tracer.event(
                    "history-tick-error", error=f"{type(exc).__name__}: {exc}"
                )

    def _history_tick(self, now: float | None = None) -> None:
        """One sampler tick (separated from the loop for tests)."""
        self.history.sample(now)
        if self.alerts is not None:
            self.alerts.evaluate(now)
        self._health_checks()

    def _resolve_surrogates(self, surrogates) -> dict | None:
        if surrogates is None:
            return None
        from repro.fastpath.bundle import SurrogateBundle

        if isinstance(surrogates, SurrogateBundle):
            surrogates.check_spec(self.spec)
            return surrogates.to_doc()
        bundle = SurrogateBundle.load(surrogates, spec=self.spec)
        return bundle.to_doc()

    # -- lifecycle -------------------------------------------------------------

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def start(self) -> "TwinServer":
        """Bind the listening socket and spawn the worker pool."""
        self._loop = asyncio.get_running_loop()
        self.pool.start()
        self._restore_checkpoint()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._heartbeat_task = asyncio.ensure_future(self._heartbeat())
        if self.history is not None:
            self._history_task = asyncio.ensure_future(self._history_loop())
        # Adopt this server's registry process-wide (when none is
        # installed) so in-process engine/batch/campaign counters from
        # batched execution land on the same /metrics page.
        if self.metrics.enabled and not get_registry().enabled:
            set_registry(self.metrics)
            self._installed_global_registry = True
        return self

    async def stop(self) -> None:
        """Close the listener and stop the workers."""
        if self._installed_global_registry:
            if get_registry() is self.metrics:
                set_registry(NULL_REGISTRY)
            self._installed_global_registry = False
        if self._drain_task is not None:
            self._drain_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._drain_task
            self._drain_task = None
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._heartbeat_task
            self._heartbeat_task = None
        if self._history_task is not None:
            self._history_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._history_task
            self._history_task = None
        if self.history is not None:
            self.history.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.pool.stop)
        # Close (not abort) any live step streams: the persisted prefix
        # survives for resumable watchers of the next server life.
        for _, stream in self._live_streams.values():
            stream.close()
        self._live_streams.clear()

    async def run_forever(self, *, on_start=None) -> None:
        """`repro serve` entry: start and serve until cancelled.

        ``on_start(server)`` fires once the port is bound (banners).
        """
        await self.start()
        if on_start is not None:
            on_start(self)
        self._stop_event = asyncio.Event()
        try:
            await self._stop_event.wait()
        finally:
            await self.stop()

    def request_stop(self) -> None:
        """Ask a running :meth:`run_forever` / thread server to exit.

        A no-op when the server already stopped on its own (a finished
        drain closes the loop before the owner calls :meth:`close`).
        """
        loop, stop_event = self._loop, self._stop_event
        if loop is not None and stop_event is not None:
            try:
                loop.call_soon_threadsafe(stop_event.set)
            except RuntimeError:
                pass  # loop already closed

    def start_in_thread(self, timeout_s: float = 120.0) -> "TwinServer":
        """Run the server on a background thread (tests, notebooks,
        docs): returns once the port is bound; pair with :meth:`close`.
        """
        started = threading.Event()

        async def _main() -> None:
            try:
                await self.start()
                self._stop_event = asyncio.Event()
            except BaseException as exc:  # surface bind errors
                self._thread_error = exc
                started.set()
                raise
            started.set()
            try:
                await self._stop_event.wait()
            finally:
                await self.stop()

        def _runner() -> None:
            try:
                asyncio.run(_main())
            except BaseException as exc:  # pragma: no cover - debug aid
                if self._thread_error is None:
                    self._thread_error = exc

        self._thread = threading.Thread(
            target=_runner, daemon=True, name="twin-server"
        )
        self._thread.start()
        if not started.wait(timeout_s):
            raise ExaDigiTError("server did not start in time")
        if self._thread_error is not None:
            raise ExaDigiTError(
                f"server failed to start: {self._thread_error}"
            )
        return self

    def close(self, timeout_s: float = 30.0) -> None:
        """Stop a :meth:`start_in_thread` server and join its thread."""
        self.request_stop()
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)
            self._thread = None

    def __enter__(self) -> "TwinServer":
        return self.start_in_thread()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- worker events ---------------------------------------------------------

    def _on_worker_event_threadsafe(self, index: int, msg: dict) -> None:
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        with contextlib.suppress(RuntimeError):
            loop.call_soon_threadsafe(self._on_worker_event, index, msg)

    def _on_worker_event(self, index: int, msg: dict) -> None:
        event = msg.get("event")
        handle = self.pool.workers[index]
        if event == "hello":
            handle.ready = True
            self._pump()
            return
        if event == "exit":
            self._on_worker_exit(index)
            return
        job = self.jobs.get(msg.get("job_id", ""))
        if job is None or job.worker != index:
            return  # stale message from a replaced worker
        if event == "step":
            if job.state is JobState.RUNNING:
                job.steps.append(msg["record"])
                self._m_steps.inc()
                self._live_append(job, msg["record"])
                self._ring(job)
                if self.chaos.enabled:
                    self._chaos_step(job, index)
        elif event == "done":
            self._worker_respawns[index] = 0
            self.breaker.record_success()
            job.cell = msg.get("cell")
            job.elapsed_s = msg.get("elapsed_s")
            self.counters["executed"] += 1
            if msg.get("warm_hit"):
                self.counters["warm_hits"] += 1
                self._m_warm_hits.inc()
            else:
                self._m_warm_misses.inc()
            if job.elapsed_s is not None:
                self._m_job_seconds.observe(job.elapsed_s)
            self._finish(job, JobState.DONE)
            # Free the worker before persisting: a store failure must
            # cost a counter, never a pool slot.
            self._worker_idle(index)
            self._persist(job)
        elif event == "cancelled":
            self._worker_respawns[index] = 0
            self.breaker.record_success()
            if job.id in self._timeout_pending:
                self._finish(job, JobState.TIMEOUT)
            else:
                self._finish(job, JobState.CANCELLED)
            self._worker_idle(index)
        elif event == "error":
            self._worker_respawns[index] = 0
            self.breaker.record_success()
            job.error = msg.get("message", "worker error")
            self._finish(job, JobState.FAILED)
            self._worker_idle(index)

    def _note_chaos(self, site: str) -> None:
        self.counters["chaos_injected"] += 1
        self._m_chaos.labels(site=site).inc()
        self.tracer.event("chaos", site=site)

    def _chaos_step(self, job: JobRecord, index: int) -> None:
        """Chaos sites checked once per worker step event.

        Both sites consume their draw on every step regardless of
        whether the action is applied, so the per-site schedule stays a
        pure function of ``(seed, step count)``.  A crash is only
        *applied* while the job still has attempt budget — injected
        faults exercise recovery, they must never consume the exactly-
        once guarantee.
        """
        if self.chaos.should("worker_crash"):
            if (
                job.attempts < job.max_attempts
                and index not in self._chaos_kills
            ):
                self._note_chaos("worker_crash")
                self._chaos_kills.add(index)
                self.pool.kill(index)
        if self.chaos.should("loop_stall"):
            self._note_chaos("loop_stall")
            time.sleep(self.chaos.stall_s)  # a deliberate loop stall

    def _on_worker_exit(self, index: int) -> None:
        if self.pool.stopping:
            return
        handle = self.pool.workers[index]
        job_id, handle.job_id = handle.job_id, None
        handle.ready = False
        chaos_kill = index in self._chaos_kills
        self._chaos_kills.discard(index)
        self._m_crashes.inc()
        self.tracer.event(
            "worker-exit", worker=index, job_id=job_id, chaos=chaos_kill
        )
        job = self.jobs.get(job_id) if job_id else None
        if job is not None and job.state is JobState.RUNNING:
            if job.id in self._cancel_requested:
                # The worker died before polling an acknowledged
                # cancel; honor it instead of re-running the job.
                self._finish(job, JobState.CANCELLED)
            elif job.id in self._timeout_pending:
                self._finish(job, JobState.TIMEOUT)
            elif job.attempts >= job.max_attempts:
                job.error = (
                    f"worker died after {job.attempts} attempt(s); "
                    "attempt cap reached"
                )
                self._finish(job, JobState.FAILED)
            else:
                self.counters["requeues"] += 1
                self._m_requeues.inc()
                job.state = JobState.QUEUED
                job.worker = None
                # Advance the sequence numbering past the abandoned
                # attempt before dropping it — plus one never-emitted
                # gap seq, so a watcher that held the *entire* abandoned
                # prefix still reconnects below the new base and gets a
                # restart event instead of silently appending the next
                # attempt's steps to stale ones.
                job.seq_base += len(job.steps) + 1
                job.steps.clear()
                self._live_abort(job)
                self.queue.requeue(job.id, job.cost)
                self._ring(job)
        if not chaos_kill:
            self.breaker.record_failure()
        if chaos_kill:
            # Injected kills exercise the requeue/respawn machinery but
            # bypass breaker and respawn-cap accounting: chaos must not
            # consume the budget that guards against real crash loops.
            self._m_respawns.inc()
            self.pool.respawn(index)
        elif not self.breaker.allow_respawn():
            # Respawn storm: the worker stays down until the breaker's
            # cooldown grants a probe (the heartbeat retries).
            self._pending_respawn.add(index)
        else:
            self._respawn_capped(index)
        # Post-mortem: whatever the flight recorder saw leading up to
        # this death goes to disk before anything else overwrites it.
        self._dump_flight(f"worker{index}-exit")

    def _respawn_capped(self, index: int) -> None:
        """Respawn one worker, honoring the per-worker respawn cap."""
        self._worker_respawns[index] += 1
        if self._worker_respawns[index] <= self.max_worker_respawns:
            self._m_respawns.inc()
            self.pool.respawn(index)
            # The fresh worker greets with "hello" and then pulls work.
        elif self.pool.alive_count() == 0:
            # Every worker is crash-looping (e.g. a broken deployment):
            # fail what's queued instead of queueing forever.
            for other in self.jobs.values():
                if (
                    not other.state.terminal
                    and other.id not in self._checkpointed
                ):
                    other.error = "no live workers (respawn cap reached)"
                    self._finish(other, JobState.FAILED)

    def _probe_respawns(self) -> None:
        """Heartbeat duty: respawn breaker-parked workers when allowed.

        One worker per beat — while half-open, the breaker grants a
        single probe anyway; once closed again, the remaining parked
        workers recover over the next few beats.
        """
        if not self._pending_respawn or self.pool.stopping:
            return
        if not self.breaker.allow_respawn():
            return
        index = min(self._pending_respawn)
        self._pending_respawn.discard(index)
        self._respawn_capped(index)

    def _dump_flight(self, reason: str) -> None:
        """Dump the flight-recorder ring to the store (best effort)."""
        if self.store is None or len(self.flight) == 0:
            return
        self._flight_dumps += 1
        path = (
            self.store.path
            / "flight"
            / f"{self._flight_dumps:03d}-{reason}.jsonl"
        )
        try:
            self.flight.dump(path)
            self._last_flight_dump = str(path)
        except OSError:  # pragma: no cover - a full disk must not
            pass  # take the serving loop down with it

    def _worker_idle(self, index: int) -> None:
        self.pool.workers[index].job_id = None
        self._pump()

    def _pump(self) -> None:
        """Dispatch queued jobs onto idle workers (work-stealing take)."""
        if self.breaker.state == CircuitBreaker.OPEN:
            return  # respawn storm: hold dispatch until a probe succeeds
        for handle in self.pool.workers:
            while handle.idle:
                job_id = self.queue.take(handle.index)
                if job_id is None:
                    break
                job = self.jobs[job_id]
                if job.state is not JobState.QUEUED:
                    continue  # cancelled while queued
                if job.id in self._cancel_requested:
                    # Cancelled while crash-requeued: don't redispatch.
                    self._finish(job, JobState.CANCELLED)
                    continue
                job.state = JobState.RUNNING
                job.worker = handle.index
                job.attempts += 1
                job.started_at = time.time()
                self._open_live_stream(job)
                self.tracer.event(
                    "dispatch",
                    job_id=job.id,
                    worker=handle.index,
                    attempt=job.attempts,
                )
                self._ring(job)
                self.pool.dispatch(handle.index, job_id, job.scenario_doc)
                break

    def _finish(self, job: JobRecord, state: JobState) -> None:
        if state is not JobState.DONE:
            # A stream that won't complete is junk on disk: drop it.
            self._live_abort(job)
        job.state = state
        job.finished_at = time.time()
        self._m_finished.labels(state=state.value).inc()
        if state is JobState.TIMEOUT:
            if job.error is None:
                job.error = f"deadline_s={job.deadline_s} exceeded"
            self.counters["timeouts"] += 1
            self._m_timeouts.inc()
        span = self._spans.pop(job.id, None)
        if span is not None:
            self.tracer.end(
                span,
                status="ok" if state is JobState.DONE else state.value,
                state=state.value,
                attempts=job.attempts,
                cached=job.cached,
            )
        self._cancel_requested.discard(job.id)
        self._timeout_pending.discard(job.id)
        self._checkpointed.discard(job.id)
        self._terminal_order.append(job.id)
        self._trim_retained_jobs()
        self._ring(job)

    def _trim_retained_jobs(self) -> None:
        """Evict the oldest terminal jobs past the retention bound.

        Watchers mid-stream hold the :class:`JobRecord` object itself,
        so eviction only removes registry entries (new lookups 404);
        the step buffers go with them, keeping a long-running server's
        memory bounded.  Results remain served via the result cache /
        store under their content key.
        """
        while len(self._terminal_order) > self.max_retained_jobs:
            job_id = self._terminal_order.pop(0)
            evicted = self.jobs.pop(job_id, None)
            if evicted is not None:
                try:
                    self._job_order.remove(job_id)
                except ValueError:  # pragma: no cover - defensive
                    pass

    def _ring(self, job: JobRecord) -> None:
        bell, job.bell = job.bell, asyncio.Event()
        bell.set()

    # -- live step streams -----------------------------------------------------

    def _open_live_stream(self, job: JobRecord) -> None:
        """Start appending this attempt's steps to the store as they land.

        At most one live writer per content key: a concurrent duplicate
        job (cache disabled) falls back to the atomic rewrite in
        :meth:`_persist`.
        """
        if self.store is None or job.key in self._live_streams:
            return
        try:
            stream = self.store.open_step_stream(job.key)
        except OSError:
            self.counters["persist_errors"] += 1
            return
        self._live_streams[job.key] = (job.id, stream)

    def _live_append(self, job: JobRecord, record: dict) -> None:
        entry = self._live_streams.get(job.key)
        if entry is None or entry[0] != job.id:
            return
        try:
            entry[1].append(record)
        except OSError:
            # Disk trouble mid-stream: drop the writer; _persist falls
            # back to the atomic rewrite (or counts a persist error).
            self.counters["persist_errors"] += 1
            self._live_streams.pop(job.key, None)
            entry[1].abort()

    def _live_abort(self, job: JobRecord) -> None:
        entry = self._live_streams.get(job.key)
        if entry is not None and entry[0] == job.id:
            self._live_streams.pop(job.key, None)
            entry[1].abort()

    def _persist(self, job: JobRecord) -> None:
        if job.cell is None:
            return
        self._remember_result(
            job.key, ({**job.cell, "key": job.key}, list(job.steps))
        )
        if self.store is not None:
            stream_ready = False
            entry = self._live_streams.get(job.key)
            if entry is not None and entry[0] == job.id:
                self._live_streams.pop(job.key, None)
                entry[1].close()
                stream_ready = entry[1].n_written == len(job.steps)
            try:
                if self.chaos.enabled:
                    if self.chaos.should("slow_io"):
                        self._note_chaos("slow_io")
                        time.sleep(self.chaos.slow_io_s)
                    if self.chaos.should("store_write"):
                        self._note_chaos("store_write")
                        raise OSError("chaos: injected store write failure")
                scenario = Scenario.from_dict(job.scenario_doc)
                self.store.record(
                    job.key,
                    scenario,
                    job.cell,
                    job.steps,
                    elapsed_s=job.elapsed_s,
                    stream_ready=stream_ready,
                )
            except Exception:  # noqa: BLE001 - a store failure (disk
                # full, permissions, bad doc) must never take down the
                # serving loop; the result stays in the memory cache.
                self.counters["persist_errors"] += 1

    def _remember_result(
        self, key: str, hit: tuple[dict, list[dict]]
    ) -> None:
        self._result_cache[key] = hit
        self._result_cache.move_to_end(key)
        while len(self._result_cache) > self.result_cache_entries:
            self._result_cache.popitem(last=False)

    # -- job creation ----------------------------------------------------------

    def _new_job_id(self) -> str:
        self._job_seq += 1
        return f"j{self._job_seq:06d}"

    def _cache_lookup(
        self, key: str
    ) -> tuple[dict, list[dict]] | None:
        hit = self._result_cache.get(key)
        if hit is not None:
            self._result_cache.move_to_end(key)
            return hit
        if self.store is not None:
            hit = self.store.lookup(key)
            if hit is not None:
                self._remember_result(key, hit)
        return hit

    def submit(
        self,
        scenario_doc: dict,
        *,
        use_cache: bool | None = None,
        deadline_s: float | None = None,
        client: str | None = None,
        job_id: str | None = None,
        submitted_at: float | None = None,
    ) -> list[JobRecord]:
        """Create jobs for one submitted document (sweeps expand).

        Called on the event loop.  Returns the created job records in
        cell order; cached jobs are born ``done`` with their persisted
        stream preloaded.  ``job_id``/``submitted_at`` are the
        checkpoint-restore overrides: a re-enqueued job keeps the id
        its watchers know and the submission clock its deadline counts
        from.
        """
        scenario = Scenario.from_dict(scenario_doc)
        cells = (
            scenario.expand()
            if isinstance(scenario, BaseSweepScenario)
            else [scenario]
        )
        if use_cache is None:
            use_cache = self.use_cache_default
        records: list[JobRecord] = []
        batch: list[tuple[JobRecord, Scenario]] = []
        for cell in cells:
            key = job_key(cell, self.spec_sha)
            jid = (
                job_id
                if job_id is not None and job_id not in self.jobs
                else self._new_job_id()
            )
            job_id = None  # only the first cell reuses a restored id
            job = JobRecord(
                id=jid,
                scenario_doc=cell.to_dict(),
                key=key,
                cost=estimate_cost(cell),
                max_attempts=self.max_attempts,
                deadline_s=deadline_s,
                client=client,
                bell=asyncio.Event(),
            )
            if submitted_at is not None:
                job.submitted_at = float(submitted_at)
            self.jobs[job.id] = job
            self._job_order.append(job.id)
            self._m_submitted.inc()
            self._spans[job.id] = self.tracer.begin(
                "job",
                job_id=job.id,
                key=key[:12],
                scenario=job.scenario_doc.get("kind"),
            )
            hit = self._cache_lookup(key) if use_cache else None
            if hit is not None:
                cell_doc, steps = hit
                job.cached = True
                job.cell = {
                    k: v
                    for k, v in cell_doc.items()
                    if k not in ("index", "key")
                }
                job.steps = list(steps)
                job.elapsed_s = 0.0
                self.counters["cache_hits"] += 1
                self._m_cache_hits.inc()
                self._finish(job, JobState.DONE)
            elif self.execution == "batched":
                batch.append((job, cell))
            else:
                self.queue.submit(job.id, job.cost)
            records.append(job)
        if batch:
            self._start_batch(batch)
        self._pump()
        return records

    # -- batched execution -----------------------------------------------------

    def _get_batch_twin(self) -> DigitalTwin:
        if self._batch_twin is None:
            from repro.service.warmcache import WarmStateCache

            twin = DigitalTwin(
                self.spec,
                fidelity=self.fidelity,
                warm_cache=WarmStateCache(self.warm_entries),
            )
            if self._surrogate_doc is not None:
                from repro.fastpath.bundle import SurrogateBundle

                twin.use_surrogates(
                    SurrogateBundle.from_doc(self._surrogate_doc)
                )
            self._batch_twin = twin
        return self._batch_twin

    def _start_batch(
        self, batch: list[tuple[JobRecord, Scenario]]
    ) -> None:
        """Launch one submission's uncached cells as a vectorized batch.

        The ``execution="batched"`` analogue of queueing onto the
        worker pool: every cell of the submission becomes a lane of one
        :class:`~repro.batch.engine.BatchedEngine` run in a background
        thread — one sweep, one process, shared warmup — instead of B
        jobs across B worker dispatches.  Step records stream back onto
        the event loop exactly like worker step events, so watchers see
        the same transport either way.
        """
        now = time.time()
        jobs = [job for job, _ in batch]
        scenarios = [cell for _, cell in batch]
        for job in jobs:
            job.state = JobState.RUNNING
            job.attempts += 1
            job.started_at = now
            self._ring(job)
        if self._loop is not None and self._loop.is_running():
            loop = self._loop

            def post(fn, *fn_args) -> None:
                with contextlib.suppress(RuntimeError):
                    loop.call_soon_threadsafe(fn, *fn_args)

            # run_in_executor both schedules the thread and returns the
            # future — nothing to await here; completion flows back via
            # the posted _on_batch_done/_on_batch_error callbacks.
            loop.run_in_executor(
                None, self._execute_batch, jobs, scenarios, post
            )
        else:
            # No running loop (programmatic submit): run inline.
            self._execute_batch(
                jobs, scenarios, lambda fn, *fn_args: fn(*fn_args)
            )

    def _execute_batch(self, jobs, scenarios, post) -> None:
        """Run one batch (executor thread); ``post`` marshals to the loop."""
        from repro.batch import BatchedEngine
        from repro.viz.export import step_record

        def on_step(index: int, step) -> None:
            post(self._on_batch_step, jobs[index], step_record(step))

        t0 = time.perf_counter()
        try:
            engine = BatchedEngine(scenarios, self._get_batch_twin())
            outcomes = engine.run(on_step=on_step)
        except Exception as exc:  # noqa: BLE001 - report, don't die
            post(self._on_batch_error, jobs, f"{type(exc).__name__}: {exc}")
            return
        # Amortized per-cell cost: the lanes ran together, so each
        # cell's share of the batch wall time is the honest figure.
        per_cell = (time.perf_counter() - t0) / max(len(jobs), 1)
        for job, outcome in zip(jobs, outcomes):
            cell = result_to_cell_doc(0, outcome)
            cell.pop("index", None)
            post(self._on_batch_done, job, cell, per_cell)

    def _on_batch_step(self, job: JobRecord, record: dict) -> None:
        if job.state is JobState.RUNNING:
            job.steps.append(record)
            self._m_steps.inc()
            self._ring(job)

    def _on_batch_done(
        self, job: JobRecord, cell: dict, elapsed_s: float
    ) -> None:
        if job.state.terminal:
            return
        if job.id in self._cancel_requested:
            self._finish(job, JobState.CANCELLED)
            return
        if job.id in self._timeout_pending:
            self._finish(job, JobState.TIMEOUT)
            return
        job.cell = cell
        job.elapsed_s = elapsed_s
        self.counters["executed"] += 1
        self._m_job_seconds.observe(elapsed_s)
        self._finish(job, JobState.DONE)
        self._persist(job)

    def _on_batch_error(self, jobs, message: str) -> None:
        for job in jobs:
            if not job.state.terminal:
                job.error = message
                self._finish(job, JobState.FAILED)

    def cancel(self, job_id: str) -> JobRecord:
        job = self.jobs.get(job_id)
        if job is None:
            raise KeyError(job_id)
        if job.state is JobState.QUEUED:
            self.queue.remove(job.id)
            self._finish(job, JobState.CANCELLED)
        elif job.state is JobState.RUNNING:
            self._cancel_requested.add(job.id)
            if job.worker is not None:
                self.pool.cancel(job.worker, job.id)
        return job

    # -- deadlines -------------------------------------------------------------

    def _check_deadlines(self) -> None:
        """Heartbeat duty: expire jobs past their ``deadline_s``."""
        now = time.time()
        for job in list(self.jobs.values()):
            if (
                job.deadline_s is None
                or job.state.terminal
                or job.id in self._timeout_pending
                or job.id in self._checkpointed
            ):
                continue
            if now - job.submitted_at < job.deadline_s:
                continue
            self._expire(job)

    def _expire(self, job: JobRecord) -> None:
        job.error = f"deadline_s={job.deadline_s} exceeded"
        self.tracer.event("job-timeout", job_id=job.id, state=job.state.value)
        if job.state is JobState.QUEUED:
            self.queue.remove(job.id)
            self._finish(job, JobState.TIMEOUT)
        elif job.state is JobState.RUNNING:
            # Ask the worker to stop; its cancel ack (or death) finishes
            # the job as TIMEOUT via ``_timeout_pending``.
            self._timeout_pending.add(job.id)
            if job.worker is not None:
                self.pool.cancel(job.worker, job.id)

    # -- graceful drain --------------------------------------------------------

    def begin_drain(self) -> dict[str, Any]:
        """Stop admitting, checkpoint the queue, finish running jobs.

        Idempotent: the first call flips ``draining`` (admission starts
        rejecting with 503), removes every queued job from the dispatch
        queue into the store checkpoint, and starts the grace timer for
        running jobs.  When the grace window closes — or everything
        finished sooner — still-running jobs are checkpointed too and
        :meth:`request_stop` fires.  The next server started on the
        same store consumes the checkpoint and re-enqueues the parked
        jobs under their original ids.
        """
        if not self.draining:
            self.draining = True
            self.tracer.event("drain-begin")
            self._checkpoint_pending()
            if self._loop is not None and self._loop.is_running():
                self._drain_task = asyncio.ensure_future(self._drain_wait())
        running = sorted(
            j.id for j in self.jobs.values() if j.state is JobState.RUNNING
        )
        return {
            "draining": True,
            "checkpointed": sorted(self._checkpointed),
            "running": running,
        }

    def _checkpoint_pending(self) -> None:
        """Park every queued job in the store checkpoint."""
        if self.store is None:
            return  # storeless drain degrades to finishing everything
        for job in self.jobs.values():
            if (
                job.state is JobState.QUEUED
                and job.id not in self._cancel_requested
            ):
                self.queue.remove(job.id)
                self._checkpointed.add(job.id)
        self._write_checkpoint()

    def _write_checkpoint(self) -> None:
        if self.store is None:
            return
        entries = []
        for job_id in sorted(self._checkpointed):
            job = self.jobs.get(job_id)
            if job is None or job.state.terminal:
                continue
            entries.append(
                {
                    "id": job.id,
                    "scenario": job.scenario_doc,
                    "deadline_s": job.deadline_s,
                    "client": job.client,
                    "submitted_at": job.submitted_at,
                }
            )
        doc = {"job_seq": self._job_seq, "jobs": entries}
        try:
            self.store.save_checkpoint(doc)
        except OSError:
            self.counters["persist_errors"] += 1

    async def _drain_wait(self) -> None:
        """Grace loop: wait out running jobs, then stop the server."""
        deadline = time.monotonic() + self.drain_grace_s
        while time.monotonic() < deadline:
            busy = any(
                not j.state.terminal and j.id not in self._checkpointed
                for j in self.jobs.values()
            )
            if not busy:
                break
            await asyncio.sleep(0.05)
        # Whatever outlived the grace window is parked too: it will
        # re-run from scratch (same content key) after the restart.
        leftovers = [
            j
            for j in self.jobs.values()
            if not j.state.terminal and j.id not in self._checkpointed
        ]
        if self.store is not None and leftovers:
            for job in leftovers:
                if job.state is JobState.QUEUED:
                    self.queue.remove(job.id)
                self._checkpointed.add(job.id)
            self._write_checkpoint()
        self.tracer.event(
            "drain-complete", checkpointed=len(self._checkpointed)
        )
        self.drained = True
        self.request_stop()

    def _restore_checkpoint(self) -> None:
        """Re-enqueue jobs a drained predecessor parked in the store."""
        if self.store is None:
            return
        doc = self.store.take_checkpoint()
        if not doc:
            return
        self._job_seq = max(self._job_seq, int(doc.get("job_seq", 0) or 0))
        restored = 0
        for entry in doc.get("jobs", []):
            if not isinstance(entry, dict) or "scenario" not in entry:
                continue
            try:
                self.submit(
                    entry["scenario"],
                    deadline_s=entry.get("deadline_s"),
                    client=entry.get("client"),
                    job_id=entry.get("id"),
                    submitted_at=entry.get("submitted_at"),
                )
            except ScenarioError:
                continue  # a checkpoint from an older schema: skip
            restored += 1
        if restored:
            self.tracer.event("checkpoint-restored", jobs=restored)

    # -- admission control -----------------------------------------------------

    def _admission_check(
        self, client: str | None
    ) -> tuple[str, int, int] | None:
        """(reason, HTTP status, Retry-After seconds), or None to admit."""
        if self.draining:
            return ("draining", 503, 5)
        if len(self.queue) >= self.max_queue_depth:
            return ("queue_full", 429, 1)
        if client is not None:
            inflight = sum(
                1
                for j in self.jobs.values()
                if j.client == client and not j.state.terminal
            )
            if inflight >= self.max_inflight_per_client:
                return ("client_inflight", 429, 1)
        return None

    # -- HTTP ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await reader.readline()
            if not request:
                return
            try:
                method, target, _ = request.decode("latin-1").split(" ", 2)
            except ValueError:
                await _respond(writer, 400, {"error": "bad request line"})
                return
            headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            body = b""
            length = int(headers.get("content-length", "0") or 0)
            if length:
                body = await reader.readexactly(length)
            await self._route(method, target, headers, body, reader, writer)
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            TimeoutError,
        ):
            pass  # client went away; jobs are unaffected
        finally:
            with contextlib.suppress(Exception):
                writer.close()

    async def _route(
        self,
        method: str,
        target: str,
        headers: dict[str, str],
        body: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        path = target.split("?", 1)[0].rstrip("/") or "/"
        if method == "GET" and path == "/healthz":
            await _respond(writer, 200, self._health_doc())
            return
        if method == "GET" and path == "/metrics":
            await _respond_raw(
                writer,
                200,
                self.metrics.render().encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
            return
        if method == "GET" and path == "/statusz":
            await _respond(writer, 200, self._statusz_doc())
            return
        if method == "GET" and path == "/console":
            await _respond_raw(
                writer,
                200,
                load_console_html().encode("utf-8"),
                "text/html; charset=utf-8",
            )
            return
        if method == "GET" and path == "/api/query":
            await self._api_query(target, writer)
            return
        if method == "GET" and path == "/alertz":
            await _respond(writer, 200, self._alertz_doc())
            return
        if method == "POST" and path == "/jobs":
            await self._post_jobs(headers, body, writer)
            return
        if method == "POST" and path == "/drainz":
            await _respond(writer, 202, self.begin_drain())
            return
        if method == "GET" and path == "/jobs":
            await _respond(
                writer,
                200,
                {
                    "jobs": [
                        self.jobs[jid].summary() for jid in self._job_order
                    ]
                },
            )
            return
        parts = path.strip("/").split("/")
        if parts and parts[0] == "jobs" and len(parts) >= 2:
            job = self.jobs.get(parts[1])
            if job is None:
                await _respond(writer, 404, {"error": f"no job {parts[1]}"})
                return
            tail = parts[2] if len(parts) > 2 else ""
            if method == "GET" and not tail:
                await _respond(writer, 200, {"job": job.summary()})
                return
            if method == "GET" and tail == "result":
                if job.state is not JobState.DONE:
                    await _respond(
                        writer,
                        409,
                        {"error": f"job is {job.state.value}, not done"},
                    )
                    return
                await _respond(
                    writer,
                    200,
                    {
                        "job": job.summary(),
                        "cell": _nulled_nans(job.cell),
                    },
                )
                return
            if method == "POST" and tail == "cancel":
                self.cancel(job.id)
                await _respond(writer, 202, {"job": job.summary()})
                return
            if method == "GET" and tail in ("stream", "watch", "ws"):
                raw = parse_qs(urlsplit(target).query).get(
                    "from_seq", ["0"]
                )[-1]
                try:
                    from_seq = max(0, int(raw))
                except ValueError:
                    await _respond(
                        writer,
                        400,
                        {"error": f"bad from_seq {raw!r}: expected an int"},
                    )
                    return
                if tail == "ws":
                    await self._stream_websocket(
                        job, headers, reader, writer, from_seq=from_seq
                    )
                else:
                    await self._stream_ndjson(job, writer, from_seq=from_seq)
                return
        await _respond(
            writer, 404, {"error": f"no route {method} {path}"}
        )

    async def _api_query(
        self, target: str, writer: asyncio.StreamWriter
    ) -> None:
        """``GET /api/query?metric=&start=&end=&step=&agg=``."""
        if self.history is None:
            await _respond(
                writer,
                400,
                {
                    "error": "telemetry history is disabled (serve with "
                    "metrics on and history_interval > 0)"
                },
            )
            return
        params = {
            k: v[-1] for k, v in parse_qs(urlsplit(target).query).items()
        }
        metric = params.get("metric")
        if not metric:
            await _respond(writer, 400, {"error": "missing ?metric="})
            return
        try:
            kwargs: dict[str, float] = {}
            for key in ("start", "end", "step"):
                if key in params:
                    kwargs[key] = float(params[key])
            doc = self.history.query(
                metric, agg=params.get("agg", "last"), **kwargs
            )
        except (ValueError, ExaDigiTError) as exc:
            await _respond(writer, 400, {"error": str(exc)})
            return
        await _respond(writer, 200, doc)

    def _alertz_doc(self) -> dict[str, Any]:
        if self.alerts is None:
            return {
                "enabled": False,
                "rules": [],
                "alerts": [],
                "firing": 0,
                "evaluations": 0,
                "transitions": [],
            }
        return self.alerts.snapshot()

    def _store_writable(self) -> tuple[bool, str | None]:
        """Probe the store directory with an actual write.

        ``os.access`` lies for privileged processes, so the probe
        creates (and removes) a real file — the same operation
        :meth:`_persist` will need.
        """
        import os

        probe = self.store.path / ".healthz-probe"
        try:
            with probe.open("w", encoding="utf-8") as fh:
                fh.write("ok")
            os.unlink(probe)
            return True, None
        except OSError as exc:
            return False, f"{type(exc).__name__}: {exc}"

    def _health_checks(self) -> dict[str, Any]:
        """The degradable probes behind /healthz: pool, store, loop."""
        alive = self.pool.alive_count()
        lag = self._loop_lag_s()
        checks: dict[str, Any] = {
            "pool": {
                "ok": alive >= 1,
                "alive": alive,
                "configured": self.n_workers,
            },
            "event_loop": {
                "ok": lag < 0.5,
                "lag_s": round(lag, 4),
            },
        }
        if self.store is not None:
            ok, error = self._store_writable()
            store_check: dict[str, Any] = {
                "ok": ok,
                "path": str(self.store.path),
            }
            if error is not None:
                store_check["error"] = error
            checks["store"] = store_check
        self._note_health_transitions(checks)
        return checks

    def _note_health_transitions(self, checks: dict[str, Any]) -> None:
        """Dump the flight recorder when any named check degrades.

        A healthy→degraded flip is a post-mortem moment exactly like a
        worker death: whatever the ring saw leading up to it goes to
        disk before it scrolls away.  The first observation of a check
        sets its baseline without triggering (a server that *boots*
        degraded has no transition to dump).
        """
        for name, check in checks.items():
            ok = bool(check["ok"])
            was = self._check_ok.get(name, ok)
            if was and not ok:
                self.tracer.event(
                    "health-degraded",
                    check=name,
                    detail={k: v for k, v in check.items() if k != "ok"},
                )
                self._dump_flight(f"degraded-{name}")
            elif ok and not was:
                self.tracer.event("health-recovered", check=name)
            self._check_ok[name] = ok

    def _health_doc(self) -> dict[str, Any]:
        checks = self._health_checks()
        doc = {
            "status": (
                "ok"
                if all(c["ok"] for c in checks.values())
                else "degraded"
            ),
            "checks": checks,
            "system": self.spec.name,
            "spec_sha256": self.spec_sha,
            "fidelity": self.fidelity,
            "execution": self.execution,
            "workers": {
                "configured": self.n_workers,
                "alive": self.pool.alive_count(),
            },
            "queue": {
                "depth": len(self.queue),
                "backlogs": self.queue.backlogs(),
                "steals": self.queue.steals,
            },
            "jobs": {
                state.value: sum(
                    1 for j in self.jobs.values() if j.state is state
                )
                for state in JobState
            },
            "counters": dict(self.counters),
            "draining": self.draining,
            "breaker": self.breaker.snapshot(),
        }
        if self.store is not None:
            doc["store"] = {
                "path": str(self.store.path),
                "results": len(self.store),
            }
        return doc

    def _job_seconds_doc(self) -> dict[str, Any]:
        """Job wall-time percentiles from the job-seconds histogram."""
        hist = self._m_job_seconds.child()
        count = int(getattr(hist, "count", 0) or 0)
        doc: dict[str, Any] = {"count": count}
        for label, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
            value = hist.quantile(q) if count else None
            doc[label] = round(value, 4) if value is not None else None
        return doc

    def _statusz_doc(self, *, max_jobs: int = 256) -> dict[str, Any]:
        """The JSON ops snapshot behind /statusz (and `repro top`)."""
        recent = self._job_order[-max_jobs:]
        return {
            "server": self._health_doc(),
            "time": time.time(),
            "url": self.url,
            "jobs_total": len(self._job_order),
            "jobs": [self.jobs[jid].summary() for jid in recent],
            "metrics": self.metrics.snapshot(),
            "history": (
                self.history.stats()
                if self.history is not None
                else disabled_history_stats()
            ),
            "alerts": (
                self.alerts.statusz()
                if self.alerts is not None
                else disabled_alerts_statusz()
            ),
            "job_seconds": self._job_seconds_doc(),
            "resilience": {
                "chaos": self.chaos.snapshot(),
                "breaker": self.breaker.snapshot(),
                "draining": self.draining,
                "drained": self.drained,
                "checkpointed": len(self._checkpointed),
                "pending_respawns": sorted(self._pending_respawn),
            },
            "flight": {
                "capacity": self.flight.capacity,
                "events": len(self.flight),
                "total_emitted": self.flight.total_emitted,
                "dumps": self._flight_dumps,
                "last_dump": self._last_flight_dump,
            },
        }

    async def _post_jobs(
        self,
        headers: dict[str, str],
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            doc = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            await _respond(writer, 400, {"error": f"bad JSON body: {exc}"})
            return
        if not isinstance(doc, dict):
            await _respond(writer, 400, {"error": "body must be an object"})
            return
        client = headers.get("x-repro-client") or None
        rejection = self._admission_check(client)
        if rejection is not None:
            reason, status, retry_after = rejection
            self.counters["admission_rejected"] += 1
            self._m_admission.labels(reason=reason).inc()
            await _respond(
                writer,
                status,
                {"error": f"submission rejected: {reason}", "reason": reason},
                extra_headers={"Retry-After": str(retry_after)},
            )
            return
        scenario_doc = doc.get("scenario", doc)
        use_cache = doc.get("use_cache") if "scenario" in doc else None
        deadline_s = doc.get("deadline_s") if "scenario" in doc else None
        if deadline_s is not None:
            try:
                deadline_s = float(deadline_s)
            except (TypeError, ValueError):
                deadline_s = -1.0
            if deadline_s <= 0:
                await _respond(
                    writer,
                    400,
                    {"error": "deadline_s must be a positive number"},
                )
                return
        try:
            records = self.submit(
                scenario_doc,
                use_cache=use_cache,
                deadline_s=deadline_s,
                client=client,
            )
        except ScenarioError as exc:
            await _respond(writer, 400, {"error": str(exc)})
            return
        await _respond(
            writer,
            201,
            {
                "job": records[0].summary(),
                "jobs": [r.summary() for r in records],
            },
        )

    # -- streaming transports --------------------------------------------------

    async def _stream_job(
        self, job: JobRecord, send_line: SendLine, *, from_seq: int = 0
    ) -> None:
        """The transport-independent watch loop (NDJSON and ws share it).

        Every step line carries a monotonic ``seq`` (``job.seq_base`` +
        buffer index; control events carry none) and ``from_seq`` skips
        the already-delivered prefix, so a reconnecting watcher resumes
        mid-stream bit-identically.  A ``from_seq`` outside the current
        attempt's numbering — an abandoned attempt, or a previous
        server life whose counting restarted — gets an explicit
        ``restart`` event and the full replay from the attempt's base.
        """
        base = job.seq_base
        cursor = 0
        self._m_stream_clients.inc()
        if from_seq:
            self.counters["stream_resumes"] += 1
            self._m_resumes.inc()
            if base <= from_seq <= base + len(job.steps):
                cursor = from_seq - base
            else:
                await send_line(
                    restart_event(
                        job.attempts, "sequence reset; stream restarts"
                    )
                )
        try:
            while True:
                bell = job.bell
                if job.seq_base != base:
                    # The buffered attempt was abandoned (requeue).
                    base = job.seq_base
                    if cursor:
                        await send_line(
                            restart_event(
                                job.attempts + 1,
                                "worker died; job requeued",
                            )
                        )
                    cursor = 0
                while cursor < len(job.steps):
                    await send_line(
                        {**job.steps[cursor], "seq": base + cursor}
                    )
                    cursor += 1
                    if self.chaos.enabled and self.chaos.should(
                        "conn_drop"
                    ):
                        self._note_chaos("conn_drop")
                        raise _ChaosDrop
                if job.state.terminal:
                    await send_line(job.terminal_event())
                    return
                await bell.wait()
        finally:
            self._m_stream_clients.dec()

    async def _stream_ndjson(
        self,
        job: JobRecord,
        writer: asyncio.StreamWriter,
        *,
        from_seq: int = 0,
    ) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()

        async def send_line(doc: dict) -> None:
            payload = (encode_step_line(doc) + "\n").encode("utf-8")
            writer.write(
                f"{len(payload):x}\r\n".encode("ascii")
                + payload
                + b"\r\n"
            )
            await writer.drain()

        try:
            await self._stream_job(job, send_line, from_seq=from_seq)
        except _ChaosDrop:
            # Vanish without the terminal chunk: the client sees a torn
            # transfer, exactly like a mid-stream network failure.
            writer.transport.abort()
            return
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    async def _stream_websocket(
        self,
        job: JobRecord,
        headers: dict[str, str],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        from_seq: int = 0,
    ) -> None:
        key = headers.get("sec-websocket-key")
        if (
            key is None
            or "websocket" not in headers.get("upgrade", "").lower()
        ):
            await _respond(
                writer, 400, {"error": "websocket upgrade required"}
            )
            return
        writer.write(
            (
                "HTTP/1.1 101 Switching Protocols\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Accept: {wsproto.accept_key(key)}\r\n\r\n"
            ).encode("ascii")
        )
        await writer.drain()

        async def send_line(doc: dict) -> None:
            writer.write(wsproto.encode_frame(encode_step_line(doc)))
            await writer.drain()

        stream_task = asyncio.ensure_future(
            self._stream_job(job, send_line, from_seq=from_seq)
        )
        # Mark any stream failure (e.g. the client vanishing between
        # our poll and a send) as retrieved: a watcher dying must never
        # surface as an "exception was never retrieved" warning, even
        # when server shutdown races the handler's own await below.
        stream_task.add_done_callback(
            lambda t: None if t.cancelled() else t.exception()
        )
        frames = wsproto.FrameReader()
        try:
            while not stream_task.done():
                read_task = asyncio.ensure_future(reader.read(4096))
                done, _ = await asyncio.wait(
                    {stream_task, read_task},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if read_task in done:
                    data = read_task.result()
                    if not data:
                        stream_task.cancel()
                        break
                    for frame in frames.feed(data):
                        if frame.opcode == wsproto.OP_CLOSE:
                            stream_task.cancel()
                            break
                        if frame.opcode == wsproto.OP_PING:
                            writer.write(
                                wsproto.encode_frame(
                                    frame.payload, opcode=wsproto.OP_PONG
                                )
                            )
                            await writer.drain()
                else:
                    read_task.cancel()
                    with contextlib.suppress(
                        asyncio.CancelledError, ConnectionError
                    ):
                        await read_task
            try:
                with contextlib.suppress(asyncio.CancelledError):
                    await stream_task
            except _ChaosDrop:
                # No close frame, no goodbye: abort the transport so
                # the watcher sees a dead socket and resumes by seq.
                writer.transport.abort()
                return
            writer.write(
                wsproto.encode_frame(b"", opcode=wsproto.OP_CLOSE)
            )
            await writer.drain()
        finally:
            if not stream_task.done():
                stream_task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await stream_task


_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    429: "Too Many Requests",
    503: "Service Unavailable",
}


async def _respond_raw(
    writer: asyncio.StreamWriter,
    status: int,
    payload: bytes,
    content_type: str,
    extra_headers: dict[str, str] | None = None,
) -> None:
    extras = "".join(
        f"{name}: {value}\r\n"
        for name, value in (extra_headers or {}).items()
    )
    writer.write(
        (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{extras}"
            "Connection: close\r\n\r\n"
        ).encode("ascii")
        + payload
    )
    await writer.drain()


async def _respond(
    writer: asyncio.StreamWriter,
    status: int,
    doc: dict,
    extra_headers: dict[str, str] | None = None,
) -> None:
    await _respond_raw(
        writer,
        status,
        json.dumps(doc).encode("utf-8"),
        "application/json",
        extra_headers,
    )


__all__ = ["TwinServer"]
