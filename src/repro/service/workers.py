"""Process worker pool with work stealing, for the twin service.

Execution model:

- N worker *processes* (one :class:`~repro.scenarios.twin.DigitalTwin`
  each, with a per-process :class:`~repro.service.warmcache.
  WarmStateCache`, so each worker pays the 1800 s cooling warmup once
  per (spec, wet-bulb) and then serves repeat jobs warm);
- a :class:`WorkStealingQueue` in the server process: every worker owns
  a deque, submissions land on the least-backlogged deque (estimated
  cost), and a worker that drains its own deque *steals from the tail*
  of the most-backlogged one — the classic remedy for heterogeneous
  job costs (one 24 h replay must not serialize a queue of millisecond
  surrogate jobs behind it);
- a pull protocol over :mod:`multiprocessing` pipes: the server
  dispatches one job at a time to an idle worker, the worker streams
  ``step`` messages back (one per engine quantum) and finishes with
  ``done`` / ``error`` / ``cancelled``.  A cancel request is polled
  between steps.  A dead worker surfaces as an ``exit`` event; the
  server requeues its in-flight job (attempt-capped) and respawns.

Everything here is transport-agnostic and asyncio-free: the server
bridges reader threads into its event loop.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import traceback
from collections import deque
from typing import Any, Callable

from repro.config.loader import dumps_system, loads_system
from repro.config.schema import SystemSpec
from repro.exceptions import ExaDigiTError
from repro.scenarios.artifacts import result_to_cell_doc
from repro.scenarios.base import Scenario
from repro.scenarios.twin import DigitalTwin
from repro.service.warmcache import WarmStateCache
from repro.viz.export import step_record


class WorkStealingQueue:
    """Per-worker deques with least-loaded placement and tail stealing.

    Pure data structure (no locking — the server mutates it from one
    event-loop thread only).  Costs are the relative estimates of
    :func:`~repro.service.protocol.estimate_cost`; placement picks the
    worker with the smallest backlog sum, and :meth:`take` steals the
    *tail* (largest-position, most-recently-queued) entry of the most
    loaded deque when the taker's own deque is empty — stolen work is
    the work its owner would reach last.
    """

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ExaDigiTError("need at least one worker")
        self.n_workers = n_workers
        self._deques: list[deque[tuple[str, float]]] = [
            deque() for _ in range(n_workers)
        ]
        self.steals = 0

    def backlog(self, worker: int) -> float:
        """Summed cost estimate queued on one worker."""
        return sum(cost for _, cost in self._deques[worker])

    def backlogs(self) -> list[float]:
        return [self.backlog(i) for i in range(self.n_workers)]

    def __len__(self) -> int:
        return sum(len(d) for d in self._deques)

    def submit(self, job_id: str, cost: float) -> int:
        """Queue a job on the least-backlogged worker; returns its index."""
        worker = min(range(self.n_workers), key=self.backlog)
        self._deques[worker].append((job_id, float(cost)))
        return worker

    def requeue(self, job_id: str, cost: float) -> int:
        """Put a job back at the *head* of the least-backlogged deque.

        Requeued jobs (worker died mid-run) go to the front so a
        crash-looping job fails fast at its attempt cap instead of
        aging at the back of the queue.
        """
        worker = min(range(self.n_workers), key=self.backlog)
        self._deques[worker].appendleft((job_id, float(cost)))
        return worker

    def take(self, worker: int) -> str | None:
        """Next job for ``worker``: own head, else steal a victim's tail."""
        own = self._deques[worker]
        if own:
            return own.popleft()[0]
        victim = max(range(self.n_workers), key=self.backlog)
        if self._deques[victim]:
            self.steals += 1
            return self._deques[victim].pop()[0]
        return None

    def remove(self, job_id: str) -> bool:
        """Drop a queued job (cancellation); False if not queued."""
        for dq in self._deques:
            for entry in dq:
                if entry[0] == job_id:
                    dq.remove(entry)
                    return True
        return False


# -- worker process ------------------------------------------------------------


class _CancelJob(Exception):
    """Raised inside the step callback when a cancel request arrives."""


def _drain_control(conn, job_id: str) -> None:
    """Poll for mid-run control messages (cancel); called between steps."""
    while conn.poll():
        msg = conn.recv()
        cmd = msg.get("cmd")
        if cmd == "cancel" and msg.get("job_id") == job_id:
            raise _CancelJob
        # A stale cancel (for a job already finished) or anything else
        # mid-run is dropped; "stop" is honored at the loop boundary by
        # the cancel path too.
        if cmd == "stop":
            raise SystemExit(0)


def _run_job(conn, twin: DigitalTwin, msg: dict[str, Any]) -> None:
    import time

    job_id = msg["job_id"]
    try:
        scenario = Scenario.from_dict(msg["scenario"])
        cache = twin.warm_cache
        hits_before = cache.hits if cache is not None else 0
        t0 = time.perf_counter()

        def on_step(step) -> None:
            conn.send(
                {
                    "event": "step",
                    "job_id": job_id,
                    "record": step_record(step),
                }
            )
            _drain_control(conn, job_id)

        outcome = scenario.run(twin, progress=on_step)
        elapsed = time.perf_counter() - t0
        cell = result_to_cell_doc(0, outcome)
        cell.pop("index", None)
        conn.send(
            {
                "event": "done",
                "job_id": job_id,
                "cell": cell,
                "elapsed_s": elapsed,
                "warm_hit": (
                    cache is not None and cache.hits > hits_before
                ),
            }
        )
    except _CancelJob:
        conn.send({"event": "cancelled", "job_id": job_id})
    except Exception as exc:  # noqa: BLE001 - report, don't die
        conn.send(
            {
                "event": "error",
                "job_id": job_id,
                "message": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
            }
        )


def worker_main(
    conn,
    spec_json: str,
    fidelity: str = "full",
    surrogate_doc: dict | None = None,
    warm_entries: int = 8,
) -> None:
    """Entry point of one worker process.

    Builds the twin once (spec from canonical JSON, optional shared
    surrogate bundle, fresh warm-plant cache) and then serves ``run``
    commands until ``stop`` or pipe EOF.
    """
    spec = loads_system(spec_json)
    twin = DigitalTwin(
        spec, fidelity=fidelity, warm_cache=WarmStateCache(warm_entries)
    )
    if surrogate_doc is not None:
        from repro.fastpath.bundle import SurrogateBundle

        twin.use_surrogates(SurrogateBundle.from_doc(surrogate_doc))
    conn.send({"event": "hello", "pid": os.getpid()})
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return
            cmd = msg.get("cmd")
            if cmd == "stop":
                return
            if cmd == "run":
                _run_job(conn, twin, msg)
            # Stale cancels for finished jobs are dropped silently.
    except SystemExit:
        return


# -- server-side pool ----------------------------------------------------------


class WorkerHandle:
    """Server-side view of one worker process."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: multiprocessing.process.BaseProcess | None = None
        self.conn = None
        self.thread: threading.Thread | None = None
        self.ready = False  # hello received, idle
        self.job_id: str | None = None  # in-flight job
        self.alive = False

    @property
    def idle(self) -> bool:
        return self.alive and self.ready and self.job_id is None


class WorkerPool:
    """Spawn, feed, and supervise the worker processes.

    ``on_event(worker_index, message)`` is invoked from per-worker
    reader threads for every worker message, plus a synthesized
    ``{"event": "exit"}`` when a worker's pipe closes (crash or stop).
    The caller (the server) is responsible for marshalling these into
    its event loop.
    """

    def __init__(
        self,
        spec: SystemSpec,
        n_workers: int,
        *,
        on_event: Callable[[int, dict], None],
        fidelity: str = "full",
        surrogate_doc: dict | None = None,
        warm_entries: int = 8,
        start_method: str = "spawn",
    ) -> None:
        if n_workers < 1:
            raise ExaDigiTError("need at least one worker")
        self._spec_json = dumps_system(spec, indent=None)
        self._fidelity = fidelity
        self._surrogate_doc = surrogate_doc
        self._warm_entries = warm_entries
        self._ctx = multiprocessing.get_context(start_method)
        self._on_event = on_event
        self.stopping = False
        self.workers = [WorkerHandle(i) for i in range(n_workers)]

    def start(self) -> None:
        for handle in self.workers:
            self._spawn(handle)

    def _spawn(self, handle: WorkerHandle) -> None:
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=worker_main,
            args=(
                child,
                self._spec_json,
                self._fidelity,
                self._surrogate_doc,
                self._warm_entries,
            ),
            daemon=True,
            name=f"twin-worker-{handle.index}",
        )
        proc.start()
        child.close()
        handle.process = proc
        handle.conn = parent
        handle.alive = True
        handle.ready = False
        handle.job_id = None
        handle.thread = threading.Thread(
            target=self._reader,
            args=(handle,),
            daemon=True,
            name=f"twin-worker-{handle.index}-reader",
        )
        handle.thread.start()

    def _reader(self, handle: WorkerHandle) -> None:
        conn = handle.conn
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            self._on_event(handle.index, msg)
        handle.alive = False
        self._on_event(handle.index, {"event": "exit"})

    def respawn(self, index: int) -> None:
        """Replace a dead worker with a fresh process."""
        handle = self.workers[index]
        if handle.process is not None and handle.process.is_alive():
            handle.process.terminate()
        self._spawn(handle)

    def dispatch(self, index: int, job_id: str, scenario_doc: dict) -> None:
        handle = self.workers[index]
        handle.job_id = job_id
        handle.conn.send(
            {"cmd": "run", "job_id": job_id, "scenario": scenario_doc}
        )

    def cancel(self, index: int, job_id: str) -> None:
        handle = self.workers[index]
        if handle.alive and handle.job_id == job_id:
            handle.conn.send({"cmd": "cancel", "job_id": job_id})

    def kill(self, index: int) -> bool:
        """SIGKILL one worker (chaos injection); True if it was alive.

        The kill surfaces through the normal supervision path — pipe
        EOF, reader-thread exit, a synthesized ``exit`` event — so the
        server's recovery machinery (requeue, respawn, breaker) sees a
        chaos kill exactly as it would a real crash.
        """
        handle = self.workers[index]
        if handle.process is None or not handle.process.is_alive():
            return False
        handle.process.kill()
        return True

    def alive_count(self) -> int:
        return sum(1 for h in self.workers if h.alive)

    def stop(self, timeout_s: float = 5.0) -> None:
        """Stop every worker: polite stop command, then terminate."""
        self.stopping = True
        for handle in self.workers:
            if handle.alive and handle.conn is not None:
                try:
                    handle.conn.send({"cmd": "stop"})
                except (BrokenPipeError, OSError):
                    pass
        for handle in self.workers:
            if handle.process is not None:
                handle.process.join(timeout=timeout_s)
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=timeout_s)
            handle.alive = False


__all__ = [
    "WorkStealingQueue",
    "WorkerPool",
    "WorkerHandle",
    "worker_main",
]
