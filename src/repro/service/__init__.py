"""Twin-as-a-service: a long-running job server over the digital twin.

The serving layer of the reproduction (the paper's framework runs as a
web service behind its dashboard): an asyncio
:class:`~repro.service.server.TwinServer` accepts declarative
scenario-JSON job submissions over HTTP, executes them on a
work-stealing process worker pool, and streams per-quantum
:class:`~repro.core.engine.StepState` records to any number of
concurrent watchers over NDJSON chunked HTTP or RFC 6455 websocket —
bit-identical to a direct ``scenario.iter_steps(twin)`` run.

Fast paths stack: each worker keeps a
:class:`~repro.service.warmcache.WarmStateCache` so repeat coupled jobs
skip the 1800 s cooling-plant warmup; results are content-addressed
(:func:`~repro.service.protocol.job_key`) and replayed from the
persisted :class:`~repro.service.store.ServiceStore` (an open-ended
:class:`~repro.scenarios.artifacts.CampaignStore`) without simulating;
and ``fidelity="surrogate"`` jobs answer in milliseconds on the
:mod:`repro.fastpath` backend.

Quickstart (in-process; ``repro serve`` runs the same thing as a CLI)::

    from repro.scenarios import SyntheticScenario
    from repro.service import TwinClient, TwinServer

    with TwinServer("frontier", workers=2) as server:
        client = TwinClient(server.url)
        job = client.submit(
            SyntheticScenario(duration_s=1800.0, with_cooling=False)
        )
        steps = client.steps(job["id"])      # streamed, bit-identical
"""

from repro.service.client import TwinClient
from repro.service.protocol import (
    JobRecord,
    JobState,
    estimate_cost,
    job_key,
)
from repro.service.resilience import (
    ChaosPolicy,
    CircuitBreaker,
    RetryPolicy,
)
from repro.service.server import TwinServer
from repro.service.store import ServiceStore
from repro.service.warmcache import WarmStateCache
from repro.service.workers import WorkerPool, WorkStealingQueue

__all__ = [
    "TwinServer",
    "TwinClient",
    "ServiceStore",
    "WarmStateCache",
    "WorkerPool",
    "WorkStealingQueue",
    "JobRecord",
    "JobState",
    "job_key",
    "estimate_cost",
    "ChaosPolicy",
    "CircuitBreaker",
    "RetryPolicy",
]
