"""Resilience primitives for the twin service: chaos, retries, breaker.

Three small, independently-testable pieces that the serving layer
composes into its recovery paths:

- :class:`ChaosPolicy` — seed-deterministic fault injection at named
  sites.  The same discipline :mod:`repro.workloads.faults` applies to
  *simulated* faults (every fault stream is a pure function of a seed)
  applied to the service substrate itself: each site draws from its own
  :func:`repro.seeding.spawn_rng` child stream, so the k-th check of a
  site fires identically for every policy built from the same seed —
  a failing chaos run replays exactly from its seed.  Detached servers
  hold the :data:`NULL_CHAOS` singleton and pay one attribute load per
  site.
- :class:`RetryPolicy` — exponential backoff with decorrelated jitter
  and a hard sleep budget, used by :class:`~repro.service.client.
  TwinClient` for its idempotent verbs (submit/poll/result are safe to
  retry because results are content-addressed by
  :func:`~repro.service.protocol.job_key` — a duplicate submission of
  the same scenario is a cache hit, never a second simulation).
- :class:`CircuitBreaker` — the classic closed → open → half-open
  machine over worker-respawn storms: a burst of worker crashes inside
  the window opens the breaker (no respawns, no dispatch — a broken
  deployment must not fork-bomb the host), a cooldown later one probe
  worker is respawned, and a completed job closes the breaker again.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Iterator

from repro.exceptions import ExaDigiTError
from repro.seeding import spawn_rng

#: Named fault sites and their default per-check firing rates when a
#: :class:`ChaosPolicy` is enabled without explicit rates.  A "check"
#: is one pass through the site's code path (one streamed line for
#: ``conn_drop``, one step event for ``worker_crash``/``loop_stall``,
#: one persist for ``store_write``/``slow_io``).
DEFAULT_RATES: dict[str, float] = {
    "worker_crash": 0.002,
    "conn_drop": 0.01,
    "store_write": 0.05,
    "slow_io": 0.05,
    "loop_stall": 0.002,
}

#: The named fault sites, in a stable order.
SITES: tuple[str, ...] = tuple(DEFAULT_RATES)


class ChaosPolicy:
    """Seed-deterministic fault schedule over the named sites.

    Each site owns an independent ``spawn_rng(seed, "chaos", site)``
    stream, so whether the k-th check of a site fires depends only on
    ``(seed, site, k)`` — never on how checks of *other* sites
    interleave with it.  :meth:`plan` previews a site's schedule
    without consuming it; :meth:`fired` reports which draw indices
    actually fired, which two runs from the same seed must agree on.
    """

    enabled = True

    def __init__(
        self,
        seed: int,
        rates: dict[str, float] | None = None,
        *,
        slow_io_s: float = 0.02,
        stall_s: float = 0.05,
    ) -> None:
        for site in rates or {}:
            if site not in DEFAULT_RATES:
                raise ExaDigiTError(
                    f"unknown chaos site {site!r}; expected one of {SITES}"
                )
        self.seed = int(seed)
        self.rates = {**DEFAULT_RATES, **(rates or {})}
        self.slow_io_s = float(slow_io_s)
        self.stall_s = float(stall_s)
        self._rngs = {
            site: spawn_rng(self.seed, "chaos", site) for site in SITES
        }
        self._checks = {site: 0 for site in SITES}
        self._fired: dict[str, list[int]] = {site: [] for site in SITES}

    def should(self, site: str) -> bool:
        """Whether this check of ``site`` fires (consumes one draw)."""
        rate = self.rates[site]
        index = self._checks[site]
        self._checks[site] = index + 1
        if rate <= 0.0:
            return False
        if float(self._rngs[site].random()) >= rate:
            return False
        self._fired[site].append(index)
        return True

    def plan(self, site: str, n: int) -> tuple[bool, ...]:
        """The first ``n`` outcomes of a site, without consuming them.

        A pure function of ``(seed, site)`` — a fresh stream is drawn,
        so the preview matches what :meth:`should` returns (or already
        returned) for checks ``0..n-1``.
        """
        rate = self.rates[site]
        if rate <= 0.0:
            return (False,) * n
        rng = spawn_rng(self.seed, "chaos", site)
        return tuple(float(rng.random()) < rate for _ in range(n))

    def fired(self, site: str) -> tuple[int, ...]:
        """Draw indices of ``site`` that fired so far (the schedule)."""
        return tuple(self._fired[site])

    def snapshot(self) -> dict[str, Any]:
        """Per-site check/fire counts for ``/statusz``."""
        return {
            "seed": self.seed,
            "sites": {
                site: {
                    "rate": self.rates[site],
                    "checks": self._checks[site],
                    "fired": len(self._fired[site]),
                }
                for site in SITES
            },
        }


class _NullChaos:
    """The disabled policy: one attribute load on every hot path."""

    enabled = False
    slow_io_s = 0.0
    stall_s = 0.0

    def should(self, site: str) -> bool:  # pragma: no cover - guarded
        return False  # by ``.enabled`` checks at every site

    def snapshot(self) -> dict[str, Any]:
        return {}


#: The shared disabled policy (default for every server).
NULL_CHAOS = _NullChaos()


def resolve_chaos(chaos: "ChaosPolicy | int | None") -> "ChaosPolicy | _NullChaos":
    """``None`` → :data:`NULL_CHAOS`, an int seed → default-rate policy."""
    if chaos is None:
        return NULL_CHAOS
    if isinstance(chaos, (ChaosPolicy, _NullChaos)):
        return chaos
    return ChaosPolicy(chaos)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with decorrelated jitter and a sleep budget.

    ``backoffs()`` yields the sleep before each retry: the decorrelated
    jitter recurrence ``sleep = min(cap, uniform(base, prev * mult))``,
    which spreads concurrent clients apart instead of synchronizing
    them into retry waves.  ``max_attempts`` counts *attempts* (so 1
    means no retries) and ``budget_s`` bounds the total time spent
    sleeping regardless of attempt count.  Only idempotent operations
    may be retried — the client enforces that, this class just paces.
    """

    max_attempts: int = 4
    base_s: float = 0.05
    cap_s: float = 2.0
    budget_s: float = 15.0
    multiplier: float = 3.0
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ExaDigiTError("max_attempts must be >= 1")
        if self.base_s <= 0 or self.cap_s < self.base_s:
            raise ExaDigiTError("need 0 < base_s <= cap_s")
        if self.budget_s < 0:
            raise ExaDigiTError("budget_s must be >= 0")

    @classmethod
    def none(cls) -> "RetryPolicy":
        """A policy that never retries (one attempt, zero sleeps)."""
        return cls(max_attempts=1)

    def backoffs(self) -> Iterator[float]:
        """The (unbounded) jittered sleep sequence; callers budget it."""
        rng = random.Random(self.seed)
        prev = self.base_s
        while True:
            prev = min(
                self.cap_s, rng.uniform(self.base_s, prev * self.multiplier)
            )
            yield prev


class CircuitBreaker:
    """Closed → open → half-open over a sliding failure window.

    ``record_failure()`` on every worker crash; ``threshold`` crashes
    inside ``window_s`` open the breaker.  While open,
    ``allow_respawn()`` is False (dead workers stay down, dispatch
    pauses).  ``cooldown_s`` after opening, the next ``allow_respawn()``
    grants exactly one probe; ``record_success()`` (a worker finishing
    a job) closes the breaker, another failure reopens it.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

    def __init__(
        self,
        threshold: int = 3,
        window_s: float = 30.0,
        cooldown_s: float = 5.0,
        *,
        clock=time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ExaDigiTError("threshold must be >= 1")
        self.threshold = threshold
        self.window_s = float(window_s)
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self.state = self.CLOSED
        self._failures: list[float] = []
        self._opened_at = 0.0
        self._probing = False
        self.opens = 0

    def value(self) -> float:
        """Numeric state for the ``repro_breaker_state`` gauge."""
        return {self.CLOSED: 0.0, self.HALF_OPEN: 1.0, self.OPEN: 2.0}[
            self.state
        ]

    def _prune(self, now: float) -> None:
        cutoff = now - self.window_s
        self._failures = [t for t in self._failures if t >= cutoff]

    def record_failure(self) -> None:
        now = self._clock()
        self._failures.append(now)
        self._prune(now)
        if self.state == self.HALF_OPEN:
            # The probe died too: back to open, restart the cooldown.
            self.state = self.OPEN
            self._opened_at = now
            self._probing = False
            self.opens += 1
        elif (
            self.state == self.CLOSED
            and len(self._failures) >= self.threshold
        ):
            self.state = self.OPEN
            self._opened_at = now
            self.opens += 1

    def record_success(self) -> None:
        self.state = self.CLOSED
        self._failures.clear()
        self._probing = False

    def allow_respawn(self) -> bool:
        """Whether a dead worker may be respawned right now."""
        if self.state == self.CLOSED:
            return True
        now = self._clock()
        if self.state == self.OPEN:
            if now - self._opened_at < self.cooldown_s:
                return False
            self.state = self.HALF_OPEN
            self._probing = False
        if not self._probing:  # half-open: exactly one probe at a time
            self._probing = True
            return True
        return False

    def snapshot(self) -> dict[str, Any]:
        return {
            "state": self.state,
            "recent_failures": len(self._failures),
            "opens": self.opens,
        }


__all__ = [
    "ChaosPolicy",
    "CircuitBreaker",
    "DEFAULT_RATES",
    "NULL_CHAOS",
    "RetryPolicy",
    "SITES",
    "resolve_chaos",
]
