"""Programmatic builders for the non-Frontier bundled machines (paper V).

The generalization study of the paper models other liquid-cooled systems
through the same JSON specification: Setonix (Pawsey, HPE Cray EX with
separate CPU and GPU partitions) and Marconi100 (CINECA, IBM AC922 with
Power9 + V100 nodes).  These builders produce the specs that are dumped
into ``repro/config/systems/*.json``; regenerate the bundled files with::

    python -m repro.config.machines

Component power numbers are public-spec approximations (the paper only
demonstrates that the twin generalizes, not exact Table I analogues),
scaled cooling plants included so the full engine + FMU path runs.
"""

from __future__ import annotations

from repro.config.schema import (
    CoolingLoopSpec,
    CoolingSpec,
    CoolingTowerSpec,
    EconomicsSpec,
    HeatExchangerSpec,
    NodeSpec,
    PartitionSpec,
    PumpSpec,
    RackSpec,
    SchedulerSpec,
    SystemSpec,
)


def setonix_spec() -> SystemSpec:
    """Setonix: 1592 CPU-only nodes + 192 MI250X GPU nodes (15 racks).

    Both partitions are Cray EX racks (128 nodes, 8 chassis, 32
    rectifiers — same rectifiers-per-chassis as Frontier, which the
    shared conversion chain requires).
    """
    cpu_partition = PartitionSpec(
        name="setonix-cpu",
        total_nodes=1592,
        node=NodeSpec(
            cpus_per_node=2,
            gpus_per_node=0,
            nics_per_node=1,
            nvme_per_node=1,
            cpu_power_idle_w=95.0,
            cpu_power_max_w=280.0,
            gpu_power_idle_w=0.0,
            gpu_power_max_w=0.0,
            ram_power_w=60.0,
            nvme_power_w=12.0,
            nic_power_w=20.0,
        ),
        rack=RackSpec(
            nodes_per_rack=128,
            blades_per_rack=64,
            chassis_per_rack=8,
            rectifiers_per_rack=32,
            sivocs_per_rack=128,
            switches_per_rack=16,
            switch_power_w=250.0,
        ),
    )
    gpu_partition = PartitionSpec(
        name="setonix-gpu",
        total_nodes=192,
        node=NodeSpec(
            cpus_per_node=1,
            gpus_per_node=8,  # 4 x MI250X = 8 GCDs
            nics_per_node=2,
            nvme_per_node=1,
            cpu_power_idle_w=90.0,
            cpu_power_max_w=280.0,
            gpu_power_idle_w=42.0,
            gpu_power_max_w=300.0,
            ram_power_w=70.0,
            nvme_power_w=12.0,
            nic_power_w=20.0,
        ),
        rack=RackSpec(
            nodes_per_rack=128,
            blades_per_rack=64,
            chassis_per_rack=8,
            rectifiers_per_rack=32,
            sivocs_per_rack=128,
            switches_per_rack=16,
            switch_power_w=250.0,
        ),
    )
    cooling = CoolingSpec(
        num_cdus=4,
        racks_per_cdu=4,
        cdu_loop=CoolingLoopSpec(
            name="cdu",
            volume_m3=0.6,
            supply_setpoint_c=32.0,
            design_flow_m3s=0.0267,
            design_dp_pa=250.0e3,
        ),
        primary_loop=CoolingLoopSpec(
            name="primary",
            volume_m3=25.0,
            supply_setpoint_c=28.0,
            design_flow_m3s=0.08,
            design_dp_pa=280.0e3,
        ),
        tower_loop=CoolingLoopSpec(
            name="tower",
            volume_m3=45.0,
            supply_setpoint_c=24.0,
            design_flow_m3s=0.14,
            design_dp_pa=240.0e3,
        ),
        cdu_pumps=PumpSpec(
            name="CDUP",
            count=2,
            rated_flow_m3s=0.0267,
            rated_head_pa=300.0e3,
            rated_power_w=4350.0,
        ),
        htw_pumps=PumpSpec(
            name="HTWP",
            count=2,
            rated_flow_m3s=0.05,
            rated_head_pa=320.0e3,
            rated_power_w=22000.0,
        ),
        ctw_pumps=PumpSpec(
            name="CTWP",
            count=2,
            rated_flow_m3s=0.08,
            rated_head_pa=280.0e3,
            rated_power_w=28000.0,
        ),
        intermediate_hx=HeatExchangerSpec(name="EHX", count=2, ua_w_per_k=4.0e5),
        cdu_hx=HeatExchangerSpec(name="HEX-1600", count=4, ua_w_per_k=2.5e5),
        cooling_towers=CoolingTowerSpec(
            towers=2,
            cells_per_tower=3,
            fan_power_w=18000.0,
            design_effectiveness=0.65,
            design_approach_c=4.0,
        ),
    )
    return SystemSpec(
        name="setonix",
        partitions=(cpu_partition, gpu_partition),
        cooling=cooling,
        scheduler=SchedulerSpec(policy="fcfs", mean_arrival_s=90.0),
        economics=EconomicsSpec(
            electricity_usd_per_kwh=0.07,
            emission_intensity_lb_per_mwh=1200.0,
        ),
    )


def marconi100_spec() -> SystemSpec:
    """Marconi100: 980 IBM AC922 nodes (2x Power9 + 4x V100, 49 racks)."""
    partition = PartitionSpec(
        name="marconi100",
        total_nodes=980,
        node=NodeSpec(
            cpus_per_node=2,
            gpus_per_node=4,
            nics_per_node=2,
            nvme_per_node=1,
            cpu_power_idle_w=60.0,
            cpu_power_max_w=190.0,
            gpu_power_idle_w=38.0,
            gpu_power_max_w=300.0,
            ram_power_w=70.0,
            nvme_power_w=12.0,
            nic_power_w=20.0,
        ),
        rack=RackSpec(
            nodes_per_rack=20,
            blades_per_rack=20,
            chassis_per_rack=4,
            rectifiers_per_rack=8,
            sivocs_per_rack=20,
            switches_per_rack=2,
            switch_power_w=350.0,
        ),
    )
    cooling = CoolingSpec(
        num_cdus=10,
        racks_per_cdu=5,
        cdu_loop=CoolingLoopSpec(
            name="cdu",
            volume_m3=0.4,
            supply_setpoint_c=30.0,
            design_flow_m3s=0.012,
            design_dp_pa=220.0e3,
        ),
        primary_loop=CoolingLoopSpec(
            name="primary",
            volume_m3=30.0,
            supply_setpoint_c=27.0,
            design_flow_m3s=0.07,
            design_dp_pa=260.0e3,
        ),
        tower_loop=CoolingLoopSpec(
            name="tower",
            volume_m3=55.0,
            supply_setpoint_c=24.0,
            design_flow_m3s=0.12,
            design_dp_pa=230.0e3,
        ),
        cdu_pumps=PumpSpec(
            name="CDUP",
            count=2,
            rated_flow_m3s=0.012,
            rated_head_pa=280.0e3,
            rated_power_w=2600.0,
        ),
        htw_pumps=PumpSpec(
            name="HTWP",
            count=2,
            rated_flow_m3s=0.045,
            rated_head_pa=320.0e3,
            rated_power_w=20000.0,
        ),
        ctw_pumps=PumpSpec(
            name="CTWP",
            count=2,
            rated_flow_m3s=0.07,
            rated_head_pa=280.0e3,
            rated_power_w=25000.0,
        ),
        intermediate_hx=HeatExchangerSpec(name="EHX", count=2, ua_w_per_k=3.5e5),
        cdu_hx=HeatExchangerSpec(name="HEX-800", count=10, ua_w_per_k=1.2e5),
        cooling_towers=CoolingTowerSpec(
            towers=2,
            cells_per_tower=3,  # plant staging needs >= 6 startable cells
            fan_power_w=16000.0,
            design_effectiveness=0.62,
            design_approach_c=4.5,
        ),
    )
    return SystemSpec(
        name="marconi100",
        partitions=(partition,),
        cooling=cooling,
        scheduler=SchedulerSpec(policy="fcfs", mean_arrival_s=120.0),
        economics=EconomicsSpec(
            electricity_usd_per_kwh=0.18,
            emission_intensity_lb_per_mwh=700.0,
        ),
    )


#: Builders for every bundled JSON spec, keyed by file stem.
BUILTIN_BUILDERS = {
    "setonix": setonix_spec,
    "marconi100": marconi100_spec,
}


def regenerate_bundled_specs() -> list[str]:
    """Rewrite ``repro/config/systems/*.json`` from the builders."""
    from pathlib import Path

    from repro.config.frontier import frontier_spec
    from repro.config.loader import dump_system

    out_dir = Path(__file__).resolve().parent / "systems"
    out_dir.mkdir(exist_ok=True)
    written = []
    builders = {"frontier": frontier_spec, **BUILTIN_BUILDERS}
    for name, build in builders.items():
        path = out_dir / f"{name}.json"
        dump_system(build(), path)
        written.append(str(path))
    return written


if __name__ == "__main__":
    for path in regenerate_bundled_specs():
        print(f"wrote {path}")
