"""The Frontier system specification (paper Table I, Figs. 3 and 5).

Frontier: 9472 "Bard Peak" nodes, 74 racks, 25 CDUs serving three racks
each (the last CDU group is short), 64 blades / 128 nodes / 32 rectifiers /
128 SIVOCs / 32 Slingshot switches per rack.  Per-component power values
come from Table I; conversion-chain efficiency anchors are calibrated so
the verification targets of Table III hold (idle 7.24 MW, HPL-core
22.3 MW, peak 28.2 MW).
"""

from __future__ import annotations

from repro.config.schema import (
    CoolingSpec,
    EconomicsSpec,
    NodeSpec,
    PartitionSpec,
    PowerSpec,
    RackSpec,
    SchedulerSpec,
    SystemSpec,
)

#: Total compute nodes in Frontier (paper Table I).
FRONTIER_TOTAL_NODES = 9472

#: Racks in Frontier; 9472 nodes / 128 nodes-per-rack.
FRONTIER_TOTAL_RACKS = 74

#: Cooling distribution units (paper Table I).
FRONTIER_NUM_CDUS = 25


def frontier_node_spec() -> NodeSpec:
    """Node power characteristics from paper Table I / Eq. 3."""
    return NodeSpec(
        cpus_per_node=1,
        gpus_per_node=4,
        nics_per_node=4,
        nvme_per_node=2,
        cpu_power_idle_w=90.0,
        cpu_power_max_w=280.0,
        gpu_power_idle_w=88.0,
        gpu_power_max_w=560.0,
        ram_power_w=74.0,
        nvme_power_w=15.0,
        nic_power_w=20.0,
    )


def frontier_rack_spec() -> RackSpec:
    """Rack composition from paper Table I / Fig. 3."""
    return RackSpec(
        nodes_per_rack=128,
        blades_per_rack=64,
        chassis_per_rack=8,
        rectifiers_per_rack=32,
        sivocs_per_rack=128,
        switches_per_rack=32,
        switch_power_w=250.0,
    )


def frontier_spec() -> SystemSpec:
    """Build the full Frontier :class:`~repro.config.schema.SystemSpec`."""
    partition = PartitionSpec(
        name="frontier",
        total_nodes=FRONTIER_TOTAL_NODES,
        node=frontier_node_spec(),
        rack=frontier_rack_spec(),
    )
    return SystemSpec(
        name="frontier",
        partitions=(partition,),
        power=PowerSpec(),
        cooling=CoolingSpec(num_cdus=FRONTIER_NUM_CDUS, racks_per_cdu=3),
        scheduler=SchedulerSpec(policy="fcfs", mean_arrival_s=138.0),
        economics=EconomicsSpec(),
    )


#: Module-level singleton Frontier spec (immutable, safe to share).
FRONTIER = frontier_spec()
