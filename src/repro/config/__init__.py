"""System configuration: schemas, JSON loading, and built-in machine specs.

The paper's Section V describes generalizing ExaDigiT through JSON input
specifications covering the system architecture, the cooling system, the
scheduler, and the power system.  This package implements that layer:

- :mod:`repro.config.schema` — typed specification dataclasses,
- :mod:`repro.config.loader` — JSON (de)serialization + validation,
- :mod:`repro.config.frontier` — the Frontier spec used throughout the paper.
"""

from repro.config.schema import (
    SystemSpec,
    PartitionSpec,
    NodeSpec,
    RackSpec,
    PowerSpec,
    RectifierSpec,
    SivocSpec,
    CoolingSpec,
    CoolingLoopSpec,
    PumpSpec,
    HeatExchangerSpec,
    CoolingTowerSpec,
    SchedulerSpec,
    EconomicsSpec,
)
from repro.config.loader import (
    load_system,
    loads_system,
    dump_system,
    dumps_system,
    builtin_system_names,
    load_builtin_system,
)
from repro.config.frontier import frontier_spec, FRONTIER

__all__ = [
    "SystemSpec",
    "PartitionSpec",
    "NodeSpec",
    "RackSpec",
    "PowerSpec",
    "RectifierSpec",
    "SivocSpec",
    "CoolingSpec",
    "CoolingLoopSpec",
    "PumpSpec",
    "HeatExchangerSpec",
    "CoolingTowerSpec",
    "SchedulerSpec",
    "EconomicsSpec",
    "load_system",
    "loads_system",
    "dump_system",
    "dumps_system",
    "builtin_system_names",
    "load_builtin_system",
    "frontier_spec",
    "FRONTIER",
]
