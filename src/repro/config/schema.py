"""Typed specification dataclasses for a digital-twin system description.

These mirror the JSON input specification of the generalized ExaDigiT
(paper Section V): one document describes the system architecture, the
power-conversion chain, the cooling plant, the scheduler, and economics.
All quantities are SI unless the field name says otherwise.

The dataclasses are deliberately plain (no behaviour beyond derived
quantities and validation) so they can round-trip through JSON losslessly;
see :mod:`repro.config.loader`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigError


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class NodeSpec:
    """Per-node hardware and power characteristics (paper Table I, Eq. 3).

    Power is linearly interpolated between idle and max with utilization
    for the CPU and GPU; RAM/NVMe/NIC use mean values, as in the paper.
    """

    cpus_per_node: int = 1
    gpus_per_node: int = 4
    nics_per_node: int = 4
    nvme_per_node: int = 2
    cpu_power_idle_w: float = 90.0
    cpu_power_max_w: float = 280.0
    gpu_power_idle_w: float = 88.0
    gpu_power_max_w: float = 560.0
    ram_power_w: float = 74.0
    nvme_power_w: float = 15.0
    nic_power_w: float = 20.0

    def __post_init__(self) -> None:
        _require(self.cpus_per_node >= 0, "cpus_per_node must be >= 0")
        _require(self.gpus_per_node >= 0, "gpus_per_node must be >= 0")
        _require(
            self.cpu_power_idle_w <= self.cpu_power_max_w,
            "CPU idle power must not exceed max power",
        )
        _require(
            self.gpu_power_idle_w <= self.gpu_power_max_w,
            "GPU idle power must not exceed max power",
        )
        for name in ("ram_power_w", "nvme_power_w", "nic_power_w"):
            _require(getattr(self, name) >= 0.0, f"{name} must be >= 0")

    @property
    def idle_power_w(self) -> float:
        """Node power at zero CPU/GPU utilization (Eq. 3 at idle)."""
        return (
            self.cpus_per_node * self.cpu_power_idle_w
            + self.gpus_per_node * self.gpu_power_idle_w
            + self.nics_per_node * self.nic_power_w
            + self.ram_power_w
            + self.nvme_per_node * self.nvme_power_w
        )

    @property
    def max_power_w(self) -> float:
        """Node power at full CPU/GPU utilization (Eq. 3 at peak)."""
        return (
            self.cpus_per_node * self.cpu_power_max_w
            + self.gpus_per_node * self.gpu_power_max_w
            + self.nics_per_node * self.nic_power_w
            + self.ram_power_w
            + self.nvme_per_node * self.nvme_power_w
        )


@dataclass(frozen=True)
class RackSpec:
    """Rack composition (paper Fig. 3 / Table I)."""

    nodes_per_rack: int = 128
    blades_per_rack: int = 64
    chassis_per_rack: int = 8
    rectifiers_per_rack: int = 32
    sivocs_per_rack: int = 128
    switches_per_rack: int = 32
    switch_power_w: float = 250.0

    def __post_init__(self) -> None:
        _require(self.nodes_per_rack > 0, "nodes_per_rack must be positive")
        _require(self.blades_per_rack > 0, "blades_per_rack must be positive")
        _require(self.chassis_per_rack > 0, "chassis_per_rack must be positive")
        _require(
            self.nodes_per_rack % self.chassis_per_rack == 0,
            "nodes_per_rack must be divisible by chassis_per_rack",
        )
        _require(
            self.rectifiers_per_rack % self.chassis_per_rack == 0,
            "rectifiers_per_rack must be divisible by chassis_per_rack",
        )
        _require(self.switch_power_w >= 0.0, "switch_power_w must be >= 0")

    @property
    def nodes_per_chassis(self) -> int:
        return self.nodes_per_rack // self.chassis_per_rack

    @property
    def rectifiers_per_chassis(self) -> int:
        return self.rectifiers_per_rack // self.chassis_per_rack

    @property
    def switch_power_per_rack_w(self) -> float:
        return self.switches_per_rack * self.switch_power_w


@dataclass(frozen=True)
class RectifierSpec:
    """AC->DC active rectifier efficiency curve (paper section III-B1, IV-3).

    ``load_points_w`` / ``efficiency_points`` define an efficiency-vs-output
    curve sampled at anchor loads; the model interpolates monotonically.
    The paper reports a peak efficiency of 96.3 % at 7.5 kW with a 1-2 %
    droop near idle.
    """

    rated_output_w: float = 12000.0
    optimal_load_w: float = 7500.0
    load_points_w: tuple[float, ...] = (
        0.0,
        500.0,
        1000.0,
        2570.0,
        5000.0,
        6400.0,
        7500.0,
        8900.0,
        11040.0,
        13000.0,
    )
    efficiency_points: tuple[float, ...] = (
        0.800,
        0.880,
        0.916,
        0.9450,
        0.9550,
        0.9560,
        0.9630,
        0.9625,
        0.9565,
        0.9520,
    )

    def __post_init__(self) -> None:
        _require(
            len(self.load_points_w) == len(self.efficiency_points),
            "rectifier curve load/efficiency point counts must match",
        )
        _require(len(self.load_points_w) >= 2, "rectifier curve needs >= 2 points")
        _require(
            all(b > a for a, b in zip(self.load_points_w, self.load_points_w[1:])),
            "rectifier curve load points must be strictly increasing",
        )
        _require(
            all(0.0 < e <= 1.0 for e in self.efficiency_points),
            "rectifier efficiencies must be in (0, 1]",
        )
        _require(self.rated_output_w > 0.0, "rated_output_w must be positive")


@dataclass(frozen=True)
class SivocSpec:
    """DC-DC step-down (SIVOC) converter efficiency curve (paper Fig. 3).

    Loads are per-SIVOC output watts; one SIVOC feeds one node in Frontier
    (128 SIVOCs, 128 nodes per rack).
    """

    load_points_w: tuple[float, ...] = (
        0.0,
        300.0,
        626.0,
        1500.0,
        2180.0,
        2704.0,
        3200.0,
    )
    efficiency_points: tuple[float, ...] = (
        0.930,
        0.968,
        0.9757,
        0.9725,
        0.9770,
        0.9775,
        0.9775,
    )

    def __post_init__(self) -> None:
        _require(
            len(self.load_points_w) == len(self.efficiency_points),
            "SIVOC curve load/efficiency point counts must match",
        )
        _require(len(self.load_points_w) >= 2, "SIVOC curve needs >= 2 points")
        _require(
            all(b > a for a, b in zip(self.load_points_w, self.load_points_w[1:])),
            "SIVOC curve load points must be strictly increasing",
        )
        _require(
            all(0.0 < e <= 1.0 for e in self.efficiency_points),
            "SIVOC efficiencies must be in (0, 1]",
        )


@dataclass(frozen=True)
class PowerSpec:
    """Power-distribution chain parameters (paper section III-B)."""

    rectifier: RectifierSpec = field(default_factory=RectifierSpec)
    sivoc: SivocSpec = field(default_factory=SivocSpec)
    #: Nameplate efficiencies quoted in the paper (Eq. 1 discussion).
    nameplate_rectifier_efficiency: float = 0.96
    nameplate_sivoc_efficiency: float = 0.98
    #: Power drawn by each CDU's pumps, W (paper: 8.7 kW per CDU).
    cdu_pump_power_w: float = 8700.0
    #: Fraction of IT power removed by the liquid loop (paper: 0.945).
    cooling_efficiency: float = 0.945
    #: Direct-DC distribution efficiency used by the 380 V DC what-if.
    dc_distribution_efficiency: float = 1.0

    def __post_init__(self) -> None:
        _require(
            0.0 < self.nameplate_rectifier_efficiency <= 1.0,
            "nameplate rectifier efficiency must be in (0, 1]",
        )
        _require(
            0.0 < self.nameplate_sivoc_efficiency <= 1.0,
            "nameplate SIVOC efficiency must be in (0, 1]",
        )
        _require(self.cdu_pump_power_w >= 0.0, "cdu_pump_power_w must be >= 0")
        _require(
            0.0 < self.cooling_efficiency <= 1.0,
            "cooling_efficiency must be in (0, 1]",
        )
        _require(
            0.0 < self.dc_distribution_efficiency <= 1.0,
            "dc_distribution_efficiency must be in (0, 1]",
        )


@dataclass(frozen=True)
class PumpSpec:
    """A facility pump group (e.g. HTWP1-4 or CTWP1-4).

    ``rated_flow_m3s`` and ``rated_head_pa`` define the design point of one
    pump at 100 % speed; ``rated_power_w`` is shaft+motor power there.
    """

    name: str
    count: int
    rated_flow_m3s: float
    rated_head_pa: float
    rated_power_w: float
    min_speed_fraction: float = 0.25

    def __post_init__(self) -> None:
        _require(self.count >= 1, "pump count must be >= 1")
        _require(self.rated_flow_m3s > 0.0, "rated_flow_m3s must be positive")
        _require(self.rated_head_pa > 0.0, "rated_head_pa must be positive")
        _require(self.rated_power_w > 0.0, "rated_power_w must be positive")
        _require(
            0.0 < self.min_speed_fraction < 1.0,
            "min_speed_fraction must be in (0, 1)",
        )


@dataclass(frozen=True)
class HeatExchangerSpec:
    """A counterflow heat exchanger group (EHX1-5 or the HEX-1600s)."""

    name: str
    count: int
    #: Overall conductance UA of one exchanger, W/K.
    ua_w_per_k: float

    def __post_init__(self) -> None:
        _require(self.count >= 1, "heat exchanger count must be >= 1")
        _require(self.ua_w_per_k > 0.0, "ua_w_per_k must be positive")


@dataclass(frozen=True)
class CoolingTowerSpec:
    """Evaporative cooling tower farm (paper: 5 towers x 4 cells)."""

    towers: int = 5
    cells_per_tower: int = 4
    #: Fan power of one cell at 100 % speed, W.
    fan_power_w: float = 30000.0
    #: Tower thermal effectiveness at design flow and full fan speed.
    design_effectiveness: float = 0.65
    #: Design approach to wet-bulb at full load, degC.
    design_approach_c: float = 4.0

    def __post_init__(self) -> None:
        _require(self.towers >= 1, "towers must be >= 1")
        _require(self.cells_per_tower >= 1, "cells_per_tower must be >= 1")
        _require(self.fan_power_w >= 0.0, "fan_power_w must be >= 0")
        _require(
            0.0 < self.design_effectiveness < 1.0,
            "design_effectiveness must be in (0, 1)",
        )

    @property
    def total_cells(self) -> int:
        return self.towers * self.cells_per_tower


@dataclass(frozen=True)
class CoolingLoopSpec:
    """Thermal/hydraulic parameters of one cooling loop."""

    name: str
    #: Total coolant volume participating in the loop's thermal mass, m^3.
    volume_m3: float
    #: Supply temperature setpoint, degC (where applicable).
    supply_setpoint_c: float
    #: Loop design flow rate (total across the loop), m^3/s.
    design_flow_m3s: float
    #: Hydraulic resistance coefficient: dp = k * Q^2 at design flow.
    design_dp_pa: float

    def __post_init__(self) -> None:
        _require(self.volume_m3 > 0.0, "volume_m3 must be positive")
        _require(self.design_flow_m3s > 0.0, "design_flow_m3s must be positive")
        _require(self.design_dp_pa > 0.0, "design_dp_pa must be positive")


@dataclass(frozen=True)
class CoolingSpec:
    """The Central Energy Plant + CDU description (paper Fig. 5)."""

    num_cdus: int = 25
    racks_per_cdu: int = 3
    cdu_loop: CoolingLoopSpec = field(
        default_factory=lambda: CoolingLoopSpec(
            name="cdu",
            volume_m3=0.8,
            supply_setpoint_c=33.0,
            design_flow_m3s=0.0267,  # HEX-1600: 1600 L/min secondary
            design_dp_pa=250.0e3,
        )
    )
    primary_loop: CoolingLoopSpec = field(
        default_factory=lambda: CoolingLoopSpec(
            name="primary",
            volume_m3=120.0,
            supply_setpoint_c=29.0,
            design_flow_m3s=0.347,  # ~5500 gpm HTW loop
            design_dp_pa=300.0e3,
        )
    )
    tower_loop: CoolingLoopSpec = field(
        default_factory=lambda: CoolingLoopSpec(
            name="tower",
            volume_m3=220.0,
            supply_setpoint_c=25.0,
            design_flow_m3s=0.60,  # ~9500 gpm CT loop
            design_dp_pa=250.0e3,
        )
    )
    cdu_pumps: PumpSpec = field(
        default_factory=lambda: PumpSpec(
            name="CDUP",
            count=2,
            rated_flow_m3s=0.0267,
            rated_head_pa=300.0e3,
            rated_power_w=4350.0,  # two pumps -> 8.7 kW per CDU
        )
    )
    htw_pumps: PumpSpec = field(
        default_factory=lambda: PumpSpec(
            name="HTWP",
            count=4,
            rated_flow_m3s=0.13,  # ~2050 gpm each
            rated_head_pa=350.0e3,
            rated_power_w=75000.0,
        )
    )
    ctw_pumps: PumpSpec = field(
        default_factory=lambda: PumpSpec(
            name="CTWP",
            count=4,
            rated_flow_m3s=0.21,  # ~3300 gpm each
            rated_head_pa=300.0e3,
            rated_power_w=90000.0,
        )
    )
    intermediate_hx: HeatExchangerSpec = field(
        default_factory=lambda: HeatExchangerSpec(
            name="EHX", count=5, ua_w_per_k=1.2e6
        )
    )
    cdu_hx: HeatExchangerSpec = field(
        default_factory=lambda: HeatExchangerSpec(
            name="HEX-1600", count=25, ua_w_per_k=3.0e5
        )
    )
    cooling_towers: CoolingTowerSpec = field(default_factory=CoolingTowerSpec)
    #: Cooling-model coupling interval, seconds (paper: 15 s).
    step_seconds: float = 15.0

    def __post_init__(self) -> None:
        _require(self.num_cdus >= 1, "num_cdus must be >= 1")
        _require(self.racks_per_cdu >= 1, "racks_per_cdu must be >= 1")
        _require(self.step_seconds > 0.0, "step_seconds must be positive")


@dataclass(frozen=True)
class SchedulerSpec:
    """Scheduler behaviour (paper section III-B4)."""

    policy: str = "fcfs"
    #: Average job inter-arrival time for Poisson submission, seconds.
    mean_arrival_s: float = 138.0
    #: Queue depth limit (0 = unlimited).
    max_queue_depth: int = 0
    #: Whether replayed telemetry jobs honour recorded start times.
    replay_uses_recorded_start: bool = True

    _KNOWN_POLICIES = ("fcfs", "sjf", "backfill", "priority", "replay")

    def __post_init__(self) -> None:
        _require(
            self.policy in self._KNOWN_POLICIES,
            f"unknown scheduler policy {self.policy!r}; "
            f"expected one of {self._KNOWN_POLICIES}",
        )
        _require(self.mean_arrival_s > 0.0, "mean_arrival_s must be positive")
        _require(self.max_queue_depth >= 0, "max_queue_depth must be >= 0")


@dataclass(frozen=True)
class EconomicsSpec:
    """Energy economics and emissions (paper Eq. 6, section IV-3)."""

    #: Electricity price in USD per kWh.
    electricity_usd_per_kwh: float = 0.09
    #: Emission intensity in lbs CO2 per MWh (paper: 852.3).
    emission_intensity_lb_per_mwh: float = 852.3

    def __post_init__(self) -> None:
        _require(
            self.electricity_usd_per_kwh >= 0.0,
            "electricity_usd_per_kwh must be >= 0",
        )
        _require(
            self.emission_intensity_lb_per_mwh >= 0.0,
            "emission_intensity_lb_per_mwh must be >= 0",
        )


@dataclass(frozen=True)
class PartitionSpec:
    """One partition of a (possibly multi-partition) system (paper V).

    Frontier is a single partition; systems such as Setonix have separate
    CPU-only and CPU+GPU partitions, each with its own node/rack spec.
    """

    name: str
    total_nodes: int
    node: NodeSpec
    rack: RackSpec

    def __post_init__(self) -> None:
        _require(self.total_nodes >= 1, "total_nodes must be >= 1")
        _require(bool(self.name), "partition name must be non-empty")

    @property
    def total_racks(self) -> int:
        """Number of racks, rounding up for a partially filled last rack."""
        per = self.rack.nodes_per_rack
        return -(-self.total_nodes // per)


@dataclass(frozen=True)
class SystemSpec:
    """Complete digital-twin description of one supercomputer."""

    name: str
    partitions: tuple[PartitionSpec, ...]
    power: PowerSpec = field(default_factory=PowerSpec)
    cooling: CoolingSpec = field(default_factory=CoolingSpec)
    scheduler: SchedulerSpec = field(default_factory=SchedulerSpec)
    economics: EconomicsSpec = field(default_factory=EconomicsSpec)

    def __post_init__(self) -> None:
        _require(bool(self.name), "system name must be non-empty")
        _require(len(self.partitions) >= 1, "at least one partition is required")
        names = [p.name for p in self.partitions]
        _require(
            len(names) == len(set(names)), "partition names must be unique"
        )

    @property
    def total_nodes(self) -> int:
        return sum(p.total_nodes for p in self.partitions)

    @property
    def total_racks(self) -> int:
        return sum(p.total_racks for p in self.partitions)

    @property
    def primary_partition(self) -> PartitionSpec:
        """The first (and for Frontier, only) partition."""
        return self.partitions[0]
