"""JSON (de)serialization of system specifications.

Implements the generalization layer of the paper's Section V: a system is
fully described by a JSON document covering the architecture, cooling
plant, scheduler, and power system, so modeling a new machine requires no
code changes.  The loader validates the document against the dataclass
schema and reports precise error paths.
"""

from __future__ import annotations

import dataclasses
import json
from importlib import resources
from pathlib import Path
from typing import Any

from repro.config import schema as _schema
from repro.config.schema import (
    CoolingLoopSpec,
    CoolingSpec,
    CoolingTowerSpec,
    EconomicsSpec,
    HeatExchangerSpec,
    NodeSpec,
    PartitionSpec,
    PowerSpec,
    PumpSpec,
    RackSpec,
    RectifierSpec,
    SchedulerSpec,
    SivocSpec,
    SystemSpec,
)
from repro.exceptions import ConfigError

#: Schema version written into every dumped document.
SCHEMA_VERSION = 1

_NESTED_TYPES = {
    NodeSpec,
    RackSpec,
    RectifierSpec,
    SivocSpec,
    PowerSpec,
    PumpSpec,
    HeatExchangerSpec,
    CoolingTowerSpec,
    CoolingLoopSpec,
    CoolingSpec,
    SchedulerSpec,
    EconomicsSpec,
    PartitionSpec,
}


def _to_jsonable(obj: Any) -> Any:
    """Recursively convert spec dataclasses to JSON-compatible values."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, (list, tuple)):
        return [_to_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise ConfigError(f"cannot serialize value of type {type(obj).__name__}")


def _from_jsonable(cls: type, data: Any, path: str) -> Any:
    """Instantiate dataclass ``cls`` from JSON data with error paths."""
    if not isinstance(data, dict):
        raise ConfigError(f"{path}: expected object, got {type(data).__name__}")
    fields = {f.name: f for f in dataclasses.fields(cls)}
    unknown = set(data) - set(fields)
    if unknown:
        raise ConfigError(f"{path}: unknown keys {sorted(unknown)}")
    kwargs: dict[str, Any] = {}
    for name, value in data.items():
        f = fields[name]
        kwargs[name] = _coerce_field(f, value, f"{path}.{name}")
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ConfigError(f"{path}: {exc}") from exc


def _coerce_field(f: dataclasses.Field, value: Any, path: str) -> Any:
    ftype = f.type if isinstance(f.type, str) else getattr(f.type, "__name__", "")
    # Nested dataclass fields: resolve by annotation name.
    for nested in _NESTED_TYPES:
        if nested.__name__ == ftype or ftype == nested.__name__:
            return _from_jsonable(nested, value, path)
    if ftype.startswith("tuple[PartitionSpec"):
        if not isinstance(value, list):
            raise ConfigError(f"{path}: expected list of partitions")
        return tuple(
            _from_jsonable(PartitionSpec, v, f"{path}[{i}]")
            for i, v in enumerate(value)
        )
    if ftype.startswith("tuple[float"):
        if not isinstance(value, list):
            raise ConfigError(f"{path}: expected list of numbers")
        try:
            return tuple(float(v) for v in value)
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"{path}: non-numeric entry") from exc
    return value


def dumps_system(spec: SystemSpec, *, indent: int | None = 2) -> str:
    """Serialize a :class:`SystemSpec` to a JSON string."""
    doc = {"schema_version": SCHEMA_VERSION, "system": _to_jsonable(spec)}
    return json.dumps(doc, indent=indent, sort_keys=False)


def dump_system(spec: SystemSpec, path: str | Path) -> None:
    """Serialize a :class:`SystemSpec` to a JSON file."""
    Path(path).write_text(dumps_system(spec), encoding="utf-8")


def loads_system(text: str) -> SystemSpec:
    """Parse a :class:`SystemSpec` from a JSON string."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigError(f"invalid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ConfigError("top-level JSON value must be an object")
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ConfigError(
            f"unsupported schema_version {version!r}; expected {SCHEMA_VERSION}"
        )
    if "system" not in doc:
        raise ConfigError("missing 'system' key")
    return _from_jsonable(SystemSpec, doc["system"], "system")


def load_system(path: str | Path) -> SystemSpec:
    """Load a :class:`SystemSpec` from a JSON file."""
    p = Path(path)
    if not p.exists():
        raise ConfigError(f"system spec file not found: {p}")
    return loads_system(p.read_text(encoding="utf-8"))


def builtin_system_names() -> list[str]:
    """Names of JSON system specs shipped with the package.

    An absent or empty ``systems/`` directory yields ``[]`` rather than
    an error, so a source checkout without bundled specs still imports.
    """
    pkg = resources.files("repro.config") / "systems"
    try:
        entries = list(pkg.iterdir())
    except (FileNotFoundError, NotADirectoryError):
        return []
    return sorted(
        p.name[: -len(".json")] for p in entries if p.name.endswith(".json")
    )


def load_builtin_system(name: str) -> SystemSpec:
    """Load a packaged system spec by name (e.g. ``"frontier"``)."""
    pkg = resources.files("repro.config") / "systems" / f"{name}.json"
    try:
        text = pkg.read_text(encoding="utf-8")
    except FileNotFoundError as exc:
        raise ConfigError(
            f"unknown builtin system {name!r}; available: {builtin_system_names()}"
        ) from exc
    return loads_system(text)


__all__ = [
    "SCHEMA_VERSION",
    "dumps_system",
    "dump_system",
    "loads_system",
    "load_system",
    "builtin_system_names",
    "load_builtin_system",
]
