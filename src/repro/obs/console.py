"""Locate the single-file ops console served at ``GET /console``.

The dashboard is one self-contained HTML file, ``docs/console.html`` —
vanilla JS, no build step, no external assets — that polls
``/statusz`` and subscribes to a running job's websocket step feed.
Resolution order:

1. ``REPRO_CONSOLE_HTML`` environment variable (operator override),
2. the repo's ``docs/console.html`` (resolved relative to this file,
   for editable installs and the source tree),
3. a minimal embedded fallback page (installed wheels without docs),

so ``/console`` always answers 200 with *something* useful.
"""

from __future__ import annotations

import os
from pathlib import Path

_FALLBACK = """<!doctype html>
<html><head><meta charset="utf-8"><title>twin console</title></head>
<body style="font-family: monospace; background: #111; color: #ddd;">
<h1>ExaDigiT twin console (fallback)</h1>
<p>docs/console.html was not found next to this install; the full
dashboard ships in the repository. Raw snapshots remain available:</p>
<ul>
<li><a href="/statusz" style="color:#8cf">/statusz</a></li>
<li><a href="/metrics" style="color:#8cf">/metrics</a></li>
<li><a href="/healthz" style="color:#8cf">/healthz</a></li>
</ul>
<pre id="out">loading /statusz ...</pre>
<script>
fetch("/statusz").then(r => r.json()).then(doc => {
  document.getElementById("out").textContent =
      JSON.stringify(doc.server || doc, null, 2);
});
</script>
</body></html>
"""


def console_html_path() -> Path | None:
    """Path of the console page, or None if only the fallback exists."""
    override = os.environ.get("REPRO_CONSOLE_HTML")
    if override:
        path = Path(override)
        if path.is_file():
            return path
    repo_docs = (
        Path(__file__).resolve().parents[3] / "docs" / "console.html"
    )
    if repo_docs.is_file():
        return repo_docs
    return None


def load_console_html() -> str:
    """The console page HTML (operator override > repo docs > fallback)."""
    path = console_html_path()
    if path is not None:
        return path.read_text(encoding="utf-8")
    return _FALLBACK


__all__ = ["console_html_path", "load_console_html"]
