"""Declarative alert rules evaluated against recorded telemetry.

An :class:`AlertRule` names a catalogued metric (histogram series via
their derived ``_count``/``_sum`` names, labeled children via the
recorder's ``name{label=value}`` keys), an aggregation over a trailing
window, a threshold predicate, a ``for_s`` hold duration, and a
severity.  Rules are plain JSON-round-trippable data::

    {"name": "queue-backlog",
     "metric": "repro_service_queue_depth",
     "agg": "max", "window_s": 60, "op": ">", "threshold": 100,
     "for_s": 120, "severity": "warning"}

The :class:`AlertManager` runs the Prometheus-style state machine per
rule — ``ok → pending → firing → resolved`` — against a
:class:`~repro.obs.history.MetricsRecorder`:

- the predicate starts holding → **pending** (breach observed, hold
  timer running);
- it holds for ``for_s`` seconds → **firing**;
- it stops holding while firing → **resolved** (a sticky display state
  that behaves like ``ok``: a fresh breach moves it back to pending);
- it stops holding while only pending → back to **ok**.

Every transition is emitted through the tracer (landing in the server's
:class:`~repro.obs.trace.FlightRecorder`) and kept in a bounded local
history for ``/alertz``; the ``repro_alerts_firing`` gauge tracks the
live firing count.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.exceptions import ExaDigiTError
from repro.obs.catalog import METRICS
from repro.obs.history import AGGREGATIONS, MetricsRecorder
from repro.obs.trace import NULL_TRACER

OPS = {
    ">": lambda v, t: v > t,
    ">=": lambda v, t: v >= t,
    "<": lambda v, t: v < t,
    "<=": lambda v, t: v <= t,
}

SEVERITIES = ("info", "warning", "critical")

#: Alert states (``resolved`` is ``ok`` that remembers having fired).
OK, PENDING, FIRING, RESOLVED = "ok", "pending", "firing", "resolved"


def _base_metric(metric: str) -> str:
    """Catalogue base name: strip a label selector and histogram-derived
    ``_count``/``_sum`` suffixes."""
    base = metric.split("{", 1)[0]
    for suffix in ("_count", "_sum"):
        if base.endswith(suffix):
            root = base[: -len(suffix)]
            if METRICS.get(root, {}).get("kind") == "histogram":
                return root
    return base


@dataclass(frozen=True)
class AlertRule:
    """One declarative SLO rule; validated on construction."""

    name: str
    metric: str
    op: str = ">"
    threshold: float = 0.0
    agg: str = "last"
    window_s: float = 60.0
    for_s: float = 0.0
    severity: str = "warning"

    def __post_init__(self) -> None:
        if not self.name:
            raise ExaDigiTError("alert rule needs a name")
        base = _base_metric(self.metric)
        entry = METRICS.get(base)
        if entry is None:
            raise ExaDigiTError(
                f"alert rule {self.name!r}: metric {self.metric!r} is not "
                f"in the catalogue (repro/obs/catalog.py)"
            )
        stripped = self.metric.split("{", 1)[0]
        if entry["kind"] == "histogram" and stripped == base:
            raise ExaDigiTError(
                f"alert rule {self.name!r}: {base} is a histogram; alert "
                f"on its {base}_count or {base}_sum series"
            )
        if self.op not in OPS:
            raise ExaDigiTError(
                f"alert rule {self.name!r}: op must be one of "
                f"{tuple(OPS)}, got {self.op!r}"
            )
        if self.agg not in AGGREGATIONS:
            raise ExaDigiTError(
                f"alert rule {self.name!r}: agg must be one of "
                f"{AGGREGATIONS}, got {self.agg!r}"
            )
        if self.severity not in SEVERITIES:
            raise ExaDigiTError(
                f"alert rule {self.name!r}: severity must be one of "
                f"{SEVERITIES}, got {self.severity!r}"
            )
        if self.window_s <= 0:
            raise ExaDigiTError(
                f"alert rule {self.name!r}: window_s must be > 0"
            )
        if self.for_s < 0:
            raise ExaDigiTError(
                f"alert rule {self.name!r}: for_s must be >= 0"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "metric": self.metric,
            "op": self.op,
            "threshold": self.threshold,
            "agg": self.agg,
            "window_s": self.window_s,
            "for_s": self.for_s,
            "severity": self.severity,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "AlertRule":
        if not isinstance(doc, dict):
            raise ExaDigiTError(f"alert rule must be an object, got {doc!r}")
        known = {
            "name", "metric", "op", "threshold", "agg", "window_s",
            "for_s", "severity",
        }
        unknown = set(doc) - known
        if unknown:
            raise ExaDigiTError(
                f"alert rule {doc.get('name', '?')!r}: unknown keys "
                f"{sorted(unknown)}"
            )
        kwargs = dict(doc)
        for numeric in ("threshold", "window_s", "for_s"):
            if numeric in kwargs:
                kwargs[numeric] = float(kwargs[numeric])
        return cls(**kwargs)


def load_rules(path: str | Path) -> list[AlertRule]:
    """Parse a rules file: ``{"rules": [...]}`` or a bare JSON list."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ExaDigiTError(f"cannot read alert rules {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ExaDigiTError(f"invalid JSON in {path}: {exc}") from exc
    if isinstance(doc, dict):
        doc = doc.get("rules", [])
    if not isinstance(doc, list):
        raise ExaDigiTError(f"{path}: expected a list or {{'rules': [...]}}")
    rules = [AlertRule.from_dict(entry) for entry in doc]
    names = [r.name for r in rules]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ExaDigiTError(f"{path}: duplicate rule names {dupes}")
    return rules


@dataclass
class _RuleStatus:
    """Mutable evaluation state for one rule."""

    rule: AlertRule
    state: str = OK
    since: float | None = None      # breach start (pending hold timer)
    fired_at: float | None = None
    value: float | None = None
    changed_at: float | None = None
    transitions: int = 0

    def doc(self) -> dict[str, Any]:
        return {
            "rule": self.rule.name,
            "metric": self.rule.metric,
            "severity": self.rule.severity,
            "state": self.state,
            "value": self.value,
            "op": self.rule.op,
            "threshold": self.rule.threshold,
            "agg": self.rule.agg,
            "window_s": self.rule.window_s,
            "for_s": self.rule.for_s,
            "since": self.since,
            "fired_at": self.fired_at,
            "changed_at": self.changed_at,
            "transitions": self.transitions,
        }


class AlertManager:
    """Evaluates rules against a recorder; tracks alert state."""

    def __init__(
        self,
        rules: list[AlertRule],
        recorder: MetricsRecorder,
        *,
        tracer: Any = None,
        registry: Any = None,
        max_transitions: int = 256,
    ) -> None:
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            raise ExaDigiTError("duplicate alert rule names")
        self.recorder = recorder
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._lock = threading.Lock()
        self._status = {r.name: _RuleStatus(r) for r in rules}
        self._transitions: deque = deque(maxlen=max_transitions)
        self.evaluations = 0
        registry = registry if registry is not None else recorder.registry
        self._firing_gauge = registry.gauge("repro_alerts_firing")

    @property
    def rules(self) -> list[AlertRule]:
        return [s.rule for s in self._status.values()]

    def evaluate(self, now: float | None = None) -> list[dict[str, Any]]:
        """One evaluation pass; returns the transitions it caused."""
        if now is None:
            import time

            now = time.time()
        emitted: list[dict[str, Any]] = []
        with self._lock:
            for status in self._status.values():
                rule = status.rule
                value = self.recorder.aggregate(
                    rule.metric, rule.agg, window_s=rule.window_s, now=now
                )
                status.value = value
                breach = value is not None and OPS[rule.op](
                    value, rule.threshold
                )
                new_state = status.state
                if status.state in (OK, RESOLVED):
                    if breach:
                        status.since = now
                        new_state = (
                            FIRING if rule.for_s == 0 else PENDING
                        )
                        if new_state == FIRING:
                            status.fired_at = now
                elif status.state == PENDING:
                    if not breach:
                        new_state = OK
                        status.since = None
                    elif now - status.since >= rule.for_s:
                        new_state = FIRING
                        status.fired_at = now
                elif status.state == FIRING:
                    if not breach:
                        new_state = RESOLVED
                        status.since = None
                if new_state != status.state:
                    status.state = new_state
                    status.changed_at = now
                    status.transitions += 1
                    doc = {
                        "t": now,
                        "rule": rule.name,
                        "state": new_state,
                        "severity": rule.severity,
                        "value": value,
                        "threshold": rule.threshold,
                    }
                    self._transitions.append(doc)
                    emitted.append(doc)
            firing = sum(
                1 for s in self._status.values() if s.state == FIRING
            )
            self.evaluations += 1
        self._firing_gauge.set(firing)
        for doc in emitted:
            self.tracer.event(
                "alert",
                rule=doc["rule"],
                state=doc["state"],
                severity=doc["severity"],
                value=doc["value"],
                threshold=doc["threshold"],
            )
        return emitted

    # -- introspection -----------------------------------------------------

    def firing(self) -> list[dict[str, Any]]:
        with self._lock:
            return [
                s.doc() for s in self._status.values() if s.state == FIRING
            ]

    def snapshot(self) -> dict[str, Any]:
        """The full ``/alertz`` document."""
        with self._lock:
            alerts = [s.doc() for s in self._status.values()]
            transitions = list(self._transitions)
        return {
            "enabled": True,
            "rules": [r.to_dict() for r in self.rules],
            "alerts": alerts,
            "firing": sum(1 for a in alerts if a["state"] == FIRING),
            "evaluations": self.evaluations,
            "transitions": transitions,
        }

    def statusz(self) -> dict[str, Any]:
        """The compact ``/statusz`` alerts section."""
        with self._lock:
            alerts = [s.doc() for s in self._status.values()]
        return {
            "enabled": True,
            "firing": sum(1 for a in alerts if a["state"] == FIRING),
            "alerts": alerts,
        }


def disabled_alerts_statusz() -> dict[str, Any]:
    """The ``/statusz`` alerts section when no manager is attached."""
    return {"enabled": False, "firing": 0, "alerts": []}


__all__ = [
    "AlertManager",
    "AlertRule",
    "OPS",
    "SEVERITIES",
    "OK",
    "PENDING",
    "FIRING",
    "RESOLVED",
    "disabled_alerts_statusz",
    "load_rules",
]
