"""`repro.obs`: the unified telemetry plane (stdlib-only).

- :mod:`repro.obs.registry` — process-wide counters/gauges/histograms
  with Prometheus text rendering and a zero-cost null default.
- :mod:`repro.obs.history` — the MetricsRecorder: bounded multi-tier
  retention of registry samples with range queries and JSONL segments.
- :mod:`repro.obs.alerts` — declarative alert rules and the
  pending → firing → resolved AlertManager state machine.
- :mod:`repro.obs.trace` — structured spans, JSONL sinks, and the
  bounded flight recorder the service dumps on worker crash and
  health-degraded transitions.
- :mod:`repro.obs.catalog` — the documented catalogue every registered
  metric name must appear in.
- :mod:`repro.obs.console` — resolver for the single-file browser
  dashboard served at ``GET /console``.
"""

from repro.obs.alerts import AlertManager, AlertRule, load_rules
from repro.obs.catalog import METRICS, describe
from repro.obs.console import load_console_html
from repro.obs.history import (
    AGGREGATIONS,
    DEFAULT_TIERS,
    MetricsRecorder,
    read_telemetry_segments,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    OVERFLOW_LABEL,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.trace import (
    FlightRecorder,
    JsonlSpanSink,
    NullTracer,
    NULL_TRACER,
    Span,
    Tracer,
)

__all__ = [
    "METRICS",
    "describe",
    "load_console_html",
    "AGGREGATIONS",
    "DEFAULT_TIERS",
    "MetricsRecorder",
    "read_telemetry_segments",
    "AlertManager",
    "AlertRule",
    "load_rules",
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "OVERFLOW_LABEL",
    "get_registry",
    "set_registry",
    "use_registry",
    "FlightRecorder",
    "JsonlSpanSink",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "Tracer",
]
