"""`repro.obs`: the unified telemetry plane (stdlib-only).

- :mod:`repro.obs.registry` — process-wide counters/gauges/histograms
  with Prometheus text rendering and a zero-cost null default.
- :mod:`repro.obs.trace` — structured spans, JSONL sinks, and the
  bounded flight recorder the service dumps on worker crash.
- :mod:`repro.obs.catalog` — the documented catalogue every registered
  metric name must appear in.
- :mod:`repro.obs.console` — resolver for the single-file browser
  dashboard served at ``GET /console``.
"""

from repro.obs.catalog import METRICS, describe
from repro.obs.console import load_console_html
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    OVERFLOW_LABEL,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.trace import (
    FlightRecorder,
    JsonlSpanSink,
    NullTracer,
    NULL_TRACER,
    Span,
    Tracer,
)

__all__ = [
    "METRICS",
    "describe",
    "load_console_html",
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "OVERFLOW_LABEL",
    "get_registry",
    "set_registry",
    "use_registry",
    "FlightRecorder",
    "JsonlSpanSink",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "Tracer",
]
