"""The metric catalogue: every metric this repo may register.

One table, one source of truth.  :mod:`repro.obs.registry` consults it
to fill in help text, label names, kinds, and histogram buckets when an
instrumentation site registers a metric by name, and the tier-1 lint
test (``tests/test_obs_docs.py``) asserts both directions:

- every ``repro_*`` metric-name literal in ``src/repro/`` is listed
  here (no anonymous metrics), and
- every catalogued name appears in ``docs/observability.md`` (no
  undocumented metrics).

Names follow Prometheus conventions: ``repro_<layer>_<what>[_total]``
with ``_total`` reserved for counters and base units (seconds) spelled
out.
"""

from __future__ import annotations

#: Default histogram buckets (seconds) for job wall times: sub-second
#: synthetic cells through multi-minute coupled replays.
JOB_SECONDS_BUCKETS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

#: name -> {kind, help, labels?, buckets?}
METRICS: dict[str, dict] = {
    # -- engine (process-global registry) ---------------------------------
    "repro_engine_runs_total": {
        "kind": "counter",
        "help": "Completed RapsEngine runs (any scenario, any caller).",
    },
    "repro_engine_steps_total": {
        "kind": "counter",
        "help": "Simulation quanta stepped by RapsEngine.iter_steps.",
    },
    "repro_engine_power_evals_total": {
        "kind": "counter",
        "help": "Full vectorized power-pipeline evaluations.",
    },
    "repro_engine_power_reuses_total": {
        "kind": "counter",
        "help": "Power evaluations skipped by change detection.",
    },
    "repro_engine_phase_seconds_total": {
        "kind": "counter",
        "help": "Wall seconds per engine phase (folded from an attached "
                "PhaseProfiler at end of run).",
        "labels": ("phase",),
    },
    # -- batched engine ---------------------------------------------------
    "repro_batch_runs_total": {
        "kind": "counter",
        "help": "Completed BatchedEngine sweeps.",
    },
    "repro_batch_lane_steps_total": {
        "kind": "counter",
        "help": "Active lane-steps executed across batched quanta.",
    },
    "repro_batch_padded_lane_steps_total": {
        "kind": "counter",
        "help": "Padded (idle) lane-steps: allocated lanes minus active "
                "lanes, summed over quanta — the vectorization waste.",
    },
    "repro_batch_lanes_active": {
        "kind": "gauge",
        "help": "Lanes still active in the most recent batched quantum.",
    },
    # -- campaigns / stress suites ---------------------------------------
    "repro_campaign_cells_done_total": {
        "kind": "counter",
        "help": "Campaign cells simulated to completion.",
    },
    "repro_campaign_cells_skipped_total": {
        "kind": "counter",
        "help": "Campaign cells skipped because the store already held "
                "their results (resume).",
    },
    "repro_stress_cells_invalid_total": {
        "kind": "counter",
        "help": "Stress-suite cells whose validation failed.",
    },
    # -- service store ----------------------------------------------------
    "repro_store_appends_total": {
        "kind": "counter",
        "help": "Results appended to the ServiceStore.",
    },
    "repro_store_replays_total": {
        "kind": "counter",
        "help": "Step streams replayed from the ServiceStore by key.",
    },
    # -- twin service -----------------------------------------------------
    "repro_service_jobs_submitted_total": {
        "kind": "counter",
        "help": "Jobs created by POST /jobs (sweeps count per cell).",
    },
    "repro_service_jobs_finished_total": {
        "kind": "counter",
        "help": "Jobs reaching a terminal state, by state.",
        "labels": ("state",),
    },
    "repro_service_jobs_running": {
        "kind": "gauge",
        "help": "Jobs currently running on workers or batch lanes.",
    },
    "repro_service_queue_depth": {
        "kind": "gauge",
        "help": "Jobs waiting in the work-stealing queue.",
    },
    "repro_service_queue_steals_total": {
        "kind": "counter",
        "help": "Cross-backlog steals by idle workers.",
    },
    "repro_service_workers_alive": {
        "kind": "gauge",
        "help": "Worker processes currently alive.",
    },
    "repro_service_worker_crashes_total": {
        "kind": "counter",
        "help": "Worker process exits outside orderly shutdown.",
    },
    "repro_service_worker_respawns_total": {
        "kind": "counter",
        "help": "Workers respawned after a crash (cap-limited).",
    },
    "repro_service_requeues_total": {
        "kind": "counter",
        "help": "In-flight jobs requeued after their worker died.",
    },
    "repro_service_cache_hits_total": {
        "kind": "counter",
        "help": "Submissions served from the content-addressed result "
                "cache without simulating.",
    },
    "repro_service_warm_hits_total": {
        "kind": "counter",
        "help": "Executed jobs that reused a warm cooling-plant state.",
    },
    "repro_service_warm_misses_total": {
        "kind": "counter",
        "help": "Executed jobs that paid the full cooling warmup.",
    },
    "repro_service_job_seconds": {
        "kind": "histogram",
        "help": "Per-job wall time as measured by the worker (cached "
                "replays excluded).",
        "buckets": JOB_SECONDS_BUCKETS,
    },
    "repro_service_stream_clients": {
        "kind": "gauge",
        "help": "Currently connected step-stream watchers (NDJSON + ws).",
    },
    "repro_service_steps_streamed_total": {
        "kind": "counter",
        "help": "Step records received from workers and batch lanes.",
    },
    "repro_service_loop_lag_seconds": {
        "kind": "gauge",
        "help": "Event-loop scheduling lag measured by the heartbeat "
                "probe (0 when responsive).",
    },
    # -- service resilience ------------------------------------------------
    "repro_retries_total": {
        "kind": "counter",
        "help": "Client-side retries of idempotent service operations "
                "(TwinClient RetryPolicy), by operation.",
        "labels": ("op",),
    },
    "repro_admission_rejected_total": {
        "kind": "counter",
        "help": "Submissions rejected by admission control (429/503 + "
                "Retry-After), by reason: queue_full, client_inflight, "
                "draining.",
        "labels": ("reason",),
    },
    "repro_breaker_state": {
        "kind": "gauge",
        "help": "Worker-respawn circuit breaker state: 0 closed, "
                "1 half-open, 2 open.",
    },
    "repro_jobs_timeout_total": {
        "kind": "counter",
        "help": "Jobs cancelled because their deadline_s expired.",
    },
    "repro_service_draining": {
        "kind": "gauge",
        "help": "1 while the server is draining (admission closed), "
                "else 0.",
    },
    "repro_chaos_injected_total": {
        "kind": "counter",
        "help": "Faults injected by an enabled ChaosPolicy, by site.",
        "labels": ("site",),
    },
    "repro_stream_resumes_total": {
        "kind": "counter",
        "help": "Watch streams resumed mid-job via ?from_seq=.",
    },
    # -- history / alerting ------------------------------------------------
    "repro_history_samples_total": {
        "kind": "counter",
        "help": "Registry snapshots taken by the MetricsRecorder.",
    },
    "repro_alerts_firing": {
        "kind": "gauge",
        "help": "Alert rules currently in the firing state.",
    },
}


def describe(name: str) -> dict:
    """Catalogue entry for ``name`` (empty dict when uncatalogued)."""
    return METRICS.get(name, {})


__all__ = ["METRICS", "JOB_SECONDS_BUCKETS", "describe"]
