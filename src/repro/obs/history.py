"""Telemetry history: bounded retention + range queries over a registry.

The registry (:mod:`repro.obs.registry`) answers "what is the value
*now*"; this module answers "what happened over the last hour".  A
:class:`MetricsRecorder` samples a registry on a fixed interval and
retains the samples in bounded in-memory rings at three downsampled
tiers::

    raw   — every sample, (t, value) pairs        (default 10 min @ 1 s)
    10s   — one aggregate bucket per 10 seconds   (default 2 h)
    60s   — one aggregate bucket per 60 seconds   (default 24 h)

Each downsampled bucket keeps ``(last, min, max, sum, count)`` so any
of the supported aggregations can be answered from any tier without
re-reading raw data.  Range queries pick the coarsest tier that still
resolves the requested ``step`` and reaches back to ``start``::

    recorder.query("repro_service_queue_depth",
                   start=-300, step=10, agg="avg")

Aggregations: ``last`` (gauge-style), ``avg``, ``max``, and ``rate``
(per-second delta across each step window — the counter aggregation).

Series keys are flat strings: an unlabeled metric samples under its
name; a labeled child under ``name{label=value,...}``; a histogram
contributes derived ``name_count`` and ``name_sum`` series (from which
``rate`` gives throughput and mean latency trends).

When given a directory the recorder also persists every sample as a
JSONL line in rotating segment files (``segment-000001.jsonl`` …),
bounded in count, so a restarted server can preload recent history.

Everything is stdlib; sampling takes one lock and is cheap enough to
run from an asyncio task at sub-second intervals (the obs bench guards
the detached-vs-recording ratio).
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path
from typing import Any, Iterator

from repro.exceptions import ExaDigiTError

#: Supported range-query aggregations.
AGGREGATIONS = ("last", "avg", "max", "rate")

#: Default retention tiers: (label, bucket period seconds, capacity).
#: Period 0 marks the raw tier (one entry per sample).
DEFAULT_TIERS = (
    ("raw", 0.0, 600),
    ("10s", 10.0, 720),
    ("60s", 60.0, 1440),
)

#: JSONL persistence: lines per segment file / retained segment files.
SEGMENT_LINES = 512
SEGMENT_KEEP = 16


def _series_key(name: str, labelnames: tuple, key: tuple) -> str:
    if not key:
        return name
    inner = ",".join(f"{n}={v}" for n, v in zip(labelnames, key))
    return f"{name}{{{inner}}}"


class _Bucket:
    """One downsampled aggregate bucket."""

    __slots__ = ("start", "t", "last", "min", "max", "sum", "count")

    def __init__(self, start: float, t: float, value: float) -> None:
        self.start = start
        self.t = t
        self.last = value
        self.min = value
        self.max = value
        self.sum = value
        self.count = 1

    def add(self, t: float, value: float) -> None:
        self.t = t
        self.last = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.sum += value
        self.count += 1


class MetricsRecorder:
    """Samples a registry into bounded multi-tier rings; answers queries.

    Time never comes from the wall clock implicitly during tests: every
    entry point takes an explicit ``now=`` (falling back to
    ``time.time()``), so retention and query behaviour is fully
    deterministic under test.
    """

    def __init__(
        self,
        registry: Any,
        *,
        interval_s: float = 1.0,
        tiers: tuple = DEFAULT_TIERS,
        persist_dir: str | Path | None = None,
        segment_lines: int = SEGMENT_LINES,
        segment_keep: int = SEGMENT_KEEP,
        preload: bool = True,
    ) -> None:
        if interval_s <= 0:
            raise ExaDigiTError("history interval_s must be > 0")
        self.registry = registry
        self.interval_s = float(interval_s)
        self.tiers = tuple(tiers)
        if not self.tiers or self.tiers[0][1] != 0.0:
            raise ExaDigiTError("tiers must start with the raw tier (period 0)")
        self.samples_total = 0
        self._lock = threading.Lock()
        # series key -> [deque per tier]; raw entries are (t, value)
        # tuples, downsampled entries are _Bucket objects.
        self._series: dict[str, list[deque]] = {}
        self._last_sample_t: float | None = None
        self._samples_counter = registry.counter("repro_history_samples_total")
        # -- persistence ---------------------------------------------------
        self.persist_dir = Path(persist_dir) if persist_dir else None
        self.segment_lines = int(segment_lines)
        self.segment_keep = int(segment_keep)
        self._segment_index = 0
        self._segment_count = 0
        self._segment_file = None
        if self.persist_dir is not None:
            self.persist_dir.mkdir(parents=True, exist_ok=True)
            existing = sorted(self.persist_dir.glob("segment-*.jsonl"))
            if existing:
                self._segment_index = int(existing[-1].stem.split("-")[1])
                if preload:
                    self._preload(existing)

    # -- sampling ----------------------------------------------------------

    def _collect(self) -> dict[str, float]:
        """Flatten the registry's current state into series values."""
        out: dict[str, float] = {}
        for fam in self.registry.families():
            for key, child in fam.samples():
                if fam.kind == "histogram":
                    out[_series_key(
                        fam.name + "_count", fam.labelnames, key
                    )] = float(child.count)
                    out[_series_key(
                        fam.name + "_sum", fam.labelnames, key
                    )] = float(child.sum)
                else:
                    out[_series_key(fam.name, fam.labelnames, key)] = float(
                        child.get()
                    )
        return out

    def sample(self, now: float | None = None) -> int:
        """Take one sample of every series; returns the series count."""
        if now is None:
            import time

            now = time.time()
        values = self._collect()
        with self._lock:
            self._ingest(now, values)
            if self.persist_dir is not None:
                self._persist(now, values)
        self.samples_total += 1
        self._samples_counter.inc()
        return len(values)

    def _ingest(self, now: float, values: dict[str, float]) -> None:
        self._last_sample_t = now
        for name, value in values.items():
            rings = self._series.get(name)
            if rings is None:
                rings = self._series[name] = [
                    deque(maxlen=cap) for _, _, cap in self.tiers
                ]
            rings[0].append((now, value))
            for i, (_, period, _) in enumerate(self.tiers):
                if period <= 0:
                    continue
                start = (now // period) * period
                ring = rings[i]
                if ring and ring[-1].start == start:
                    ring[-1].add(now, value)
                else:
                    ring.append(_Bucket(start, now, value))

    # -- persistence -------------------------------------------------------

    def _persist(self, now: float, values: dict[str, float]) -> None:
        try:
            if (
                self._segment_file is None
                or self._segment_count >= self.segment_lines
            ):
                self._rotate()
            self._segment_file.write(
                json.dumps({"t": now, "v": values}) + "\n"
            )
            self._segment_file.flush()
            self._segment_count += 1
        except OSError:
            # Persistence is best effort: a torn store must not take the
            # in-memory history (or the server) down with it.
            self._segment_file = None

    def _rotate(self) -> None:
        if self._segment_file is not None:
            self._segment_file.close()
        self._segment_index += 1
        path = self.persist_dir / f"segment-{self._segment_index:06d}.jsonl"
        self.persist_dir.mkdir(parents=True, exist_ok=True)
        self._segment_file = path.open("w", encoding="utf-8")
        self._segment_count = 0
        segments = sorted(self.persist_dir.glob("segment-*.jsonl"))
        for stale in segments[: max(0, len(segments) - self.segment_keep)]:
            try:
                stale.unlink()
            except OSError:
                pass

    def _preload(self, segments: list[Path]) -> None:
        for doc in read_telemetry_segments(segments):
            try:
                self._ingest(float(doc["t"]), doc["v"])
            except (KeyError, TypeError, ValueError):
                continue

    def close(self) -> None:
        with self._lock:
            if self._segment_file is not None:
                self._segment_file.close()
                self._segment_file = None

    # -- queries -----------------------------------------------------------

    def series_names(self) -> list[str]:
        with self._lock:
            return sorted(self._series)

    def latest(self, metric: str) -> float | None:
        """The most recent raw sample of ``metric`` (None if unseen)."""
        with self._lock:
            rings = self._series.get(metric)
            if not rings or not rings[0]:
                return None
            return rings[0][-1][1]

    def _pick_tier(self, rings: list[deque], start: float, step: float) -> int:
        """Coarsest tier resolving ``step`` that reaches back to ``start``
        (falling back to whichever candidate reaches farthest back)."""
        candidates = [
            i
            for i, (_, period, _) in enumerate(self.tiers)
            if period <= 0 or period <= step
        ]
        best = candidates[0]
        best_oldest = None
        for i in reversed(candidates):
            ring = rings[i]
            if not ring:
                continue
            entry = ring[0]
            oldest = entry[0] if i == 0 else entry.start
            if oldest <= start:
                return i
            if best_oldest is None or oldest < best_oldest:
                best, best_oldest = i, oldest
        return best

    def query(
        self,
        metric: str,
        *,
        start: float | None = None,
        end: float | None = None,
        step: float | None = None,
        agg: str = "last",
        now: float | None = None,
    ) -> dict[str, Any]:
        """Range query: ``agg`` of ``metric`` per ``step`` window.

        ``start``/``end`` are epoch seconds; non-positive values are
        relative to ``now`` (so ``start=-300`` means "the last five
        minutes").  Windows with no samples yield ``None`` points.
        ``rate`` is the per-second delta across each window (clamped at
        zero, so counter resets read as silence, not negative spikes).
        """
        if agg not in AGGREGATIONS:
            raise ExaDigiTError(
                f"unknown agg {agg!r}; expected one of {AGGREGATIONS}"
            )
        if now is None:
            import time

            now = self._last_sample_t if self._last_sample_t else time.time()
        end = now + end if end is not None and end <= 0 else end
        if end is None:
            end = now
        start = end + start if start is not None and start <= 0 else start
        if start is None:
            start = end - 300.0
        if step is None or step <= 0:
            step = max((end - start) / 120.0, self.interval_s)
        if end <= start:
            raise ExaDigiTError("query needs end > start")
        n = min(int((end - start) / step + 0.999999), 10_000)
        with self._lock:
            rings = self._series.get(metric)
            if not rings:
                return {
                    "metric": metric, "agg": agg, "start": start,
                    "end": end, "step": step, "tier": None, "points": [],
                }
            tier_i = self._pick_tier(rings, start, step)
            entries = list(rings[tier_i])
        tier_label, period, _ = self.tiers[tier_i]
        # Normalize both tiers to (t, last, min, max, sum, count) rows.
        if tier_i == 0:
            rows = [(t, v, v, v, v, 1) for t, v in entries]
        else:
            rows = [
                (b.t, b.last, b.min, b.max, b.sum, b.count) for b in entries
            ]
        points: list[list] = []
        row_i = 0
        # Last value *before* the first window, for the first rate delta.
        prev_t: float | None = None
        prev_last: float | None = None
        while row_i < len(rows) and rows[row_i][0] < start:
            prev_t, prev_last = rows[row_i][0], rows[row_i][1]
            row_i += 1
        for w in range(n):
            w_start = start + w * step
            w_end = min(w_start + step, end + 1e-9)
            w_rows = []
            while row_i < len(rows) and rows[row_i][0] < w_end:
                if rows[row_i][0] >= w_start:
                    w_rows.append(rows[row_i])
                row_i += 1
            value: float | None = None
            if w_rows:
                if agg == "last":
                    value = w_rows[-1][1]
                elif agg == "avg":
                    total = sum(r[4] for r in w_rows)
                    count = sum(r[5] for r in w_rows)
                    value = total / count if count else None
                elif agg == "max":
                    value = max(r[3] for r in w_rows)
                elif agg == "rate":
                    t1, v1 = w_rows[-1][0], w_rows[-1][1]
                    if prev_last is not None and t1 > prev_t:
                        value = max(0.0, (v1 - prev_last) / (t1 - prev_t))
                    elif len(w_rows) > 1:
                        t0, v0 = w_rows[0][0], w_rows[0][1]
                        if t1 > t0:
                            value = max(0.0, (v1 - v0) / (t1 - t0))
                prev_t, prev_last = w_rows[-1][0], w_rows[-1][1]
            points.append([round(w_start, 3), value])
        return {
            "metric": metric,
            "agg": agg,
            "start": start,
            "end": end,
            "step": step,
            "tier": tier_label,
            "points": points,
        }

    def aggregate(
        self,
        metric: str,
        agg: str = "last",
        *,
        window_s: float = 60.0,
        now: float | None = None,
    ) -> float | None:
        """One aggregated value over the trailing ``window_s`` — the
        single-window form of :meth:`query`, used by alert rules."""
        if now is None:
            now = self._last_sample_t
        if now is None:
            return None
        doc = self.query(
            metric,
            start=now - window_s,
            end=now + 1e-6,
            step=window_s + 2e-6,
            agg=agg,
            now=now,
        )
        for _, value in reversed(doc["points"]):
            if value is not None:
                return value
        return None

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Summary for ``/statusz``: sizes, coverage, segment count."""
        with self._lock:
            series = len(self._series)
            tiers = []
            for i, (label, period, cap) in enumerate(self.tiers):
                entries = sum(len(r[i]) for r in self._series.values())
                oldest = None
                for rings in self._series.values():
                    ring = rings[i]
                    if ring:
                        t = ring[0][0] if i == 0 else ring[0].start
                        oldest = t if oldest is None else min(oldest, t)
                tiers.append(
                    {
                        "tier": label,
                        "period_s": period,
                        "capacity": cap,
                        "entries": entries,
                        "oldest": oldest,
                    }
                )
        segments = 0
        if self.persist_dir is not None:
            try:
                segments = len(list(self.persist_dir.glob("segment-*.jsonl")))
            except OSError:
                segments = 0
        return {
            "enabled": True,
            "interval_s": self.interval_s,
            "samples": self.samples_total,
            "series": series,
            "tiers": tiers,
            "segments": segments,
        }


def disabled_history_stats() -> dict[str, Any]:
    """The ``/statusz`` history section when no recorder is attached —
    same keys as :meth:`MetricsRecorder.stats` so consumers never branch
    on shape."""
    return {
        "enabled": False,
        "interval_s": 0.0,
        "samples": 0,
        "series": 0,
        "tiers": [],
        "segments": 0,
    }


def read_telemetry_segments(
    segments: list[Path] | None = None, *, directory: str | Path | None = None
) -> Iterator[dict]:
    """Yield persisted sample docs ``{"t": ..., "v": {...}}`` in order."""
    if segments is None:
        if directory is None:
            raise ExaDigiTError("need segments or directory")
        segments = sorted(Path(directory).glob("segment-*.jsonl"))
    for path in segments:
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            continue
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                continue


__all__ = [
    "AGGREGATIONS",
    "DEFAULT_TIERS",
    "MetricsRecorder",
    "disabled_history_stats",
    "read_telemetry_segments",
]
