"""Structured trace spans and the crash flight recorder.

A :class:`Tracer` turns ad-hoc timing into structured events: every
span has a process-unique id, a parent id (tracked through a
contextvar for ``with tracer.span(...)`` nesting), a monotonic
timestamp for duration math, and a wall-clock timestamp for log
correlation.  Sinks are anything with an ``emit(dict)`` method; two
ship here:

- :class:`JsonlSpanSink` — append-only JSONL file, one event per line.
- :class:`FlightRecorder` — a bounded in-memory ring buffer of the
  most recent events.  :class:`~repro.service.server.TwinServer` keeps
  one and dumps it to the store on worker crash, so a post-mortem
  starts from what the server *saw*, not from scratch.

Event documents::

    {"kind": "span-start", "name": "job", "span_id": "s000001",
     "parent_id": null, "t_mono": 12.345, "t_wall": 1699...,
     "job_id": "j000001"}
    {"kind": "span-end", "name": "job", "span_id": "s000001",
     "t_mono": 13.345, "t_wall": 1699..., "dur_s": 1.0,
     "status": "ok"}
    {"kind": "event", "name": "worker-exit", "t_mono": ...,
     "t_wall": ..., "worker": 1}
"""

from __future__ import annotations

import contextvars
import itertools
import json
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator


class FlightRecorder:
    """Bounded ring buffer of recent trace events (newest wins)."""

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self.total_emitted = 0
        self._ring: deque[dict] = deque(maxlen=capacity)

    def emit(self, event: dict) -> None:
        self.total_emitted += 1
        self._ring.append(event)

    def events(self) -> list[dict]:
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def clear(self) -> None:
        self._ring.clear()

    def dump(self, path: str | Path) -> Path:
        """Write the buffered events to ``path`` as JSONL."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as fh:
            for event in self._ring:
                fh.write(json.dumps(event) + "\n")
        return path


class JsonlSpanSink:
    """Append trace events to a JSONL file, one document per line."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")

    def emit(self, event: dict) -> None:
        self._fh.write(json.dumps(event) + "\n")
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "JsonlSpanSink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class Span:
    """One in-flight span handle (returned by :meth:`Tracer.begin`)."""

    __slots__ = ("name", "span_id", "parent_id", "t0_mono", "attrs", "ended")

    def __init__(
        self,
        name: str,
        span_id: str,
        parent_id: str | None,
        t0_mono: float,
        attrs: dict,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.t0_mono = t0_mono
        self.attrs = attrs
        self.ended = False


_current_span: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


class Tracer:
    """Emit span-start/span-end/event documents to one or more sinks."""

    def __init__(self, *sinks: Any) -> None:
        self.sinks = list(sinks)
        self._ids = itertools.count(1)

    def add_sink(self, sink: Any) -> None:
        self.sinks.append(sink)

    def _emit(self, doc: dict) -> None:
        for sink in self.sinks:
            sink.emit(doc)

    def event(self, name: str, **attrs: Any) -> dict:
        """One instantaneous event (no duration)."""
        doc = {
            "kind": "event",
            "name": name,
            "t_mono": time.monotonic(),
            "t_wall": time.time(),
            **attrs,
        }
        self._emit(doc)
        return doc

    def begin(
        self, name: str, *, parent: Span | str | None = None, **attrs: Any
    ) -> Span:
        """Open a span manually (for callback-driven lifecycles)."""
        parent_id = (
            parent.span_id
            if isinstance(parent, Span)
            else parent if parent is not None else _current_span.get()
        )
        span = Span(
            name,
            f"s{next(self._ids):06d}",
            parent_id,
            time.monotonic(),
            attrs,
        )
        self._emit(
            {
                "kind": "span-start",
                "name": name,
                "span_id": span.span_id,
                "parent_id": parent_id,
                "t_mono": span.t0_mono,
                "t_wall": time.time(),
                **attrs,
            }
        )
        return span

    def end(self, span: Span, *, status: str = "ok", **attrs: Any) -> dict:
        """Close a span opened with :meth:`begin` (idempotent)."""
        if span.ended:
            return {}
        span.ended = True
        now = time.monotonic()
        doc = {
            "kind": "span-end",
            "name": span.name,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "t_mono": now,
            "t_wall": time.time(),
            "dur_s": now - span.t0_mono,
            "status": status,
            **attrs,
        }
        self._emit(doc)
        return doc

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """``with``-scoped span; nested spans pick up the parent id."""
        span = self.begin(name, **attrs)
        token = _current_span.set(span.span_id)
        try:
            yield span
        except BaseException:
            _current_span.reset(token)
            self.end(span, status="error")
            raise
        else:
            _current_span.reset(token)
            self.end(span)


class NullTracer:
    """Inert tracer for detached paths (mirrors :class:`Tracer`)."""

    sinks: list = []

    def add_sink(self, sink: Any) -> None:
        pass

    def event(self, name: str, **attrs: Any) -> dict:
        return {}

    def begin(self, name: str, **attrs: Any) -> Span:
        return Span(name, "s000000", None, 0.0, {})

    def end(self, span: Span, **attrs: Any) -> dict:
        return {}

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        yield Span(name, "s000000", None, 0.0, {})


NULL_TRACER = NullTracer()


__all__ = [
    "FlightRecorder",
    "JsonlSpanSink",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
]
