"""Process-wide metrics: counters, gauges, histograms, Prometheus text.

Design constraints, in order:

1. **Detached paths pay ~nothing.**  The process-global registry
   defaults to :class:`NullRegistry`, whose metric objects are inert
   singletons — an uninstrumented run's only cost is a handful of
   attribute lookups and no-op calls at run *boundaries* (hot loops
   fold their counters in bulk at end of run, never per quantum).
2. **Updates are cheap and atomic enough.**  ``inc``/``set``/``observe``
   are plain Python float/int updates — the GIL makes each individually
   atomic; families take a lock only on child *creation*.  Metrics are
   observability, not ledger accounting: a torn read across two related
   counters is acceptable, a slow hot path is not.
3. **Bounded cardinality.**  A labeled family accepts at most
   ``max_label_sets`` distinct label tuples; further label sets all
   collapse into one ``_overflow`` child (and are counted), so a buggy
   or hostile label source cannot grow memory without bound.

Metric names are resolved against :data:`repro.obs.catalog.METRICS`, so
instrumentation sites register by name alone::

    from repro.obs import get_registry

    reg = get_registry()
    reg.counter("repro_engine_steps_total").inc(steps_done)
    reg.counter("repro_engine_phase_seconds_total").labels(
        phase="power").inc(dt)

and a :func:`use_registry` context (or a server's own registry) makes
them visible::

    from repro.obs import MetricsRegistry, use_registry

    with use_registry(MetricsRegistry()) as reg:
        engine.run(jobs, 86400.0)
        print(reg.render())          # Prometheus text format
        doc = reg.snapshot()         # JSON-compatible dict
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

from repro.exceptions import ExaDigiTError
from repro.obs.catalog import METRICS as _CATALOG

#: Default histogram buckets (seconds): generic latency coverage.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Label value all over-cap label sets collapse into.
OVERFLOW_LABEL = "_overflow"


def _fmt(value: float) -> str:
    """Prometheus sample value: integral floats render as integers."""
    f = float(value)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


class Counter:
    """A monotonically increasing value (one child of a family)."""

    __slots__ = ("value", "_fn")

    def __init__(self, fn: Callable[[], float] | None = None) -> None:
        self.value = 0.0
        self._fn = fn

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def get(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self.value

    def reset(self) -> None:
        self.value = 0.0


class Gauge:
    """A value that goes up and down (one child of a family)."""

    __slots__ = ("value", "_fn")

    def __init__(self, fn: Callable[[], float] | None = None) -> None:
        self.value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def get(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self.value

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Fixed cumulative buckets + sum + count (one child of a family)."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float]) -> None:
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +Inf tail
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        v = float(value)
        self.sum += v
        self.count += 1
        for i, le in enumerate(self.buckets):
            if v <= le:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, ``+Inf`` last."""
        out: list[tuple[float, int]] = []
        running = 0
        for le, n in zip(self.buckets, self.counts):
            running += n
            out.append((le, running))
        out.append((float("inf"), self.count))
        return out

    def quantile(self, q: float) -> float | None:
        """Estimated ``q``-quantile, linearly interpolated within the
        bucket that crosses rank ``q * count`` (the Prometheus
        ``histogram_quantile`` estimator).

        Observations in the ``+Inf`` tail clamp to the highest finite
        bucket bound; returns ``None`` while the histogram is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ExaDigiTError(f"quantile q must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        rank = q * self.count
        cumulative = self.cumulative()
        prev_le, prev_cum = 0.0, 0
        for le, cum in cumulative:
            if cum >= rank:
                if le == float("inf"):
                    # Everything above the last finite bound clamps
                    # there (no upper edge to interpolate toward).
                    return self.buckets[-1] if self.buckets else None
                in_bucket = cum - prev_cum
                if in_bucket <= 0:
                    return le
                frac = (rank - prev_cum) / in_bucket
                return prev_le + (le - prev_le) * frac
            prev_le, prev_cum = le, cum
        return self.buckets[-1] if self.buckets else None

    def reset(self) -> None:
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0


_KIND_CHILD = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric with zero or more label dimensions.

    Unlabeled families proxy ``inc``/``set``/``dec``/``observe`` to
    their single default child; labeled families hand out children via
    :meth:`labels`.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labels: Sequence[str] = (),
        *,
        buckets: Sequence[float] | None = None,
        fn: Callable[[], float] | None = None,
        max_label_sets: int = 64,
    ) -> None:
        if kind not in _KIND_CHILD:
            raise ExaDigiTError(f"unknown metric kind {kind!r}")
        if fn is not None and (labels or kind == "histogram"):
            raise ExaDigiTError(
                "fn-backed metrics must be unlabeled counters or gauges"
            )
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labels)
        self.buckets = tuple(buckets or DEFAULT_BUCKETS)
        self.max_label_sets = max_label_sets
        self.dropped_label_sets = 0
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Any] = {}
        if not self.labelnames:
            self._children[()] = self._new_child(fn)

    def _new_child(self, fn: Callable[[], float] | None = None) -> Any:
        if self.kind == "histogram":
            return Histogram(self.buckets)
        return _KIND_CHILD[self.kind](fn)

    def labels(self, **labelvalues: str) -> Any:
        if set(labelvalues) != set(self.labelnames):
            raise ExaDigiTError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is not None:
            return child
        with self._lock:
            child = self._children.get(key)
            if child is not None:
                return child
            if len(self._children) >= self.max_label_sets:
                self.dropped_label_sets += 1
                overflow = (OVERFLOW_LABEL,) * len(self.labelnames)
                child = self._children.get(overflow)
                if child is None:
                    # One extra slot: children are bounded at
                    # max_label_sets + 1 including the overflow bucket.
                    child = self._children[overflow] = self._new_child()
                return child
            child = self._children[key] = self._new_child()
            return child

    # -- unlabeled conveniences (delegate to the default child) ------------

    def _default(self) -> Any:
        try:
            return self._children[()]
        except KeyError:
            raise ExaDigiTError(
                f"{self.name} is labeled by {self.labelnames}; "
                "use .labels(...)"
            ) from None

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def get(self, **labelvalues: str) -> float:
        child = self.labels(**labelvalues) if labelvalues else self._default()
        return child.get()

    def child(self, **labelvalues: str) -> Any:
        """The underlying child metric (default child when unlabeled)."""
        return self.labels(**labelvalues) if labelvalues else self._default()

    def quantile(self, q: float, **labelvalues: str) -> float | None:
        """Histogram quantile of one child (None for empty histograms)."""
        if self.kind != "histogram":
            raise ExaDigiTError(f"{self.name} is a {self.kind}, not a "
                                "histogram")
        return self.child(**labelvalues).quantile(q)

    # -- iteration ---------------------------------------------------------

    def samples(self) -> Iterator[tuple[tuple[str, ...], Any]]:
        # dict iteration order is insertion order; snapshot under the
        # lock so render never races child creation.
        with self._lock:
            items = list(self._children.items())
        yield from items

    def reset(self) -> None:
        with self._lock:
            for child in self._children.values():
                child.reset()


class MetricsRegistry:
    """A live registry: families by name, render/snapshot/reset."""

    enabled = True

    def __init__(self, *, max_label_sets: int = 64) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}
        self.max_label_sets = max_label_sets

    # -- registration ------------------------------------------------------

    def _family(
        self,
        name: str,
        kind: str,
        help: str | None,
        labels: Sequence[str] | None,
        buckets: Sequence[float] | None = None,
        fn: Callable[[], float] | None = None,
    ) -> MetricFamily:
        fam = self._families.get(name)
        if fam is not None:
            if fam.kind != kind:
                raise ExaDigiTError(
                    f"{name} already registered as {fam.kind}, not {kind}"
                )
            return fam
        entry = _CATALOG.get(name, {})
        if entry and entry["kind"] != kind:
            raise ExaDigiTError(
                f"{name} is catalogued as a {entry['kind']}, not a {kind}"
            )
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                fam = MetricFamily(
                    name,
                    kind,
                    help if help is not None else entry.get("help", ""),
                    labels if labels is not None else entry.get("labels", ()),
                    buckets=buckets or entry.get("buckets"),
                    fn=fn,
                    max_label_sets=self.max_label_sets,
                )
                self._families[name] = fam
        return fam

    def counter(
        self,
        name: str,
        help: str | None = None,
        labels: Sequence[str] | None = None,
        *,
        fn: Callable[[], float] | None = None,
    ) -> MetricFamily:
        return self._family(name, "counter", help, labels, fn=fn)

    def gauge(
        self,
        name: str,
        help: str | None = None,
        labels: Sequence[str] | None = None,
        *,
        fn: Callable[[], float] | None = None,
    ) -> MetricFamily:
        return self._family(name, "gauge", help, labels, fn=fn)

    def histogram(
        self,
        name: str,
        help: str | None = None,
        labels: Sequence[str] | None = None,
        *,
        buckets: Sequence[float] | None = None,
    ) -> MetricFamily:
        return self._family(name, "histogram", help, labels, buckets)

    # -- reading -----------------------------------------------------------

    def families(self) -> list[MetricFamily]:
        with self._lock:
            return list(self._families.values())

    def value(self, name: str, **labelvalues: str) -> float | None:
        """One sample's current value, or None if never registered."""
        fam = self._families.get(name)
        if fam is None:
            return None
        try:
            return fam.get(**labelvalues)
        except ExaDigiTError:
            return None

    def render(self) -> str:
        """The full registry in Prometheus text exposition format."""
        lines: list[str] = []
        for fam in sorted(self.families(), key=lambda f: f.name):
            lines.append(f"# HELP {fam.name} {_escape_help(fam.help)}")
            lines.append(f"# TYPE {fam.name} {fam.kind}")
            for key, child in fam.samples():
                labelled = "".join(
                    f'{n}="{_escape_label(v)}",'
                    for n, v in zip(fam.labelnames, key)
                ).rstrip(",")
                if fam.kind == "histogram":
                    base = f"{{{labelled}," if labelled else "{"
                    for le, cum in child.cumulative():
                        le_s = "+Inf" if le == float("inf") else _fmt(le)
                        lines.append(
                            f'{fam.name}_bucket{base}le="{le_s}"}} {cum}'
                        )
                    suffix = f"{{{labelled}}}" if labelled else ""
                    lines.append(
                        f"{fam.name}_sum{suffix} {_fmt(child.sum)}"
                    )
                    lines.append(f"{fam.name}_count{suffix} {child.count}")
                else:
                    suffix = f"{{{labelled}}}" if labelled else ""
                    lines.append(f"{fam.name}{suffix} {_fmt(child.get())}")
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict[str, Any]:
        """JSON-compatible dump of every family (for ``/statusz``)."""
        doc: dict[str, Any] = {}
        for fam in sorted(self.families(), key=lambda f: f.name):
            samples = []
            for key, child in fam.samples():
                labels = dict(zip(fam.labelnames, key))
                if fam.kind == "histogram":
                    samples.append(
                        {
                            "labels": labels,
                            "count": child.count,
                            "sum": child.sum,
                            "buckets": [
                                ["+Inf" if le == float("inf") else le, cum]
                                for le, cum in child.cumulative()
                            ],
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.get()})
            doc[fam.name] = {
                "kind": fam.kind,
                "help": fam.help,
                "samples": samples,
            }
        return doc

    def reset(self) -> None:
        """Zero every child (families and label sets stay registered)."""
        for fam in self.families():
            fam.reset()


class _NullMetric:
    """Inert metric: every update is a no-op, every read is zero."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def labels(self, **labelvalues: str) -> "_NullMetric":
        return self

    def get(self, **labelvalues: str) -> float:
        return 0.0

    def child(self, **labelvalues: str) -> "_NullMetric":
        return self

    def quantile(self, q: float, **labelvalues: str) -> None:
        return None


NULL_METRIC = _NullMetric()


class NullRegistry:
    """The default registry: accepts everything, records nothing."""

    enabled = False

    def counter(self, *args: Any, **kwargs: Any) -> _NullMetric:
        return NULL_METRIC

    def gauge(self, *args: Any, **kwargs: Any) -> _NullMetric:
        return NULL_METRIC

    def histogram(self, *args: Any, **kwargs: Any) -> _NullMetric:
        return NULL_METRIC

    def families(self) -> list:
        return []

    def value(self, name: str, **labelvalues: str) -> None:
        return None

    def render(self) -> str:
        return ""

    def snapshot(self) -> dict:
        return {}

    def reset(self) -> None:
        pass


NULL_REGISTRY = NullRegistry()

_registry: MetricsRegistry | NullRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry | NullRegistry:
    """The process-global registry (a :class:`NullRegistry` unless one
    was installed via :func:`set_registry` / :func:`use_registry`)."""
    return _registry


def set_registry(
    registry: MetricsRegistry | NullRegistry,
) -> MetricsRegistry | NullRegistry:
    """Install ``registry`` process-wide; returns the previous one."""
    global _registry
    previous = _registry
    _registry = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry | NullRegistry):
    """Scope the process-global registry to a ``with`` block."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "NULL_METRIC",
    "DEFAULT_BUCKETS",
    "OVERFLOW_LABEL",
    "get_registry",
    "set_registry",
    "use_registry",
]
