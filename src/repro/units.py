"""Unit conversions and physical constants used throughout the twin.

All internal computation is SI (watts, kelvin-or-celsius deltas, kg, m^3/s,
pascals, seconds).  Telemetry and report boundaries use the units the paper
reports (MW, gpm, psi, metric tons), converted through this module so the
conversion factors live in exactly one place.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Power / energy
# ---------------------------------------------------------------------------

WATTS_PER_MEGAWATT = 1.0e6
WATTS_PER_KILOWATT = 1.0e3
SECONDS_PER_HOUR = 3600.0
HOURS_PER_DAY = 24.0
SECONDS_PER_DAY = SECONDS_PER_HOUR * HOURS_PER_DAY
DAYS_PER_YEAR = 365.25


def watts_to_megawatts(value_w: float) -> float:
    """Convert watts to megawatts."""
    return value_w / WATTS_PER_MEGAWATT


def megawatts_to_watts(value_mw: float) -> float:
    """Convert megawatts to watts."""
    return value_mw * WATTS_PER_MEGAWATT


def joules_to_megawatt_hours(value_j: float) -> float:
    """Convert joules to MW-hr (the unit used in the paper's reports)."""
    return value_j / (WATTS_PER_MEGAWATT * SECONDS_PER_HOUR)


def megawatt_hours_to_joules(value_mwh: float) -> float:
    """Convert MW-hr to joules."""
    return value_mwh * WATTS_PER_MEGAWATT * SECONDS_PER_HOUR


# ---------------------------------------------------------------------------
# Flow
# ---------------------------------------------------------------------------

#: US gallons per cubic meter.
GALLONS_PER_M3 = 264.172052

#: Conversion factor from gallons-per-minute to cubic meters per second.
M3S_PER_GPM = 1.0 / (GALLONS_PER_M3 * 60.0)


def gpm_to_m3s(value_gpm: float) -> float:
    """Convert US gallons/minute to m^3/s."""
    return value_gpm * M3S_PER_GPM


def m3s_to_gpm(value_m3s: float) -> float:
    """Convert m^3/s to US gallons/minute."""
    return value_m3s / M3S_PER_GPM


def lpm_to_m3s(value_lpm: float) -> float:
    """Convert liters/minute to m^3/s."""
    return value_lpm / 60000.0


def m3s_to_lpm(value_m3s: float) -> float:
    """Convert m^3/s to liters/minute."""
    return value_m3s * 60000.0


# ---------------------------------------------------------------------------
# Pressure
# ---------------------------------------------------------------------------

PASCALS_PER_PSI = 6894.757293
PASCALS_PER_BAR = 1.0e5
PASCALS_PER_KPA = 1.0e3


def psi_to_pa(value_psi: float) -> float:
    """Convert psi to pascals."""
    return value_psi * PASCALS_PER_PSI


def pa_to_psi(value_pa: float) -> float:
    """Convert pascals to psi."""
    return value_pa / PASCALS_PER_PSI


def pa_to_kpa(value_pa: float) -> float:
    """Convert pascals to kilopascals."""
    return value_pa / PASCALS_PER_KPA


def kpa_to_pa(value_kpa: float) -> float:
    """Convert kilopascals to pascals."""
    return value_kpa * PASCALS_PER_KPA


# ---------------------------------------------------------------------------
# Temperature
# ---------------------------------------------------------------------------

KELVIN_OFFSET = 273.15


def celsius_to_kelvin(value_c: float) -> float:
    """Convert Celsius to Kelvin."""
    return value_c + KELVIN_OFFSET


def kelvin_to_celsius(value_k: float) -> float:
    """Convert Kelvin to Celsius."""
    return value_k - KELVIN_OFFSET


def fahrenheit_to_celsius(value_f: float) -> float:
    """Convert Fahrenheit to Celsius."""
    return (value_f - 32.0) * 5.0 / 9.0


# ---------------------------------------------------------------------------
# Mass
# ---------------------------------------------------------------------------

#: Pounds per metric ton, as used in the paper's CO2 emission factor (Eq. 6).
LBS_PER_METRIC_TON = 2204.6


def lbs_to_metric_tons(value_lbs: float) -> float:
    """Convert pounds to metric tons using the paper's Eq. 6 factor."""
    return value_lbs / LBS_PER_METRIC_TON
