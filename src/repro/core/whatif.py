"""What-if comparison machinery (paper section IV-3).

Replays the same workload through the baseline twin and a modified twin
(smart load-sharing rectifiers, 380 V direct-DC distribution, or any
custom conversion chain), then reports the efficiency delta, annualized
cost savings, and carbon-footprint reduction — the virtual-modification
methodology of the paper's two counterfactual studies.

.. note::
   This module was historically named ``repro.core.scenarios``, which
   collided confusingly with the declarative scenario package
   :mod:`repro.scenarios` (whose :class:`~repro.scenarios.library.WhatIfScenario`
   is the preferred front door to these comparisons).  It now lives at
   ``repro.core.whatif``; ``repro.core.scenarios`` remains as a
   deprecated re-export shim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.config.schema import SystemSpec
from repro.core.engine import SimulationResult
from repro.exceptions import SimulationError
from repro.power.dc_power import DirectDcChain
from repro.power.emissions import EmissionsModel
from repro.power.smart_rectifier import SmartRectifierChain
from repro.power.system import SystemTopology
from repro.telemetry.dataset import TelemetryDataset


@dataclass(frozen=True)
class ScenarioComparison:
    """Baseline-vs-modified deltas for one what-if study."""

    name: str
    baseline_mean_power_mw: float
    modified_mean_power_mw: float
    baseline_efficiency: float
    modified_efficiency: float
    baseline_loss_mw: float
    modified_loss_mw: float
    annual_savings_usd: float
    co2_reduction_percent: float

    @property
    def power_saving_mw(self) -> float:
        return self.baseline_mean_power_mw - self.modified_mean_power_mw

    @property
    def efficiency_gain_percent(self) -> float:
        return (self.modified_efficiency - self.baseline_efficiency) * 100.0

    def report(self) -> str:
        return "\n".join(
            [
                f"What-if scenario: {self.name}",
                "-" * 44,
                f"chain efficiency:  {self.baseline_efficiency * 100:.2f} % -> "
                f"{self.modified_efficiency * 100:.2f} % "
                f"({self.efficiency_gain_percent:+.2f} pp)",
                f"mean power:        {self.baseline_mean_power_mw:.2f} MW -> "
                f"{self.modified_mean_power_mw:.2f} MW "
                f"({-self.power_saving_mw * 1000:+.0f} kW)",
                f"conversion loss:   {self.baseline_loss_mw:.2f} MW -> "
                f"{self.modified_loss_mw:.2f} MW",
                f"annual savings:    ${self.annual_savings_usd:,.0f}",
                f"CO2 reduction:     {self.co2_reduction_percent:.1f} %",
            ]
        )


def _make_chain(spec: SystemSpec, kind: str):
    topo = SystemTopology.from_spec(spec)
    if kind == "smart-rectifier":
        return SmartRectifierChain(
            spec.power.rectifier,
            spec.power.sivoc,
            topo.rectifiers_per_chassis,
            topo.chassis_of_node,
            topo.num_chassis,
        )
    if kind == "direct-dc":
        return DirectDcChain(
            spec.power.sivoc,
            topo.chassis_of_node,
            topo.num_chassis,
            distribution_efficiency=spec.power.dc_distribution_efficiency,
        )
    raise SimulationError(
        f"unknown what-if scenario {kind!r}; "
        "expected 'smart-rectifier' or 'direct-dc'"
    )


def compare_results(
    name: str,
    spec: SystemSpec,
    baseline: SimulationResult,
    modified: SimulationResult,
) -> ScenarioComparison:
    """Reduce two replays of the same workload to a scenario report."""
    emissions = EmissionsModel(spec.economics)
    saving_w = baseline.mean_power_w - modified.mean_power_w
    annual = emissions.annualized_cost_usd(max(saving_w, 0.0)) - (
        emissions.annualized_cost_usd(max(-saving_w, 0.0))
    )
    base_co2 = emissions.co2_tons(
        baseline.energy_mwh, baseline.mean_chain_efficiency
    )
    mod_co2 = emissions.co2_tons(
        modified.energy_mwh, modified.mean_chain_efficiency
    )
    co2_red = (base_co2 - mod_co2) / base_co2 * 100.0 if base_co2 else 0.0
    return ScenarioComparison(
        name=name,
        baseline_mean_power_mw=baseline.mean_power_w / 1e6,
        modified_mean_power_mw=modified.mean_power_w / 1e6,
        baseline_efficiency=baseline.mean_chain_efficiency,
        modified_efficiency=modified.mean_chain_efficiency,
        baseline_loss_mw=baseline.mean_loss_w / 1e6,
        modified_loss_mw=modified.mean_loss_w / 1e6,
        annual_savings_usd=annual,
        co2_reduction_percent=co2_red,
    )


def run_whatif(
    spec: SystemSpec,
    dataset: TelemetryDataset,
    duration_s: float,
    scenario: str,
    *,
    with_cooling: bool = False,
    baseline_result: SimulationResult | None = None,
    chain_factory: Callable[[SystemSpec], object] | None = None,
) -> ScenarioComparison:
    """Replay ``dataset`` under the baseline and a modified chain.

    .. deprecated::
        Compatibility shim over
        :class:`repro.scenarios.library.WhatIfScenario` — prefer
        ``WhatIfScenario(modification=...).run(twin)``, which also
        returns the full per-run artifacts.

    ``scenario`` selects a built-in chain ('smart-rectifier' or
    'direct-dc') unless ``chain_factory`` supplies a custom one.
    ``baseline_result`` can be passed to amortize the baseline replay
    across several scenarios.
    """
    from repro.scenarios.library import WhatIfScenario

    whatif = WhatIfScenario(
        modification=scenario,
        duration_s=duration_s,
        with_cooling=with_cooling,
    )
    outcome = whatif.run(
        spec,
        dataset=dataset,
        baseline_result=baseline_result,
        chain_factory=chain_factory,
    )
    return outcome.comparison


__all__ = ["ScenarioComparison", "compare_results", "run_whatif"]
