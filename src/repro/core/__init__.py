"""The digital-twin core: the RAPS engine and everything driven by it.

- :mod:`repro.core.engine` — Algorithm 1: the tick loop coupling the
  scheduler, the power model, and the cooling FMU (15 s cadence),
- :mod:`repro.core.simulation` — high-level facade (spec -> run -> report),
- :mod:`repro.core.replay` — telemetry replay + validation (Finding 8),
- :mod:`repro.core.physical` — the simulated physical twin used to
  produce "measured" telemetry (see DESIGN.md substitutions),
- :mod:`repro.core.whatif` — what-if comparison machinery (smart
  rectifiers, 380 V DC); ``repro.core.scenarios`` is a deprecated alias
  (the scenario *API* lives in :mod:`repro.scenarios`),
- :mod:`repro.core.earlystop` — steady-state / divergence predicates
  for ``engine.run(stop_when=...)`` over :class:`StepState` streams,
- :mod:`repro.core.profiling` — per-phase wall-time profiling of the
  engine hot path (``repro profile`` and the BENCH_core trajectory),
- :mod:`repro.core.stats` — output statistics (section III-B5, Table IV),
- :mod:`repro.core.summary` — stable result summarization: the raw
  scalars and JSON documents the campaign artifact store persists,
- :mod:`repro.core.validate` — RMSE/MAE/%-error comparison harness.
"""

from repro.core.earlystop import (
    DivergenceGuard,
    SteadyStateDetector,
    all_of,
    any_of,
)
from repro.core.engine import RapsEngine, SimulationResult, StepState
from repro.core.profiling import ENGINE_PHASES, PhaseProfiler
from repro.core.simulation import Simulation
from repro.core.stats import RunStatistics, DailyStatistics, aggregate_daily
from repro.core.summary import result_metrics, result_series_doc
from repro.core.validate import SeriesComparison, compare_series, percent_error
from repro.core.physical import PhysicalTwin, MeasurementNoise
from repro.core.replay import ReplayValidation, replay_dataset
from repro.core.whatif import ScenarioComparison, run_whatif

__all__ = [
    "RapsEngine",
    "SimulationResult",
    "StepState",
    "PhaseProfiler",
    "ENGINE_PHASES",
    "Simulation",
    "RunStatistics",
    "DailyStatistics",
    "aggregate_daily",
    "result_metrics",
    "result_series_doc",
    "SeriesComparison",
    "compare_series",
    "percent_error",
    "PhysicalTwin",
    "MeasurementNoise",
    "ReplayValidation",
    "replay_dataset",
    "ScenarioComparison",
    "run_whatif",
    "SteadyStateDetector",
    "DivergenceGuard",
    "any_of",
    "all_of",
]
