"""Timed fault events injected into a simulation run.

A :class:`FaultEvent` is a declarative "at time T, do X" record the
engines apply while driving the scheduler: node outages (down/up,
optionally killing the jobs caught on the failed nodes), and CDU
blockages routed to the cooling plant's existing
:meth:`~repro.cooling.loops.cdu.CduLoopBank.set_blockage` input.

Events are quantized to the engine quantum containing them and applied
*before* that quantum's scheduling pass, so the full and surrogate
engines — which share :func:`repro.core.engine.drive_schedule` — see
bit-identical scheduling under the same event stream.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass, field

from repro.exceptions import SimulationError

#: Recognized event kinds.
EVENT_KINDS = ("node-down", "node-up", "cdu-blockage")

__all__ = ["EVENT_KINDS", "FaultEvent"]


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault: a node outage edge or a CDU blockage change.

    ``nodes`` holds global node indices for the node-outage kinds;
    ``cdu_index``/``severity`` parameterize ``cdu-blockage`` (severity
    1.0 restores a clean loop, larger values throttle it).  With
    ``kill_running`` (default) a ``node-down`` kills the jobs occupying
    the failed nodes; without it, only the currently-free subset goes
    down and occupied nodes keep running (soft maintenance).
    """

    time_s: float
    kind: str
    nodes: tuple[int, ...] = ()
    cdu_index: int = 0
    severity: float = 1.0
    kill_running: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "time_s", float(self.time_s))
        if self.time_s < 0.0:
            raise SimulationError(f"event time must be >= 0: {self.time_s}")
        if self.kind not in EVENT_KINDS:
            raise SimulationError(
                f"unknown event kind {self.kind!r}; expected one of "
                f"{EVENT_KINDS}"
            )
        nodes = tuple(int(n) for n in self.nodes)
        if any(n < 0 for n in nodes):
            raise SimulationError("event node indices must be >= 0")
        object.__setattr__(self, "nodes", nodes)
        if self.kind in ("node-down", "node-up") and not nodes:
            raise SimulationError(f"{self.kind} event needs node indices")
        object.__setattr__(self, "cdu_index", int(self.cdu_index))
        object.__setattr__(self, "severity", float(self.severity))
        if self.kind == "cdu-blockage" and self.severity < 1.0:
            raise SimulationError(
                f"blockage severity must be >= 1: {self.severity}"
            )
        object.__setattr__(self, "kill_running", bool(self.kill_running))

    def to_dict(self) -> dict:
        doc: dict = {"time_s": self.time_s, "kind": self.kind}
        if self.kind == "cdu-blockage":
            doc["cdu_index"] = self.cdu_index
            doc["severity"] = self.severity
        else:
            doc["nodes"] = list(self.nodes)
            if not self.kill_running:
                doc["kill_running"] = False
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultEvent":
        if not isinstance(doc, dict):
            raise SimulationError("event document must be an object")
        known = {"time_s", "kind", "nodes", "cdu_index", "severity",
                 "kill_running"}
        unknown = set(doc) - known
        if unknown:
            raise SimulationError(f"unknown event fields: {sorted(unknown)}")
        kwargs = dict(doc)
        if "nodes" in kwargs:
            kwargs["nodes"] = tuple(kwargs["nodes"])
        return cls(**kwargs)


def sort_events(events) -> tuple[FaultEvent, ...]:
    """Events in application order (time, then kind for determinism)."""
    out = []
    for event in events:
        if not isinstance(event, FaultEvent):
            raise SimulationError(
                f"expected FaultEvent, got {type(event).__name__}"
            )
        out.append(event)
    return tuple(sorted(out, key=lambda e: (e.time_s, e.kind, e.nodes)))


__all__.append("sort_events")
