"""Stable result summarization for persistence (the artifact contract).

The campaign artifact store (:mod:`repro.scenarios.artifacts`) persists
simulation outcomes as JSON and must reload them *bit-identically*: a
comparison table rendered from a reloaded campaign has to match the one
rendered from the live run, byte for byte.  This module is the single
place that defines what "the summary of a run" means, so the live path
and the persistence path can never drift apart:

- :func:`result_metrics` — the raw headline scalars of one engine run
  (the numbers behind a suite comparison row),
- :func:`result_series_doc` / :func:`series_from_doc` — the per-step
  scalar series as a JSON-compatible document (Python floats round-trip
  exactly through JSON, so reload is bit-exact),
- :func:`statistics_to_doc` / :func:`statistics_from_doc` — the
  end-of-run :class:`~repro.core.stats.RunStatistics` report,
- :func:`comparison_to_doc` / :func:`comparison_from_doc` — the
  what-if :class:`~repro.core.whatif.ScenarioComparison` deltas.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any

import numpy as np

from repro.core.engine import SimulationResult
from repro.core.whatif import ScenarioComparison
from repro.core.stats import RunStatistics
from repro.exceptions import SimulationError

#: Scalar per-step series persisted for every run (cooling series are
#: appended when the run was coupled).
SUMMARY_SERIES = (
    "times_s",
    "system_power_w",
    "loss_w",
    "chain_efficiency",
    "utilization",
    "num_running",
)


def result_metrics(result: SimulationResult | None) -> dict[str, float]:
    """Headline scalars of one run, as plain Python floats.

    These are the raw (unformatted) values behind one row of a suite
    comparison table; missing quantities (e.g. PUE on an uncoupled run)
    are NaN.  Persisting this dict and recomputing the formatted row
    from it is guaranteed to reproduce the live rendering.
    """
    if result is None:
        return {
            "mean_power_mw": math.nan,
            "energy_mwh": math.nan,
            "loss_percent": math.nan,
            "mean_pue": math.nan,
        }
    mean_power_w = result.mean_power_w
    return {
        "mean_power_mw": mean_power_w / 1e6,
        "energy_mwh": result.energy_mwh,
        "loss_percent": (
            result.mean_loss_w / mean_power_w * 100.0
            if mean_power_w
            else math.nan
        ),
        "mean_pue": (
            float(np.mean(result.cooling["pue"]))
            if "pue" in result.cooling
            else math.nan
        ),
    }


def result_series_doc(result: SimulationResult) -> dict[str, list]:
    """Per-step scalar series as JSON-compatible lists.

    Covers the :data:`SUMMARY_SERIES` set plus every 1-D cooling series
    the run recorded.  ``np.ndarray.tolist()`` yields Python floats,
    which serialize to JSON with full round-trip precision.
    """
    doc: dict[str, list] = {
        name: getattr(result, name).tolist() for name in SUMMARY_SERIES
    }
    for name, series in sorted(result.cooling.items()):
        arr = np.asarray(series)
        if arr.ndim == 1:
            doc[f"cooling.{name}"] = arr.tolist()
    return doc


def series_from_doc(doc: dict[str, list]) -> dict[str, np.ndarray]:
    """Rebuild the persisted series as arrays, keyed as in the doc.

    ``None`` entries (strict-JSON encoding of NaN, see
    :mod:`repro.scenarios.artifacts`) come back as NaN.
    """
    if not isinstance(doc, dict):
        raise SimulationError("series document must be an object")
    out: dict[str, np.ndarray] = {}
    for name, values in doc.items():
        if any(v is None for v in values):
            values = [math.nan if v is None else v for v in values]
        out[name] = np.asarray(values)
    return out


def fidelity_rows(
    screen: Any, refined: Any, *, metric: str = "mean_pue"
) -> list[dict[str, Any]]:
    """Join screened and refined campaign cells by name on one metric.

    ``screen`` / ``refined`` are suite-result-likes whose entries expose
    ``name`` and ``metrics()`` (live or reloaded).  One row per refined
    cell, in refined order: the surrogate's value, the full-fidelity
    value, and their absolute error — the raw data of a multi-fidelity
    speedup-vs-error report.
    """
    screened = {entry.name: entry.metrics().get(metric, math.nan)
                for entry in screen}
    rows: list[dict[str, Any]] = []
    for entry in refined:
        full_value = float(entry.metrics().get(metric, math.nan))
        screen_value = float(screened.get(entry.name, math.nan))
        error = abs(screen_value - full_value)
        rows.append(
            {
                "cell": entry.name,
                "surrogate": screen_value,
                "full": full_value,
                "abs_error": error,
            }
        )
    return rows


def format_fidelity_table(
    rows: list[dict[str, Any]], *, metric: str = "mean_pue"
) -> str:
    """Render :func:`fidelity_rows` as an aligned terminal table."""
    if not rows:
        return "(no refined cells)"

    def num(value: Any) -> str:
        if not isinstance(value, (int, float)) or math.isnan(value):
            return "-"
        return format(value, ".4f")

    columns = ["cell", "surrogate", "full", "abs error"]
    rendered = [
        [str(r["cell"]), num(r["surrogate"]), num(r["full"]),
         num(r["abs_error"])]
        for r in rows
    ]
    widths = [
        max(len(columns[c]), *(len(row[c]) for row in rendered))
        for c in range(len(columns))
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    lines = [f"metric: {metric} (screen vs refined)", header, rule]
    for row in rendered:
        lines.append(
            "  ".join(
                cell.ljust(w) if i == 0 else cell.rjust(w)
                for i, (cell, w) in enumerate(zip(row, widths))
            )
        )
    return "\n".join(lines)


def statistics_to_doc(stats: RunStatistics) -> dict[str, Any]:
    """JSON-compatible document of the end-of-run report."""
    return dataclasses.asdict(stats)


def statistics_from_doc(doc: dict[str, Any]) -> RunStatistics:
    """Rebuild :class:`RunStatistics` from :func:`statistics_to_doc`."""
    fields = {f.name for f in dataclasses.fields(RunStatistics)}
    unknown = set(doc) - fields
    if unknown:
        raise SimulationError(
            f"unknown statistics fields in artifact: {sorted(unknown)}"
        )
    return RunStatistics(**doc)


def comparison_to_doc(comparison: ScenarioComparison) -> dict[str, Any]:
    """JSON-compatible document of a what-if comparison."""
    return dataclasses.asdict(comparison)


def comparison_from_doc(doc: dict[str, Any]) -> ScenarioComparison:
    """Rebuild :class:`ScenarioComparison` from :func:`comparison_to_doc`."""
    fields = {f.name for f in dataclasses.fields(ScenarioComparison)}
    unknown = set(doc) - fields
    if unknown:
        raise SimulationError(
            f"unknown comparison fields in artifact: {sorted(unknown)}"
        )
    return ScenarioComparison(**doc)


__all__ = [
    "SUMMARY_SERIES",
    "result_metrics",
    "result_series_doc",
    "fidelity_rows",
    "format_fidelity_table",
    "series_from_doc",
    "statistics_to_doc",
    "statistics_from_doc",
    "comparison_to_doc",
    "comparison_from_doc",
]
