"""The simulated physical twin: produces "measured" telemetry.

This repository has no access to Frontier's production telemetry, so the
ground truth the validation replays compare against is produced by a
*physical twin surrogate*: the same simulation engine run with randomly
perturbed model parameters (the real machine never matches nameplate
values) plus sensor noise and slow drift on every emitted series.  The
digital twin under test then replays the same workload with *nominal*
parameters — exactly the epistemic gap a real V&V campaign measures
(see DESIGN.md, substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.schema import SystemSpec
from repro.core.engine import RapsEngine, SimulationResult
from repro.exceptions import TelemetryError
from repro.power.uq import PerturbationSpec, perturb_spec
from repro.scheduler.workloads import jobs_from_dataset
from repro.seeding import spawn_rng
from repro.telemetry.dataset import TelemetryDataset, TimeSeries


@dataclass(frozen=True)
class MeasurementNoise:
    """Sensor-noise model applied to every emitted telemetry series."""

    power_rel: float = 0.01
    temperature_abs_c: float = 0.15
    flow_rel: float = 0.01
    pressure_rel: float = 0.01
    drift_rel: float = 0.005
    drift_tau_s: float = 7200.0

    def apply_rel(
        self, values: np.ndarray, rel: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Multiplicative white noise + slow OU drift."""
        noisy = values * (1.0 + rng.normal(0.0, rel, values.shape))
        return noisy * (1.0 + self._drift(values.shape[0], rng))[
            (...,) + (None,) * (values.ndim - 1)
        ]

    def apply_abs(
        self, values: np.ndarray, sigma: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Additive white noise (temperature sensors)."""
        return values + rng.normal(0.0, sigma, values.shape)

    def _drift(self, n: int, rng: np.random.Generator) -> np.ndarray:
        a = np.exp(-15.0 / self.drift_tau_s)
        s = self.drift_rel * np.sqrt(1 - a * a)
        eps = rng.normal(0.0, 1.0, n)
        out = np.empty(n)
        x = rng.normal(0.0, self.drift_rel)
        for i in range(n):
            x = a * x + s * eps[i]
            out[i] = x
        return out


class PhysicalTwin:
    """Runs a perturbed engine over a workload and emits telemetry.

    The emitted dataset carries the workload's job records plus
    "measured" series: total system power, per-CDU rack-group power,
    and — when cooling is enabled — the Fig. 7 validation series (CDU
    flows and temperatures, HTW pressure, PUE).
    """

    def __init__(
        self,
        spec: SystemSpec,
        *,
        seed: int = 7,
        perturbation: PerturbationSpec | None = None,
        noise: MeasurementNoise | None = None,
        with_cooling: bool = True,
    ) -> None:
        self._rng = spawn_rng(seed, "physical-system")
        self.nominal_spec = spec
        self.perturbation = perturbation or PerturbationSpec()
        self.noise = noise or MeasurementNoise()
        self.with_cooling = with_cooling
        #: The "real machine": nominal spec with parameter perturbations.
        self.true_spec = perturb_spec(spec, self.perturbation, self._rng)

    def measure(
        self, workload: TelemetryDataset, duration_s: float
    ) -> tuple[TelemetryDataset, SimulationResult]:
        """Run the perturbed twin over ``workload`` and emit telemetry.

        Returns the telemetry dataset (jobs + noisy measured series) and
        the clean simulation result (for diagnostics).
        """
        jobs = jobs_from_dataset(workload)
        if not jobs:
            raise TelemetryError("workload has no jobs to measure")
        wetbulb = (
            workload["wetbulb_temperature"]
            if "wetbulb_temperature" in workload
            else 15.0
        )
        engine = RapsEngine(
            self.true_spec,
            with_cooling=self.with_cooling,
            honor_recorded_starts=True,
        )
        result = engine.run(jobs, duration_s, wetbulb=wetbulb)

        rng = self._rng
        noise = self.noise
        ds = TelemetryDataset(
            name=f"{workload.name}-measured",
            jobs=list(workload.jobs),
            metadata={
                "source": "physical-twin-surrogate",
                "parent": workload.name,
            },
        )
        t = result.times_s
        ds.add_series(
            "measured_power",
            TimeSeries(
                t, noise.apply_rel(result.system_power_w, noise.power_rel, rng), "W"
            ),
        )
        ds.add_series(
            "rack_power",
            TimeSeries(
                t, noise.apply_rel(result.cdu_power_w, noise.power_rel, rng), "W"
            ),
        )
        if isinstance(wetbulb, TimeSeries):
            ds.add_series("wetbulb_temperature", wetbulb)
        if result.cooling:
            ds.add_series(
                "cdu_htw_flow",
                TimeSeries(
                    t,
                    noise.apply_rel(
                        result.cooling["cdu_primary_flow_m3s"], noise.flow_rel, rng
                    ),
                    "m3/s",
                ),
            )
            ds.add_series(
                "cdu_return_temp",
                TimeSeries(
                    t,
                    noise.apply_abs(
                        result.cooling["cdu_primary_return_temp_c"],
                        noise.temperature_abs_c,
                        rng,
                    ),
                    "degC",
                ),
            )
            ds.add_series(
                "cdu_supply_temp",
                TimeSeries(
                    t,
                    noise.apply_abs(
                        result.cooling["cdu_secondary_supply_temp_c"],
                        noise.temperature_abs_c,
                        rng,
                    ),
                    "degC",
                ),
            )
            ds.add_series(
                "htw_supply_pressure",
                TimeSeries(
                    t,
                    noise.apply_rel(
                        result.cooling["htw_supply_pressure_pa"],
                        noise.pressure_rel,
                        rng,
                    ),
                    "Pa",
                ),
            )
            ds.add_series(
                "htw_supply_temp",
                TimeSeries(
                    t,
                    noise.apply_abs(
                        result.cooling["htw_supply_temp_c"],
                        noise.temperature_abs_c,
                        rng,
                    ),
                    "degC",
                ),
            )
            ds.add_series(
                "pue",
                TimeSeries(
                    t,
                    noise.apply_rel(result.cooling["pue"], 0.002, rng),
                    "ratio",
                ),
            )
        return ds, result


__all__ = ["PhysicalTwin", "MeasurementNoise"]
