"""Validation metrics: RMSE / MAE / percent error series comparisons.

The paper reports RMSE and MAE for the cooling-model series (Fig. 7) and
percent errors for the power verification points (Table III).  The
comparison harness aligns a predicted series onto a measured series'
timebase before scoring, handling the mixed cadences of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.telemetry.dataset import TimeSeries


@dataclass(frozen=True)
class SeriesComparison:
    """Error statistics between a predicted and a measured series."""

    name: str
    rmse: float
    mae: float
    bias: float
    mape_percent: float
    n_samples: int

    def __str__(self) -> str:
        return (
            f"{self.name}: RMSE={self.rmse:.4g} MAE={self.mae:.4g} "
            f"bias={self.bias:+.4g} MAPE={self.mape_percent:.2f}% "
            f"(n={self.n_samples})"
        )


def percent_error(predicted: float, measured: float) -> float:
    """Unsigned percent error, as reported in paper Table III."""
    if measured == 0:
        raise ValidationError("measured value is zero; percent error undefined")
    return abs(predicted - measured) / abs(measured) * 100.0


def compare_series(
    name: str,
    predicted: TimeSeries,
    measured: TimeSeries,
    *,
    resample: str = "linear",
    window: tuple[float, float] | None = None,
) -> SeriesComparison:
    """Score ``predicted`` against ``measured`` on the measured timebase.

    Multi-channel series (e.g. the 25 CDU columns) are scored jointly —
    the error statistics pool all channels, matching how the paper
    summarizes the CDU banks.
    """
    if len(measured) == 0 or len(predicted) == 0:
        raise ValidationError("cannot compare empty series")
    times = measured.times
    if window is not None:
        t0, t1 = window
        mask = (times >= t0) & (times < t1)
        if not np.any(mask):
            raise ValidationError("comparison window contains no samples")
        times = times[mask]
        meas_vals = measured.values[mask]
    else:
        meas_vals = measured.values
    # Clamp to the predicted series' support to avoid extrapolation.
    lo = max(times[0], predicted.t_start)
    hi = min(times[-1], predicted.t_end)
    inside = (times >= lo) & (times <= hi)
    if not np.any(inside):
        raise ValidationError(
            f"series {name!r}: no overlapping samples to compare"
        )
    times = times[inside]
    meas_vals = meas_vals[inside]
    pred_vals = predicted.resample(times, method=resample).values
    if pred_vals.shape != meas_vals.shape:
        raise ValidationError(
            f"series {name!r}: width mismatch "
            f"{pred_vals.shape} vs {meas_vals.shape}"
        )
    err = pred_vals - meas_vals
    rmse = float(np.sqrt(np.mean(err**2)))
    mae = float(np.mean(np.abs(err)))
    bias = float(np.mean(err))
    denom = np.abs(meas_vals)
    ok = denom > 1e-12
    mape = (
        float(np.mean(np.abs(err[ok]) / denom[ok]) * 100.0)
        if np.any(ok)
        else float("nan")
    )
    return SeriesComparison(
        name=name,
        rmse=rmse,
        mae=mae,
        bias=bias,
        mape_percent=mape,
        n_samples=int(err.size),
    )


__all__ = ["SeriesComparison", "compare_series", "percent_error"]
