"""Deprecated alias of :mod:`repro.core.whatif` (kept for imports).

This module name collided with the declarative scenario package
:mod:`repro.scenarios` — ``repro.core.scenarios`` held the low-level
what-if *comparison* machinery, while ``repro.scenarios`` holds the
scenario API (:class:`~repro.scenarios.base.Scenario` and friends),
including :class:`~repro.scenarios.library.WhatIfScenario`, the
preferred front door to counterfactual studies.

The machinery was renamed to :mod:`repro.core.whatif`; import from
there.  This shim re-exports the public names so existing code keeps
working.
"""

from repro.core.whatif import (  # noqa: F401
    ScenarioComparison,
    _make_chain,
    compare_results,
    run_whatif,
)

__all__ = ["ScenarioComparison", "compare_results", "run_whatif"]
