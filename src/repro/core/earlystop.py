"""Early-stop predicates over :class:`~repro.core.engine.StepState` streams.

The streaming engine accepts a ``stop_when`` callable evaluated on every
step (``engine.run(stop_when=...)``, ``scenario.run(twin,
stop_when=...)``).  This module is the standard predicate library for
that hook — the ROADMAP's "streaming consumers" item:

- :class:`SteadyStateDetector` — stop once a monitored quantity has
  been flat for a window of consecutive quanta (amortizes long settle
  tails: why simulate hour 6 of an idle plant?),
- :class:`DivergenceGuard` — stop (or raise) as soon as a quantity
  leaves a physical band or goes non-finite, turning a silently wrong
  run into an early exit,
- :func:`any_of` / :func:`all_of` — predicate combinators.

Predicates are plain callables ``StepState -> bool``, so they compose
with user lambdas and work on any engine fidelity (full or surrogate).
Monitored fields are named as :class:`~repro.core.engine.StepState`
attributes (``"system_power_w"``), properties (``"pue"``), or recorded
cooling outputs (``"htw_supply_temp_c"`` / ``"cooling.htw_supply_temp_c"``).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Iterable

import numpy as np

from repro.core.engine import StepState
from repro.exceptions import SimulationError


def step_value(step: StepState, field: str) -> float:
    """Resolve a monitored ``field`` of one step to a float.

    Lookup order: StepState attribute/property, then recorded cooling
    output (a ``"cooling."`` prefix skips straight to the cooling dict).
    Only scalar fields can be monitored (per-CDU arrays like
    ``cdu_heat_w`` are rejected with a clear error, not a TypeError).
    """
    name = field
    if name.startswith("cooling."):
        name = name[len("cooling."):]
    elif hasattr(step, name):
        return _scalar(getattr(step, name), field)
    if name in step.cooling:
        return _scalar(step.cooling[name], field)
    raise SimulationError(
        f"step has no field {field!r}; attributes include "
        "system_power_w/loss_w/utilization/pue, recorded cooling "
        f"outputs: {sorted(step.cooling)}"
    )


def _scalar(value, field: str) -> float:
    arr = np.asarray(value, dtype=np.float64)
    if arr.size != 1:
        raise SimulationError(
            f"field {field!r} has shape {arr.shape}; early-stop "
            "predicates monitor scalar quantities — reduce per-CDU "
            "series to a scalar in a custom predicate instead"
        )
    return float(arr.reshape(()))


class SteadyStateDetector:
    """True once ``field`` has been steady for ``window`` consecutive steps.

    Steady means the spread (max - min) of the last ``window`` samples is
    within ``atol + rtol * |mean|``.  NaN samples (e.g. PUE on an
    uncoupled run) reset the window — a quantity that is not being
    produced is not "steady".

    Stateful: use a fresh instance per run.
    """

    def __init__(
        self,
        field: str = "system_power_w",
        *,
        window: int = 20,
        rtol: float = 1e-3,
        atol: float = 0.0,
    ) -> None:
        if window < 2:
            raise SimulationError("steady-state window must be >= 2")
        if rtol < 0 or atol < 0:
            raise SimulationError("tolerances must be >= 0")
        self.field = field
        self.window = int(window)
        self.rtol = float(rtol)
        self.atol = float(atol)
        self._recent: deque[float] = deque(maxlen=self.window)
        self.triggered_at: float | None = None

    def __call__(self, step: StepState) -> bool:
        value = step_value(step, self.field)
        if math.isnan(value):
            self._recent.clear()
            return False
        self._recent.append(value)
        if len(self._recent) < self.window:
            return False
        lo = min(self._recent)
        hi = max(self._recent)
        mean = math.fsum(self._recent) / len(self._recent)
        steady = (hi - lo) <= self.atol + self.rtol * abs(mean)
        if steady and self.triggered_at is None:
            self.triggered_at = step.time_s
        return steady


class DivergenceGuard:
    """True as soon as ``field`` leaves ``[low, high]`` or is non-finite.

    With ``raise_on_trip=True`` the guard raises
    :class:`~repro.exceptions.SimulationError` instead of returning,
    turning a silently unphysical run into a hard failure.  ``low`` /
    ``high`` default to unbounded; non-finite values always trip.
    """

    def __init__(
        self,
        field: str = "system_power_w",
        *,
        low: float | None = None,
        high: float | None = None,
        raise_on_trip: bool = False,
    ) -> None:
        if low is not None and high is not None and not low < high:
            raise SimulationError("DivergenceGuard needs low < high")
        self.field = field
        self.low = low
        self.high = high
        self.raise_on_trip = bool(raise_on_trip)
        self.tripped_at: float | None = None
        self.tripped_value: float | None = None

    def __call__(self, step: StepState) -> bool:
        value = step_value(step, self.field)
        diverged = (
            not math.isfinite(value)
            or (self.low is not None and value < self.low)
            or (self.high is not None and value > self.high)
        )
        if not diverged:
            return False
        if self.tripped_at is None:
            self.tripped_at = step.time_s
            self.tripped_value = value
        if self.raise_on_trip:
            raise SimulationError(
                f"divergence guard tripped: {self.field}={value!r} at "
                f"t={step.time_s:.0f}s (bounds: {self.low}..{self.high})"
            )
        return True


def any_of(
    *predicates: Callable[[StepState], bool]
) -> Callable[[StepState], bool]:
    """Combined predicate: stop when any member says stop.

    Every member is evaluated on every step (no short-circuit), so
    stateful detectors keep their windows current.
    """
    preds = _checked(predicates)

    def combined(step: StepState) -> bool:
        return any([p(step) for p in preds])

    return combined


def all_of(
    *predicates: Callable[[StepState], bool]
) -> Callable[[StepState], bool]:
    """Combined predicate: stop only when every member says stop.

    Every member is evaluated on every step (no short-circuit), so
    stateful detectors keep their windows current.
    """
    preds = _checked(predicates)

    def combined(step: StepState) -> bool:
        return all([p(step) for p in preds])

    return combined


def _checked(predicates: Iterable) -> list:
    preds = list(predicates)
    if not preds:
        raise SimulationError("predicate combinator needs at least one member")
    for p in preds:
        if not callable(p):
            raise SimulationError(f"predicate {p!r} is not callable")
    return preds


__all__ = [
    "step_value",
    "SteadyStateDetector",
    "DivergenceGuard",
    "any_of",
    "all_of",
]
