"""High-level simulation facade: spec -> workload -> run -> report.

:class:`Simulation` is the front door most examples use: pick a system
(builtin name, JSON path, or spec), pick a workload (synthetic,
replayed, or a verification point), run, and read the statistics — the
terminal-console usage of the paper's Fig. 6.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.config.loader import load_builtin_system, load_system
from repro.config.schema import SystemSpec
from repro.core.engine import RapsEngine, SimulationResult
from repro.core.stats import RunStatistics, compute_statistics
from repro.exceptions import SimulationError
from repro.scheduler.job import Job
from repro.scheduler.workloads import (
    hpl_verification_workload,
    idle_workload,
    jobs_from_dataset,
    peak_workload,
    synthetic_workload,
)
from repro.telemetry.dataset import TelemetryDataset
from repro.telemetry.dataset import TimeSeries


class Simulation:
    """One configured digital-twin simulation."""

    def __init__(
        self,
        system: str | Path | SystemSpec = "frontier",
        *,
        with_cooling: bool = True,
        policy: str | None = None,
        chain=None,
        seed: int = 0,
    ) -> None:
        if isinstance(system, SystemSpec):
            self.spec = system
        else:
            text = str(system)
            if text.endswith(".json") or Path(text).exists():
                self.spec = load_system(system)
            else:
                self.spec = load_builtin_system(text)
        self.with_cooling = with_cooling
        self.policy = policy
        self.chain = chain
        self.seed = seed
        self.result: SimulationResult | None = None

    # -- workload selection -------------------------------------------------------

    def run_synthetic(
        self, duration_s: float = 14400.0, *, wetbulb: float | TimeSeries = 15.0
    ) -> SimulationResult:
        """Poisson synthetic workload (paper section III-B3)."""
        jobs = synthetic_workload(self.spec, duration_s, seed=self.seed)
        return self._run(jobs, duration_s, wetbulb, honor_recorded=False)

    def run_replay(
        self,
        dataset: TelemetryDataset,
        duration_s: float,
    ) -> SimulationResult:
        """Telemetry replay with recorded start times (Finding 8)."""
        jobs = jobs_from_dataset(dataset)
        wetbulb = (
            dataset["wetbulb_temperature"]
            if "wetbulb_temperature" in dataset
            else 15.0
        )
        return self._run(jobs, duration_s, wetbulb, honor_recorded=True)

    def run_verification(
        self, point: str, duration_s: float = 1800.0
    ) -> SimulationResult:
        """One Table III operating point: 'idle', 'hpl', or 'peak'."""
        builders = {
            "idle": idle_workload,
            "hpl": hpl_verification_workload,
            "peak": peak_workload,
        }
        if point not in builders:
            raise SimulationError(
                f"unknown verification point {point!r}; "
                f"expected one of {sorted(builders)}"
            )
        jobs = builders[point](self.spec, duration_s)
        return self._run(jobs, duration_s, 15.0, honor_recorded=True)

    def run_jobs(
        self,
        jobs: list[Job],
        duration_s: float,
        *,
        wetbulb: float | TimeSeries = 15.0,
        honor_recorded: bool = False,
    ) -> SimulationResult:
        """Run an explicit job list."""
        return self._run(jobs, duration_s, wetbulb, honor_recorded=honor_recorded)

    # -- internals -------------------------------------------------------------------

    def _run(
        self,
        jobs: list[Job],
        duration_s: float,
        wetbulb,
        *,
        honor_recorded: bool,
    ) -> SimulationResult:
        engine = RapsEngine(
            self.spec,
            chain=self.chain,
            with_cooling=self.with_cooling,
            honor_recorded_starts=honor_recorded,
            policy=self.policy,
        )
        self.result = engine.run(jobs, duration_s, wetbulb=wetbulb)
        return self.result

    # -- reporting --------------------------------------------------------------------

    def statistics(self) -> RunStatistics:
        """End-of-run report (section III-B5)."""
        if self.result is None:
            raise SimulationError("no simulation has been run yet")
        return compute_statistics(self.result, self.spec.economics)

    def mean_pue(self) -> float:
        """Mean PUE over the run (cooling must have been enabled)."""
        if self.result is None:
            raise SimulationError("no simulation has been run yet")
        if "pue" not in self.result.cooling:
            raise SimulationError("run was not coupled to the cooling model")
        return float(np.mean(self.result.cooling["pue"]))


__all__ = ["Simulation"]
