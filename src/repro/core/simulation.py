"""Legacy simulation facade, now a shim over the scenario API.

.. deprecated::
    :class:`Simulation` predates the scenario-first API and is kept as a
    compatibility layer: each ``run_*`` method builds the equivalent
    declarative :class:`~repro.scenarios.base.Scenario` and executes it
    through ``scenario.run(twin)``.  New code should use
    :mod:`repro.scenarios` directly — scenarios serialize to JSON, run
    in :class:`~repro.scenarios.suite.ExperimentSuite` batches, and
    stream per-step state.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.config.schema import SystemSpec
from repro.core.engine import RapsEngine, SimulationResult
from repro.core.stats import RunStatistics, compute_statistics
from repro.exceptions import ScenarioError, SimulationError
from repro.scenarios.library import (
    ReplayScenario,
    SyntheticScenario,
    VerificationScenario,
)
from repro.scenarios.twin import DigitalTwin
from repro.scheduler.job import Job
from repro.telemetry.dataset import TelemetryDataset, TimeSeries


class Simulation:
    """One configured digital-twin simulation (deprecated shim).

    Prefer the scenario API::

        from repro.scenarios import DigitalTwin, SyntheticScenario
        result = SyntheticScenario(duration_s=7200).run(DigitalTwin("frontier"))
    """

    def __init__(
        self,
        system: str | Path | SystemSpec = "frontier",
        *,
        with_cooling: bool = True,
        policy: str | None = None,
        chain=None,
        seed: int = 0,
    ) -> None:
        self.twin = DigitalTwin(system)
        self.with_cooling = with_cooling
        self.policy = policy
        self.chain = chain
        self.seed = seed
        self.result: SimulationResult | None = None

    @property
    def spec(self) -> SystemSpec:
        return self.twin.spec

    # -- workload selection -------------------------------------------------------

    def run_synthetic(
        self, duration_s: float = 14400.0, *, wetbulb: float | TimeSeries = 15.0
    ) -> SimulationResult:
        """Poisson synthetic workload (paper section III-B3)."""
        scenario = SyntheticScenario(
            duration_s=duration_s,
            seed=self.seed,
            with_cooling=self.with_cooling,
            policy=self.policy,
            wetbulb_c=(
                float(wetbulb) if not isinstance(wetbulb, TimeSeries) else 15.0
            ),
        )
        # A telemetry wet-bulb series is not declarative; pass it as an
        # execution-time override.
        override = wetbulb if isinstance(wetbulb, TimeSeries) else None
        return self._run_scenario(scenario, wetbulb=override)

    def run_replay(
        self,
        dataset: TelemetryDataset,
        duration_s: float,
    ) -> SimulationResult:
        """Telemetry replay with recorded start times (Finding 8)."""
        scenario = ReplayScenario(
            duration_s=duration_s,
            seed=self.seed,
            with_cooling=self.with_cooling,
            policy=self.policy,
        )
        return self._run_scenario(scenario, dataset=dataset)

    def run_verification(
        self, point: str, duration_s: float = 1800.0
    ) -> SimulationResult:
        """One Table III operating point: 'idle', 'hpl', or 'peak'."""
        try:
            scenario = VerificationScenario(
                point=point,
                duration_s=duration_s,
                seed=self.seed,
                with_cooling=self.with_cooling,
                policy=self.policy,
            )
        except ScenarioError as exc:
            raise SimulationError(str(exc)) from exc
        return self._run_scenario(scenario)

    def run_jobs(
        self,
        jobs: list[Job],
        duration_s: float,
        *,
        wetbulb: float | TimeSeries = 15.0,
        honor_recorded: bool = False,
    ) -> SimulationResult:
        """Run an explicit job list (no declarative equivalent)."""
        engine = RapsEngine(
            self.spec,
            chain=self.chain,
            with_cooling=self.with_cooling,
            honor_recorded_starts=honor_recorded,
            policy=self.policy,
        )
        self.result = engine.run(jobs, duration_s, wetbulb=wetbulb)
        return self.result

    # -- internals -------------------------------------------------------------------

    def _run_scenario(self, scenario, **kwargs) -> SimulationResult:
        outcome = scenario.run(self.twin, chain=self.chain, **kwargs)
        self.result = outcome.result
        return self.result

    # -- reporting --------------------------------------------------------------------

    def statistics(self) -> RunStatistics:
        """End-of-run report (section III-B5)."""
        if self.result is None:
            raise SimulationError("no simulation has been run yet")
        return compute_statistics(self.result, self.spec.economics)

    def mean_pue(self) -> float:
        """Mean PUE over the run (cooling must have been enabled)."""
        if self.result is None:
            raise SimulationError("no simulation has been run yet")
        if "pue" not in self.result.cooling:
            raise SimulationError("run was not coupled to the cooling model")
        return float(np.mean(self.result.cooling["pue"]))


__all__ = ["Simulation"]
