"""Output statistics and daily aggregation (paper III-B5, Table IV).

At the end of a run RAPS reports: jobs completed, throughput (jobs/hr),
average power (MW), total energy (MW-hr), rectification + conversion
losses (MW), CO2 emissions (metric tons), and total energy cost (USD).
``aggregate_daily`` reduces a list of per-day statistics to the
min/avg/max/std table of paper Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.config.schema import EconomicsSpec
from repro.core.engine import SimulationResult
from repro.exceptions import SimulationError
from repro.power.emissions import EmissionsModel


@dataclass(frozen=True)
class RunStatistics:
    """The section III-B5 end-of-run report for one simulation."""

    jobs_completed: int
    throughput_jobs_per_hour: float
    mean_arrival_s: float
    mean_nodes_per_job: float
    mean_runtime_min: float
    mean_power_mw: float
    total_energy_mwh: float
    mean_loss_mw: float
    loss_percent: float
    chain_efficiency: float
    co2_tons: float
    energy_cost_usd: float

    def report(self) -> str:
        """Human-readable end-of-run report."""
        lines = [
            "RAPS run statistics",
            "-" * 40,
            f"jobs completed:        {self.jobs_completed}",
            f"throughput:            {self.throughput_jobs_per_hour:.1f} jobs/hr",
            f"avg job arrival:       {self.mean_arrival_s:.0f} s",
            f"avg nodes per job:     {self.mean_nodes_per_job:.0f}",
            f"avg runtime:           {self.mean_runtime_min:.0f} min",
            f"average power:         {self.mean_power_mw:.2f} MW",
            f"total energy:          {self.total_energy_mwh:.1f} MW-hr",
            f"conversion loss:       {self.mean_loss_mw:.2f} MW "
            f"({self.loss_percent:.2f} %)",
            f"chain efficiency:      {self.chain_efficiency * 100:.2f} %",
            f"CO2 emissions:         {self.co2_tons:.1f} metric tons",
            f"energy cost:           ${self.energy_cost_usd:,.0f}",
        ]
        return "\n".join(lines)


def compute_statistics(
    result: SimulationResult, economics: EconomicsSpec
) -> RunStatistics:
    """Build the end-of-run report from an engine result."""
    completed = [j for j in result.jobs if j.end_time is not None]
    n_done = len(completed)
    hours = result.duration_s / 3600.0
    if hours <= 0:
        raise SimulationError("empty simulation result")
    submits = np.sort([j.submit_time for j in result.jobs])
    mean_arrival = (
        float(np.mean(np.diff(submits))) if submits.size > 1 else result.duration_s
    )
    mean_nodes = (
        float(np.mean([j.nodes_required for j in result.jobs]))
        if result.jobs
        else 0.0
    )
    mean_runtime_min = (
        float(np.mean([j.wall_time for j in result.jobs])) / 60.0
        if result.jobs
        else 0.0
    )
    emissions = EmissionsModel(economics)
    eta = result.mean_chain_efficiency
    co2 = emissions.co2_tons(result.energy_mwh, eta)
    cost = emissions.energy_cost_usd(result.energy_mwh)
    mean_power_w = result.mean_power_w
    return RunStatistics(
        jobs_completed=n_done,
        throughput_jobs_per_hour=n_done / hours,
        mean_arrival_s=mean_arrival,
        mean_nodes_per_job=mean_nodes,
        mean_runtime_min=mean_runtime_min,
        mean_power_mw=mean_power_w / 1e6,
        total_energy_mwh=result.energy_mwh,
        mean_loss_mw=result.mean_loss_w / 1e6,
        loss_percent=(
            result.mean_loss_w / mean_power_w * 100.0 if mean_power_w else 0.0
        ),
        chain_efficiency=eta,
        co2_tons=co2,
        energy_cost_usd=cost,
    )


@dataclass(frozen=True)
class DailyStatistics:
    """Min/avg/max/std of one Table IV parameter across days."""

    parameter: str
    minimum: float
    average: float
    maximum: float
    std: float


#: (Table IV row label, RunStatistics field) in paper order.
TABLE4_ROWS: tuple[tuple[str, str], ...] = (
    ("Avg Arrival Rate, t_avg (s)", "mean_arrival_s"),
    ("Avg Nodes per Job", "mean_nodes_per_job"),
    ("Avg Runtime (m)", "mean_runtime_min"),
    ("Jobs Completed", "jobs_completed"),
    ("Throughput (jobs/hr)", "throughput_jobs_per_hour"),
    ("Avg Power (MW)", "mean_power_mw"),
    ("Loss (MW)", "mean_loss_mw"),
    ("Loss (%)", "loss_percent"),
    ("Total Energy Consumed (MW-hr)", "total_energy_mwh"),
    ("Carbon Emissions (tons CO2)", "co2_tons"),
)


def aggregate_daily(days: list[RunStatistics]) -> list[DailyStatistics]:
    """Reduce per-day statistics to the Table IV min/avg/max/std rows."""
    if not days:
        raise SimulationError("no daily statistics to aggregate")
    valid_fields = {f.name for f in fields(RunStatistics)}
    out = []
    for label, field_name in TABLE4_ROWS:
        if field_name not in valid_fields:
            raise SimulationError(f"unknown statistics field {field_name}")
        vals = np.array([getattr(d, field_name) for d in days], dtype=np.float64)
        out.append(
            DailyStatistics(
                parameter=label,
                minimum=float(vals.min()),
                average=float(vals.mean()),
                maximum=float(vals.max()),
                std=float(vals.std()),
            )
        )
    return out


def format_table4(rows: list[DailyStatistics]) -> str:
    """Render the Table IV aggregate as fixed-width text."""
    header = f"{'Parameter':38s} {'Min':>10s} {'Avg':>10s} {'Max':>10s} {'Std':>10s}"
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.parameter:38s} {r.minimum:10.2f} {r.average:10.2f} "
            f"{r.maximum:10.2f} {r.std:10.2f}"
        )
    return "\n".join(lines)


__all__ = [
    "RunStatistics",
    "compute_statistics",
    "DailyStatistics",
    "TABLE4_ROWS",
    "aggregate_daily",
    "format_table4",
]
