"""Per-phase wall-clock profiling of the engine hot path.

The coupled main loop spends its time in four places per 15 s trace
quantum — event-driven *scheduling*, the vectorized *power* pipeline,
the *cooling* plant substeps, and the downstream *collect* consumer
(result assembly, progress callbacks, transports).  A
:class:`PhaseProfiler` attached to a :class:`~repro.core.engine.RapsEngine`
(``engine.profiler = PhaseProfiler()``) accumulates wall time per phase
with near-zero overhead when detached (a single ``is None`` check per
phase), turning "where does the time go?" into a measured answer::

    prof = PhaseProfiler()
    engine.profiler = prof
    engine.run(jobs, 86400.0)
    print(prof.summary())
    json.dumps(prof.as_dict())

The ``repro profile`` CLI verb wraps exactly this and emits the JSON
document, which is what :mod:`benchmarks.test_bench_core` and the
``docs/performance.md`` hot-path map are built from.
"""

from __future__ import annotations

import json
import time
from typing import Any

#: Engine phases in hot-path order (warmup runs once per coupled run).
ENGINE_PHASES = ("warmup", "schedule", "power", "cooling", "collect")


class PhaseProfiler:
    """Accumulates wall time and call counts per named phase.

    Phases are free-form strings; the engine reports
    :data:`ENGINE_PHASES`.  The profiler also tracks run wall time
    (between :meth:`begin_run` / :meth:`end_run`) and the engine's step
    and power-reuse counters, so one document captures both *where* the
    time goes and *how much* work change detection avoided.

    The profiler is **re-entrant safe**: one instance may be attached
    across any number of ``run()`` calls.  ``totals``/``counts``/
    ``steps``/``wall_s`` keep accumulating across runs (the historical
    contract), while :attr:`runs` records one document per completed
    run — steps, wall time, power counters, and that run's *own* phase
    seconds — so per-run separation is never lost.  ``end_run``
    tolerates engines that never evaluated power (both counters default
    to 0, e.g. surrogate-fidelity runs) and being called without a
    matching ``begin_run`` (wall time is then recorded as 0).
    """

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}
        self.steps = 0
        self.wall_s = 0.0
        self.power_evals = 0
        self.power_reuses = 0
        #: One record per completed run (appended by :meth:`end_run`).
        self.runs: list[dict[str, Any]] = []
        self._run_t0: float | None = None
        self._run_totals_base: dict[str, float] = {}

    # -- accumulation ------------------------------------------------------------

    def add(self, phase: str, seconds: float) -> None:
        """Record one timed interval for ``phase``."""
        self.totals[phase] = self.totals.get(phase, 0.0) + seconds
        self.counts[phase] = self.counts.get(phase, 0) + 1

    def begin_run(self) -> None:
        self._run_t0 = time.perf_counter()
        self._run_totals_base = dict(self.totals)

    def end_run(self, steps: int, *, power_evals: int = 0, power_reuses: int = 0) -> None:
        run_wall = 0.0
        if self._run_t0 is not None:
            run_wall = time.perf_counter() - self._run_t0
            self.wall_s += run_wall
            self._run_t0 = None
        self.steps += steps
        self.power_evals += power_evals
        self.power_reuses += power_reuses
        base = self._run_totals_base
        self.runs.append(
            {
                "steps": steps,
                "wall_s": run_wall,
                "power_evals": power_evals,
                "power_reuses": power_reuses,
                "phases": {
                    name: total - base.get(name, 0.0)
                    for name, total in self.totals.items()
                    if total - base.get(name, 0.0) > 0.0
                },
            }
        )
        self._run_totals_base = dict(self.totals)

    @property
    def last_run(self) -> dict[str, Any] | None:
        """The most recently completed run's record, if any."""
        return self.runs[-1] if self.runs else None

    # -- reporting ---------------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """JSON-compatible profile document."""
        phases = {}
        for name in sorted(self.totals, key=lambda p: -self.totals[p]):
            calls = self.counts[name]
            total = self.totals[name]
            phases[name] = {
                "total_s": round(total, 6),
                "calls": calls,
                "mean_us": round(total / calls * 1e6, 3) if calls else 0.0,
            }
        doc: dict[str, Any] = {
            "phases": phases,
            "steps": self.steps,
            "wall_s": round(self.wall_s, 6),
        }
        if self.wall_s > 0:
            doc["steps_per_s"] = round(self.steps / self.wall_s, 3)
        total_phased = sum(self.totals.values())
        doc["unattributed_s"] = round(max(self.wall_s - total_phased, 0.0), 6)
        doc["power_evals"] = self.power_evals
        doc["power_reuses"] = self.power_reuses
        doc["runs"] = len(self.runs)
        return doc

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def summary(self) -> str:
        """Aligned text table of the phase breakdown."""
        doc = self.as_dict()
        lines = [f"{'phase':<10} {'total s':>10} {'calls':>8} {'mean us':>10}"]
        lines.append("-" * len(lines[0]))
        for name, row in doc["phases"].items():
            lines.append(
                f"{name:<10} {row['total_s']:>10.4f} {row['calls']:>8d} "
                f"{row['mean_us']:>10.1f}"
            )
        lines.append(
            f"steps={doc['steps']} wall={doc['wall_s']:.3f}s "
            f"power_evals={doc['power_evals']} "
            f"power_reuses={doc['power_reuses']}"
        )
        return "\n".join(lines)


__all__ = ["PhaseProfiler", "ENGINE_PHASES"]
