"""The RAPS main loop (paper Algorithm 1).

Couples the scheduler, the vectorized power model, and the cooling FMU:

- scheduling events (arrivals, dispatches, completions) are processed at
  1 s resolution, event-driven so quiet seconds cost nothing;
- power is evaluated every trace quantum (15 s) over all nodes at once,
  using a pooled utilization-trace buffer so the per-quantum work is a
  handful of NumPy gathers regardless of how many jobs are running;
- the cooling FMU steps every 15 s with the per-CDU heat (paper: the
  cooling model is called every 15 s during the simulation).

A 24-hour Frontier replay runs in seconds (the paper's Modelica stack
takes ~9 minutes with cooling).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.config.schema import SystemSpec
from repro.cooling.fmu import CoolingFMU
from repro.exceptions import SimulationError
from repro.obs.registry import get_registry
from repro.power.system import PowerResult, SystemPowerModel
from repro.scheduler.engine import SchedulerEngine, SchedulerStats
from repro.scheduler.job import Job
from repro.telemetry.dataset import TimeSeries
from repro.telemetry.replay import ReplayCursor
from repro.telemetry.schema import TRACE_QUANTA_S


@dataclass
class SimulationResult:
    """Time series + counters produced by one engine run.

    All series are sampled at the trace quantum (15 s).  Cooling series
    are present only when the run was coupled to the cooling FMU.
    """

    times_s: np.ndarray
    system_power_w: np.ndarray
    loss_w: np.ndarray
    sivoc_loss_w: np.ndarray
    rectifier_loss_w: np.ndarray
    chain_efficiency: np.ndarray
    utilization: np.ndarray
    num_running: np.ndarray
    cdu_power_w: np.ndarray  # (T, num_cdus)
    cdu_heat_w: np.ndarray  # (T, num_cdus)
    scheduler_stats: SchedulerStats
    jobs: list[Job]
    cooling: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return float(self.times_s[-1] - self.times_s[0] + TRACE_QUANTA_S)

    @property
    def mean_power_w(self) -> float:
        return float(np.mean(self.system_power_w))

    @property
    def energy_mwh(self) -> float:
        """Total energy over the run, MW-hr (rectangular integration)."""
        return float(np.sum(self.system_power_w) * TRACE_QUANTA_S / 3.6e9)

    @property
    def loss_energy_mwh(self) -> float:
        """Energy lost in conversion over the run, MW-hr."""
        return float(np.sum(self.loss_w) * TRACE_QUANTA_S / 3.6e9)

    @property
    def mean_loss_w(self) -> float:
        return float(np.mean(self.loss_w))

    @property
    def mean_chain_efficiency(self) -> float:
        """Power-weighted mean eta_system over the run."""
        weights = self.system_power_w
        return float(np.average(self.chain_efficiency, weights=weights))

    def power_series(self) -> TimeSeries:
        """System power as a TimeSeries (for export / validation)."""
        return TimeSeries(self.times_s, self.system_power_w, "W")

    def cooling_series(self, name: str) -> TimeSeries:
        """One recorded cooling output as a TimeSeries."""
        if name not in self.cooling:
            raise SimulationError(
                f"cooling series {name!r} not recorded; "
                f"available: {sorted(self.cooling)}"
            )
        return TimeSeries(self.times_s, self.cooling[name], "")


@dataclass(frozen=True)
class StepState:
    """One trace quantum (15 s) of engine state, as yielded by
    :meth:`RapsEngine.iter_steps`.

    Scalar power/loss/efficiency values mirror one row of
    :class:`SimulationResult`; ``cooling`` holds the recorded plant
    outputs for this quantum (empty when the run is uncoupled).
    """

    index: int
    time_s: float
    system_power_w: float
    loss_w: float
    sivoc_loss_w: float
    rectifier_loss_w: float
    chain_efficiency: float
    utilization: float
    num_running: int
    cdu_power_w: np.ndarray  # (num_cdus,)
    cdu_heat_w: np.ndarray  # (num_cdus,)
    cooling: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def pue(self) -> float:
        """Instantaneous PUE (NaN when cooling is uncoupled)."""
        if "pue" not in self.cooling:
            return float("nan")
        return float(np.asarray(self.cooling["pue"]))


#: Cooling outputs recorded by default (the Fig. 7 validation set).
DEFAULT_COOLING_RECORD = (
    "pue",
    "htw_supply_temp_c",
    "htw_return_temp_c",
    "htw_supply_pressure_pa",
    "ctw_supply_temp_c",
    "num_ct_staged",
    "num_htwp_staged",
    "num_ehx_staged",
    "aux_power_w",
    "cdu_primary_flow_m3s",
    "cdu_primary_return_temp_c",
    "cdu_secondary_supply_temp_c",
    "cdu_pump_power_w",
)


class _TracePool:
    """Concatenated utilization traces + per-slot gather state.

    ``event_count`` increments on every slot start/stop, so the engine
    can fingerprint a quantum as (event count, gathered per-slot trace
    values): if neither changed since the previous quantum, the
    node-level gather — and the whole power pipeline behind it — would
    reproduce the previous result exactly and can be skipped.
    """

    def __init__(self, jobs: list[Job]) -> None:
        cpu_parts = [j.cpu_util for j in jobs]
        gpu_parts = [j.gpu_util for j in jobs]
        lens = np.array([p.size for p in cpu_parts], dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(lens)[:-1])) if jobs else np.zeros(0, np.int64)
        self.cpu = np.concatenate(cpu_parts) if jobs else np.zeros(0)
        self.gpu = np.concatenate(gpu_parts) if jobs else np.zeros(0)
        self.job_offset = {j.job_id: int(o) for j, o in zip(jobs, offsets)}
        self.job_len = {j.job_id: int(n) for j, n in zip(jobs, lens)}
        self.event_count = 0
        # Slot state (grows with peak concurrency).
        cap = 64
        self.slot_offset = np.zeros(cap, dtype=np.int64)
        self.slot_len = np.ones(cap, dtype=np.int64)
        self.slot_start = np.zeros(cap, dtype=np.float64)
        self.slot_active = np.zeros(cap, dtype=bool)
        self.slot_nodes = np.zeros(cap, dtype=np.int64)
        # Node-level gather scratch (lazily sized; reused every quantum
        # so the steady-state per-quantum path allocates nothing
        # proportional to the node count).
        self._node_occ: np.ndarray | None = None
        self._node_slot: np.ndarray | None = None
        self._node_cpu: np.ndarray | None = None
        self._node_gpu: np.ndarray | None = None

    def _ensure(self, slot: int) -> None:
        while slot >= self.slot_offset.size:
            for name in ("slot_offset", "slot_len", "slot_start"):
                arr = getattr(self, name)
                setattr(self, name, np.concatenate([arr, np.ones_like(arr)]))
            self.slot_active = np.concatenate(
                [self.slot_active, np.zeros_like(self.slot_active)]
            )
            self.slot_nodes = np.concatenate(
                [self.slot_nodes, np.zeros_like(self.slot_nodes)]
            )

    def start(self, job: Job) -> None:
        self._ensure(job.slot)
        self.slot_offset[job.slot] = self.job_offset[job.job_id]
        self.slot_len[job.slot] = self.job_len[job.job_id]
        self.slot_start[job.slot] = job.start_time
        self.slot_active[job.slot] = True
        self.slot_nodes[job.slot] = job.nodes_required
        self.event_count += 1

    def stop(self, job: Job) -> None:
        self.slot_active[job.slot] = False
        self.event_count += 1

    def _slot_utils(self, now: float, quanta: float) -> tuple[np.ndarray, np.ndarray]:
        """Per-slot (cpu, gpu) utilization at ``now`` (inactive slots 0)."""
        idx = np.clip(
            ((now - self.slot_start) // quanta).astype(np.int64),
            0,
            self.slot_len - 1,
        )
        flat = self.slot_offset + idx
        slot_cpu = np.where(self.slot_active, self.cpu[np.minimum(flat, max(self.cpu.size - 1, 0))], 0.0) if self.cpu.size else np.zeros_like(flat, dtype=np.float64)
        slot_gpu = np.where(self.slot_active, self.gpu[np.minimum(flat, max(self.gpu.size - 1, 0))], 0.0) if self.gpu.size else np.zeros_like(flat, dtype=np.float64)
        return slot_cpu, slot_gpu

    def node_utils(
        self, now: float, slot_of_node: np.ndarray, quanta: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-node (cpu, gpu) utilization via two vectorized gathers."""
        slot_cpu, slot_gpu = self._slot_utils(now, quanta)
        return self.node_utils_from(slot_cpu, slot_gpu, slot_of_node)

    def node_utils_from(
        self,
        slot_cpu: np.ndarray,
        slot_gpu: np.ndarray,
        slot_of_node: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Gather node utilizations from precomputed per-slot values.

        Runs entirely in reused node-sized scratch buffers: unoccupied
        nodes gather slot 0 through a masked index and are then zeroed
        by a mask multiply (identical values to the ``np.where``
        formulation for the finite trace data involved).  The returned
        arrays are owned by the pool and overwritten on the next call.
        """
        nn = slot_of_node.size
        if self._node_cpu is None or self._node_cpu.size != nn:
            self._node_occ = np.empty(nn, dtype=bool)
            self._node_slot = np.empty(nn, dtype=np.int64)
            self._node_cpu = np.empty(nn)
            self._node_gpu = np.empty(nn)
        occ, safe = self._node_occ, self._node_slot
        np.greater_equal(slot_of_node, 0, out=occ)
        np.multiply(slot_of_node, occ, out=safe)
        np.take(slot_cpu, safe, out=self._node_cpu)
        np.multiply(self._node_cpu, occ, out=self._node_cpu)
        np.take(slot_gpu, safe, out=self._node_gpu)
        np.multiply(self._node_gpu, occ, out=self._node_gpu)
        return self._node_cpu, self._node_gpu

    def slot_fingerprint(
        self, now: float, quanta: float
    ) -> tuple[int, np.ndarray, np.ndarray]:
        """Cheap per-quantum change fingerprint.

        Returns ``(event_count, slot_cpu, slot_gpu)``: the number of
        slot start/stop events so far plus the gathered per-slot trace
        values at ``now``.  Two quanta with equal fingerprints have
        bit-identical node utilizations (no placement change and the
        same gathered values), so the power evaluation of the first can
        be reused verbatim for the second — O(slots) to check instead
        of O(nodes) to recompute.
        """
        slot_cpu, slot_gpu = self._slot_utils(now, quanta)
        return self.event_count, slot_cpu, slot_gpu

    def active_aggregates(
        self, now: float, quanta: float, total_nodes: int
    ) -> tuple[float, float, float]:
        """(active fraction, mean cpu, mean gpu) over the *active* nodes.

        Node-count-weighted means over slots — O(slots), never O(nodes) —
        which is exactly the feature vector of
        :class:`~repro.surrogate.models.PowerSurrogate`.  Used by the
        fast-path :class:`~repro.fastpath.engine.SurrogateEngine`.
        """
        slot_cpu, slot_gpu = self._slot_utils(now, quanta)
        nodes = np.where(self.slot_active, self.slot_nodes, 0)
        active = float(nodes.sum())
        if active <= 0:
            return 0.0, 0.0, 0.0
        return (
            min(active / float(total_nodes), 1.0),
            float(np.dot(slot_cpu, nodes) / active),
            float(np.dot(slot_gpu, nodes) / active),
        )


def _pending_dispatchable(scheduler: SchedulerEngine, q_end: float) -> bool:
    """Whether a queued job could start before the quantum ends."""
    if scheduler.num_pending == 0:
        return False
    if scheduler.honor_recorded_starts:
        return any(
            j.recorded_start is not None and j.recorded_start < q_end
            for j in scheduler.queue
        )
    return scheduler.allocator.num_free > 0


def drive_schedule(
    scheduler: SchedulerEngine,
    pool: _TracePool,
    jobs: list[Job],
    n_steps: int,
    quanta: float,
    *,
    events=(),
    on_event=None,
) -> Iterator[tuple[int, float]]:
    """Advance scheduling quantum by quantum, yielding ``(k, t_sample)``.

    The event-driven half of Algorithm 1, factored out of
    :class:`RapsEngine` so alternative physics backends (the fast-path
    :class:`~repro.fastpath.engine.SurrogateEngine`) reuse the *same*
    arrival/dispatch/completion ordering bit for bit.  ``jobs`` must be
    sorted by ``(submit_time, job_id)`` and ``pool`` built from the same
    list; after each yield the scheduler and pool reflect the state at
    the end of quantum ``k`` and ``t_sample = k * quanta`` is the
    sampling instant for that quantum's physics.

    ``events`` is an optional time-sorted stream of
    :class:`~repro.core.events.FaultEvent`\\ s; each is handed to
    ``on_event(event, t)`` at the start of the quantum containing it,
    *before* that quantum's scheduling — so every backend applying the
    same stream sees identical scheduling.
    """
    arrival_ptr = 0
    event_ptr = 0
    now = 0.0
    for k in range(n_steps):
        q_end = (k + 1) * quanta
        # --- fault events quantized to this quantum, before scheduling.
        while event_ptr < len(events) and events[event_ptr].time_s < q_end:
            if on_event is not None:
                on_event(events[event_ptr], k * quanta)
            event_ptr += 1
        # --- event-driven scheduling inside the quantum (1 s grain).
        while True:
            next_arrival = (
                jobs[arrival_ptr].submit_time
                if arrival_ptr < len(jobs)
                else np.inf
            )
            next_completion = scheduler.next_event_time() or np.inf
            # Pending jobs may be startable right now (nodes just freed
            # or replay time reached); the tick below handles both.
            t_event = min(next_arrival, next_completion)
            if t_event >= q_end and not _pending_dispatchable(scheduler, q_end):
                break
            tick_t = float(np.floor(min(t_event, q_end - 1.0)))
            tick_t = max(tick_t, now)
            arrivals: list[Job] = []
            while (
                arrival_ptr < len(jobs)
                and jobs[arrival_ptr].submit_time <= tick_t
            ):
                arrivals.append(jobs[arrival_ptr])
                arrival_ptr += 1
            started, completed = scheduler.tick(tick_t, arrivals)
            # Stop before start: a job starting this tick may reuse a
            # slot freed by a completion in the same tick, and the
            # pool must mirror the scheduler's complete-then-dispatch
            # order or the reused slot would be deactivated.
            for job in completed:
                pool.stop(job)
            for job in started:
                pool.start(job)
            now = tick_t + 1.0
            if not started and not completed and not arrivals:
                break
        now = q_end
        yield k, k * quanta


def collect_steps(
    steps: Iterator[StepState],
    *,
    jobs: list[Job],
    num_cdus: int,
    scheduler_stats: SchedulerStats,
    progress=None,
    stop_when=None,
) -> SimulationResult:
    """Assemble streamed :class:`StepState`\\ s into a result.

    The shared collector behind :meth:`RapsEngine.run` and
    :meth:`~repro.fastpath.engine.SurrogateEngine.run`: both fidelities
    buffer their streams through this one function, so a surrogate run
    yields a :class:`SimulationResult` that is indistinguishable in
    shape from a full-fidelity one.
    """
    recorded: list[StepState] = []
    try:
        for step in steps:
            recorded.append(step)
            if progress is not None:
                progress(step)
            if stop_when is not None and stop_when(step):
                break
    finally:
        close = getattr(steps, "close", None)
        if close is not None:
            close()
    if not recorded:
        raise SimulationError("run produced no steps")

    n = len(recorded)
    times = np.empty(n)
    sys_w = np.empty(n)
    loss_w = np.empty(n)
    sivoc_w = np.empty(n)
    rect_w = np.empty(n)
    eff = np.empty(n)
    util = np.empty(n)
    nrun = np.empty(n, dtype=np.int64)
    cdu_w = np.empty((n, num_cdus))
    cdu_h = np.empty((n, num_cdus))
    for k, step in enumerate(recorded):
        times[k] = step.time_s
        sys_w[k] = step.system_power_w
        loss_w[k] = step.loss_w
        sivoc_w[k] = step.sivoc_loss_w
        rect_w[k] = step.rectifier_loss_w
        eff[k] = step.chain_efficiency
        util[k] = step.utilization
        nrun[k] = step.num_running
        cdu_w[k] = step.cdu_power_w
        cdu_h[k] = step.cdu_heat_w
    cooling = {
        key: np.asarray([s.cooling[key] for s in recorded])
        for key in recorded[0].cooling
    }
    return SimulationResult(
        times_s=times,
        system_power_w=sys_w,
        loss_w=loss_w,
        sivoc_loss_w=sivoc_w,
        rectifier_loss_w=rect_w,
        chain_efficiency=eff,
        utilization=util,
        num_running=nrun,
        cdu_power_w=cdu_w,
        cdu_heat_w=cdu_h,
        scheduler_stats=scheduler_stats,
        jobs=jobs,
        cooling=cooling,
    )


class RapsEngine:
    """Algorithm 1: RUNSIMULATION / TICK / SCHEDULEJOBS.

    This is the low-level loop; most callers should describe their
    experiment as a :class:`~repro.scenarios.base.Scenario` and let
    ``scenario.run(twin)`` / ``scenario.iter_steps(twin)`` plan the
    workload and construct the engine — scenarios serialize, batch into
    suites, and persist into campaign artifacts.

    Parameters
    ----------
    spec:
        System description.
    chain:
        Optional conversion-chain override (what-ifs).
    with_cooling:
        Couple the cooling FMU every 15 s (paper default).  Disabling it
        triples replay speed, matching the paper's "three minutes
        without [cooling]" observation.
    honor_recorded_starts:
        Replay mode: jobs dispatch at their recorded start times.
    warm_cache:
        Optional warm-plant state cache (duck-typed like
        :class:`~repro.service.warmcache.WarmStateCache`): when a
        snapshot for (spec, wet-bulb, warmup seconds, substep) is
        cached, the cooling warmup restores it instead of re-stepping
        the plant — bit-identical, since warmup is deterministic —
        and a miss stores the freshly warmed state for the next run.
    cooling_backend:
        Plant stepping backend for the coupled cooling FMU: the fused
        flat-array kernel (``"fused"``, default) or the reference
        object graph (``"reference"``); the two are bit-identical.
    profiler:
        Optional :class:`~repro.core.profiling.PhaseProfiler`;
        when attached, each run accumulates per-phase wall time
        (warmup / schedule / power / cooling / collect).
    """

    def __init__(
        self,
        spec: SystemSpec,
        *,
        chain=None,
        with_cooling: bool = True,
        honor_recorded_starts: bool = False,
        policy: str | None = None,
        allocation: str = "contiguous",
        cooling_substep_s: float = 3.0,
        cooling_backend: str = "fused",
        down_nodes: np.ndarray | None = None,
        warm_cache=None,
        profiler=None,
    ) -> None:
        self.spec = spec
        # A chain override changes the idle heat the warmup runs at, so
        # its warmed state must not be shared with baseline runs: the
        # cache key is (spec, wetbulb, warmup, substep) only, and
        # what-if engines simply bypass the cache.
        self.warm_cache = warm_cache if chain is None else None
        self.power = SystemPowerModel(spec, chain=chain)
        self.scheduler = SchedulerEngine(
            spec.total_nodes,
            policy=policy or spec.scheduler.policy,
            allocation=allocation,
            honor_recorded_starts=honor_recorded_starts,
            max_queue_depth=spec.scheduler.max_queue_depth,
            down_nodes=down_nodes,
        )
        self.fmu: CoolingFMU | None = None
        if with_cooling:
            self.fmu = CoolingFMU(
                spec.cooling,
                substep_s=cooling_substep_s,
                backend=cooling_backend,
            )
        self.quanta = TRACE_QUANTA_S
        self.profiler = profiler
        #: Reuse the previous quantum's PowerResult when the trace-pool
        #: fingerprint is unchanged (flat traces and idle stretches then
        #: cost one O(slots) comparison instead of an O(nodes) pipeline).
        #: Flip off to force a fresh evaluation every quantum.
        self.power_change_detection = True
        #: Per-run counters (reset by each iter_steps call).
        self.power_evals = 0
        self.power_reuses = 0
        # The idle PowerResult that seeds every cooling warmup is a pure
        # function of the spec/chain: computed once per engine, reused
        # across runs.
        self._idle_power: PowerResult | None = None

    # -- main loop ------------------------------------------------------------

    def iter_steps(
        self,
        jobs: list[Job],
        duration_s: float,
        *,
        wetbulb: TimeSeries | float = 15.0,
        cooling_record: tuple[str, ...] = DEFAULT_COOLING_RECORD,
        warmup_cooling_s: float = 1800.0,
        events=(),
    ) -> Iterator[StepState]:
        """Stream the simulation one trace quantum at a time.

        Yields a :class:`StepState` per 15 s quantum as it is computed,
        enabling progress callbacks, early-stop predicates, and live
        dashboard feeds without buffering a whole run.  Closing the
        generator early is safe; :meth:`run` is a thin collector over
        this iterator and the two produce bit-identical series.

        ``jobs`` are submitted at their ``submit_time``; replay mode uses
        recorded starts.  ``wetbulb`` may be a constant or a telemetry
        series.  The cooling plant is pre-warmed at the initial load for
        ``warmup_cooling_s`` so transients reflect workload changes, not
        cold-start initialization.  ``events`` is an optional stream of
        :class:`~repro.core.events.FaultEvent`\\ s (node outages, CDU
        blockages) applied while the run advances.
        """
        jobs = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        return self._iter_steps_sorted(
            jobs,
            duration_s,
            wetbulb=wetbulb,
            cooling_record=cooling_record,
            warmup_cooling_s=warmup_cooling_s,
            events=events,
        )

    def _iter_steps_sorted(
        self,
        jobs: list[Job],
        duration_s: float,
        *,
        wetbulb: TimeSeries | float = 15.0,
        cooling_record: tuple[str, ...] = DEFAULT_COOLING_RECORD,
        warmup_cooling_s: float = 1800.0,
        events=(),
    ) -> Iterator[StepState]:
        """:meth:`iter_steps` body for an already-sorted job list."""
        if duration_s <= 0:
            raise SimulationError("duration must be positive")
        from time import perf_counter

        n_steps = int(np.ceil(duration_s / self.quanta))
        pool = _TracePool(jobs)
        wb_cursor = (
            ReplayCursor(wetbulb, method="linear")
            if isinstance(wetbulb, TimeSeries)
            else None
        )
        prof = self.profiler
        if prof is not None:
            prof.begin_run()

        if self.fmu is not None:
            from repro.cooling.fmu import FmuState

            if self.fmu.state is not FmuState.INSTANTIATED:
                self.fmu.reset()  # allow repeated runs on one engine
            self.fmu.setup_experiment(start_time=0.0)
            t0 = perf_counter() if prof is not None else 0.0
            self._warmup_cooling(jobs, wetbulb, warmup_cooling_s)
            if prof is not None:
                prof.add("warmup", perf_counter() - t0)

        # Change-detection state: the previous quantum's PowerResult and
        # the fingerprint (slot events + gathered per-slot traces) it
        # was computed from.
        self.power_evals = 0
        self.power_reuses = 0
        last_result: PowerResult | None = None
        last_events = -1
        last_cpu: np.ndarray | None = None
        last_gpu: np.ndarray | None = None
        slot_of_node = self.scheduler.allocator.slot_of_node

        if events:
            from repro.core.events import sort_events

            events = sort_events(events)
        sched = drive_schedule(
            self.scheduler,
            pool,
            jobs,
            n_steps,
            self.quanta,
            events=events,
            on_event=self._fault_handler(pool) if events else None,
        )
        steps_done = 0
        try:
            while True:
                t0 = perf_counter() if prof is not None else 0.0
                try:
                    k, t_sample = next(sched)
                except StopIteration:
                    break
                if prof is not None:
                    prof.add("schedule", perf_counter() - t0)
                    t0 = perf_counter()

                # --- power at the quantum boundary (vectorized over
                # nodes), reusing the previous result when nothing in
                # the trace pool changed.
                events, slot_cpu, slot_gpu = pool.slot_fingerprint(
                    t_sample, self.quanta
                )
                if (
                    self.power_change_detection
                    and last_result is not None
                    and events == last_events
                    and np.array_equal(slot_cpu, last_cpu)
                    and np.array_equal(slot_gpu, last_gpu)
                ):
                    result = last_result
                    self.power_reuses += 1
                else:
                    node_cpu, node_gpu = pool.node_utils_from(
                        slot_cpu, slot_gpu, slot_of_node
                    )
                    result = self.power.evaluate(node_cpu, node_gpu)
                    self.power_evals += 1
                    last_result = result
                    last_events = events
                    last_cpu = slot_cpu
                    last_gpu = slot_gpu
                if prof is not None:
                    prof.add("power", perf_counter() - t0)
                    t0 = perf_counter()

                # --- cooling FMU step (15 s coupling, Algorithm 1
                # line 23).
                cooling: dict[str, np.ndarray] = {}
                if self.fmu is not None:
                    wb = (
                        float(np.asarray(wb_cursor.value(t_sample)))
                        if wb_cursor is not None
                        else float(wetbulb)
                    )
                    self.fmu.set_cdu_heat(result.cdu_heat_w)
                    self.fmu.set_wetbulb(wb)
                    self.fmu.set_system_power(result.system_power_w)
                    self.fmu.do_step(self.fmu.time, self.quanta)
                    state = self.fmu.get_state()
                    # PlantState fields are freshly allocated by each
                    # plant step, so recording can alias them directly
                    # instead of copying every array every quantum.
                    cooling = {
                        key: getattr(state, key) for key in cooling_record
                    }
                    if prof is not None:
                        prof.add("cooling", perf_counter() - t0)

                step = StepState(
                    index=k,
                    time_s=t_sample,
                    system_power_w=result.system_power_w,
                    loss_w=result.loss_w,
                    sivoc_loss_w=result.sivoc_loss_w,
                    rectifier_loss_w=result.rectifier_loss_w,
                    chain_efficiency=result.chain_efficiency,
                    utilization=self.scheduler.utilization,
                    num_running=self.scheduler.num_running,
                    cdu_power_w=result.cdu_power_w,
                    cdu_heat_w=result.cdu_heat_w,
                    cooling=cooling,
                )
                steps_done += 1
                if prof is None:
                    yield step
                else:
                    t0 = perf_counter()
                    yield step
                    prof.add("collect", perf_counter() - t0)
        finally:
            if prof is not None:
                prof.end_run(
                    steps_done,
                    power_evals=self.power_evals,
                    power_reuses=self.power_reuses,
                )
            # Fold this run's bulk counters into the process registry.
            # One call per *run*, never per quantum, so the detached
            # (NullRegistry) cost is a handful of no-op calls.
            reg = get_registry()
            if reg.enabled:
                reg.counter("repro_engine_runs_total").inc()
                reg.counter("repro_engine_steps_total").inc(steps_done)
                reg.counter("repro_engine_power_evals_total").inc(
                    self.power_evals
                )
                reg.counter("repro_engine_power_reuses_total").inc(
                    self.power_reuses
                )
                if prof is not None and prof.last_run is not None:
                    fam = reg.counter("repro_engine_phase_seconds_total")
                    for phase, secs in prof.last_run["phases"].items():
                        fam.labels(phase=phase).inc(secs)

    def run(
        self,
        jobs: list[Job],
        duration_s: float,
        *,
        wetbulb: TimeSeries | float = 15.0,
        cooling_record: tuple[str, ...] = DEFAULT_COOLING_RECORD,
        warmup_cooling_s: float = 1800.0,
        events=(),
        progress=None,
        stop_when=None,
    ) -> SimulationResult:
        """Run the simulation for ``duration_s`` seconds and collect.

        A thin collector over :meth:`iter_steps` — same semantics, whole
        run buffered into a :class:`SimulationResult`.  ``progress`` is
        an optional per-step callback receiving each :class:`StepState`;
        ``stop_when`` is an optional early-stop predicate on the step
        (the step that triggers it is still recorded, then the run ends).
        """
        jobs = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        steps = self._iter_steps_sorted(
            jobs,
            duration_s,
            wetbulb=wetbulb,
            cooling_record=cooling_record,
            warmup_cooling_s=warmup_cooling_s,
            events=events,
        )
        return self.collect(
            steps,
            jobs=jobs,
            progress=progress,
            stop_when=stop_when,
        )

    def collect(
        self,
        steps: Iterator[StepState],
        *,
        jobs: list[Job],
        progress=None,
        stop_when=None,
    ) -> SimulationResult:
        """Assemble streamed :class:`StepState`\\ s into a result."""
        return collect_steps(
            steps,
            jobs=jobs,
            num_cdus=self.spec.cooling.num_cdus,
            scheduler_stats=self.scheduler.stats,
            progress=progress,
            stop_when=stop_when,
        )

    # -- helpers ------------------------------------------------------------------

    def _fault_handler(self, pool: _TracePool):
        """Event applicator closure for :func:`drive_schedule`.

        Node outages go to the scheduler (killed jobs are mirrored into
        the trace pool, exactly like completions); CDU blockages go to
        the plant's blockage input.  Both cooling backends honor a
        runtime blockage change identically — the fused kernel pulls
        ``blockage_factor`` from the plant at every macro step.
        """

        def apply(event, now: float) -> None:
            if event.kind == "node-down":
                nodes = np.asarray(event.nodes, dtype=np.int64)
                for job in self.scheduler.fail_nodes(
                    nodes, now, kill_running=event.kill_running
                ):
                    pool.stop(job)
            elif event.kind == "node-up":
                self.scheduler.restore_nodes(
                    np.asarray(event.nodes, dtype=np.int64)
                )
            elif event.kind == "cdu-blockage":
                if self.fmu is not None:
                    self.fmu.set_cdu_blockage(event.cdu_index, event.severity)

        return apply

    def _warmup_cooling(
        self, jobs: list[Job], wetbulb, warmup_s: float
    ) -> None:
        """Pre-condition the plant at the initial idle-load heat.

        Warmup is deterministic — idle heat is a pure function of the
        spec and the plant steps are pure functions of state — so when
        a ``warm_cache`` is attached, a cached snapshot for this
        (spec, wet-bulb, warmup, substep) is restored in place of the
        stepping loop and the run proceeds bit-identically; a miss
        stores the freshly warmed state for subsequent runs.
        """
        if self.fmu is None or warmup_s <= 0:
            return
        wb0 = (
            float(wetbulb.values[0])
            if isinstance(wetbulb, TimeSeries)
            else float(wetbulb)
        )
        cache = self.warm_cache
        if cache is not None:
            snapshot = cache.lookup(
                self.spec, wb0, warmup_s, self.fmu.substep_s
            )
            if snapshot is not None:
                self.fmu.set_fmu_state(snapshot)
                self.fmu._time = 0.0
                self.fmu._plant.time_s = 0.0
                return
        if self._idle_power is None:
            n = self.power.nodes.total_nodes
            self._idle_power = self.power.evaluate(np.zeros(n), np.zeros(n))
        idle = self._idle_power
        steps = int(warmup_s / self.quanta)
        self.fmu.set_cdu_heat(idle.cdu_heat_w)
        self.fmu.set_wetbulb(wb0)
        self.fmu.set_system_power(idle.system_power_w)
        for _ in range(steps):
            self.fmu.do_step(self.fmu.time, self.quanta)
        # Re-anchor the clock so recorded outputs start at t=0.
        self.fmu._time = 0.0
        self.fmu._plant.time_s = 0.0
        if cache is not None:
            cache.store(
                self.spec,
                wb0,
                warmup_s,
                self.fmu.substep_s,
                self.fmu.get_fmu_state(),
            )


__all__ = [
    "RapsEngine",
    "SimulationResult",
    "StepState",
    "DEFAULT_COOLING_RECORD",
    "drive_schedule",
    "collect_steps",
]
