"""Telemetry replay through the digital twin + validation (Finding 8).

``replay_dataset`` drives the twin with a telemetry dataset's job
records at their recorded start times; :class:`ReplayValidation` wraps
the replay of a *measured* dataset (e.g. from the physical-twin
surrogate) and scores every predicted series against its measured
counterpart — the paper's Fig. 7 / Fig. 9 / Table III methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config.schema import SystemSpec
from repro.core.engine import RapsEngine, SimulationResult
from repro.core.validate import SeriesComparison, compare_series
from repro.exceptions import ValidationError
from repro.scheduler.workloads import jobs_from_dataset
from repro.telemetry.dataset import TelemetryDataset, TimeSeries


def replay_dataset(
    spec: SystemSpec,
    dataset: TelemetryDataset,
    duration_s: float,
    *,
    with_cooling: bool = True,
    chain=None,
    progress=None,
) -> SimulationResult:
    """Replay a telemetry dataset's jobs through the twin.

    Jobs dispatch at their recorded start times (the physical twin's
    scheduling decisions); weather comes from the dataset when present.
    ``progress`` is forwarded to the engine's per-step callback hook.
    """
    jobs = jobs_from_dataset(dataset)
    wetbulb = (
        dataset["wetbulb_temperature"]
        if "wetbulb_temperature" in dataset
        else 15.0
    )
    engine = RapsEngine(
        spec,
        with_cooling=with_cooling,
        honor_recorded_starts=True,
        chain=chain,
    )
    return engine.run(jobs, duration_s, wetbulb=wetbulb, progress=progress)


#: (comparison name, measured series name, predicted accessor)
_SERIES_MAP: tuple[tuple[str, str, str], ...] = (
    ("system_power", "measured_power", "power"),
    ("cdu_primary_flow", "cdu_htw_flow", "cdu_primary_flow_m3s"),
    ("cdu_primary_return_temp", "cdu_return_temp", "cdu_primary_return_temp_c"),
    ("cdu_secondary_supply_temp", "cdu_supply_temp", "cdu_secondary_supply_temp_c"),
    ("htw_supply_pressure", "htw_supply_pressure", "htw_supply_pressure_pa"),
    ("htw_supply_temp", "htw_supply_temp", "htw_supply_temp_c"),
    ("pue", "pue", "pue"),
)


@dataclass
class ReplayValidation:
    """Replay-and-compare harness over a measured telemetry dataset."""

    spec: SystemSpec
    measured: TelemetryDataset
    duration_s: float
    with_cooling: bool = True
    result: SimulationResult | None = None
    comparisons: dict[str, SeriesComparison] = field(default_factory=dict)

    def run(self) -> "ReplayValidation":
        """Execute the replay and score all mapped series."""
        self.result = replay_dataset(
            self.spec,
            self.measured,
            self.duration_s,
            with_cooling=self.with_cooling,
        )
        skip_s = 1800.0  # let the plant transient settle before scoring
        window = (skip_s, self.duration_s)
        for name, measured_name, accessor in _SERIES_MAP:
            if measured_name not in self.measured:
                continue
            if accessor == "power":
                predicted = self.result.power_series()
            else:
                if accessor not in self.result.cooling:
                    continue
                predicted = self.result.cooling_series(accessor)
            self.comparisons[name] = compare_series(
                name,
                predicted,
                self.measured[measured_name],
                window=window,
            )
        if not self.comparisons:
            raise ValidationError(
                "no overlapping series between prediction and telemetry"
            )
        return self

    def summary(self) -> str:
        """One line per compared series (Fig. 7-style report)."""
        if not self.comparisons:
            raise ValidationError("run() has not been called")
        return "\n".join(str(c) for c in self.comparisons.values())

    def power_percent_error(self) -> float:
        """Mean |error| of predicted vs measured power, % of mean power."""
        if self.result is None:
            raise ValidationError("run() has not been called")
        comp = self.comparisons.get("system_power")
        if comp is None:
            raise ValidationError("no measured power series")
        mean_measured = float(np.mean(self.measured["measured_power"].values))
        return comp.mae / mean_measured * 100.0


__all__ = ["replay_dataset", "ReplayValidation"]
