"""Node allocation: tracks which nodes are free, allocates, releases.

Maintains a boolean free mask over all nodes plus a per-node slot map
(which running-job slot occupies each node; -1 when idle).  The slot map
is what the vectorized power model consumes, so allocation is the single
writer of node-occupancy state.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SchedulingError


class NodeAllocator:
    """Allocates node indices for jobs.

    Parameters
    ----------
    total_nodes:
        System size.
    policy:
        ``"contiguous"`` prefers runs of adjacent free nodes (keeps jobs
        rack-local, which matters for per-CDU power distribution);
        ``"spread"`` takes the lowest-indexed free nodes regardless of
        adjacency.
    down_nodes:
        Optional indices permanently excluded from allocation (failed
        blades, maintenance) — used for failure-injection studies.
    """

    def __init__(
        self,
        total_nodes: int,
        *,
        policy: str = "contiguous",
        down_nodes: np.ndarray | None = None,
    ) -> None:
        if total_nodes < 1:
            raise SchedulingError("total_nodes must be >= 1")
        if policy not in ("contiguous", "spread"):
            raise SchedulingError(f"unknown allocation policy {policy!r}")
        self.total_nodes = int(total_nodes)
        self.policy = policy
        self._free = np.ones(total_nodes, dtype=bool)
        self.slot_of_node = np.full(total_nodes, -1, dtype=np.int64)
        self._down = np.zeros(total_nodes, dtype=bool)
        if down_nodes is not None:
            down_nodes = np.asarray(down_nodes, dtype=np.int64)
            if down_nodes.size and (
                down_nodes.min() < 0 or down_nodes.max() >= total_nodes
            ):
                raise SchedulingError("down_nodes index out of range")
            self._down[down_nodes] = True
            self._free[down_nodes] = False

    # -- queries ---------------------------------------------------------------

    @property
    def num_free(self) -> int:
        return int(np.count_nonzero(self._free))

    @property
    def num_down(self) -> int:
        return int(np.count_nonzero(self._down))

    @property
    def num_allocated(self) -> int:
        return self.total_nodes - self.num_free - self.num_down

    @property
    def utilization(self) -> float:
        """Active nodes / total available nodes (paper Fig. 9, orange)."""
        avail = self.total_nodes - self.num_down
        return self.num_allocated / avail if avail else 0.0

    def can_allocate(self, count: int) -> bool:
        return 0 < count <= self.num_free

    def is_free(self, node: int) -> bool:
        return bool(self._free[node])

    def free_among(self, nodes: np.ndarray) -> np.ndarray:
        """The subset of ``nodes`` currently free (fault injection)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        return nodes[self._free[nodes]]

    def down_among(self, nodes: np.ndarray) -> np.ndarray:
        """The subset of ``nodes`` currently down (fault injection)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        return nodes[self._down[nodes]]

    # -- mutation ---------------------------------------------------------------

    def allocate(self, count: int, slot: int) -> np.ndarray:
        """Allocate ``count`` nodes for running-job ``slot``.

        Returns the allocated node indices (sorted).  Raises
        :class:`SchedulingError` when not enough nodes are free.
        """
        if count < 1:
            raise SchedulingError("cannot allocate < 1 node")
        if slot < 0:
            raise SchedulingError("slot must be >= 0")
        free_idx = np.flatnonzero(self._free)
        if free_idx.size < count:
            raise SchedulingError(
                f"requested {count} nodes, only {free_idx.size} free"
            )
        if self.policy == "contiguous":
            nodes = self._pick_contiguous(free_idx, count)
        else:
            nodes = free_idx[:count]
        self._free[nodes] = False
        self.slot_of_node[nodes] = slot
        return nodes

    def _pick_contiguous(self, free_idx: np.ndarray, count: int) -> np.ndarray:
        """Prefer the smallest free run that fits; fall back to lowest-first.

        Vectorized run-length scan over the free index list.
        """
        if free_idx.size == count:
            return free_idx
        # Identify runs of consecutive indices.
        breaks = np.flatnonzero(np.diff(free_idx) != 1)
        run_starts = np.concatenate(([0], breaks + 1))
        run_ends = np.concatenate((breaks + 1, [free_idx.size]))
        run_lens = run_ends - run_starts
        fitting = np.flatnonzero(run_lens >= count)
        if fitting.size:
            # Best fit: smallest adequate run reduces fragmentation.
            best = fitting[np.argmin(run_lens[fitting])]
            s = run_starts[best]
            return free_idx[s : s + count]
        return free_idx[:count]

    def release(self, nodes: np.ndarray) -> None:
        """Return nodes to the free pool (must currently be allocated)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if np.any(self._free[nodes]):
            raise SchedulingError("releasing nodes that are already free")
        if np.any(self._down[nodes]):
            raise SchedulingError("releasing nodes that are marked down")
        self._free[nodes] = True
        self.slot_of_node[nodes] = -1

    def mark_down(self, nodes: np.ndarray) -> None:
        """Take currently-free nodes out of service."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if np.any(~self._free[nodes]):
            raise SchedulingError("can only mark free nodes down")
        self._free[nodes] = False
        self._down[nodes] = True

    def mark_up(self, nodes: np.ndarray) -> None:
        """Return down nodes to service."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if np.any(~self._down[nodes]):
            raise SchedulingError("can only mark down nodes up")
        self._down[nodes] = False
        self._free[nodes] = True


__all__ = ["NodeAllocator"]
