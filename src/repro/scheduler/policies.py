"""Scheduling policies: FCFS, SJF, priority, and EASY backfill.

The paper's Algorithm 1 iterates the pending queue and starts any job
that fits ("if enough nodes available ... else add job to pending
queue") — i.e. first-fit in queue order, which is what
:class:`FcfsPolicy` implements.  :class:`SjfPolicy` orders by wall time
first (Shortest Job First, the other policy named in section III-B4).
:class:`BackfillPolicy` implements EASY backfill: a reservation is held
for the queue head, and later jobs may jump ahead only if they finish
before the reservation would start.
"""

from __future__ import annotations

from typing import Protocol

from repro.exceptions import SchedulingError
from repro.scheduler.job import Job


class SchedulingPolicy(Protocol):
    """Selects which pending jobs to start, given free capacity."""

    name: str

    def select(
        self,
        pending: list[Job],
        free_nodes: int,
        now: float,
        running: list[Job],
    ) -> list[Job]:
        """Jobs to dispatch now, in dispatch order.

        Implementations must not return jobs whose combined
        ``nodes_required`` exceeds ``free_nodes``.
        """
        ...


def _first_fit(ordered: list[Job], free_nodes: int) -> list[Job]:
    """Start every job that fits, walking the given order (Algorithm 1)."""
    selected: list[Job] = []
    remaining = free_nodes
    for job in ordered:
        if job.nodes_required <= remaining:
            selected.append(job)
            remaining -= job.nodes_required
    return selected


class FcfsPolicy:
    """First Come First Served with Algorithm-1 first-fit semantics."""

    name = "fcfs"

    def select(
        self, pending: list[Job], free_nodes: int, now: float, running: list[Job]
    ) -> list[Job]:
        return _first_fit(pending, free_nodes)


class SjfPolicy:
    """Shortest Job First: order by wall time, then submission."""

    name = "sjf"

    def select(
        self, pending: list[Job], free_nodes: int, now: float, running: list[Job]
    ) -> list[Job]:
        ordered = sorted(pending, key=lambda j: (j.wall_time, j.submit_time, j.job_id))
        return _first_fit(ordered, free_nodes)


class PriorityPolicy:
    """Highest priority first; FCFS within a priority level."""

    name = "priority"

    def select(
        self, pending: list[Job], free_nodes: int, now: float, running: list[Job]
    ) -> list[Job]:
        ordered = sorted(
            pending, key=lambda j: (-j.priority, j.submit_time, j.job_id)
        )
        return _first_fit(ordered, free_nodes)


class BackfillPolicy:
    """EASY backfill: strict FCFS head with conservative backfilling.

    The head job, if it does not fit, gets a reservation at the earliest
    time enough nodes free up (from running jobs' scheduled ends).  Later
    jobs may start now only if they fit in the current free pool *and*
    either finish before the reservation or don't touch the reserved
    capacity.
    """

    name = "backfill"

    def select(
        self, pending: list[Job], free_nodes: int, now: float, running: list[Job]
    ) -> list[Job]:
        if not pending:
            return []
        selected: list[Job] = []
        remaining = free_nodes
        queue = list(pending)
        # Dispatch the FCFS prefix that fits outright.
        while queue and queue[0].nodes_required <= remaining:
            job = queue.pop(0)
            selected.append(job)
            remaining -= job.nodes_required
        if not queue:
            return selected
        head = queue[0]
        reservation_start, free_at_reservation = self._reservation(
            head, remaining, now, running, selected
        )
        shadow_free = free_at_reservation - head.nodes_required
        # Backfill the rest.
        for job in queue[1:]:
            if job.nodes_required > remaining:
                continue
            finishes_before = now + job.wall_time <= reservation_start
            fits_shadow = job.nodes_required <= shadow_free
            if finishes_before or fits_shadow:
                selected.append(job)
                remaining -= job.nodes_required
                if not finishes_before:
                    shadow_free -= job.nodes_required
        return selected

    @staticmethod
    def _reservation(
        head: Job,
        free_now: int,
        now: float,
        running: list[Job],
        starting: list[Job],
    ) -> tuple[float, int]:
        """Earliest time the head job can start, and free nodes then."""
        events = sorted(
            [(j.scheduled_end, j.nodes_required) for j in running]
            + [(now + j.wall_time, j.nodes_required) for j in starting]
        )
        free = free_now
        for t_end, n in events:
            free += n
            if free >= head.nodes_required:
                return t_end, free
        # Head can never start (requires more nodes than exist in flight);
        # treat the reservation as infinitely far so everything backfills.
        return float("inf"), free


_POLICIES = {
    "fcfs": FcfsPolicy,
    "sjf": SjfPolicy,
    "priority": PriorityPolicy,
    "backfill": BackfillPolicy,
}


def make_policy(name: str) -> SchedulingPolicy:
    """Instantiate a policy by its configuration name."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise SchedulingError(
            f"unknown scheduling policy {name!r}; available: {sorted(_POLICIES)}"
        ) from None


__all__ = [
    "SchedulingPolicy",
    "FcfsPolicy",
    "SjfPolicy",
    "PriorityPolicy",
    "BackfillPolicy",
    "make_policy",
]
