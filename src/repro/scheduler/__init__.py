"""Resource allocation: jobs, queues, policies, arrivals, and the engine.

This is the scheduling half of the paper's RAPS module (Algorithm 1):
jobs arrive (replayed from telemetry or via a Poisson process, Eq. 5),
are ordered by a policy (FCFS / SJF / backfill / priority), allocated
nodes, and released on completion.  Power is computed elsewhere
(:mod:`repro.power`) from the node-occupancy state this package maintains.
"""

from repro.scheduler.job import Job, JobState
from repro.scheduler.allocator import NodeAllocator
from repro.scheduler.policies import (
    SchedulingPolicy,
    FcfsPolicy,
    SjfPolicy,
    PriorityPolicy,
    BackfillPolicy,
    make_policy,
)
from repro.scheduler.arrivals import PoissonArrivals
from repro.scheduler.queue import PendingQueue
from repro.scheduler.engine import SchedulerEngine, SchedulerStats
from repro.scheduler.workloads import (
    jobs_from_dataset,
    synthetic_workload,
    idle_workload,
    peak_workload,
    hpl_verification_workload,
    benchmark_sequence,
)

__all__ = [
    "Job",
    "JobState",
    "NodeAllocator",
    "SchedulingPolicy",
    "FcfsPolicy",
    "SjfPolicy",
    "PriorityPolicy",
    "BackfillPolicy",
    "make_policy",
    "PoissonArrivals",
    "PendingQueue",
    "SchedulerEngine",
    "SchedulerStats",
    "jobs_from_dataset",
    "synthetic_workload",
    "idle_workload",
    "peak_workload",
    "hpl_verification_workload",
    "benchmark_sequence",
]
