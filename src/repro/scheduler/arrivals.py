"""Job arrival processes (paper Eq. 5).

Jobs are submitted according to a Poisson process: inter-arrival times are
exponential, ``tau = -ln(1 - U) / lambda`` with ``lambda = 1 / t_avg``
where ``t_avg`` is the mean interval between arrivals estimated from
telemetry.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SchedulingError


class PoissonArrivals:
    """Exponential inter-arrival sampler (Eq. 5).

    Iterating yields successive arrival times; ``sample_until(horizon)``
    vectorizes the draw for a fixed window.
    """

    def __init__(
        self,
        mean_arrival_s: float,
        rng: np.random.Generator,
        *,
        t0: float = 0.0,
    ) -> None:
        if mean_arrival_s <= 0:
            raise SchedulingError("mean_arrival_s must be positive")
        self.mean_arrival_s = float(mean_arrival_s)
        self._lambda = 1.0 / self.mean_arrival_s
        self._rng = rng
        self._t = float(t0)

    def next_arrival(self) -> float:
        """Draw the next arrival time (advances internal clock)."""
        # Eq. 5: tau = -ln(1 - U) / lambda with U ~ Uniform(0, 1).
        u = self._rng.random()
        self._t += -np.log1p(-u) * self.mean_arrival_s
        return self._t

    def sample_until(self, horizon_s: float) -> np.ndarray:
        """All arrival times in [t, horizon) as one vectorized draw.

        Over-draws in chunks sized by the expected count + 6 sigma and
        trims, so the result is exact without a Python-level loop per
        event.
        """
        if horizon_s <= self._t:
            return np.empty(0, dtype=np.float64)
        window = horizon_s - self._t
        expected = window * self._lambda
        out: list[np.ndarray] = []
        t = self._t
        while True:
            n = max(16, int(expected + 6.0 * np.sqrt(expected + 1.0)))
            gaps = -np.log1p(-self._rng.random(n)) * self.mean_arrival_s
            times = t + np.cumsum(gaps)
            inside = times[times < horizon_s]
            out.append(inside)
            if inside.size < n:  # crossed the horizon; done
                break
            t = float(times[-1])
            expected = (horizon_s - t) * self._lambda
        arrivals = np.concatenate(out)
        self._t = horizon_s
        return arrivals


__all__ = ["PoissonArrivals"]
