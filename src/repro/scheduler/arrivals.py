"""Job arrival processes (paper Eq. 5).

Jobs are submitted according to a Poisson process: inter-arrival times are
exponential, ``tau = -ln(1 - U) / lambda`` with ``lambda = 1 / t_avg``
where ``t_avg`` is the mean interval between arrivals estimated from
telemetry.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SchedulingError


class PoissonArrivals:
    """Exponential inter-arrival sampler (Eq. 5).

    Iterating yields successive arrival times; ``sample_until(horizon)``
    vectorizes the draw for a fixed window.
    """

    def __init__(
        self,
        mean_arrival_s: float,
        rng: np.random.Generator,
        *,
        t0: float = 0.0,
    ) -> None:
        if mean_arrival_s <= 0:
            raise SchedulingError("mean_arrival_s must be positive")
        self.mean_arrival_s = float(mean_arrival_s)
        self._lambda = 1.0 / self.mean_arrival_s
        self._rng = rng
        self._t = float(t0)

    def next_arrival(self) -> float:
        """Draw the next arrival time (advances internal clock)."""
        # Eq. 5: tau = -ln(1 - U) / lambda with U ~ Uniform(0, 1).
        u = self._rng.random()
        self._t += -np.log1p(-u) * self.mean_arrival_s
        return self._t

    def sample_until(self, horizon_s: float) -> np.ndarray:
        """All arrival times in [t, horizon) as one vectorized draw.

        Over-draws in chunks sized by the expected count + 6 sigma and
        trims, so the result is exact without a Python-level loop per
        event.
        """
        if horizon_s <= self._t:
            return np.empty(0, dtype=np.float64)
        window = horizon_s - self._t
        expected = window * self._lambda
        out: list[np.ndarray] = []
        t = self._t
        while True:
            n = max(16, int(expected + 6.0 * np.sqrt(expected + 1.0)))
            gaps = -np.log1p(-self._rng.random(n)) * self.mean_arrival_s
            times = t + np.cumsum(gaps)
            inside = times[times < horizon_s]
            out.append(inside)
            if inside.size < n:  # crossed the horizon; done
                break
            t = float(times[-1])
            expected = (horizon_s - t) * self._lambda
        arrivals = np.concatenate(out)
        self._t = horizon_s
        return arrivals


class DiurnalArrivals:
    """Non-homogeneous Poisson arrivals with a diurnal rate profile.

    The instantaneous rate is ``lambda(t) = (1 + a cos(2 pi (t/86400 -
    peak_hour/24))) / mean_arrival_s`` — the Eq. 5 process modulated by
    a daily cycle peaking at ``peak_hour``.  Sampled by thinning: draw a
    homogeneous process at the peak rate, accept each arrival with
    probability ``lambda(t) / lambda_max``.
    """

    def __init__(
        self,
        mean_arrival_s: float,
        rng: np.random.Generator,
        *,
        amplitude: float = 0.6,
        peak_hour: float = 16.0,
    ) -> None:
        if mean_arrival_s <= 0:
            raise SchedulingError("mean_arrival_s must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise SchedulingError("amplitude must be in [0, 1)")
        self.mean_arrival_s = float(mean_arrival_s)
        self.amplitude = float(amplitude)
        self.peak_hour = float(peak_hour)
        self._rng = rng

    def rate(self, t: np.ndarray) -> np.ndarray:
        """lambda(t) in arrivals per second."""
        phase = 2.0 * np.pi * (
            np.asarray(t, dtype=np.float64) / 86400.0 - self.peak_hour / 24.0
        )
        return (1.0 + self.amplitude * np.cos(phase)) / self.mean_arrival_s

    def sample_until(self, horizon_s: float) -> np.ndarray:
        """All arrival times in [0, horizon) via thinning."""
        lam_max = (1.0 + self.amplitude) / self.mean_arrival_s
        base = PoissonArrivals(1.0 / lam_max, self._rng)
        candidates = base.sample_until(horizon_s)
        accept = self._rng.random(candidates.size) < (
            self.rate(candidates) / lam_max
        )
        return candidates[accept]


class MMPPArrivals:
    """Two-state Markov-modulated Poisson process (calm/burst traffic).

    The process alternates between a calm state (mean inter-arrival
    ``calm_arrival_s``) and a burst state (``burst_arrival_s``), with
    exponentially distributed dwell times.  Captures the bursty
    submission patterns Poisson arrivals smooth over.
    """

    def __init__(
        self,
        calm_arrival_s: float,
        burst_arrival_s: float,
        rng: np.random.Generator,
        *,
        mean_calm_s: float = 7200.0,
        mean_burst_s: float = 1800.0,
    ) -> None:
        for name, value in (
            ("calm_arrival_s", calm_arrival_s),
            ("burst_arrival_s", burst_arrival_s),
            ("mean_calm_s", mean_calm_s),
            ("mean_burst_s", mean_burst_s),
        ):
            if value <= 0:
                raise SchedulingError(f"{name} must be positive")
        self.calm_arrival_s = float(calm_arrival_s)
        self.burst_arrival_s = float(burst_arrival_s)
        self.mean_calm_s = float(mean_calm_s)
        self.mean_burst_s = float(mean_burst_s)
        self._rng = rng

    def sample_until(self, horizon_s: float) -> np.ndarray:
        """All arrival times in [0, horizon), starting in the calm state."""
        times: list[float] = []
        t = 0.0
        burst = False
        while t < horizon_s:
            dwell = -np.log1p(-self._rng.random()) * (
                self.mean_burst_s if burst else self.mean_calm_s
            )
            seg_end = min(t + dwell, horizon_s)
            mean = self.burst_arrival_s if burst else self.calm_arrival_s
            arr = t
            while True:
                arr += -np.log1p(-self._rng.random()) * mean
                if arr >= seg_end:
                    break
                times.append(arr)
            t += dwell
            burst = not burst
        return np.asarray(times, dtype=np.float64)


__all__ = ["PoissonArrivals", "DiurnalArrivals", "MMPPArrivals"]
