"""The tick-based scheduling engine (Algorithm 1, scheduling half).

Every tick: newly arrived jobs join the pending queue, completed jobs
release their nodes, and the policy dispatches pending jobs onto free
nodes.  Running jobs occupy *slots* — dense integer ids the power model
uses for vectorized utilization lookups (see
:class:`repro.power.system.SystemPowerModel`).

Replay mode (``honor_recorded_starts=True``) bypasses the policy and
starts each job exactly at its recorded dispatch time, which is how the
paper replays telemetry through RAPS while reproducing the physical
twin's scheduling decisions.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SchedulingError
from repro.scheduler.allocator import NodeAllocator
from repro.scheduler.job import Job, JobState
from repro.scheduler.policies import SchedulingPolicy, make_policy
from repro.scheduler.queue import PendingQueue


@dataclass
class SchedulerStats:
    """Counters accumulated over a run (feeds paper section III-B5)."""

    submitted: int = 0
    started: int = 0
    completed: int = 0
    rejected: int = 0
    killed: int = 0
    total_wait_s: float = 0.0
    total_node_seconds: float = 0.0
    wait_times: list[float] = field(default_factory=list)

    @property
    def mean_wait_s(self) -> float:
        return self.total_wait_s / self.started if self.started else 0.0


class SchedulerEngine:
    """Node allocation + dispatch over simulated time.

    Parameters
    ----------
    total_nodes:
        System size.
    policy:
        Policy name or instance (``fcfs``/``sjf``/``priority``/``backfill``).
    allocation:
        Node-placement strategy for the allocator.
    honor_recorded_starts:
        Replay mode — jobs start at ``job.recorded_start`` regardless of
        the policy (the paper's telemetry replay).
    max_queue_depth:
        Pending-queue limit (0 = unlimited).
    """

    def __init__(
        self,
        total_nodes: int,
        *,
        policy: str | SchedulingPolicy = "fcfs",
        allocation: str = "contiguous",
        honor_recorded_starts: bool = False,
        max_queue_depth: int = 0,
        down_nodes: np.ndarray | None = None,
    ) -> None:
        self.allocator = NodeAllocator(
            total_nodes, policy=allocation, down_nodes=down_nodes
        )
        self.policy: SchedulingPolicy = (
            make_policy(policy) if isinstance(policy, str) else policy
        )
        self.honor_recorded_starts = honor_recorded_starts
        self.queue = PendingQueue(max_queue_depth)
        self.stats = SchedulerStats()
        self.running: dict[int, Job] = {}
        # Completion events as a heap of (end_time, job_id).
        self._completions: list[tuple[float, int]] = []
        # Slot management for the vectorized power model.
        self._free_slots: list[int] = []
        self._next_slot = 0
        self.max_slots = 0

    # -- submission -----------------------------------------------------------

    def submit(self, job: Job) -> bool:
        """Add a job to the pending queue.  Returns False if rejected."""
        if job.nodes_required > self.allocator.total_nodes:
            raise SchedulingError(
                f"job {job.job_id} requires {job.nodes_required} nodes; "
                f"system has {self.allocator.total_nodes}"
            )
        accepted = self.queue.push(job)
        if accepted:
            self.stats.submitted += 1
        else:
            self.stats.rejected += 1
        return accepted

    # -- slot pool ---------------------------------------------------------------

    def _acquire_slot(self) -> int:
        if self._free_slots:
            return self._free_slots.pop()
        slot = self._next_slot
        self._next_slot += 1
        self.max_slots = max(self.max_slots, self._next_slot)
        return slot

    def _release_slot(self, slot: int) -> None:
        self._free_slots.append(slot)

    # -- dispatch ------------------------------------------------------------------

    def _start_job(self, job: Job, now: float) -> None:
        slot = self._acquire_slot()
        nodes = self.allocator.allocate(job.nodes_required, slot)
        job.mark_running(now, nodes, slot)
        self.running[job.job_id] = job
        heapq.heappush(self._completions, (job.scheduled_end, job.job_id))
        self.stats.started += 1
        self.stats.total_wait_s += job.wait_time
        self.stats.wait_times.append(job.wait_time)
        self.stats.total_node_seconds += job.nodes_required * job.wall_time

    def _complete_job(self, job: Job, now: float) -> None:
        self.allocator.release(job.assigned_nodes)
        self._release_slot(job.slot)
        job.mark_completed(now)
        del self.running[job.job_id]
        self.stats.completed += 1

    def _kill_job(self, job: Job, now: float) -> None:
        """Tear a running job down early (node failure under it)."""
        self.allocator.release(job.assigned_nodes)
        self._release_slot(job.slot)
        job.mark_completed(now)
        del self.running[job.job_id]
        self.stats.killed += 1
        # The job's (scheduled_end, job_id) heap entry goes stale; the
        # completion loop and next_event_time() tolerate and skip it.

    # -- fault injection -----------------------------------------------------

    def fail_nodes(
        self, nodes: np.ndarray, now: float, *, kill_running: bool = True
    ) -> list[Job]:
        """Take nodes out of service; returns the jobs killed under them.

        With ``kill_running`` the jobs occupying failed nodes are killed
        first (releasing their full allocations), then every
        currently-free requested node is marked down.  Without it,
        occupied nodes keep their jobs and stay in service — only the
        free subset goes down (soft maintenance).
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        nodes = nodes[(nodes >= 0) & (nodes < self.allocator.total_nodes)]
        killed: list[Job] = []
        if kill_running and nodes.size:
            hit_slots = {
                int(s) for s in self.allocator.slot_of_node[nodes] if s >= 0
            }
            if hit_slots:
                for job in list(self.running.values()):
                    if job.slot in hit_slots:
                        self._kill_job(job, now)
                        killed.append(job)
        free_now = self.allocator.free_among(nodes)
        if free_now.size:
            self.allocator.mark_down(free_now)
        return killed

    def restore_nodes(self, nodes: np.ndarray) -> None:
        """Return the currently-down subset of ``nodes`` to service."""
        nodes = np.asarray(nodes, dtype=np.int64)
        nodes = nodes[(nodes >= 0) & (nodes < self.allocator.total_nodes)]
        down_now = self.allocator.down_among(nodes)
        if down_now.size:
            self.allocator.mark_up(down_now)

    # -- main tick --------------------------------------------------------------------

    def tick(self, now: float, arrivals: list[Job]) -> tuple[list[Job], list[Job]]:
        """Advance to time ``now``: complete, enqueue arrivals, dispatch.

        Returns ``(started, completed)`` job lists for this tick.  The
        caller owns the clock; ticks must be non-decreasing in ``now``.
        """
        completed: list[Job] = []
        while self._completions and self._completions[0][0] <= now:
            end_time, job_id = heapq.heappop(self._completions)
            job = self.running.get(job_id)
            if job is None:
                continue  # stale heap entry
            self._complete_job(job, now)
            completed.append(job)

        for job in arrivals:
            self.submit(job)

        started: list[Job] = []
        if self.honor_recorded_starts:
            # Replay: start exactly the jobs whose recorded time has come.
            due = [
                j
                for j in self.queue.jobs()
                if j.recorded_start is not None and j.recorded_start <= now
            ]
            for job in due:
                if self.allocator.can_allocate(job.nodes_required):
                    self.queue.remove(job.job_id)
                    self._start_job(job, now)
                    started.append(job)
        else:
            pending = self.queue.jobs()
            if pending:
                chosen = self.policy.select(
                    pending,
                    self.allocator.num_free,
                    now,
                    list(self.running.values()),
                )
                requested = sum(j.nodes_required for j in chosen)
                if requested > self.allocator.num_free:
                    raise SchedulingError(
                        f"policy {self.policy.name!r} over-selected: "
                        f"{requested} nodes vs {self.allocator.num_free} free"
                    )
                for job in chosen:
                    self.queue.remove(job.job_id)
                    self._start_job(job, now)
                    started.append(job)
        return started, completed

    # -- introspection -------------------------------------------------------------------

    @property
    def num_running(self) -> int:
        return len(self.running)

    @property
    def num_pending(self) -> int:
        return len(self.queue)

    @property
    def utilization(self) -> float:
        return self.allocator.utilization

    def next_event_time(self) -> float | None:
        """Earliest scheduled completion, or None if nothing is running."""
        while self._completions:
            t, job_id = self._completions[0]
            if job_id in self.running:
                return t
            heapq.heappop(self._completions)
        return None

    def drain_check(self) -> None:
        """Assert internal consistency (used by property tests)."""
        allocated = sum(j.nodes_required for j in self.running.values())
        if allocated != self.allocator.num_allocated:
            raise SchedulingError(
                f"slot leak: running jobs hold {allocated} nodes, "
                f"allocator reports {self.allocator.num_allocated}"
            )


__all__ = ["SchedulerEngine", "SchedulerStats"]
