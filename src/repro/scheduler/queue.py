"""Pending-job queue with stable ordering and O(1) membership."""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

from repro.exceptions import SchedulingError
from repro.scheduler.job import Job, JobState


class PendingQueue:
    """FIFO container of pending jobs keyed by job id.

    Policies view the queue through :meth:`jobs` (submission order) and
    remove started jobs via :meth:`remove`.  ``max_depth`` (0 = unlimited)
    mirrors the scheduler-spec queue limit.
    """

    def __init__(self, max_depth: int = 0) -> None:
        if max_depth < 0:
            raise SchedulingError("max_depth must be >= 0")
        self._jobs: OrderedDict[int, Job] = OrderedDict()
        self.max_depth = max_depth
        #: Count of submissions rejected due to the depth limit.
        self.rejected = 0

    def __len__(self) -> int:
        return len(self._jobs)

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._jobs

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs.values())

    def push(self, job: Job) -> bool:
        """Enqueue a pending job.  Returns False if the queue is full."""
        if job.state is not JobState.PENDING:
            raise SchedulingError(
                f"job {job.job_id} is {job.state.value}, not pending"
            )
        if job.job_id in self._jobs:
            raise SchedulingError(f"job {job.job_id} already queued")
        if self.max_depth and len(self._jobs) >= self.max_depth:
            self.rejected += 1
            return False
        self._jobs[job.job_id] = job
        return True

    def remove(self, job_id: int) -> Job:
        """Remove and return a queued job by id."""
        try:
            return self._jobs.pop(job_id)
        except KeyError:
            raise SchedulingError(f"job {job_id} not in queue") from None

    def jobs(self) -> list[Job]:
        """Pending jobs in submission order (stable snapshot)."""
        return list(self._jobs.values())

    def clear(self) -> None:
        self._jobs.clear()


__all__ = ["PendingQueue"]
