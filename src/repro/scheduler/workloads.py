"""Workload builders: replayed, synthetic, and verification workloads.

Bridges telemetry datasets and profile generators into scheduler
:class:`~repro.scheduler.job.Job` lists.  The verification workloads
reproduce the three Table III operating points (idle / HPL core / peak)
and the Fig. 8 benchmark sequence.
"""

from __future__ import annotations

import numpy as np

from repro.config.schema import SystemSpec
from repro.exceptions import SchedulingError
from repro.scheduler.arrivals import PoissonArrivals
from repro.scheduler.job import Job
from repro.seeding import spawn_rng
from repro.telemetry import profiles
from repro.telemetry.dataset import TelemetryDataset
from repro.telemetry.synthesis import SyntheticTelemetryGenerator, WorkloadDayParams


def jobs_from_dataset(dataset: TelemetryDataset) -> list[Job]:
    """Convert a telemetry dataset's job records to scheduler jobs."""
    return [Job.from_record(r) for r in dataset.jobs_sorted()]


def synthetic_workload(
    spec: SystemSpec,
    duration_s: float,
    *,
    params: WorkloadDayParams | None = None,
    seed: int = 0,
) -> list[Job]:
    """Poisson-arrival synthetic workload for ``duration_s`` seconds.

    Uses the same day-parameter priors as the telemetry synthesizer but
    emits scheduler jobs with no recorded start (the simulated scheduler
    places them), exercising the paper's synthetic-workload path.
    """
    if duration_s <= 0:
        raise SchedulingError("duration_s must be positive")
    rng = spawn_rng(seed, "synthetic-workload")
    if params is None:
        params = WorkloadDayParams.draw(rng)
    gen = SyntheticTelemetryGenerator(spec, seed=seed)
    arrivals = PoissonArrivals(params.mean_arrival_s, rng)
    jobs: list[Job] = []
    for job_id, t in enumerate(arrivals.sample_until(duration_s)):
        record = gen._make_job(rng, params, job_id, float(t))
        job = Job.from_record(record)
        job.recorded_start = None  # let the simulated scheduler place it
        jobs.append(job)
    return jobs


def _full_system_job(
    spec: SystemSpec,
    name: str,
    cpu_util: float,
    gpu_util: float,
    duration_s: float,
    *,
    node_count: int | None = None,
    start: float = 0.0,
    job_id: int = 0,
) -> Job:
    nodes = spec.total_nodes if node_count is None else node_count
    cpu, gpu = profiles.constant_profile(duration_s, cpu_util, gpu_util)
    return Job(
        job_id=job_id,
        name=name,
        nodes_required=nodes,
        wall_time=duration_s,
        cpu_util=cpu,
        gpu_util=gpu,
        submit_time=start,
        recorded_start=start,
    )


def idle_workload(spec: SystemSpec, duration_s: float = 3600.0) -> list[Job]:
    """Table III idle test: all nodes allocated at 0 % CPU/GPU."""
    return [_full_system_job(spec, "idle", 0.0, 0.0, duration_s)]


def peak_workload(spec: SystemSpec, duration_s: float = 3600.0) -> list[Job]:
    """Table III peak test: all nodes at 100 % CPU and GPU."""
    return [_full_system_job(spec, "peak", 1.0, 1.0, duration_s)]


def hpl_verification_workload(
    spec: SystemSpec, duration_s: float = 3600.0, *, node_count: int = 9216
) -> list[Job]:
    """Table III HPL core-phase test: 79 % GPU / 33 % CPU on 9216 nodes."""
    return [
        _full_system_job(
            spec,
            "hpl-core",
            profiles.HPL_CPU_UTIL,
            profiles.HPL_GPU_UTIL,
            duration_s,
            node_count=min(node_count, spec.total_nodes),
        )
    ]


def benchmark_sequence(spec: SystemSpec, *, node_count: int = 9216) -> list[Job]:
    """Fig. 8 sequence: HPL then OpenMxP with idle gaps between."""
    hpl_cpu, hpl_gpu = profiles.hpl_profile(5400.0)
    mxp_cpu, mxp_gpu = profiles.openmxp_profile(3600.0)
    nodes = min(node_count, spec.total_nodes)
    return [
        Job(
            job_id=1,
            name="hpl",
            nodes_required=nodes,
            wall_time=5400.0,
            cpu_util=hpl_cpu,
            gpu_util=hpl_gpu,
            submit_time=1800.0,
            recorded_start=1800.0,
        ),
        Job(
            job_id=2,
            name="openmxp",
            nodes_required=nodes,
            wall_time=3600.0,
            cpu_util=mxp_cpu,
            gpu_util=mxp_gpu,
            submit_time=9000.0,
            recorded_start=9000.0,
        ),
    ]


__all__ = [
    "jobs_from_dataset",
    "synthetic_workload",
    "idle_workload",
    "peak_workload",
    "hpl_verification_workload",
    "benchmark_sequence",
]
