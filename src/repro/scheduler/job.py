"""Scheduler-side job representation and lifecycle state."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SchedulingError
from repro.telemetry.schema import TRACE_QUANTA_S, JobRecord


class JobState(enum.Enum):
    """Lifecycle of a job inside the simulator."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"


@dataclass
class Job:
    """A schedulable job with CPU/GPU utilization traces.

    The paper characterizes each job by (1) the number of nodes required,
    (2) the wall time, and (3) CPU/GPU utilization traces at the trace
    quanta (section III-B).  ``recorded_start`` carries the physical
    twin's dispatch time for telemetry replay; synthetic jobs leave it
    None and are placed by the simulated scheduler.
    """

    job_id: int
    name: str
    nodes_required: int
    wall_time: float
    cpu_util: np.ndarray
    gpu_util: np.ndarray
    submit_time: float = 0.0
    priority: int = 0
    recorded_start: float | None = None
    trace_quanta: float = TRACE_QUANTA_S

    # Mutable lifecycle fields (engine-owned).
    state: JobState = JobState.PENDING
    start_time: float | None = None
    end_time: float | None = None
    assigned_nodes: np.ndarray | None = None
    slot: int = -1

    def __post_init__(self) -> None:
        self.cpu_util = np.ascontiguousarray(self.cpu_util, dtype=np.float64)
        self.gpu_util = np.ascontiguousarray(self.gpu_util, dtype=np.float64)
        if self.nodes_required < 1:
            raise SchedulingError(
                f"job {self.job_id}: nodes_required must be >= 1"
            )
        if self.wall_time <= 0:
            raise SchedulingError(f"job {self.job_id}: wall_time must be > 0")
        if self.cpu_util.shape != self.gpu_util.shape or self.cpu_util.ndim != 1:
            raise SchedulingError(
                f"job {self.job_id}: malformed utilization traces"
            )
        if self.cpu_util.size == 0:
            raise SchedulingError(f"job {self.job_id}: empty utilization trace")

    @classmethod
    def from_record(cls, record: JobRecord) -> "Job":
        """Build a scheduler job from a telemetry record (replay path)."""
        return cls(
            job_id=record.job_id,
            name=record.job_name,
            nodes_required=record.node_count,
            wall_time=record.wall_time,
            cpu_util=record.cpu_util,
            gpu_util=record.gpu_util,
            submit_time=record.start_time,
            recorded_start=record.start_time,
            trace_quanta=record.trace_quanta,
        )

    # -- trace access ----------------------------------------------------------

    @property
    def num_quanta(self) -> int:
        return int(self.cpu_util.size)

    def quantum_index(self, now: float) -> int:
        """Trace index at simulation time ``now`` (job must be running)."""
        if self.start_time is None:
            raise SchedulingError(f"job {self.job_id} has not started")
        elapsed = max(0.0, now - self.start_time)
        return min(int(elapsed // self.trace_quanta), self.num_quanta - 1)

    def util_at(self, now: float) -> tuple[float, float]:
        """(cpu_util, gpu_util) at simulation time ``now``."""
        idx = self.quantum_index(now)
        return float(self.cpu_util[idx]), float(self.gpu_util[idx])

    # -- lifecycle ---------------------------------------------------------------

    @property
    def scheduled_end(self) -> float:
        """Completion time implied by the start time and wall time."""
        if self.start_time is None:
            raise SchedulingError(f"job {self.job_id} has not started")
        return self.start_time + self.wall_time

    @property
    def wait_time(self) -> float:
        """Queue wait: dispatch minus submission."""
        if self.start_time is None:
            raise SchedulingError(f"job {self.job_id} has not started")
        return self.start_time - self.submit_time

    def mark_running(self, now: float, nodes: np.ndarray, slot: int) -> None:
        if self.state is not JobState.PENDING:
            raise SchedulingError(
                f"job {self.job_id}: cannot start from state {self.state}"
            )
        if nodes.size != self.nodes_required:
            raise SchedulingError(
                f"job {self.job_id}: allocated {nodes.size} nodes, "
                f"required {self.nodes_required}"
            )
        self.state = JobState.RUNNING
        self.start_time = now
        self.assigned_nodes = nodes
        self.slot = slot

    def mark_completed(self, now: float) -> None:
        if self.state is not JobState.RUNNING:
            raise SchedulingError(
                f"job {self.job_id}: cannot complete from state {self.state}"
            )
        self.state = JobState.COMPLETED
        self.end_time = now


__all__ = ["Job", "JobState"]
