"""L5 autonomous-twin capabilities: closed-loop setpoint optimization.

The paper's L5 level "uses techniques such as reinforcement learning to
learn to make autonomous decisions for system optimization", with
automated setpoint control for improved cooling efficiency as the
canonical example.  This package implements that decision loop with a
derivative-free optimizer over the plant's control setpoints,
minimizing PUE subject to thermal constraints.
"""

from repro.optimize.setpoint import (
    SetpointCandidate,
    SetpointOptimizationResult,
    SetpointOptimizer,
)

__all__ = [
    "SetpointCandidate",
    "SetpointOptimizationResult",
    "SetpointOptimizer",
]
