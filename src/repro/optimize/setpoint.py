"""Cooling setpoint optimization against the plant model (paper L5).

Searches over the HTW supply temperature setpoint and the CDU secondary
supply setpoint, evaluating each candidate by running the transient
plant to steady state at a representative load and scoring:

    objective = mean PUE + penalty(thermal constraint violations)

Constraints: the CDU secondary supply must stay below a safe ceiling
(blade inlet limit) and the cooling-tower fans must retain control
headroom (fan speed < 98 % — a saturated fan cannot reject a surge).

The optimizer is a successive-refinement grid search (derivative-free,
deterministic, and robust to the plant's control-hunting noise), which
is the appropriate baseline an RL agent would be compared against.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.config.schema import SystemSpec
from repro.cooling.plant import CoolingPlant
from repro.exceptions import SimulationError


@dataclass(frozen=True)
class SetpointCandidate:
    """One evaluated setpoint combination."""

    htw_supply_setpoint_c: float
    cdu_supply_setpoint_c: float
    mean_pue: float
    mean_fan_speed: float
    max_cdu_supply_c: float
    feasible: bool

    @property
    def objective(self) -> float:
        penalty = 0.0 if self.feasible else 1.0
        return self.mean_pue + penalty


@dataclass
class SetpointOptimizationResult:
    """Outcome of a setpoint search."""

    best: SetpointCandidate
    baseline: SetpointCandidate
    evaluated: list[SetpointCandidate]

    @property
    def pue_improvement(self) -> float:
        """Baseline PUE minus optimized PUE (positive = better)."""
        return self.baseline.mean_pue - self.best.mean_pue

    def report(self) -> str:
        lines = [
            "Setpoint optimization (L5 autonomous-twin demo)",
            "-" * 48,
            f"baseline: HTW {self.baseline.htw_supply_setpoint_c:.1f} C / "
            f"CDU {self.baseline.cdu_supply_setpoint_c:.1f} C -> "
            f"PUE {self.baseline.mean_pue:.4f}",
            f"best:     HTW {self.best.htw_supply_setpoint_c:.1f} C / "
            f"CDU {self.best.cdu_supply_setpoint_c:.1f} C -> "
            f"PUE {self.best.mean_pue:.4f}",
            f"improvement: {self.pue_improvement * 1e4:.1f} bps of PUE "
            f"({len(self.evaluated)} candidates evaluated)",
        ]
        return "\n".join(lines)


class SetpointOptimizer:
    """Grid-refinement search over cooling setpoints.

    Parameters
    ----------
    spec:
        System description (the cooling section is re-parameterized per
        candidate).
    system_power_w:
        Representative IT load for the evaluation (e.g. the fleet's
        average ~17 MW).
    wetbulb_c:
        Ambient condition for the evaluation.
    cdu_supply_ceiling_c:
        Blade-inlet safety ceiling for the CDU secondary supply.
    """

    def __init__(
        self,
        spec: SystemSpec,
        *,
        system_power_w: float = 17.0e6,
        wetbulb_c: float = 15.0,
        cdu_supply_ceiling_c: float = 36.0,
        settle_s: float = 3600.0,
        score_s: float = 1800.0,
    ) -> None:
        if system_power_w <= 0:
            raise SimulationError("system_power_w must be positive")
        self.spec = spec
        self.system_power_w = float(system_power_w)
        self.wetbulb_c = float(wetbulb_c)
        self.cdu_supply_ceiling_c = float(cdu_supply_ceiling_c)
        self.settle_s = float(settle_s)
        self.score_s = float(score_s)

    # -- evaluation ------------------------------------------------------------

    def evaluate(
        self, htw_setpoint_c: float, cdu_setpoint_c: float
    ) -> SetpointCandidate:
        """Run the plant at one setpoint pair and score it."""
        cooling = self.spec.cooling
        new_cooling = dataclasses.replace(
            cooling,
            primary_loop=dataclasses.replace(
                cooling.primary_loop, supply_setpoint_c=htw_setpoint_c
            ),
            cdu_loop=dataclasses.replace(
                cooling.cdu_loop, supply_setpoint_c=cdu_setpoint_c
            ),
        )
        plant = CoolingPlant(new_cooling)
        heat = np.full(
            cooling.num_cdus,
            self.system_power_w * 0.945 / cooling.num_cdus,
        )
        plant.warmup(heat, self.wetbulb_c, duration_s=self.settle_s)
        steps = max(1, int(self.score_s / cooling.step_seconds))
        pues, fans, supplies = [], [], []
        for _ in range(steps):
            state = plant.step(
                heat, self.wetbulb_c, system_power_w=self.system_power_w
            )
            pues.append(state.pue)
            fans.append(plant.tower.fan_speed)
            supplies.append(float(np.max(state.cdu_secondary_supply_temp_c)))
        max_supply = float(np.max(supplies))
        mean_fan = float(np.mean(fans))
        feasible = (
            max_supply <= self.cdu_supply_ceiling_c and mean_fan < 0.98
        )
        return SetpointCandidate(
            htw_supply_setpoint_c=htw_setpoint_c,
            cdu_supply_setpoint_c=cdu_setpoint_c,
            mean_pue=float(np.mean(pues)),
            mean_fan_speed=mean_fan,
            max_cdu_supply_c=max_supply,
            feasible=feasible,
        )

    # -- search ------------------------------------------------------------------

    def optimize(
        self,
        *,
        htw_range_c: tuple[float, float] = (26.0, 33.0),
        cdu_range_c: tuple[float, float] = (31.0, 35.5),
        grid: int = 3,
        refinements: int = 1,
    ) -> SetpointOptimizationResult:
        """Successive grid refinement over the setpoint box."""
        if grid < 2:
            raise SimulationError("grid must be >= 2")
        baseline = self.evaluate(
            self.spec.cooling.primary_loop.supply_setpoint_c,
            self.spec.cooling.cdu_loop.supply_setpoint_c,
        )
        evaluated = [baseline]
        lo_h, hi_h = htw_range_c
        lo_c, hi_c = cdu_range_c
        best = baseline
        for _ in range(refinements + 1):
            for h in np.linspace(lo_h, hi_h, grid):
                for c in np.linspace(lo_c, hi_c, grid):
                    cand = self.evaluate(float(h), float(c))
                    evaluated.append(cand)
                    if cand.objective < best.objective:
                        best = cand
            # Shrink the box around the incumbent.
            span_h = (hi_h - lo_h) / 2.0
            span_c = (hi_c - lo_c) / 2.0
            lo_h = best.htw_supply_setpoint_c - span_h / 2.0
            hi_h = best.htw_supply_setpoint_c + span_h / 2.0
            lo_c = best.cdu_supply_setpoint_c - span_c / 2.0
            hi_c = best.cdu_supply_setpoint_c + span_c / 2.0
        return SetpointOptimizationResult(
            best=best, baseline=baseline, evaluated=evaluated
        )


__all__ = [
    "SetpointCandidate",
    "SetpointOptimizationResult",
    "SetpointOptimizer",
]
