"""ExaDigiT reproduction: a digital twin for liquid-cooled supercomputers.

A complete Python reimplementation of the ExaDigiT framework (Brewer et
al., "A Digital Twin Framework for Liquid-cooled Supercomputers as
Demonstrated at Exascale", SC 2024):

- **RAPS** -- resource allocation + dynamic power simulation with
  conversion-loss modeling (:mod:`repro.scheduler`, :mod:`repro.power`,
  :mod:`repro.core`),
- **Cooling model** -- a transient thermo-fluid model of the central
  energy plant and the 25 CDU loops behind an FMI-like interface
  (:mod:`repro.cooling`),
- **Scenario API** -- declarative, seedable, JSON-serializable
  experiment descriptions with streaming execution and parallel batch
  runs (:mod:`repro.scenarios`),
- **Visual analytics** -- scene generation, dashboards, and exports
  (:mod:`repro.viz`),
- **Generalization** -- JSON system specs, pluggable telemetry parsers,
  and automated cooling-model generation (:mod:`repro.config`,
  :mod:`repro.telemetry`, :mod:`repro.cooling.autocsm`).

Quickstart — one scenario, streamed::

    from repro import DigitalTwin, SyntheticScenario

    twin = DigitalTwin("frontier")
    scenario = SyntheticScenario(duration_s=4 * 3600, seed=42)
    outcome = scenario.run(twin)
    print(outcome.statistics.report())

Quickstart — a parallel experiment suite::

    from repro import ExperimentSuite, VerificationScenario, WhatIfScenario

    suite = ExperimentSuite("frontier")
    for point in ("idle", "hpl", "peak"):
        suite.add(VerificationScenario(point=point, with_cooling=False))
    suite.add(WhatIfScenario(modification="direct-dc"))
    print(suite.run(workers=4).comparison_table())

The pre-scenario facade (``Simulation``, ``run_whatif``) remains
available as a deprecated compatibility shim.
"""

from repro.config import FRONTIER, frontier_spec, load_system, load_builtin_system
from repro.core import (
    RapsEngine,
    Simulation,
    SimulationResult,
    StepState,
    PhysicalTwin,
    ReplayValidation,
    run_whatif,
)
from repro.cooling import CoolingFMU, CoolingPlant, generate_plant
from repro.power import SystemPowerModel
from repro.scenarios import (
    DigitalTwin,
    ExperimentSuite,
    ReplayScenario,
    Scenario,
    ScenarioResult,
    SuiteResult,
    SweepScenario,
    SyntheticScenario,
    VerificationScenario,
    WhatIfScenario,
)
from repro.telemetry import SyntheticTelemetryGenerator, TelemetryDataset

__version__ = "1.1.0"

__all__ = [
    "FRONTIER",
    "frontier_spec",
    "load_system",
    "load_builtin_system",
    "RapsEngine",
    "Simulation",
    "SimulationResult",
    "StepState",
    "PhysicalTwin",
    "ReplayValidation",
    "run_whatif",
    "CoolingFMU",
    "CoolingPlant",
    "generate_plant",
    "SystemPowerModel",
    "Scenario",
    "SyntheticScenario",
    "ReplayScenario",
    "VerificationScenario",
    "WhatIfScenario",
    "SweepScenario",
    "ScenarioResult",
    "ExperimentSuite",
    "SuiteResult",
    "DigitalTwin",
    "SyntheticTelemetryGenerator",
    "TelemetryDataset",
    "__version__",
]
