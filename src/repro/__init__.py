"""ExaDigiT reproduction: a digital twin for liquid-cooled supercomputers.

A complete Python reimplementation of the ExaDigiT framework (Brewer et
al., "A Digital Twin Framework for Liquid-cooled Supercomputers as
Demonstrated at Exascale", SC 2024):

- **RAPS** -- resource allocation + dynamic power simulation with
  conversion-loss modeling (:mod:`repro.scheduler`, :mod:`repro.power`,
  :mod:`repro.core`),
- **Cooling model** -- a transient thermo-fluid model of the central
  energy plant and the 25 CDU loops behind an FMI-like interface
  (:mod:`repro.cooling`),
- **Visual analytics** -- scene generation, dashboards, and exports
  (:mod:`repro.viz`),
- **Generalization** -- JSON system specs, pluggable telemetry parsers,
  and automated cooling-model generation (:mod:`repro.config`,
  :mod:`repro.telemetry`, :mod:`repro.cooling.autocsm`).

Quickstart::

    from repro import Simulation
    sim = Simulation("frontier")
    result = sim.run_synthetic(duration_s=4 * 3600)
    print(sim.statistics().report())
"""

from repro.config import FRONTIER, frontier_spec, load_system, load_builtin_system
from repro.core import (
    RapsEngine,
    Simulation,
    SimulationResult,
    PhysicalTwin,
    ReplayValidation,
    run_whatif,
)
from repro.cooling import CoolingFMU, CoolingPlant, generate_plant
from repro.power import SystemPowerModel
from repro.telemetry import SyntheticTelemetryGenerator, TelemetryDataset

__version__ = "1.0.0"

__all__ = [
    "FRONTIER",
    "frontier_spec",
    "load_system",
    "load_builtin_system",
    "RapsEngine",
    "Simulation",
    "SimulationResult",
    "PhysicalTwin",
    "ReplayValidation",
    "run_whatif",
    "CoolingFMU",
    "CoolingPlant",
    "generate_plant",
    "SystemPowerModel",
    "SyntheticTelemetryGenerator",
    "TelemetryDataset",
    "__version__",
]
