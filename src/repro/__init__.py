"""ExaDigiT reproduction: a digital twin for liquid-cooled supercomputers.

A complete Python reimplementation of the ExaDigiT framework (Brewer et
al., "A Digital Twin Framework for Liquid-cooled Supercomputers as
Demonstrated at Exascale", SC 2024):

- **RAPS** -- resource allocation + dynamic power simulation with
  conversion-loss modeling (:mod:`repro.scheduler`, :mod:`repro.power`,
  :mod:`repro.core`),
- **Cooling model** -- a transient thermo-fluid model of the central
  energy plant and the 25 CDU loops behind an FMI-like interface
  (:mod:`repro.cooling`),
- **Scenario API** -- declarative, seedable, JSON-serializable
  experiment descriptions with streaming execution, parallel batch
  runs, and persisted sweep campaigns that resume and compare across
  code revisions (:mod:`repro.scenarios`),
- **Multi-fidelity fast path** -- trained surrogates as a first-class
  execution backend (``fidelity="surrogate"``), serialized model
  bundles with provenance, and screen-then-refine
  :class:`MultiFidelityCampaign` drivers (:mod:`repro.fastpath`),
- **Workload generators** -- parametric, seed-deterministic,
  content-addressed generators for arrivals, fault injection, weather
  years, and grid signals, plus stress-suite campaigns that generate,
  run, and validate whole grids (:mod:`repro.workloads`),
- **Visual analytics** -- scene generation, dashboards, and exports
  (:mod:`repro.viz`),
- **Generalization** -- JSON system specs, pluggable telemetry parsers,
  and automated cooling-model generation (:mod:`repro.config`,
  :mod:`repro.telemetry`, :mod:`repro.cooling.autocsm`).

Quickstart — one scenario, streamed::

    from repro import DigitalTwin, SyntheticScenario

    twin = DigitalTwin("frontier")
    scenario = SyntheticScenario(duration_s=4 * 3600, seed=42)
    outcome = scenario.run(twin)
    print(outcome.statistics.report())

Quickstart — a parallel experiment suite::

    from repro import ExperimentSuite, VerificationScenario, WhatIfScenario

    suite = ExperimentSuite("frontier")
    for point in ("idle", "hpl", "peak"):
        suite.add(VerificationScenario(point=point, with_cooling=False))
    suite.add(WhatIfScenario(modification="direct-dc"))
    print(suite.run(workers=4).comparison_table())

Quickstart — a persisted sweep campaign (resumable, reloadable)::

    from repro import Campaign, GridSweepScenario, SyntheticScenario

    sweep = GridSweepScenario(
        base=SyntheticScenario(duration_s=1800.0, with_cooling=False),
        grid={"wetbulb_c": (12.0, 18.0, 24.0), "seed": (0, 1, 2, 3)},
    )
    Campaign.create("artifacts/wb-grid", [sweep]).run(workers=4)
    print(Campaign.open("artifacts/wb-grid").load().comparison_table())

Quickstart — the same scenario on the surrogate fast path::

    from repro import DigitalTwin, SyntheticScenario

    twin = DigitalTwin("frontier", fidelity="surrogate")
    outcome = SyntheticScenario(duration_s=4 * 3600, seed=42).run(twin)

The pre-scenario facade (``Simulation``, ``run_whatif``) remains
available as a deprecated compatibility shim; see their docstrings for
the scenario-API equivalents.
"""

from repro.config import FRONTIER, frontier_spec, load_system, load_builtin_system
from repro.core import (
    PhaseProfiler,
    RapsEngine,
    Simulation,
    SimulationResult,
    StepState,
    PhysicalTwin,
    ReplayValidation,
    run_whatif,
)
from repro.cooling import CoolingFMU, CoolingPlant, FusedPlantKernel, generate_plant
from repro.fastpath import (
    MultiFidelityCampaign,
    SurrogateBundle,
    SurrogateEngine,
)
from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    Tracer,
    get_registry,
    use_registry,
)
from repro.power import SystemPowerModel
from repro.scenarios import (
    BenchmarkSequenceScenario,
    Campaign,
    CampaignStore,
    DigitalTwin,
    ExperimentSuite,
    GridSweepScenario,
    LatinHypercubeSweepScenario,
    ReplayScenario,
    Scenario,
    ScenarioResult,
    SuiteResult,
    SweepScenario,
    SyntheticScenario,
    VerificationScenario,
    WhatIfScenario,
)
from repro.scenarios import GeneratedScenario
from repro.telemetry import SyntheticTelemetryGenerator, TelemetryDataset
from repro.workloads import (
    BurstyWorkload,
    DiurnalWorkload,
    FaultInjection,
    GridSignalGenerator,
    HeavyTailWorkload,
    JobMixMorph,
    StressSuite,
    WeatherYear,
    WorkloadGenerator,
)

__version__ = "1.9.0"

__all__ = [
    "FRONTIER",
    "frontier_spec",
    "load_system",
    "load_builtin_system",
    "RapsEngine",
    "Simulation",
    "SimulationResult",
    "StepState",
    "PhysicalTwin",
    "ReplayValidation",
    "run_whatif",
    "CoolingFMU",
    "CoolingPlant",
    "FusedPlantKernel",
    "PhaseProfiler",
    "generate_plant",
    "SystemPowerModel",
    "Scenario",
    "SyntheticScenario",
    "BenchmarkSequenceScenario",
    "ReplayScenario",
    "VerificationScenario",
    "WhatIfScenario",
    "SweepScenario",
    "GridSweepScenario",
    "LatinHypercubeSweepScenario",
    "ScenarioResult",
    "ExperimentSuite",
    "SuiteResult",
    "Campaign",
    "CampaignStore",
    "DigitalTwin",
    "SurrogateBundle",
    "SurrogateEngine",
    "MultiFidelityCampaign",
    "SyntheticTelemetryGenerator",
    "TelemetryDataset",
    "GeneratedScenario",
    "WorkloadGenerator",
    "DiurnalWorkload",
    "BurstyWorkload",
    "HeavyTailWorkload",
    "JobMixMorph",
    "FaultInjection",
    "WeatherYear",
    "GridSignalGenerator",
    "StressSuite",
    "MetricsRegistry",
    "FlightRecorder",
    "Tracer",
    "get_registry",
    "use_registry",
    "__version__",
]
