"""Lane-parallel scenario execution: B engine runs, one set of array calls.

:class:`BatchedEngine` advances B scenario instances together.  Each
lane keeps its own scheduler, trace pool, fault stream, and change
detection — the event-driven half of Algorithm 1 is cheap, per-lane
Python — while the array math is batched across lanes:

- the power pipeline evaluates only the lanes whose trace-pool
  fingerprint changed this quantum, as one
  :class:`~repro.batch.power.BatchedPowerModel` call;
- the cooling plants advance as one
  :class:`~repro.batch.kernel.BatchedPlantKernel` macro step;
- cooling warmup is shared: lanes with the same (spec, wet-bulb,
  warmup) warm once and replicate the warmed snapshot — the warm-cache
  mechanism, applied across lanes, honoring ``twin.warm_cache`` when
  one is attached.

Every lane's :class:`~repro.core.engine.StepState` stream is
**bit-identical** to what a serial :class:`~repro.core.engine.RapsEngine`
run of the same scenario would produce; the differential test suite
(`tests/test_batch_differential.py`) enforces exactness across the
scenario library.

Scenarios a lane cannot represent — surrogate fidelity, conversion-chain
what-ifs, or scenario classes overriding the run protocol (sweep
containers) — fall back to ``scenario.run(twin)`` serially, so
``run_batched`` accepts any scenario list and always returns correct
results.

Lanes are sorted longest-first so finished lanes drop off the batch
tail (active lanes stay a contiguous prefix, which the batched kernel
requires); results are returned in the caller's order.
"""

from __future__ import annotations

import numpy as np

from repro.batch.kernel import BatchedPlantKernel
from repro.batch.power import BatchedPowerModel
from repro.cooling.fmu import CoolingFMU
from repro.core.engine import (
    DEFAULT_COOLING_RECORD,
    StepState,
    _TracePool,
    collect_steps,
    drive_schedule,
)
from repro.core.events import sort_events
from repro.obs.registry import get_registry
from repro.scenarios.base import RunPlan, Scenario
from repro.scenarios.result import ScenarioResult
from repro.scenarios.twin import DigitalTwin, as_twin
from repro.scheduler.engine import SchedulerEngine
from repro.telemetry.dataset import TimeSeries
from repro.telemetry.replay import ReplayCursor
from repro.telemetry.schema import TRACE_QUANTA_S

#: The plant integration substep every batched lane runs at (the
#: engine-wide default; lanes in one batch share the substep loop).
COOLING_SUBSTEP_S = 3.0


class _Lane:
    """One scenario instance inside the batch."""

    def __init__(
        self, index: int, scenario: Scenario, twin: DigitalTwin, plan: RunPlan
    ) -> None:
        self.index = index  # caller-order position
        self.scenario = scenario
        self.twin = twin
        self.plan = plan
        self.jobs = sorted(plan.jobs, key=lambda j: (j.submit_time, j.job_id))
        self.n_steps = int(np.ceil(plan.duration_s / TRACE_QUANTA_S))
        spec = twin.spec
        self.spec = spec
        self.scheduler = SchedulerEngine(
            spec.total_nodes,
            policy=scenario.policy or spec.scheduler.policy,
            allocation="contiguous",
            honor_recorded_starts=plan.honor_recorded,
            max_queue_depth=spec.scheduler.max_queue_depth,
            down_nodes=None,
        )
        self.pool = _TracePool(self.jobs)
        self.slot_of_node = self.scheduler.allocator.slot_of_node
        self.events = sort_events(plan.events) if plan.events else ()
        self.wetbulb = plan.wetbulb
        self.wb_cursor = (
            ReplayCursor(plan.wetbulb, method="linear")
            if isinstance(plan.wetbulb, TimeSeries)
            else None
        )
        self.wb0 = (
            float(plan.wetbulb.values[0])
            if isinstance(plan.wetbulb, TimeSeries)
            else float(plan.wetbulb)
        )
        self.fmu: CoolingFMU | None = None
        if scenario.with_cooling:
            self.fmu = CoolingFMU(
                spec.cooling, substep_s=COOLING_SUBSTEP_S, backend="fused"
            )
            self.fmu.setup_experiment(start_time=0.0)
        self.gen = drive_schedule(
            self.scheduler,
            self.pool,
            self.jobs,
            self.n_steps,
            TRACE_QUANTA_S,
            events=self.events,
            on_event=self._fault_handler() if self.events else None,
        )
        # Per-lane power change detection (mirrors RapsEngine).
        self.result = None
        self.last_result = None
        self.last_events = -1
        self.last_cpu: np.ndarray | None = None
        self.last_gpu: np.ndarray | None = None
        self.steps: list[StepState] = []

    def _fault_handler(self):
        """Per-lane mirror of ``RapsEngine._fault_handler``."""

        def apply(event, now: float) -> None:
            if event.kind == "node-down":
                nodes = np.asarray(event.nodes, dtype=np.int64)
                for job in self.scheduler.fail_nodes(
                    nodes, now, kill_running=event.kill_running
                ):
                    self.pool.stop(job)
            elif event.kind == "node-up":
                self.scheduler.restore_nodes(
                    np.asarray(event.nodes, dtype=np.int64)
                )
            elif event.kind == "cdu-blockage":
                if self.fmu is not None:
                    self.fmu.set_cdu_blockage(event.cdu_index, event.severity)

        return apply

    def wetbulb_at(self, t_sample: float) -> float:
        if self.wb_cursor is not None:
            return float(np.asarray(self.wb_cursor.value(t_sample)))
        return float(self.wetbulb)


def _laneable(scenario: Scenario, twin: DigitalTwin) -> bool:
    """Whether a scenario can run as a batch lane.

    Lanes replicate the base ``Scenario.run`` protocol over a full-
    fidelity :class:`~repro.core.engine.RapsEngine`; anything that
    customizes execution (sweep containers, surrogate fidelity) falls
    back to serial.  Chain overrides are checked post-plan.
    """
    cls = type(scenario)
    return (
        cls.run is Scenario.run
        and cls.iter_steps is Scenario.iter_steps
        and cls.build_engine is Scenario.build_engine
        and scenario.effective_fidelity(twin) == "full"
    )


class BatchedEngine:
    """Run B scenarios lane-parallel, bit-identical to serial runs.

    Parameters
    ----------
    scenarios:
        The scenario instances to execute.
    twin:
        The shared digital twin (anything :func:`as_twin` accepts).
    twins:
        Optional per-lane twin list overriding ``twin`` — lanes may
        target heterogeneous systems; narrower lanes are padded to the
        widest (see :mod:`repro.batch.kernel`).
    warmup_cooling_s:
        Cooling warmup horizon per lane (engine default 1800 s).
    """

    def __init__(
        self,
        scenarios,
        twin=None,
        *,
        twins=None,
        warmup_cooling_s: float = 1800.0,
    ) -> None:
        self.scenarios = list(scenarios)
        if twins is None:
            if twin is None:
                raise ValueError("BatchedEngine needs a twin (or twins)")
            shared = as_twin(twin)
            self.twins = [shared] * len(self.scenarios)
        else:
            self.twins = [as_twin(t) for t in twins]
            if len(self.twins) != len(self.scenarios):
                raise ValueError("twins must align with scenarios")
        self.warmup_cooling_s = float(warmup_cooling_s)
        self.quanta = TRACE_QUANTA_S
        #: Per-run counters, aggregated over lanes (bench observability).
        self.power_evals = 0
        self.power_reuses = 0

    # -- execution ---------------------------------------------------------------

    def run(self, *, progress=None, on_step=None) -> list[ScenarioResult]:
        """Execute all scenarios; results in input order.

        ``progress`` is an optional ``(done, total)`` callback fired as
        lanes finish collection (and per serial fallback).
        ``on_step(index, step)`` streams every
        :class:`~repro.core.engine.StepState` as it is produced, tagged
        with the scenario's caller-order index (the service layer's
        live step transport; lanes interleave, each lane's own stream
        stays in step order).
        """
        total = len(self.scenarios)
        out: list[ScenarioResult | None] = [None] * total
        done = 0
        lanes: list[_Lane] = []
        fallback: list[int] = []
        for index, (scenario, twin) in enumerate(
            zip(self.scenarios, self.twins)
        ):
            if not _laneable(scenario, twin):
                fallback.append(index)
                continue
            plan = scenario.plan(twin)
            if plan.chain is not None:
                fallback.append(index)
                continue
            lanes.append(_Lane(index, scenario, twin, plan))

        if lanes:
            self._run_lanes(lanes, on_step=on_step)
        for lane in lanes:
            result = collect_steps(
                iter(lane.steps),
                jobs=lane.jobs,
                num_cdus=lane.spec.cooling.num_cdus,
                scheduler_stats=lane.scheduler.stats,
            )
            out[lane.index] = lane.scenario._finish(lane.twin, result)
            done += 1
            if progress is not None:
                progress(done, total)
        for index in fallback:
            fallback_progress = None
            if on_step is not None:
                fallback_progress = (
                    lambda step, _i=index: on_step(_i, step)
                )
            out[index] = self.scenarios[index].run(
                self.twins[index], progress=fallback_progress
            )
            done += 1
            if progress is not None:
                progress(done, total)
        return out  # type: ignore[return-value]

    # -- internals ---------------------------------------------------------------

    def _run_lanes(self, lanes: list[_Lane], on_step=None) -> None:
        # Longest lanes first: active lanes stay a contiguous batch
        # prefix as shorter lanes finish (sort is stable, so equal
        # lengths keep caller order).
        lanes.sort(key=lambda lane: -lane.n_steps)
        power = BatchedPowerModel([lane.spec for lane in lanes])
        coupled = [lane for lane in lanes if lane.fmu is not None]
        self._warmup(lanes, power)
        kernel = (
            BatchedPlantKernel([lane.fmu._plant for lane in coupled])
            if coupled
            else None
        )
        # One shared substep schedule (mirrors CoolingPlant.step).
        n_sub = max(1, int(np.ceil(self.quanta / COOLING_SUBSTEP_S)))
        h = self.quanta / n_sub

        self.power_evals = 0
        self.power_reuses = 0
        max_steps = max(lane.n_steps for lane in lanes)
        n_active = len(lanes)
        n_cool = len(coupled)
        heat_rows: list[np.ndarray] = []
        wbs: list[float] = []
        reg = get_registry()
        lanes_gauge = (
            reg.gauge("repro_batch_lanes_active") if reg.enabled else None
        )
        lane_steps = 0
        padded_steps = 0
        for k in range(max_steps):
            while n_active > 0 and lanes[n_active - 1].n_steps <= k:
                n_active -= 1
            while n_cool > 0 and coupled[n_cool - 1].n_steps <= k:
                n_cool -= 1
            lane_steps += n_active
            padded_steps += len(lanes) - n_active
            if lanes_gauge is not None:
                lanes_gauge.set(n_active)
            active = lanes[:n_active]
            t_sample = k * self.quanta
            for lane in active:
                next(lane.gen)

            # --- power: fingerprint every active lane, batch-evaluate
            # the changed subset (RapsEngine change detection, per lane).
            changed: list[_Lane] = []
            changed_ids: list[int] = []
            cpu_rows: list[np.ndarray] = []
            gpu_rows: list[np.ndarray] = []
            fingerprints: list[tuple] = []
            for pid, lane in enumerate(active):
                ev, slot_cpu, slot_gpu = lane.pool.slot_fingerprint(
                    t_sample, self.quanta
                )
                if (
                    lane.last_result is not None
                    and ev == lane.last_events
                    and np.array_equal(slot_cpu, lane.last_cpu)
                    and np.array_equal(slot_gpu, lane.last_gpu)
                ):
                    lane.result = lane.last_result
                    self.power_reuses += 1
                else:
                    node_cpu, node_gpu = lane.pool.node_utils_from(
                        slot_cpu, slot_gpu, lane.slot_of_node
                    )
                    changed.append(lane)
                    changed_ids.append(pid)
                    cpu_rows.append(node_cpu)
                    gpu_rows.append(node_gpu)
                    fingerprints.append((ev, slot_cpu, slot_gpu))
            if changed:
                results = power.evaluate(changed_ids, cpu_rows, gpu_rows)
                self.power_evals += len(changed)
                for lane, result, fp in zip(changed, results, fingerprints):
                    lane.result = result
                    lane.last_result = result
                    lane.last_events, lane.last_cpu, lane.last_gpu = fp

            # --- cooling: one batched plant macro step over the active
            # coupled prefix, then per-lane snapshots (plant.step split
            # into its batched advance + serial bookkeeping halves).
            if n_cool:
                heat_rows.clear()
                wbs.clear()
                for lane in coupled[:n_cool]:
                    heat_rows.append(lane.result.cdu_heat_w)
                    wbs.append(lane.wetbulb_at(t_sample))
                kernel.advance(heat_rows, wbs, h, n_sub, active=n_cool)

            for lane in active:
                cooling: dict[str, np.ndarray] = {}
                if lane.fmu is not None:
                    plant = lane.fmu._plant
                    plant.time_s += self.quanta
                    state = plant._snapshot(
                        lane.result.cdu_heat_w,
                        lane.result.system_power_w,
                    )
                    lane.fmu.last_state = state
                    lane.fmu._time += self.quanta
                    cooling = {
                        key: getattr(state, key)
                        for key in DEFAULT_COOLING_RECORD
                    }
                result = lane.result
                step = StepState(
                    index=k,
                    time_s=t_sample,
                    system_power_w=result.system_power_w,
                    loss_w=result.loss_w,
                    sivoc_loss_w=result.sivoc_loss_w,
                    rectifier_loss_w=result.rectifier_loss_w,
                    chain_efficiency=result.chain_efficiency,
                    utilization=lane.scheduler.utilization,
                    num_running=lane.scheduler.num_running,
                    cdu_power_w=result.cdu_power_w,
                    cdu_heat_w=result.cdu_heat_w,
                    cooling=cooling,
                )
                lane.steps.append(step)
                if on_step is not None:
                    on_step(lane.index, step)
        for lane in lanes:
            lane.gen.close()
        if reg.enabled:
            # Bulk fold at end of sweep; lanes drive the scheduler
            # directly (not iter_steps), so these batch-level counters
            # are the only registry traffic for laned execution.
            reg.counter("repro_batch_runs_total").inc()
            reg.counter("repro_batch_lane_steps_total").inc(lane_steps)
            reg.counter("repro_batch_padded_lane_steps_total").inc(
                padded_steps
            )

    def _warmup(self, lanes: list[_Lane], power: BatchedPowerModel) -> None:
        """Shared cooling warmup: warm one lane per group, replicate.

        Warmup is deterministic — idle heat is a pure function of the
        spec, plant steps pure functions of state — so lanes sharing
        (spec, initial wet-bulb) share one warmed snapshot, captured
        and restored through the same ``get_fmu_state``/``set_fmu_state``
        capsule the warm cache uses.  A ``twin.warm_cache`` is honored:
        hits skip the warmup stepping entirely, misses store for later.
        """
        warmup_s = self.warmup_cooling_s
        if warmup_s <= 0:
            return
        groups: dict[tuple, list[tuple[int, _Lane]]] = {}
        for pid, lane in enumerate(lanes):
            if lane.fmu is None:
                continue
            groups.setdefault((id(lane.spec), lane.wb0), []).append(
                (pid, lane)
            )
        for members in groups.values():
            pid0, first = members[0]
            fmu = first.fmu
            cache = getattr(first.twin, "warm_cache", None)
            snapshot = None
            if cache is not None:
                snapshot = cache.lookup(
                    first.spec, first.wb0, warmup_s, fmu.substep_s
                )
            if snapshot is None:
                idle = power.idle_power(pid0)
                steps = int(warmup_s / self.quanta)
                fmu.set_cdu_heat(idle.cdu_heat_w)
                fmu.set_wetbulb(first.wb0)
                fmu.set_system_power(idle.system_power_w)
                for _ in range(steps):
                    fmu.do_step(fmu.time, self.quanta)
                fmu._time = 0.0
                fmu._plant.time_s = 0.0
                snapshot = fmu.get_fmu_state()
                if cache is not None:
                    cache.store(
                        first.spec, first.wb0, warmup_s,
                        fmu.substep_s, snapshot,
                    )
                rest = members[1:]
            else:
                rest = members
            for _, lane in rest:
                lane.fmu.set_fmu_state(snapshot)
                lane.fmu._time = 0.0
                lane.fmu._plant.time_s = 0.0


def run_batched(
    scenarios,
    twin=None,
    *,
    twins=None,
    warmup_cooling_s: float = 1800.0,
    progress=None,
) -> list[ScenarioResult]:
    """Execute ``scenarios`` against ``twin`` with the batched engine.

    Convenience wrapper over :class:`BatchedEngine`; results come back
    in input order and are bit-identical to ``scenario.run(twin)``.
    """
    engine = BatchedEngine(
        scenarios, twin, twins=twins, warmup_cooling_s=warmup_cooling_s
    )
    return engine.run(progress=progress)


__all__ = ["BatchedEngine", "run_batched", "COOLING_SUBSTEP_S"]
