"""Batched power pipeline: B lanes of nodes -> chassis -> racks -> CDUs.

:class:`BatchedPowerModel` evaluates the whole-system power pipeline
(:mod:`repro.power.system`) for a *subset* of lanes per call — the
batched engine's per-lane change detection decides which lanes need a
fresh evaluation each quantum, and only those pay for the pipeline.

Bit-identity per lane comes from the same properties the batched
cooling kernel relies on:

- Eq. 3, the SIVOC/rectifier curves (``np.interp``), and every
  division are elementwise, so evaluating a lane as one row of a
  ``(K, N)`` array reproduces the serial ``(N,)`` bits, and the
  ``(N,)`` coefficient rows broadcast against ``(K, N)`` through the
  same inner loops as the serial call.
- The scatter-adds become **lane-offset bincounts**: each lane's bins
  live in a disjoint ``[k * C, (k + 1) * C)`` range of one flat
  bincount, and ``np.bincount`` accumulates weights in input order, so
  each lane's per-bin accumulation order (and hence its bits) matches
  the serial per-lane bincount exactly.
- The per-lane scalar reductions (losses, system power) sum contiguous
  single-lane rows — the same pairwise tree as the serial sums.

Lanes are grouped by spec identity: lanes sharing a
:class:`~repro.config.schema.SystemSpec` object share one topology, one
coefficient set, and one batch scratch block (the overwhelmingly common
case — a campaign sweeps one system).  Distinct specs get distinct
groups and are evaluated group by group.
"""

from __future__ import annotations

import numpy as np

from repro.power.system import PowerResult, SystemPowerModel


class _PowerGroup:
    """Batched pipeline for up to ``capacity`` lanes of one spec."""

    def __init__(self, spec, capacity: int) -> None:
        self.spec = spec
        #: Serial reference model: single source of truth for topology,
        #: coefficients, curves, and the warmup idle evaluation.
        self.model = SystemPowerModel(spec)
        t = self.model.topology
        lane = np.arange(capacity, dtype=np.int64)[:, None]
        # Lane-offset index maps: lane k scatters into bin range
        # [k * count, (k + 1) * count) of one flat bincount.
        self._chassis_flat = t.chassis_of_node[None, :] + lane * t.num_chassis
        self._rack_flat = t.rack_of_chassis[None, :] + lane * t.num_racks
        self._cdu_flat = t.cdu_of_rack[None, :] + lane * t.num_cdus
        self.cpu = np.empty((capacity, t.num_nodes))
        self.gpu = np.empty((capacity, t.num_nodes))
        self._idle: PowerResult | None = None

    def idle_power(self) -> PowerResult:
        """The all-idle evaluation that seeds cooling warmup (serial)."""
        if self._idle is None:
            n = self.model.nodes.total_nodes
            self._idle = self.model.evaluate(np.zeros(n), np.zeros(n))
        return self._idle

    def evaluate_batch(self, K: int) -> list[PowerResult]:
        """Evaluate rows ``[0:K]`` of the staged cpu/gpu batch."""
        model = self.model
        t = model.topology
        nodes = model.nodes
        chain = model.chain
        cpu = self.cpu[:K]
        gpu = self.gpu[:K]
        # Eq. 3, broadcast over lanes (same expression order as
        # NodePowerModel.node_power_w, validation included).
        if (
            cpu.min(initial=0.0) < 0.0
            or cpu.max(initial=0.0) > 1.0
            or gpu.min(initial=0.0) < 0.0
            or gpu.max(initial=0.0) > 1.0
        ):
            from repro.exceptions import PowerModelError

            raise PowerModelError("utilization values must lie in [0, 1]")
        node_w = (
            nodes._cpu_idle
            + nodes._cpu_span * cpu
            + nodes._gpu_idle
            + nodes._gpu_span * gpu
            + nodes._static
        )
        # Conversion chain (ConversionChain.convert, lane-batched).
        sivoc_curve = chain.sivocs.curve
        sivoc_in = node_w / np.interp(
            node_w, sivoc_curve._loads, sivoc_curve._effs
        )
        chassis_bus = np.bincount(
            self._chassis_flat[:K].ravel(),
            weights=sivoc_in.ravel(),
            minlength=K * t.num_chassis,
        ).reshape(K, t.num_chassis)
        per_rect = chassis_bus / chain._healthy
        rect_curve = chain.rectifiers.curve
        eta = np.interp(per_rect, rect_curve._loads, rect_curve._effs)
        chassis_ac = chassis_bus / eta
        # Aggregation (SystemPowerModel.evaluate, lane-batched).
        rack_w = np.bincount(
            self._rack_flat[:K].ravel(),
            weights=chassis_ac.ravel(),
            minlength=K * t.num_racks,
        ).reshape(K, t.num_racks)
        rack_w = rack_w + t.switch_power_per_rack_w
        cdu_w = np.bincount(
            self._cdu_flat[:K].ravel(),
            weights=rack_w.ravel(),
            minlength=K * t.num_cdus,
        ).reshape(K, t.num_cdus)
        cdu_heat = cdu_w * self.spec.power.cooling_efficiency
        # Per-lane scalar reductions over contiguous rows + row copies
        # (results outlive the next batch, which reuses the scratch).
        results = []
        pump_total = model._cdu_pump_total_w
        switch_total = model._total_switch_w
        for i in range(K):
            results.append(
                PowerResult(
                    node_power_w=node_w[i].copy(),
                    rack_power_w=rack_w[i].copy(),
                    cdu_power_w=cdu_w[i].copy(),
                    cdu_heat_w=cdu_heat[i].copy(),
                    sivoc_loss_w=float(
                        np.sum(sivoc_in[i]) - np.sum(node_w[i])
                    ),
                    rectifier_loss_w=float(
                        np.sum(chassis_ac[i]) - np.sum(chassis_bus[i])
                    ),
                    switch_power_w=switch_total,
                    cdu_pump_power_w=pump_total,
                    system_power_w=float(np.sum(rack_w[i])) + pump_total,
                )
            )
        return results


class BatchedPowerModel:
    """Subset-batched power evaluation across B heterogeneous lanes.

    ``specs`` is the per-lane :class:`~repro.config.schema.SystemSpec`
    sequence; lanes sharing a spec *object* share one batch group.
    """

    def __init__(self, specs) -> None:
        specs = list(specs)
        self.lanes = len(specs)
        capacity: dict[int, int] = {}
        for spec in specs:
            capacity[id(spec)] = capacity.get(id(spec), 0) + 1
        groups: dict[int, _PowerGroup] = {}
        self.lane_group: list[_PowerGroup] = []
        for spec in specs:
            key = id(spec)
            if key not in groups:
                groups[key] = _PowerGroup(spec, capacity[key])
            self.lane_group.append(groups[key])

    def idle_power(self, lane: int) -> PowerResult:
        """The warmup idle evaluation for ``lane`` (cached per group)."""
        return self.lane_group[lane].idle_power()

    def num_cdus(self, lane: int) -> int:
        return self.lane_group[lane].model.topology.num_cdus

    def evaluate(self, lanes, cpu_rows, gpu_rows) -> list[PowerResult]:
        """Evaluate the pipeline for the given (changed) lanes.

        ``lanes`` are lane indices; ``cpu_rows`` / ``gpu_rows`` the
        matching per-node utilization arrays.  Returns one
        :class:`PowerResult` per requested lane, in order.
        """
        out: list[PowerResult | None] = [None] * len(lanes)
        by_group: dict[int, tuple[_PowerGroup, list[int]]] = {}
        for pos, lane in enumerate(lanes):
            group = self.lane_group[lane]
            by_group.setdefault(id(group), (group, []))[1].append(pos)
        for group, positions in by_group.values():
            for row, pos in enumerate(positions):
                group.cpu[row, :] = cpu_rows[pos]
                group.gpu[row, :] = gpu_rows[pos]
            results = group.evaluate_batch(len(positions))
            for row, pos in enumerate(positions):
                out[pos] = results[row]
        return out


__all__ = ["BatchedPowerModel"]
